"""Performance ablations — the engineering claims behind the harness.

1. *Analytic bound vs exhaustive experiment* — the paper's motivation:
   computing Fep "only requires looking at the topology", while the
   empirical check faces a combinatorial explosion.  We time both on
   the same question and assert the gap is orders of magnitude.
2. *Vectorised vs scalar injection* — the batched masked-GEMM path
   must beat per-scenario execution (the hot-path design of DESIGN.md).
3. *Simulator vs injector* — the process-grained semantic reference is
   expected to be slow; its cost is recorded to justify the dual-engine
   architecture.
"""

import numpy as np
import pytest

from repro.core.fep import network_fep
from repro.faults.campaign import exhaustive_crash_campaign, run_campaign
from repro.faults.injector import FaultInjector
from repro.faults.masks import (
    FixedDistributionSampler,
    MaskCampaignEngine,
    sampled_campaign_errors,
)
from repro.faults.scenarios import random_failure_scenario
from repro.distributed.simulator import DistributedNetwork
from repro.network import build_mlp


@pytest.fixture(scope="module")
def setup():
    net = build_mlp(
        4, [16, 12],
        activation={"name": "sigmoid", "k": 1.0},
        init={"name": "uniform", "scale": 0.4},
        output_scale=0.3,
        seed=21,
    )
    rng = np.random.default_rng(21)
    x = rng.random((64, 4))
    scenarios = [
        random_failure_scenario(net, (3, 2), rng=rng, name=f"s{i}")
        for i in range(256)
    ]
    return net, x, scenarios


def test_bench_fep_analytic(benchmark, setup):
    """The bound costs microseconds — 'only looking at the topology'."""
    net, _, _ = setup
    value = benchmark(network_fep, net, (3, 2), mode="crash")
    assert value > 0


def test_bench_exhaustive_experiment(benchmark, setup):
    """The empirical alternative for just n_fail=2 over a small grid."""
    net, x, _ = setup
    injector = FaultInjector(net, capacity=1.0)

    result = benchmark.pedantic(
        exhaustive_crash_campaign,
        args=(injector, x[:16], 2),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    # C(28, 2) = 378 configurations for ONE failure count on ONE grid;
    # the analytic bound answered the general question instantly.
    assert result.num_scenarios == 378


def test_bench_injector_vectorised(benchmark, setup):
    net, x, scenarios = setup
    injector = FaultInjector(net, capacity=1.0)
    compiled = injector.compile_batch(scenarios)
    out = benchmark(injector.run_many, x, compiled)
    assert out.shape == (256, 64, 1)


def test_bench_injector_scalar_loop(benchmark, setup):
    net, x, scenarios = setup
    injector = FaultInjector(net, capacity=1.0)
    subset = scenarios[:16]  # scalar path; keep the round affordable

    def scalar_loop():
        return [injector.run(x, sc) for sc in subset]

    outs = benchmark(scalar_loop)
    assert len(outs) == 16


def test_bench_simulator_reference(benchmark, setup):
    net, x, scenarios = setup
    sim = DistributedNetwork(net, capacity=1.0)
    sim.apply_scenario(scenarios[0])
    out = benchmark.pedantic(
        sim.run_batch, args=(x[:8],), rounds=3, iterations=1, warmup_rounds=0
    )
    assert out.shape == (8, 1)


def test_bench_compile_scenarios(benchmark, setup):
    net, _, scenarios = setup
    injector = FaultInjector(net, capacity=1.0)
    compiled = benchmark(injector.compile_batch, scenarios)
    assert compiled.num_scenarios == 256


# ---------------------------------------------------------------------------
# Mask-native engine (DESIGN.md throughput path)
# ---------------------------------------------------------------------------


def test_bench_mask_sampler_100k(benchmark, setup):
    """Array-level scenario sampling: 100k scenarios, no Python objects."""
    net, _, _ = setup
    sampler = FixedDistributionSampler(net, (3, 2))
    rng = np.random.default_rng(0)
    batch = benchmark(sampler.sample, 100_000, rng)
    assert batch.num_scenarios == 100_000


def test_bench_mask_campaign_1k(benchmark, setup):
    """Full pipeline (sample -> evaluate -> reduce) at S=1k."""
    net, x, _ = setup
    injector = FaultInjector(net, capacity=1.0)
    sampler = FixedDistributionSampler(net, (3, 2))
    errors = benchmark(
        sampled_campaign_errors, injector, x[:16], sampler, 1_000, seed=0
    )
    assert errors.shape == (1_000,)


def test_bench_seed_pipeline_1k(benchmark, setup):
    """The seed path at S=1k: object sampling + compile_batch lowering.

    The ratio against ``test_bench_mask_campaign_1k`` is the headline
    speedup of the mask-native engine (see BENCH_campaign.json for the
    S=100k comparison, where it exceeds 10x).
    """
    net, x, _ = setup
    injector = FaultInjector(net, capacity=1.0)

    def seed_pipeline():
        rng = np.random.default_rng(0)
        stream = (
            random_failure_scenario(net, (3, 2), rng=rng, name=f"mc{i}")
            for i in range(1_000)
        )
        return run_campaign(injector, x[:16], stream, chunk_size=256)

    result = benchmark(seed_pipeline)
    assert result.num_scenarios == 1_000


def test_bench_mask_campaign_100k(benchmark, setup):
    """Full pipeline at S=100k, float32 fast path (single round)."""
    net, x, _ = setup
    injector = FaultInjector(net, capacity=1.0)
    sampler = FixedDistributionSampler(net, (3, 2))
    errors = benchmark.pedantic(
        sampled_campaign_errors,
        args=(injector, x[:16], sampler, 100_000),
        kwargs=dict(seed=0, dtype="float32"),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert errors.shape == (100_000,)


def test_bench_mask_engine_eval_only(benchmark, setup):
    """Streamed evaluation alone (preallocated buffers, float64)."""
    net, x, scenarios = setup
    injector = FaultInjector(net, capacity=1.0)
    compiled = injector.compile_batch(scenarios)
    engine = MaskCampaignEngine(injector, x, chunk_size=256)
    errors = benchmark(engine.evaluate, compiled)
    assert errors.shape == (256,)
