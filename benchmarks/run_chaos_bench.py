"""Chaos-campaign benchmark: streamed fleet evaluation vs a scalar epoch loop.

The chaos subsystem's claim is that a *temporal* campaign — R replicas
x E epochs of evolving fault state — stays mask-native end to end: the
whole fleet x time grid streams through ``MaskCampaignEngine`` in
windows, with zero per-scenario Python in the hot loop.  This
benchmark prices that claim at fleet x epochs >= 1e5 cells:

* **chaos engine** — ``run_chaos_campaign`` (no-repair, exponential
  component lifetimes), wall-clock for the full grid, including the
  process simulation and SLO aggregation;
* **scalar epoch loop** — the naive implementation: advance the same
  fleet state epoch by epoch, build one ``FailureScenario`` per
  (epoch, replica) cell and call ``injector.output_error`` on it.
  Timed on a cell subsample (it is orders of magnitude slower) and
  extrapolated by throughput; the JSON records both numbers.

Results land in ``BENCH_campaign.json`` under the ``"chaos"`` key.
The acceptance target tracked here: the chaos engine must be >= 10x
the scalar epoch loop at fleet x epochs >= 1e5.

A second section, ``"telemetry"``, prices the telemetry-native
refactor: the same campaign with full telemetry capture (ground-truth
fault labels, per-process damage attribution) vs the plain run whose
trace carries only what the report needs.  Tracked target: capture
overhead < 10% of campaign wall time (recording is array slicing into
preallocated channels, never RNG or per-scenario Python).

Run from the repo root::

    PYTHONPATH=src python benchmarks/run_chaos_bench.py
    PYTHONPATH=src python benchmarks/run_chaos_bench.py --replicas 128 --epochs 800
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.chaos import ComponentLifetimeProcess
from repro.chaos.campaign import _run_chaos_campaign
from repro.chaos.deployment import FleetState
from repro.faults.injector import FaultInjector
from repro.faults.scenarios import crash_scenario
from repro.network import build_mlp
from repro.network.model import NeuronAddress

RATE = 0.002
EPSILON, EPSILON_PRIME = 0.5, 0.1
N_PROBES = 16
SCALAR_REF_CELLS = 2_000


def bench_network():
    """The throughput-bench network of run_campaign_bench.py."""
    return build_mlp(
        4, [16, 12],
        activation={"name": "sigmoid", "k": 1.0},
        init={"name": "uniform", "scale": 0.4},
        output_scale=0.3,
        seed=21,
    )


def time_chaos_engine(net, x, n_replicas, epochs, seed=0, telemetry=None):
    t0 = time.perf_counter()
    report = _run_chaos_campaign(
        net, x, [ComponentLifetimeProcess(RATE)],
        epochs=epochs, n_replicas=n_replicas,
        epsilon=EPSILON, epsilon_prime=EPSILON_PRIME,
        seed=seed, epochs_chunk=64, telemetry=telemetry,
    )
    return time.perf_counter() - t0, report


def time_telemetry_overhead(net, x, n_replicas, epochs, repeats=5):
    """Best-of-N wall time, full telemetry capture vs plain run.

    Both runs share the seed, so the fault schedule — and therefore
    the report — is bitwise identical; only the recording differs.
    The off/on measurements are interleaved (off, on, off, on, ...)
    so transient machine load hits both variants alike instead of
    biasing whichever phase it overlapped.
    """
    from types import SimpleNamespace

    on_spec = SimpleNamespace(enabled=True, ground_truth=True)
    t_off = float("inf")
    t_on = float("inf")
    report_on = None
    for _ in range(repeats):
        t_off = min(t_off, time_chaos_engine(net, x, n_replicas, epochs)[0])
        t, report_on = time_chaos_engine(
            net, x, n_replicas, epochs, telemetry=on_spec
        )
        t_on = min(t_on, t)
    return t_off, t_on, report_on


def time_scalar_epoch_loop(net, x, n_replicas, epochs, n_cells, seed=0):
    """The naive path: one FailureScenario + scalar evaluation per cell.

    Simulates the same kind of fleet trajectory (same process, same
    law), walks the (epoch, replica) grid in order and evaluates the
    first ``n_cells`` cells; throughput extrapolates to the full grid.
    """
    injector = FaultInjector(net, capacity=net.output_bound)
    state = FleetState(net.layer_sizes, n_replicas)
    proc = ComponentLifetimeProcess(RATE)
    proc.reset(n_replicas, net.layer_sizes)
    rng = np.random.default_rng(seed)
    evaluated = 0
    max_err = 0.0
    t0 = time.perf_counter()
    for epoch in range(epochs):
        state.begin_epoch(epoch)
        proc.step(state, rng)
        for r in range(n_replicas):
            if evaluated >= n_cells:
                break
            addresses = [
                NeuronAddress(l0 + 1, int(i))
                for l0, mask in enumerate(state.crash)
                for i in np.nonzero(mask[r])[0]
            ]
            err = injector.output_error(x, crash_scenario(addresses))
            max_err = max(max_err, err)
            evaluated += 1
        state.advance_ages()
        if evaluated >= n_cells:
            break
    elapsed = time.perf_counter() - t0
    return elapsed, evaluated, max_err


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--replicas", type=int, default=128,
                        help="fleet size R (default 128)")
    parser.add_argument("--epochs", type=int, default=800,
                        help="mission length E (default 800; R*E is the "
                             "scenario-grid size)")
    parser.add_argument("--ref-cells", type=int, default=SCALAR_REF_CELLS,
                        help="cells to time on the scalar reference")
    parser.add_argument("--output", default=None,
                        help="output path (default: BENCH_campaign.json "
                             "next to this script's repo root)")
    args = parser.parse_args(argv)

    net = bench_network()
    x = np.random.default_rng(21).random((N_PROBES, net.input_dim))
    cells = args.replicas * args.epochs
    print(
        f"chaos bench: fleet {args.replicas} x {args.epochs} epochs = "
        f"{cells} cells, rate {RATE}"
    )

    t_chaos, report = time_chaos_engine(net, x, args.replicas, args.epochs)
    print(
        f"  chaos engine:      {t_chaos:8.3f}s  "
        f"({cells / t_chaos:,.0f} cells/s)  "
        f"availability={report.availability:.4f}"
    )

    t_ref, n_ref, max_err_ref = time_scalar_epoch_loop(
        net, x, args.replicas, args.epochs, args.ref_cells
    )
    t_scalar_full = t_ref * (cells / n_ref)
    print(
        f"  scalar epoch loop: {t_ref:8.3f}s for {n_ref} cells "
        f"-> {t_scalar_full:,.1f}s extrapolated "
        f"({n_ref / t_ref:,.0f} cells/s)"
    )
    speedup = t_scalar_full / t_chaos
    print(f"  speedup: {speedup:.1f}x  (target >= 10x)")

    payload = {
        "workload": {
            "network": "mlp 4->[16,12]->1 (throughput-bench, seed 21)",
            "process": f"ComponentLifetimeProcess(rate={RATE})",
            "policy": "none",
            "n_replicas": args.replicas,
            "epochs": args.epochs,
            "cells": cells,
            "n_probes": N_PROBES,
            "epsilon": EPSILON,
            "epsilon_prime": EPSILON_PRIME,
        },
        "chaos_engine_s": round(t_chaos, 4),
        "cells_per_s_chaos": round(cells / t_chaos),
        "scalar_ref_cells": n_ref,
        "scalar_ref_s": round(t_ref, 4),
        "scalar_extrapolated_s": round(t_scalar_full, 4),
        "cells_per_s_scalar": round(n_ref / t_ref),
        "speedup": round(speedup, 2),
        "availability": report.availability,
        "violation_fraction": report.violation_fraction,
    }

    out_path = Path(
        args.output
        if args.output
        else Path(__file__).resolve().parent.parent / "BENCH_campaign.json"
    )
    t_off, t_on, report_on = time_telemetry_overhead(
        net, x, args.replicas, args.epochs
    )
    overhead = (t_on - t_off) / t_off
    trace = report_on.trace
    print(
        f"  telemetry capture: {t_off:8.3f}s off vs {t_on:8.3f}s on "
        f"-> overhead {overhead * 100:.1f}%  (target < 10%)"
    )
    telemetry_payload = {
        "workload": {
            "network": "mlp 4->[16,12]->1 (throughput-bench, seed 21)",
            "process": f"ComponentLifetimeProcess(rate={RATE})",
            "n_replicas": args.replicas,
            "epochs": args.epochs,
            "cells": cells,
            "ground_truth": True,
        },
        "telemetry_off_s": round(t_off, 4),
        "telemetry_on_s": round(t_on, 4),
        "overhead_fraction": round(overhead, 4),
        "trace_channels": {
            "grid": ["errors", "viol", "down"],
            "ground_truth": [
                "crash_counts", "transient_counts", "process_hits"
            ],
        },
        "ground_truth_cells": int(
            trace.crash_counts.size + trace.transient_counts.size
            + trace.process_hits.size
        ),
    }

    existing = {}
    if out_path.exists():
        existing = json.loads(out_path.read_text(encoding="utf-8"))
    existing["chaos"] = payload
    existing["telemetry"] = telemetry_payload
    out_path.write_text(
        json.dumps(existing, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
