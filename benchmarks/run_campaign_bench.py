"""Campaign-engine benchmark: seed pipeline vs mask-native engine.

Times the end-to-end Monte-Carlo campaign (sample -> evaluate ->
reduce) on the throughput-bench network for both engines and dumps the
results to ``BENCH_campaign.json`` so future PRs inherit a perf
trajectory:

* **seed pipeline** — per-scenario ``random_failure_scenario`` objects
  lowered chunk-wise through ``compile_batch`` (the object path that
  shipped with the seed repo);
* **mask engine** — array-level sampling + streamed evaluation
  (``repro.faults.masks``), in float64 and in the float32 fast path;
* **fault-taxonomy workloads** — stochastic (noise / intermittent /
  sign-flip) and synapse-grained (crash / Byzantine / noise) faults,
  which the seed engine could only run one scenario at a time on the
  scalar injector, vs the widened mask engine.  The scalar reference
  is timed on a subsample (it is ~two orders of magnitude slower) and
  extrapolated by throughput; the JSON records both numbers.
* **engine backends** (``--full-matrix`` only) — the same taxonomy
  workloads through every registered engine backend (numpy reference,
  threaded tiling, quantized-int8 / float16 probe tiers), emitted as
  the ``backends`` section and schema-checked by
  ``benchmarks/test_bench_shapes.py``.
* **adaptive stopping** — the confidence-sequence early-stop layer
  (``repro.faults.adaptive``) on three taxonomy workloads at a
  pilot-tuned rare-event threshold (~p99.9 of the error law): the
  fixed-S Hoeffding reference at the target CI width vs the
  empirical-Bernstein anytime stop, emitted as the ``adaptive``
  section with scenarios-saved factors and a coverage check of the
  stopped CI against the fixed-S rate.

Run from the repo root::

    PYTHONPATH=src python benchmarks/run_campaign_bench.py
    PYTHONPATH=src python benchmarks/run_campaign_bench.py --sizes 1000 100000
    PYTHONPATH=src python benchmarks/run_campaign_bench.py --full-matrix

The acceptance targets tracked here, all at S=100k: the mask engine
must be >= 10x the seed pipeline on crash scenarios, and >= 10x the
scalar path on at least one stochastic-fault and one synapse-fault
workload.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.faults.adaptive import adaptive_campaign_errors, hoeffding_fixed_n
from repro.faults.campaign import run_campaign
from repro.faults.injector import FaultInjector
from repro.faults.masks import (
    FixedDistributionSampler,
    FixedSynapseDistributionSampler,
    sampled_campaign_errors,
)
from repro.faults.scenarios import (
    random_failure_scenario,
    random_synapse_scenario,
)
from repro.faults.types import (
    IntermittentFault,
    NoiseFault,
    SignFlipFault,
    SynapseByzantineFault,
    SynapseCrashFault,
    SynapseNoiseFault,
)
from repro.network import build_mlp

DISTRIBUTION = (3, 2)
SYNAPSE_DISTRIBUTION = (3, 2, 1)
N_PROBES = 16
SCALAR_REF_SCENARIOS = 2_000

#: name -> (fault model, is_synapse)
FAULT_WORKLOADS = {
    "noise": (NoiseFault(sigma=0.1), False),
    "intermittent": (IntermittentFault(p=0.5), False),
    "sign-flip": (SignFlipFault(), False),
    "synapse-crash": (SynapseCrashFault(), True),
    "synapse-byzantine": (SynapseByzantineFault(), True),
    "synapse-noise": (SynapseNoiseFault(sigma=0.1), True),
}
DEFAULT_WORKLOADS = ("noise", "synapse-byzantine")

#: The adaptive-stopping section: three taxonomy workloads, a target
#: CI width of 0.01 at delta=0.05 (fixed-S Hoeffding reference:
#: n = 73,778), thresholds pilot-tuned to the rare-event regime.
ADAPTIVE_WORKLOADS = ("noise", "sign-flip", "synapse-byzantine")
ADAPTIVE_TARGET_CI = 0.01
ADAPTIVE_DELTA = 0.05
ADAPTIVE_PILOT = 4_096


def bench_network():
    """The throughput-bench network of benchmarks/test_bench_throughput.py."""
    return build_mlp(
        4, [16, 12],
        activation={"name": "sigmoid", "k": 1.0},
        init={"name": "uniform", "scale": 0.4},
        output_scale=0.3,
        seed=21,
    )


def time_seed_pipeline(injector, x, n_scenarios, seed=0):
    net = injector.network
    t0 = time.perf_counter()
    rng = np.random.default_rng(seed)
    stream = (
        random_failure_scenario(net, DISTRIBUTION, rng=rng, name=f"mc{i}")
        for i in range(n_scenarios)
    )
    result = run_campaign(injector, x, stream, chunk_size=256)
    elapsed = time.perf_counter() - t0
    return elapsed, result.max_error


def time_mask_engine(injector, x, n_scenarios, dtype, seed=0):
    sampler = FixedDistributionSampler(injector.network, DISTRIBUTION)
    t0 = time.perf_counter()
    errors = sampled_campaign_errors(
        injector, x, sampler, n_scenarios, seed=seed, dtype=dtype
    )
    elapsed = time.perf_counter() - t0
    return elapsed, float(errors.max())


def bench_fault_workload(injector, x, name, n_scenarios, seed=0):
    """One fault-taxonomy workload: scalar reference vs mask engine.

    The scalar path is timed on ``min(S, SCALAR_REF_SCENARIOS)``
    scenarios and extrapolated by throughput — at S=100k it would take
    minutes per workload, which is exactly the gap this engine closes.
    """
    net = injector.network
    fault, is_synapse = FAULT_WORKLOADS[name]
    n_ref = min(n_scenarios, SCALAR_REF_SCENARIOS)

    rng = np.random.default_rng(seed)
    if is_synapse:
        scenarios = [
            random_synapse_scenario(
                net, SYNAPSE_DISTRIBUTION, fault=fault, rng=rng
            )
            for _ in range(n_ref)
        ]
    else:
        scenarios = [
            random_failure_scenario(net, DISTRIBUTION, fault=fault, rng=rng)
            for _ in range(n_ref)
        ]
    eval_rng = np.random.default_rng(seed)
    t0 = time.perf_counter()
    scalar = np.array(
        [injector.output_error(x, sc, rng=eval_rng) for sc in scenarios]
    )
    t_scalar_ref = time.perf_counter() - t0
    t_scalar_full = t_scalar_ref * (n_scenarios / n_ref)

    sampler = _workload_sampler(net, name)
    t0 = time.perf_counter()
    errors = sampled_campaign_errors(
        injector, x, sampler, n_scenarios, seed=seed
    )
    t_mask = time.perf_counter() - t0

    return {
        "workload": name,
        "fault": repr(fault),
        "distribution": list(
            SYNAPSE_DISTRIBUTION if is_synapse else DISTRIBUTION
        ),
        "n_scenarios": n_scenarios,
        "scalar_ref_scenarios": n_ref,
        "scalar_ref_s": round(t_scalar_ref, 4),
        "scalar_extrapolated_s": round(t_scalar_full, 4),
        "mask_s": round(t_mask, 4),
        "speedup": round(t_scalar_full / t_mask, 2),
        "scenarios_per_s_mask": round(n_scenarios / t_mask),
        "scenarios_per_s_scalar": round(n_ref / t_scalar_ref),
        "max_error_scalar_ref": float(scalar.max()),
        "max_error_mask": float(errors.max()),
    }


def _workload_sampler(net, name):
    fault, is_synapse = FAULT_WORKLOADS[name]
    if is_synapse:
        return FixedSynapseDistributionSampler(
            net, SYNAPSE_DISTRIBUTION, fault=fault
        )
    return FixedDistributionSampler(net, DISTRIBUTION, fault=fault)


def bench_adaptive_workload(injector, x, name, seed=0):
    """Fixed-S Hoeffding reference vs the empirical-Bernstein stop.

    The threshold is pilot-tuned to ~p99.9 of the workload's error
    law (on an independent pilot seed), so the audited violation rate
    sits in the rare-event regime where a priori Hoeffding planning
    is maximally wasteful.  Both runs share the evaluation seed, so
    the stopped campaign is a bitwise prefix of the reference and the
    anytime CI can be checked against the fixed-S rate directly.
    """
    sampler = _workload_sampler(injector.network, name)
    pilot = sampled_campaign_errors(
        injector, x, sampler, ADAPTIVE_PILOT, seed=seed + 1
    )
    threshold = float(np.quantile(pilot, 0.999))

    n_ref = hoeffding_fixed_n(ADAPTIVE_TARGET_CI, ADAPTIVE_DELTA)
    t0 = time.perf_counter()
    ref_errors = sampled_campaign_errors(
        injector, x, sampler, n_ref, seed=seed
    )
    t_ref = time.perf_counter() - t0
    ref_rate = float(np.mean(ref_errors > threshold))

    t0 = time.perf_counter()
    _, rep = adaptive_campaign_errors(
        injector, x, sampler, n_ref,
        threshold=threshold,
        method="empirical_bernstein",
        target_ci=ADAPTIVE_TARGET_CI,
        delta=ADAPTIVE_DELTA,
        seed=seed,
    )
    t_adaptive = time.perf_counter() - t0

    return {
        "workload": name,
        "threshold": threshold,
        "target_ci": ADAPTIVE_TARGET_CI,
        "delta": ADAPTIVE_DELTA,
        "n_reference": n_ref,
        "reference_rate": ref_rate,
        "reference_s": round(t_ref, 4),
        "n_adaptive": rep.n_scenarios,
        "adaptive_s": round(t_adaptive, 4),
        "stopped": rep.stopped,
        "estimate": rep.estimate,
        "ci_low": rep.ci_low,
        "ci_high": rep.ci_high,
        "ci_covers_reference": bool(
            rep.ci_low <= ref_rate <= rep.ci_high
        ),
        "scenarios_saved_factor": round(n_ref / rep.n_scenarios, 2),
    }


def bench_backend_matrix(injector, x, workloads, n_scenarios, seed=0):
    """Every fault-taxonomy workload through every engine backend.

    The same sampled campaign (same seed, same sampler family) runs on
    one prebuilt engine per backend; ``max_error`` makes the precision
    cost of the quantized tiers visible next to their throughput.
    """
    from repro.backends import available_backends, build_engine

    net = injector.network
    rows = []
    for name in workloads:
        sampler = _workload_sampler(net, name)
        for backend in available_backends():
            engine = build_engine(backend, injector, x)
            # Warm the buffers/pool so the row times steady state.
            sampled_campaign_errors(
                injector, x, sampler, 2_000, seed=seed, engine=engine
            )
            t0 = time.perf_counter()
            errors = sampled_campaign_errors(
                injector, x, sampler, n_scenarios, seed=seed, engine=engine
            )
            elapsed = time.perf_counter() - t0
            if hasattr(engine, "close"):
                engine.close()
            rows.append(
                {
                    "workload": name,
                    "backend": backend,
                    "n_scenarios": n_scenarios,
                    "seconds": round(elapsed, 4),
                    "scenarios_per_s": round(n_scenarios / elapsed),
                    "max_error": float(errors.max()),
                }
            )
            print(
                f"{name:>18} [{backend:>14}] @ S={n_scenarios}: "
                f"{elapsed:7.3f}s ({rows[-1]['scenarios_per_s']:>9,} "
                "scenarios/s)"
            )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[1_000, 100_000],
                        help="campaign sizes S to benchmark")
    parser.add_argument("--workloads", nargs="+",
                        choices=sorted(FAULT_WORKLOADS),
                        default=list(DEFAULT_WORKLOADS),
                        help="fault-taxonomy workloads to benchmark at "
                             "the largest S (default: noise + "
                             "synapse-byzantine)")
    parser.add_argument("--full-matrix", action="store_true",
                        help="benchmark every fault-taxonomy workload "
                             "(the `make bench-faults` matrix)")
    parser.add_argument("--output", default=None,
                        help="output path (default: BENCH_campaign.json "
                             "next to this script's repo root)")
    args = parser.parse_args(argv)
    workloads = sorted(FAULT_WORKLOADS) if args.full_matrix else args.workloads

    net = bench_network()
    injector = FaultInjector(net, capacity=1.0)
    x = np.random.default_rng(21).random((N_PROBES, net.input_dim))

    rows = []
    for S in args.sizes:
        t_seed, max_seed = time_seed_pipeline(injector, x, S)
        t_f64, max_f64 = time_mask_engine(injector, x, S, np.float64)
        t_f32, max_f32 = time_mask_engine(injector, x, S, np.float32)
        row = {
            "n_scenarios": S,
            "seed_pipeline_s": round(t_seed, 4),
            "mask_float64_s": round(t_f64, 4),
            "mask_float32_s": round(t_f32, 4),
            "speedup_float64": round(t_seed / t_f64, 2),
            "speedup_float32": round(t_seed / t_f32, 2),
            "scenarios_per_s_float64": round(S / t_f64),
            "scenarios_per_s_float32": round(S / t_f32),
            "max_error_seed": max_seed,
            "max_error_mask_float64": max_f64,
            "max_error_mask_float32": max_f32,
        }
        rows.append(row)
        print(
            f"S={S:>8}: seed {t_seed:7.3f}s | mask f64 {t_f64:7.3f}s "
            f"({row['speedup_float64']:5.1f}x) | mask f32 {t_f32:7.3f}s "
            f"({row['speedup_float32']:5.1f}x)"
        )

    big = max(args.sizes)
    fault_rows = []
    for name in workloads:
        frow = bench_fault_workload(injector, x, name, big)
        fault_rows.append(frow)
        print(
            f"{name:>18} @ S={big}: scalar ~{frow['scalar_extrapolated_s']:8.1f}s "
            f"(measured {frow['scalar_ref_s']:6.2f}s @ "
            f"{frow['scalar_ref_scenarios']}) | mask {frow['mask_s']:7.3f}s "
            f"({frow['speedup']:6.1f}x)"
        )

    adaptive_rows = []
    for name in ADAPTIVE_WORKLOADS:
        arow = bench_adaptive_workload(injector, x, name)
        adaptive_rows.append(arow)
        print(
            f"{name:>18} adaptive: stop @ {arow['n_adaptive']:>6} vs "
            f"fixed-S {arow['n_reference']} "
            f"({arow['scenarios_saved_factor']:5.1f}x saved) | rate "
            f"{arow['reference_rate']:.2e} in "
            f"[{arow['ci_low']:.2e}, {arow['ci_high']:.2e}]: "
            f"{'covered' if arow['ci_covers_reference'] else 'MISSED'}"
        )

    backend_rows = None
    if args.full_matrix:
        backend_rows = bench_backend_matrix(injector, x, workloads, big)

    payload = {
        "workload": {
            "network": "mlp 4->[16,12]->1 (throughput-bench, seed 21)",
            "distribution": list(DISTRIBUTION),
            "n_probes": N_PROBES,
            "fault": "crash",
            "reduction": "max",
        },
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": rows,
        "fault_workloads": fault_rows,
        "adaptive": {
            "method": "empirical_bernstein",
            "target_ci": ADAPTIVE_TARGET_CI,
            "delta": ADAPTIVE_DELTA,
            "n_reference": hoeffding_fixed_n(
                ADAPTIVE_TARGET_CI, ADAPTIVE_DELTA
            ),
            "workloads": adaptive_rows,
        },
    }
    if backend_rows is not None:
        payload["backends"] = backend_rows
    out_path = Path(
        args.output
        if args.output is not None
        else Path(__file__).resolve().parent.parent / "BENCH_campaign.json"
    )
    # Merge over sections other tools own (run_chaos_bench writes
    # "chaos" into the same file) instead of dropping them.
    if out_path.exists():
        try:
            existing = json.loads(out_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            existing = {}
        for key, value in existing.items():
            payload.setdefault(key, value)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")

    status = 0
    headline = next(r for r in rows if r["n_scenarios"] == big)
    if headline["speedup_float64"] < 10:
        print(
            f"WARNING: float64 speedup at S={big} is "
            f"{headline['speedup_float64']}x (< 10x target)"
        )
        status = 1
    for frow in fault_rows:
        if frow["speedup"] < 10:
            print(
                f"WARNING: {frow['workload']} speedup at S={big} is "
                f"{frow['speedup']}x (< 10x target)"
            )
            status = 1
    for arow in adaptive_rows:
        if arow["scenarios_saved_factor"] < 10:
            print(
                f"WARNING: adaptive {arow['workload']} saved only "
                f"{arow['scenarios_saved_factor']}x scenarios "
                "(< 10x target)"
            )
            status = 1
        if not arow["ci_covers_reference"]:
            print(
                f"WARNING: adaptive {arow['workload']} stopped CI "
                "does not cover the fixed-S reference rate"
            )
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
