"""Campaign-engine benchmark: seed pipeline vs mask-native engine.

Times the end-to-end Monte-Carlo campaign (sample -> evaluate ->
reduce) on the throughput-bench network for both engines and dumps the
results to ``BENCH_campaign.json`` so future PRs inherit a perf
trajectory:

* **seed pipeline** — per-scenario ``random_failure_scenario`` objects
  lowered chunk-wise through ``compile_batch`` (the object path that
  shipped with the seed repo);
* **mask engine** — array-level sampling + streamed evaluation
  (``repro.faults.masks``), in float64 and in the float32 fast path.

Run from the repo root::

    PYTHONPATH=src python benchmarks/run_campaign_bench.py
    PYTHONPATH=src python benchmarks/run_campaign_bench.py --sizes 1000 100000

The acceptance target tracked here: at S=100k crash scenarios the mask
engine must be >= 10x the seed pipeline.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.faults.campaign import run_campaign
from repro.faults.injector import FaultInjector
from repro.faults.masks import FixedDistributionSampler, sampled_campaign_errors
from repro.faults.scenarios import random_failure_scenario
from repro.network import build_mlp

DISTRIBUTION = (3, 2)
N_PROBES = 16


def bench_network():
    """The throughput-bench network of benchmarks/test_bench_throughput.py."""
    return build_mlp(
        4, [16, 12],
        activation={"name": "sigmoid", "k": 1.0},
        init={"name": "uniform", "scale": 0.4},
        output_scale=0.3,
        seed=21,
    )


def time_seed_pipeline(injector, x, n_scenarios, seed=0):
    net = injector.network
    t0 = time.perf_counter()
    rng = np.random.default_rng(seed)
    stream = (
        random_failure_scenario(net, DISTRIBUTION, rng=rng, name=f"mc{i}")
        for i in range(n_scenarios)
    )
    result = run_campaign(injector, x, stream, chunk_size=256)
    elapsed = time.perf_counter() - t0
    return elapsed, result.max_error


def time_mask_engine(injector, x, n_scenarios, dtype, seed=0):
    sampler = FixedDistributionSampler(injector.network, DISTRIBUTION)
    t0 = time.perf_counter()
    errors = sampled_campaign_errors(
        injector, x, sampler, n_scenarios, seed=seed, dtype=dtype
    )
    elapsed = time.perf_counter() - t0
    return elapsed, float(errors.max())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[1_000, 100_000],
                        help="campaign sizes S to benchmark")
    parser.add_argument("--output", default=None,
                        help="output path (default: BENCH_campaign.json "
                             "next to this script's repo root)")
    args = parser.parse_args(argv)

    net = bench_network()
    injector = FaultInjector(net, capacity=1.0)
    x = np.random.default_rng(21).random((N_PROBES, net.input_dim))

    rows = []
    for S in args.sizes:
        t_seed, max_seed = time_seed_pipeline(injector, x, S)
        t_f64, max_f64 = time_mask_engine(injector, x, S, np.float64)
        t_f32, max_f32 = time_mask_engine(injector, x, S, np.float32)
        row = {
            "n_scenarios": S,
            "seed_pipeline_s": round(t_seed, 4),
            "mask_float64_s": round(t_f64, 4),
            "mask_float32_s": round(t_f32, 4),
            "speedup_float64": round(t_seed / t_f64, 2),
            "speedup_float32": round(t_seed / t_f32, 2),
            "scenarios_per_s_float64": round(S / t_f64),
            "scenarios_per_s_float32": round(S / t_f32),
            "max_error_seed": max_seed,
            "max_error_mask_float64": max_f64,
            "max_error_mask_float32": max_f32,
        }
        rows.append(row)
        print(
            f"S={S:>8}: seed {t_seed:7.3f}s | mask f64 {t_f64:7.3f}s "
            f"({row['speedup_float64']:5.1f}x) | mask f32 {t_f32:7.3f}s "
            f"({row['speedup_float32']:5.1f}x)"
        )

    payload = {
        "workload": {
            "network": "mlp 4->[16,12]->1 (throughput-bench, seed 21)",
            "distribution": list(DISTRIBUTION),
            "n_probes": N_PROBES,
            "fault": "crash",
            "reduction": "max",
        },
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": rows,
    }
    out_path = Path(
        args.output
        if args.output is not None
        else Path(__file__).resolve().parent.parent / "BENCH_campaign.json"
    )
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")

    big = max(args.sizes)
    headline = next(r for r in rows if r["n_scenarios"] == big)
    if headline["speedup_float64"] < 10:
        print(
            f"WARNING: float64 speedup at S={big} is "
            f"{headline['speedup_float64']}x (< 10x target)"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
