"""Benches for the Section V applications and Section VI extension.

* Corollary 1 — over-provisioning via replication;
* Corollary 2 — boosting (fire after N-f signals);
* Section V-C — robustness vs ease-of-learning trade-offs (K, weights);
* Section VI — convolutional refinement.
"""

from repro.experiments import (
    run_boosting,
    run_conv,
    run_overprovision,
    run_tradeoff_k,
    run_tradeoff_weights,
)

from conftest import ROUNDS


def test_bench_corollary1_overprovision(benchmark):
    result = benchmark.pedantic(
        run_overprovision, kwargs=dict(factors=(1, 2, 4, 8)), **ROUNDS
    )
    result.assert_passed()


def test_bench_corollary2_boosting(benchmark):
    result = benchmark.pedantic(
        run_boosting, kwargs=dict(n_trials=10), **ROUNDS
    )
    result.assert_passed()
    assert result.metrics["mean_speedup"] > 2.0


def test_bench_tradeoff_k(benchmark):
    result = benchmark.pedantic(
        run_tradeoff_k, kwargs=dict(k_grid=(0.25, 0.5, 1.0, 2.0), epochs=40),
        **ROUNDS,
    )
    result.assert_passed()


def test_bench_tradeoff_weights(benchmark):
    result = benchmark.pedantic(
        run_tradeoff_weights, kwargs=dict(caps=(0.1, 0.2, 0.4, 0.8), epochs=40),
        **ROUNDS,
    )
    result.assert_passed()


def test_bench_section6_conv(benchmark):
    result = benchmark.pedantic(
        run_conv, kwargs=dict(n_scenarios=60, n_draws=150), **ROUNDS
    )
    result.assert_passed()


def test_bench_extension_reliability(benchmark):
    from repro.experiments import run_reliability

    result = benchmark.pedantic(
        run_reliability, kwargs=dict(n_trials=150), **ROUNDS
    )
    result.assert_passed()


def test_bench_intro_pruning(benchmark):
    from repro.experiments import run_pruning

    result = benchmark.pedantic(run_pruning, **ROUNDS)
    result.assert_passed()


def test_bench_baseline_smr(benchmark):
    from repro.experiments import run_smr_baseline

    result = benchmark.pedantic(
        run_smr_baseline, kwargs=dict(n_scenarios=80), **ROUNDS
    )
    result.assert_passed()


def test_bench_extension_fep_learning(benchmark):
    from repro.experiments import run_fep_learning

    result = benchmark.pedantic(
        run_fep_learning, kwargs=dict(epochs=60, n_scenarios=80), **ROUNDS
    )
    result.assert_passed()
    assert result.metrics["fep_reduction_vs_plain"] > 2.0
