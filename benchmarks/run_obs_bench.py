"""Observability-overhead benchmark: the same campaign, obs off vs on.

The observability layer (``repro.obs``) promises two things the repo
gates on:

* **determinism** — the observer draws no randomness, so the campaign
  error vector is bitwise identical with observation on or off;
* **overhead** — full capture (the ``run`` span tree, per-block spans,
  the metrics registry, the phase profile folded into gauges) costs
  < 5% of campaign wall time.

This script measures both on the throughput-bench network: obs-off and
obs-on runs are *interleaved* (off, on, off, on, ...) so transient
machine load hits both variants alike, best-of-``--repeats`` is kept,
and the result lands in ``BENCH_campaign.json`` under the
``"observability"`` key, schema-checked by
``benchmarks/test_bench_shapes.py``.

Run from the repo root::

    PYTHONPATH=src python benchmarks/run_obs_bench.py
    PYTHONPATH=src python benchmarks/run_obs_bench.py --scenarios 200000
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.faults.injector import FaultInjector
from repro.faults.masks import (
    FixedDistributionSampler,
    sampled_campaign_errors,
)
from repro.network import build_mlp
from repro.obs import RunObserver

DISTRIBUTION = (3, 2)
N_PROBES = 16


def bench_network():
    """The throughput-bench network of benchmarks/test_bench_throughput.py."""
    return build_mlp(
        4, [16, 12],
        activation={"name": "sigmoid", "k": 1.0},
        init={"name": "uniform", "scale": 0.4},
        output_scale=0.3,
        seed=21,
    )


def run_once(injector, x, sampler, n_scenarios, observed):
    """One timed campaign; returns (seconds, errors, observer|None)."""
    obs = RunObserver() if observed else None
    t0 = time.perf_counter()
    errors = sampled_campaign_errors(
        injector, x, sampler, n_scenarios, seed=7, obs=obs
    )
    dt = time.perf_counter() - t0
    if obs is not None:
        obs.finalize()
    return dt, errors, obs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenarios", type=int, default=100_000,
                        help="campaign size S (default 100000)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="interleaved repeats; best-of is kept "
                             "(default 3)")
    parser.add_argument("--output", default=None,
                        help="output path (default: BENCH_campaign.json "
                             "next to this script's repo root)")
    args = parser.parse_args(argv)

    net = bench_network()
    x = np.random.default_rng(21).random((N_PROBES, net.input_dim))
    injector = FaultInjector(net)
    sampler = FixedDistributionSampler(net, DISTRIBUTION)
    S = args.scenarios

    print(f"obs bench: {S} crash scenarios, best of {args.repeats} "
          "interleaved runs")
    best_off = best_on = float("inf")
    ref_errors = obs_errors = None
    obs = None
    for i in range(args.repeats):
        t_off, errors_off, _ = run_once(injector, x, sampler, S, False)
        t_on, errors_on, run_obs = run_once(injector, x, sampler, S, True)
        print(f"  round {i}: off {t_off:7.3f}s   on {t_on:7.3f}s")
        if t_off < best_off:
            best_off, ref_errors = t_off, errors_off
        if t_on < best_on:
            best_on, obs_errors, obs = t_on, errors_on, run_obs

    identical = bool(np.array_equal(ref_errors, obs_errors))
    overhead = best_on / best_off - 1.0
    n_spans = sum(1 for _ in obs.trace.walk())
    n_series = sum(
        len(series) for _, _, _, _, series in obs.metrics.families()
    )
    print(f"  best: off {best_off:.3f}s, on {best_on:.3f}s -> overhead "
          f"{overhead * 100:.2f}% (target < 5%)")
    print(f"  errors bitwise identical: {identical}")
    print(f"  captured: {n_spans} spans, {n_series} metric series")

    payload = {
        "workload": {
            "network": "mlp 4->[16,12]->1 (throughput-bench, seed 21)",
            "sampler": f"fixed distribution {DISTRIBUTION}",
            "fault": "crash",
            "n_scenarios": S,
        },
        "obs_off_s": round(best_off, 4),
        "obs_on_s": round(best_on, 4),
        "overhead_fraction": round(max(overhead, 0.0), 4),
        "bitwise_identical": identical,
        "spans": n_spans,
        "metric_series": n_series,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }
    out_path = (
        Path(args.output)
        if args.output
        else Path(__file__).resolve().parent.parent / "BENCH_campaign.json"
    )
    existing = {}
    if out_path.exists():
        existing = json.loads(out_path.read_text(encoding="utf-8"))
    existing["observability"] = payload
    out_path.write_text(
        json.dumps(existing, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {out_path}")
    return 0 if identical and overhead < 0.05 else 1


if __name__ == "__main__":
    raise SystemExit(main())
