"""CI smoke test for the service daemon: one full client round trip.

``make serve-smoke`` boots the daemon on a throwaway unix socket,
submits one streamed campaign (asserting at least one ``chunk`` event
arrives before the ``result``), repeats the same submission and
asserts it comes back from the cache with a bitwise-identical error
vector, then shuts the daemon down with a drain and checks the ack.
Exit code 0 means the serve path — admission, engine hand-off,
streaming, caching, drain — works end to end on this platform.

Run from the repo root::

    PYTHONPATH=src python benchmarks/serve_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.service import ServiceClient, ServiceThread
from repro.specs import CampaignSpec, FaultSpec, NetworkRef, SamplerSpec, ServiceSpec


def main() -> int:
    spec = CampaignSpec(
        network=NetworkRef(
            builder="mlp", params={"input_dim": 4, "hidden": [12, 8], "seed": 1}
        ),
        sampler=SamplerSpec(kind="fixed", distribution=(2, 1)),
        fault=FaultSpec(kind="stuck", value=0.0),
        n_scenarios=2048,
        seed=7,
    )
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        svc_spec = ServiceSpec(
            socket=str(Path(tmp) / "smoke.sock"),
            max_inflight=2,
            queue_depth=8,
            job_timeout=60.0,
            results_dir=str(Path(tmp) / "results"),
        )
        with ServiceThread(svc_spec):
            with ServiceClient(svc_spec.socket) as client:
                events = []
                first = client.submit(
                    spec, stream=True, on_event=events.append
                )
                assert first["type"] == "result", first
                assert not first["cached"], "first run must hit the engine"
                chunks = [e for e in events if e.get("type") == "chunk"]
                assert chunks, "streamed submit produced no chunk events"
                n_errors = len(first["result"]["errors"])
                print(f"streamed run: {len(chunks)} chunks, "
                      f"{n_errors} scenario errors")

                second = client.submit(spec)
                assert second["type"] == "result", second
                assert second["cached"], "repeat submission missed the cache"
                assert second["result"] == first["result"], (
                    "cached result drifted from the evaluated one"
                )
                print("cached repeat: bitwise identical")

                ack = client.shutdown(drain=True)
                assert ack["type"] == "shutdown-ack", ack
                assert ack["drained"] == 0, ack
                print("drained shutdown: ack ok")
    print("serve smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
