"""Ablation benches for the design choices DESIGN.md calls out.

* **Chunk size** in campaigns: memory/throughput trade-off of the
  vectorised path (peak working set ~ chunk x batch x width).
* **Greedy vs exact** tolerance solving: the greedy allocator is the
  default because the exact frontier enumerates ``prod N_l`` points;
  the bench quantifies both cost and the quality gap.
* **Replication factor**: cost of Corollary-1 over-provisioning
  (forward pass scales ~r^2 in the dense stages) vs tolerance gained.
"""

import numpy as np
import pytest

from repro.core.tolerance import greedy_max_total_failures, tolerated_distributions
from repro.core.overprovision import replicate_network
from repro.faults.campaign import run_campaign
from repro.faults.injector import FaultInjector
from repro.faults.scenarios import random_failure_scenario
from repro.network import build_mlp


@pytest.fixture(scope="module")
def setup():
    net = build_mlp(
        3, [12, 10],
        activation={"name": "sigmoid", "k": 0.5},
        init={"name": "uniform", "scale": 0.1},
        output_scale=0.08,
        seed=33,
    )
    rng = np.random.default_rng(33)
    x = rng.random((48, 3))
    scenarios = [
        random_failure_scenario(net, (2, 2), rng=rng, name=f"s{i}")
        for i in range(512)
    ]
    return net, x, scenarios


@pytest.mark.parametrize("chunk", [32, 128, 512])
def test_bench_campaign_chunk_size(benchmark, setup, chunk):
    net, x, scenarios = setup
    injector = FaultInjector(net, capacity=1.0)
    result = benchmark.pedantic(
        run_campaign,
        args=(injector, x, scenarios),
        kwargs=dict(chunk_size=chunk, keep_names=False),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.num_scenarios == 512


def test_bench_tolerance_greedy(benchmark, setup):
    net, _, _ = setup
    dist = benchmark(greedy_max_total_failures, net, 0.5, 0.1)
    assert sum(dist) > 0


def test_bench_tolerance_exact_frontier(benchmark, setup):
    net, _, _ = setup
    frontier = benchmark.pedantic(
        tolerated_distributions,
        args=(net, 0.5, 0.1),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    # Quality check: greedy is dominated by some frontier point.
    greedy = greedy_max_total_failures(net, 0.5, 0.1)
    assert any(all(g <= f for g, f in zip(greedy, p)) for p in frontier)


@pytest.mark.parametrize("r", [1, 4, 16])
def test_bench_replication_forward_cost(benchmark, setup, r):
    net, x, _ = setup
    rep = replicate_network(net, r)
    out = benchmark(rep.forward, x)
    np.testing.assert_allclose(out, net.forward(x), atol=1e-9)


def test_bench_heterogeneous_fep_refinement(benchmark):
    """Quantify the per-layer-K refinement on a mixed-activation net."""
    from repro.core.fep import network_fep, network_heterogeneous_fep
    from repro.network import FeedForwardNetwork, Sigmoid
    from repro.network.layers import DenseLayer

    rng = np.random.default_rng(35)
    layers = [
        DenseLayer(3, 12, Sigmoid(2.0),
                   weights=rng.uniform(-0.4, 0.4, (12, 3)), use_bias=False),
        DenseLayer(12, 10, Sigmoid(0.25),
                   weights=rng.uniform(-0.4, 0.4, (10, 12)), use_bias=False),
    ]
    net = FeedForwardNetwork(layers, rng.uniform(-0.4, 0.4, (1, 10)))

    het = benchmark(network_heterogeneous_fep, net, (2, 1), capacity=1.0)
    hom = network_fep(net, (2, 1), capacity=1.0)
    # The refinement buys a large factor when the deep layer is shallow.
    assert het < hom
    assert hom / het > 3.0
