"""Service benchmark: the resident daemon under closed-loop traffic.

The service subsystem's claim is that a resident daemon turns the
spec layer into a *workload API*: N clients submitting the same
``content_hash`` cost one engine run (coalescing), repeat submissions
cost zero (spec-hash-keyed cache), and overload degrades into typed
``rejected`` responses instead of a hung socket.  This benchmark
prices that claim with the chaos subsystem's own traffic models as
the load generator:

* **sustained phase** — a :class:`DiurnalTraffic` curve modulates the
  number of concurrent closed-loop clients tick by tick (each client
  submits one job drawn from a Pareto-popularity spec pool, waits for
  the terminal response, and retires);
* **burst phase** — a :class:`ParetoBurstyTraffic` draw scaled to
  >= 1000 simultaneous clients slams the daemon at once, deliberately
  overflowing the bounded admission queue so load shedding engages.

Every client speaks the real JSONL protocol over the real unix
socket — no in-process shortcuts — so the numbers include framing,
admission, coalescing, cache lookups, and result streaming.  Results
land in ``BENCH_service.json``: sustained jobs/s, p50/p99 submit-to-
terminal latency, coalesce ratio, cache ratio, shed rate, and the
engine-run count that proves the daemon did far less work than it
served.  ``benchmarks/test_bench_shapes.py`` gates the schema.

Run from the repo root::

    PYTHONPATH=src python benchmarks/run_service_bench.py
    PYTHONPATH=src python benchmarks/run_service_bench.py --burst-clients 1500
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.chaos.traffic import DiurnalTraffic, ParetoBurstyTraffic
from repro.service.daemon import ServiceThread
from repro.service.protocol import TERMINAL_TYPES, encode
from repro.specs import CampaignSpec, FaultSpec, NetworkRef, SamplerSpec, ServiceSpec

#: One readline() must hold a full campaign result (errors vector).
CLIENT_LIMIT = 1 << 22

NET = NetworkRef(builder="mlp", params={"input_dim": 4, "hidden": [12, 8], "seed": 1})


def build_spec_pool(
    n_specs: int, n_scenarios: int, seed_base: int = 0
) -> list[bytes]:
    """Distinct campaign specs, pre-encoded as submit request lines."""
    lines = []
    for seed in range(seed_base, seed_base + n_specs):
        spec = CampaignSpec(
            network=NET,
            sampler=SamplerSpec(kind="fixed", distribution=(2, 1)),
            fault=FaultSpec(kind="stuck", value=0.0),
            n_scenarios=n_scenarios,
            seed=seed,
        )
        lines.append(encode({"op": "submit", "spec": spec.to_dict()}))
    return lines


def popularity_weights(n_specs: int, alpha: float = 1.2) -> np.ndarray:
    """Zipf-ish popularity over the pool: a few hot specs, a long tail.

    Hot specs are what makes coalescing and caching *measurable* —
    uniform popularity would under-count both relative to any real
    spec-keyed workload.
    """
    ranks = np.arange(1, n_specs + 1, dtype=np.float64)
    weights = ranks ** -alpha
    return weights / weights.sum()


async def run_one_client(
    socket_path: str, request_line: bytes, latencies: list, counts: dict
) -> None:
    """One closed-loop client: connect, submit, wait for the terminal."""
    t0 = time.perf_counter()
    reader = writer = None
    for attempt in range(40):
        try:
            reader, writer = await asyncio.open_unix_connection(
                socket_path, limit=CLIENT_LIMIT
            )
            break
        except OSError:
            await asyncio.sleep(0.005 * (attempt + 1))
    if writer is None:
        counts["connect_failed"] += 1
        return
    terminal = None
    try:
        writer.write(request_line)
        await writer.drain()
        while True:
            line = await reader.readline()
            if not line:
                break
            event = json.loads(line)
            if event.get("type") in TERMINAL_TYPES:
                terminal = event
                break
    except (OSError, ValueError):
        pass
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()
    elapsed = time.perf_counter() - t0
    if terminal is None:
        counts["dropped"] += 1
    elif terminal["type"] == "result":
        counts["completed"] += 1
        if terminal.get("cached"):
            counts["served_cached"] += 1
        elif terminal.get("coalesced"):
            counts["served_coalesced"] += 1
        latencies.append(elapsed)
    elif terminal["type"] == "rejected":
        counts["rejected"] += 1
    elif terminal["type"] == "timeout":
        counts["timed_out"] += 1
    else:
        counts["errored"] += 1


def fresh_counts() -> dict:
    return {
        "completed": 0,
        "served_cached": 0,
        "served_coalesced": 0,
        "rejected": 0,
        "timed_out": 0,
        "errored": 0,
        "dropped": 0,
        "connect_failed": 0,
    }


async def sustained_phase(
    socket_path: str,
    pool: list[bytes],
    weights: np.ndarray,
    rng: np.random.Generator,
    *,
    ticks: int,
    peak_clients: int,
    tick_seconds: float,
):
    """Diurnal closed-loop load: the concurrency target per tick tracks
    the day/night request curve; finished clients are replaced up to
    the tick's target."""
    traffic = DiurnalTraffic(base=peak_clients / 1.5, amplitude=0.5, period=ticks)
    targets = np.maximum(1, traffic.requests(ticks, rng).astype(int))
    latencies: list[float] = []
    counts = fresh_counts()
    inflight: set[asyncio.Task] = set()
    t0 = time.perf_counter()
    for target in targets:
        inflight = {t for t in inflight if not t.done()}
        for _ in range(max(0, int(target) - len(inflight))):
            line = pool[int(rng.choice(len(pool), p=weights))]
            inflight.add(
                asyncio.ensure_future(
                    run_one_client(socket_path, line, latencies, counts)
                )
            )
        await asyncio.sleep(tick_seconds)
    if inflight:
        await asyncio.gather(*inflight)
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "latencies": latencies, "counts": counts,
            "peak_target": int(targets.max())}


async def burst_phase(
    socket_path: str,
    pool: list[bytes],
    weights: np.ndarray,
    rng: np.random.Generator,
    *,
    clients: int,
):
    """Pareto-burst overload: every client connects at once.  The
    admission queue is far smaller than the burst, so the daemon must
    shed with typed rejections rather than hang or grow without
    bound."""
    bursty = ParetoBurstyTraffic(base=clients, alpha=2.5)
    n_clients = max(clients, int(bursty.requests(8, rng).max()))
    weights = np.asarray(weights) / np.asarray(weights).sum()
    latencies: list[float] = []
    counts = fresh_counts()
    picks = rng.choice(len(pool), size=n_clients, p=weights)
    t0 = time.perf_counter()
    tasks = [
        asyncio.ensure_future(
            run_one_client(socket_path, pool[int(i)], latencies, counts)
        )
        for i in picks
    ]
    await asyncio.gather(*tasks)
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "latencies": latencies, "counts": counts,
            "clients": n_clients}


def percentile_ms(latencies: list, q: float) -> float:
    if not latencies:
        return 0.0
    return float(np.percentile(np.asarray(latencies), q) * 1000.0)


def raise_nofile_limit(target: int) -> None:
    """1000+ sockets on each side of the unix socket needs headroom."""
    import resource

    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    want = min(hard, max(soft, target))
    if want > soft:
        resource.setrlimit(resource.RLIMIT_NOFILE, (want, hard))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--spec-pool", type=int, default=32,
                        help="distinct campaign specs in the pool")
    parser.add_argument("--n-scenarios", type=int, default=2048,
                        help="scenarios per campaign job")
    parser.add_argument("--ticks", type=int, default=48,
                        help="sustained-phase traffic ticks")
    parser.add_argument("--peak-clients", type=int, default=192,
                        help="diurnal peak concurrency in the sustained phase")
    parser.add_argument("--tick-seconds", type=float, default=0.05)
    parser.add_argument("--burst-clients", type=int, default=1200,
                        help="simultaneous clients in the overload burst")
    parser.add_argument("--cold-specs", type=int, default=256,
                        help="distinct never-seen specs mixed into the "
                        "burst — what actually overflows the queue")
    parser.add_argument("--cold-fraction", type=float, default=0.3,
                        help="burst traffic share drawn from cold specs")
    parser.add_argument("--max-inflight", type=int, default=4)
    parser.add_argument("--queue-depth", type=int, default=64)
    parser.add_argument("--seed", type=int, default=20170529)
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_service.json")
    args = parser.parse_args()

    raise_nofile_limit(4 * args.burst_clients)
    rng = np.random.default_rng(args.seed)
    pool = build_spec_pool(args.spec_pool, args.n_scenarios)
    weights = popularity_weights(args.spec_pool)

    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-service-bench-") as tmp:
        svc_spec = ServiceSpec(
            socket=str(Path(tmp) / "bench.sock"),
            max_inflight=args.max_inflight,
            queue_depth=args.queue_depth,
            job_timeout=120.0,
            results_dir=str(Path(tmp) / "results"),
            cache_entries=args.spec_pool,
        )
        with ServiceThread(svc_spec) as service:
            socket_path = svc_spec.socket
            print(f"daemon up on {socket_path} "
                  f"(max_inflight={args.max_inflight}, "
                  f"queue_depth={args.queue_depth})")
            sustained = asyncio.run(
                sustained_phase(
                    socket_path, pool, weights, rng,
                    ticks=args.ticks, peak_clients=args.peak_clients,
                    tick_seconds=args.tick_seconds,
                )
            )
            print(f"sustained: {sustained['counts']['completed']} jobs in "
                  f"{sustained['wall_s']:.2f}s")
            # The burst mixes hot (cached/coalescable) specs with a
            # cold long tail of never-seen hashes: the cold jobs are
            # what actually overflows the bounded queue and proves the
            # daemon sheds instead of hanging.
            cold_pool = build_spec_pool(
                args.cold_specs, args.n_scenarios, seed_base=10_000
            )
            burst_pool = pool + cold_pool
            burst_weights = np.concatenate([
                (1.0 - args.cold_fraction) * weights,
                np.full(len(cold_pool), args.cold_fraction / len(cold_pool)),
            ])
            burst = asyncio.run(
                burst_phase(
                    socket_path, burst_pool, burst_weights, rng,
                    clients=args.burst_clients,
                )
            )
            print(f"burst: {burst['clients']} clients, "
                  f"{burst['counts']['completed']} served, "
                  f"{burst['counts']['rejected']} shed in "
                  f"{burst['wall_s']:.2f}s")

            metric = service.metrics.value
            engine_runs = int(metric("repro_service_engine_runs") or 0)
            coalesce_hits = int(metric("repro_service_coalesce_hits") or 0)
            cache_hits = int(
                (metric("repro_service_cache_hits", tier="memory") or 0)
                + (metric("repro_service_cache_hits", tier="store") or 0)
            )
            shed = int(metric("repro_service_shed") or 0)
            submits = int(metric("repro_service_submits") or 0)

    all_latencies = sustained["latencies"] + burst["latencies"]
    completed = (sustained["counts"]["completed"]
                 + burst["counts"]["completed"])
    rejected = (sustained["counts"]["rejected"]
                + burst["counts"]["rejected"])
    wall = sustained["wall_s"] + burst["wall_s"]

    payload = {
        "workload": {
            "spec_pool": args.spec_pool,
            "cold_specs": args.cold_specs,
            "cold_fraction": args.cold_fraction,
            "n_scenarios": args.n_scenarios,
            "popularity": "zipf(alpha=1.2)",
            "traffic": ["diurnal", "pareto-burst"],
            "seed": args.seed,
        },
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "service": {
            "max_inflight": args.max_inflight,
            "queue_depth": args.queue_depth,
            "cache_entries": args.spec_pool,
            "transport": "unix-jsonl",
        },
        "clients": burst["clients"],
        "jobs_submitted": submits,
        "jobs_completed": completed,
        "sustained_jobs_per_s": completed / wall if wall > 0 else 0.0,
        "latency_p50_ms": percentile_ms(all_latencies, 50),
        "latency_p99_ms": percentile_ms(all_latencies, 99),
        "engine_runs": engine_runs,
        "coalesce_hits": coalesce_hits,
        "coalesce_ratio": coalesce_hits / submits if submits else 0.0,
        "cache_hits": cache_hits,
        "cache_ratio": cache_hits / submits if submits else 0.0,
        "shed_jobs": shed,
        "shed_rate": shed / submits if submits else 0.0,
        "rejected": rejected,
        "sustained": {
            "wall_s": sustained["wall_s"],
            "peak_concurrency_target": sustained["peak_target"],
            "latency_p50_ms": percentile_ms(sustained["latencies"], 50),
            "latency_p99_ms": percentile_ms(sustained["latencies"], 99),
            "counts": sustained["counts"],
        },
        "burst": {
            "wall_s": burst["wall_s"],
            "clients": burst["clients"],
            "latency_p50_ms": percentile_ms(burst["latencies"], 50),
            "latency_p99_ms": percentile_ms(burst["latencies"], 99),
            "counts": burst["counts"],
        },
    }
    args.output.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")
    print(f"  jobs/s        {payload['sustained_jobs_per_s']:.1f}")
    print(f"  p50 / p99     {payload['latency_p50_ms']:.1f} ms / "
          f"{payload['latency_p99_ms']:.1f} ms")
    print(f"  engine runs   {engine_runs} for {completed} served "
          f"(coalesce {coalesce_hits}, cache {cache_hits}, shed {shed})")


if __name__ == "__main__":
    main()
