"""CI shape-check for the committed benchmark payloads.

The benchmark scripts (``run_campaign_bench.py`` / ``run_chaos_bench.
py`` / ``run_service_bench.py``) own the numbers; this gate owns the
*schema* — a PR that renames or drops a section silently breaks the
perf trajectory the repo tracks, so the committed payloads must
always carry the headline results, the full fault-taxonomy matrix,
the chaos section, the engine-backend matrix with one row per
(workload, backend) pair, and the service daemon's load-test
evidence.
"""

import json
from pathlib import Path

import pytest

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"
SERVICE_BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_service.json"
)

RESULT_KEYS = {
    "n_scenarios",
    "seed_pipeline_s",
    "mask_float64_s",
    "mask_float32_s",
    "speedup_float64",
    "scenarios_per_s_float64",
}
FAULT_ROW_KEYS = {
    "workload",
    "n_scenarios",
    "scalar_extrapolated_s",
    "mask_s",
    "speedup",
    "scenarios_per_s_mask",
    "max_error_mask",
}
ADAPTIVE_ROW_KEYS = {
    "workload",
    "threshold",
    "n_reference",
    "reference_rate",
    "n_adaptive",
    "stopped",
    "ci_low",
    "ci_high",
    "ci_covers_reference",
    "scenarios_saved_factor",
}
BACKEND_ROW_KEYS = {
    "workload",
    "backend",
    "n_scenarios",
    "seconds",
    "scenarios_per_s",
    "max_error",
}
TAXONOMY_WORKLOADS = {
    "noise",
    "intermittent",
    "sign-flip",
    "synapse-crash",
    "synapse-byzantine",
    "synapse-noise",
}
ENGINE_BACKENDS = {"numpy", "threaded", "quantized-int8", "float16"}


@pytest.fixture(scope="module")
def payload():
    assert BENCH_PATH.exists(), (
        "BENCH_campaign.json is missing — regenerate with "
        "`make bench-faults`"
    )
    return json.loads(BENCH_PATH.read_text(encoding="utf-8"))


def test_payload_has_all_sections(payload):
    for key in ("workload", "platform", "results", "fault_workloads",
                "chaos", "backends", "adaptive", "telemetry",
                "observability"):
        assert key in payload, f"BENCH_campaign.json lost section {key!r}"


def test_headline_results_shape(payload):
    rows = payload["results"]
    assert rows, "empty results section"
    for row in rows:
        assert RESULT_KEYS <= set(row)


def test_fault_workload_matrix_covers_taxonomy(payload):
    rows = payload["fault_workloads"]
    assert {r["workload"] for r in rows} >= TAXONOMY_WORKLOADS
    for row in rows:
        assert FAULT_ROW_KEYS <= set(row)


def test_backend_matrix_covers_workloads_and_backends(payload):
    rows = payload["backends"]
    assert rows, "empty backends section — regenerate with --full-matrix"
    for row in rows:
        assert BACKEND_ROW_KEYS <= set(row)
    pairs = {(r["workload"], r["backend"]) for r in rows}
    expected = {
        (w, b) for w in TAXONOMY_WORKLOADS for b in ENGINE_BACKENDS
    }
    assert pairs >= expected, (
        f"backend matrix is missing pairs: {sorted(expected - pairs)}"
    )


def test_backend_matrix_throughput_recorded(payload):
    for row in payload["backends"]:
        assert row["seconds"] > 0
        assert row["scenarios_per_s"] > 0
        assert row["max_error"] >= 0


def test_telemetry_section_tracks_capture_overhead(payload):
    """The telemetry section is the committed evidence for the
    telemetry-native refactor's acceptance target: full trace capture
    (ground-truth channels included) costs < 10% of campaign wall
    time."""
    section = payload["telemetry"]
    for key in ("workload", "telemetry_off_s", "telemetry_on_s",
                "overhead_fraction", "ground_truth_cells"):
        assert key in section, f"telemetry section lost {key!r}"
    assert section["telemetry_off_s"] > 0
    assert section["telemetry_on_s"] > 0
    assert section["workload"]["ground_truth"] is True
    assert section["ground_truth_cells"] > 0
    assert section["overhead_fraction"] < 0.10, (
        f"telemetry capture overhead "
        f"{section['overhead_fraction'] * 100:.1f}% breaches the "
        "< 10% target"
    )


def test_observability_section_tracks_capture_overhead(payload):
    """The observability section is the committed evidence for the
    run-wide observability layer's acceptance targets: full span +
    metrics capture costs < 5% of campaign wall time and never
    changes the error vector (``run_obs_bench.py``)."""
    section = payload["observability"]
    for key in ("workload", "obs_off_s", "obs_on_s", "overhead_fraction",
                "bitwise_identical", "spans", "metric_series"):
        assert key in section, f"observability section lost {key!r}"
    assert section["obs_off_s"] > 0
    assert section["obs_on_s"] > 0
    assert section["workload"]["n_scenarios"] > 0
    assert section["spans"] > 0
    assert section["metric_series"] > 0
    assert section["bitwise_identical"] is True, (
        "observation changed campaign results — the determinism "
        "contract is broken"
    )
    assert section["overhead_fraction"] < 0.05, (
        f"observability capture overhead "
        f"{section['overhead_fraction'] * 100:.1f}% breaches the "
        "< 5% target"
    )


def test_adaptive_section_tracks_the_stopping_guarantee(payload):
    """The adaptive section is the committed evidence for the
    confidence-sequence acceptance targets: >= 3 taxonomy workloads
    where the stopped run saves >= 10x scenarios at equal CI width
    and the anytime CI covers the fixed-S reference rate."""
    section = payload["adaptive"]
    assert section["method"] in {"hoeffding", "empirical_bernstein"}
    assert 0 < section["target_ci"] < 1
    assert 0 < section["delta"] < 1
    rows = section["workloads"]
    assert len(rows) >= 3, "adaptive section must cover >= 3 workloads"
    for row in rows:
        assert ADAPTIVE_ROW_KEYS <= set(row)
        assert row["stopped"], f"{row['workload']} hit the cap"
        assert row["ci_covers_reference"], (
            f"{row['workload']}: stopped CI misses the fixed-S rate"
        )
        assert row["scenarios_saved_factor"] >= 10, (
            f"{row['workload']}: saved only "
            f"{row['scenarios_saved_factor']}x (< 10x target)"
        )
        assert row["n_adaptive"] < row["n_reference"]


SERVICE_KEYS = {
    "workload",
    "platform",
    "service",
    "clients",
    "jobs_submitted",
    "jobs_completed",
    "sustained_jobs_per_s",
    "latency_p50_ms",
    "latency_p99_ms",
    "engine_runs",
    "coalesce_hits",
    "coalesce_ratio",
    "cache_hits",
    "cache_ratio",
    "shed_jobs",
    "shed_rate",
    "rejected",
    "sustained",
    "burst",
}


@pytest.fixture(scope="module")
def service_payload():
    assert SERVICE_BENCH_PATH.exists(), (
        "BENCH_service.json is missing — regenerate with "
        "`make bench-service`"
    )
    return json.loads(SERVICE_BENCH_PATH.read_text(encoding="utf-8"))


def test_service_payload_has_all_keys(service_payload):
    missing = SERVICE_KEYS - set(service_payload)
    assert not missing, f"BENCH_service.json lost keys {sorted(missing)}"


def test_service_bench_scale_and_throughput(service_payload):
    """The committed evidence for the daemon's acceptance target:
    >= 1000 simultaneous clients served without deadlock, at a real
    sustained rate."""
    assert service_payload["clients"] >= 1000
    assert service_payload["jobs_completed"] > 0
    assert service_payload["sustained_jobs_per_s"] > 0
    assert service_payload["latency_p50_ms"] > 0
    assert service_payload["latency_p99_ms"] >= service_payload["latency_p50_ms"]


def test_service_bench_exercised_every_admission_path(service_payload):
    """Coalescing, both cache tiers, and load shedding all fired —
    a run where any of these is zero measured a different daemon."""
    assert service_payload["engine_runs"] > 0
    assert service_payload["coalesce_hits"] > 0
    assert service_payload["cache_hits"] > 0
    assert service_payload["shed_jobs"] > 0
    assert service_payload["rejected"] > 0
    for ratio in ("coalesce_ratio", "cache_ratio", "shed_rate"):
        assert 0 <= service_payload[ratio] <= 1
    # The whole point: far fewer engine runs than jobs served.
    assert (service_payload["engine_runs"]
            < service_payload["jobs_completed"])


def test_service_bench_accounts_for_every_client(service_payload):
    """No silently dropped connections: every burst client got a typed
    terminal answer."""
    counts = service_payload["burst"]["counts"]
    assert counts["dropped"] == 0
    assert counts["connect_failed"] == 0
    answered = (counts["completed"] + counts["rejected"]
                + counts["timed_out"] + counts["errored"])
    assert answered == service_payload["burst"]["clients"]
