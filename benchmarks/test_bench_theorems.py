"""Benches validating each theorem/lemma (the paper's actual results).

Every bench regenerates the validation table for one result and
asserts its shape checks: bounds dominate injected errors, tightness
constructions attain them, limits behave as proved.
"""

from repro.experiments import (
    run_lemma1,
    run_theorem1,
    run_theorem2,
    run_theorem3,
    run_theorem4,
    run_theorem5,
)

from conftest import ROUNDS


def test_bench_theorem1_single_layer_crashes(benchmark):
    result = benchmark.pedantic(
        run_theorem1, kwargs=dict(n_neurons=10, max_fail=4, n_inputs=48), **ROUNDS
    )
    result.assert_passed()


def test_bench_theorem2_forward_error_propagation(benchmark):
    result = benchmark.pedantic(
        run_theorem2, kwargs=dict(n_networks=12), **ROUNDS
    )
    result.assert_passed()
    assert result.metrics["tightness_min"] > 0.999999


def test_bench_theorem3_byzantine_distributions(benchmark):
    result = benchmark.pedantic(
        run_theorem3, kwargs=dict(n_scenarios=200), **ROUNDS
    )
    result.assert_passed()


def test_bench_theorem4_byzantine_synapses(benchmark):
    result = benchmark.pedantic(
        run_theorem4, kwargs=dict(n_networks=10), **ROUNDS
    )
    result.assert_passed()


def test_bench_theorem5_quantization(benchmark):
    result = benchmark.pedantic(
        run_theorem5,
        kwargs=dict(bits_grid=(2, 3, 4, 5, 6, 8, 10, 12), n_inputs=192),
        **ROUNDS,
    )
    result.assert_passed()


def test_bench_lemma1_unbounded_transmission(benchmark):
    result = benchmark.pedantic(run_lemma1, **ROUNDS)
    result.assert_passed()
