"""Benchmark-suite configuration.

Each bench regenerates one paper figure/claim via the corresponding
``repro.experiments.run_*`` function under pytest-benchmark, then
asserts the experiment's shape checks — so `pytest benchmarks/
--benchmark-only` both times the reproduction and verifies it.

Experiments are stochastic-but-seeded and moderately heavy, so benches
use ``benchmark.pedantic`` with a single round by default; the
*throughput* benches (vectorised injector, Fep evaluation) use normal
auto-calibrated rounds since they are microbenchmarks.
"""

ROUNDS = dict(rounds=1, iterations=1, warmup_rounds=0)
