"""Benches regenerating the paper's three figures.

* Figure 1 — the example topology (illustrative; structural checks);
* Figure 2 — K-tuned sigmoid profiles;
* Figure 3 — the paper's measured plot: output error vs Lipschitz
  constant for eight networks under a fixed failure load.
"""

from repro.experiments import run_figure1, run_figure2, run_figure3

from conftest import ROUNDS


def test_bench_fig1_topology(benchmark):
    result = benchmark.pedantic(run_figure1, **ROUNDS)
    result.assert_passed()


def test_bench_fig2_sigmoid(benchmark):
    result = benchmark.pedantic(run_figure2, **ROUNDS)
    result.assert_passed()


def test_bench_fig3_error_vs_k(benchmark):
    result = benchmark.pedantic(
        run_figure3,
        kwargs=dict(
            k_grid=(0.25, 0.5, 1.0, 2.0, 4.0),
            n_scenarios=40,
            n_inputs=48,
        ),
        **ROUNDS,
    )
    result.assert_passed()
    # Print the regenerated series (the figure's content) on -s runs.
    print()
    print(result.report())
