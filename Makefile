# Convenience targets; everything assumes the in-repo source tree.
PYTHON ?= python
export PYTHONPATH := src

.PHONY: test fast-test test-stats docs-check spec-roundtrip experiments report bench bench-faults bench-chaos bench-service serve-smoke

test:            ## tier-1: the full pytest suite
	$(PYTHON) -m pytest -x -q

fast-test:       ## skip the slow training-loop tests
	$(PYTHON) -m pytest -x -q -m "not slow" tests

test-stats:      ## nightly statistical-guarantee tier: seeded coverage replications
	$(PYTHON) -m pytest -q -m slow_stats tests/test_adaptive.py

docs-check:      ## registry <-> EXPERIMENTS.md <-> paper map <-> docs/api.md stay in sync
	$(PYTHON) -m pytest -q -m docs tests/test_docs.py

spec-roundtrip:  ## golden spec fixtures round-trip (schema compatibility gate)
	$(PYTHON) -m pytest -q tests/test_spec_fixtures.py

experiments:     ## run the experiment registry through the artifact pipeline
	$(PYTHON) -m repro run-all

report:          ## regenerate EXPERIMENTS.md from stored artifacts
	$(PYTHON) -m repro report

bench:           ## refresh BENCH_campaign.json
	$(PYTHON) benchmarks/run_campaign_bench.py

bench-faults:    ## the extended fault-taxonomy benchmark matrix
	$(PYTHON) benchmarks/run_campaign_bench.py --full-matrix

bench-chaos:     ## the temporal chaos campaign vs a scalar epoch loop
	$(PYTHON) benchmarks/run_chaos_bench.py

bench-service:   ## refresh BENCH_service.json (daemon under closed-loop traffic)
	$(PYTHON) benchmarks/run_service_bench.py

serve-smoke:     ## start the daemon, stream one campaign + a cached repeat, drain
	$(PYTHON) benchmarks/serve_smoke.py
