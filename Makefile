# Convenience targets; everything assumes the in-repo source tree.
PYTHON ?= python
export PYTHONPATH := src

.PHONY: test fast-test docs-check experiments report bench bench-faults bench-chaos

test:            ## tier-1: the full pytest suite
	$(PYTHON) -m pytest -x -q

fast-test:       ## skip the slow training-loop tests
	$(PYTHON) -m pytest -x -q -m "not slow" tests

docs-check:      ## registry <-> EXPERIMENTS.md <-> paper map stay in sync
	$(PYTHON) -m pytest -q -m docs tests/test_docs.py

experiments:     ## run the experiment registry through the artifact pipeline
	$(PYTHON) -m repro run-all

report:          ## regenerate EXPERIMENTS.md from stored artifacts
	$(PYTHON) -m repro report

bench:           ## refresh BENCH_campaign.json
	$(PYTHON) benchmarks/run_campaign_bench.py

bench-faults:    ## the extended fault-taxonomy benchmark matrix
	$(PYTHON) benchmarks/run_campaign_bench.py --full-matrix

bench-chaos:     ## the temporal chaos campaign vs a scalar epoch loop
	$(PYTHON) benchmarks/run_chaos_bench.py
