#!/usr/bin/env python3
"""Regenerate every figure and theorem validation of the paper.

Drives the experiment *registry* (``repro.experiments.registry``)
through the artifact pipeline: each experiment's regenerated table and
shape checks are printed, persisted as a JSON artifact under
``results/`` with a provenance manifest, and served from cache on
re-runs whose source and parameters are unchanged.  This is the same
run machinery as ``python -m repro run-all``; pass
``--experiments-md EXPERIMENTS.md`` (or run ``python -m repro
report``) to also regenerate the EXPERIMENTS.md status map.

Run:  python examples/reproduce_paper.py                # everything (~1 min)
      python examples/reproduce_paper.py figure3        # one experiment
      python examples/reproduce_paper.py theorem        # every theorem (tag)
      python examples/reproduce_paper.py --force        # ignore the cache
"""

import argparse
import sys

from repro.artifacts import ArtifactStore
from repro.experiments import registry


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "filters", nargs="*",
        help="experiment ids, tags, or anchor substrings (default: all)",
    )
    parser.add_argument(
        "--force", action="store_true", help="re-run even on a cache hit"
    )
    parser.add_argument(
        "--results-dir", default="results", help="artifact store root"
    )
    parser.add_argument(
        "--experiments-md", default="-", metavar="PATH",
        help="also regenerate the EXPERIMENTS.md status map at PATH "
             "('-' skips, the default)",
    )
    args = parser.parse_args(argv[1:])

    selected = registry.select(args.filters)
    bad_tokens = registry.unmatched(args.filters)
    if not selected or bad_tokens:
        print(f"no experiment matches {bad_tokens or args.filters}")
        print(f"available: {', '.join(registry.experiment_ids())}")
        return 2

    store = ArtifactStore(args.results_dir)
    failures = []
    for exp in selected:
        outcome = store.run(exp, force=args.force)
        print(outcome.result.report())
        cached = " [cached]" if outcome.cached else ""
        print(f"  ({outcome.wall_time_s:.1f}s{cached})\n")
        if not outcome.passed:
            failures.append(exp.experiment_id)

    if args.experiments_md != "-":
        from repro.analysis.reporting import write_experiments_md

        path = write_experiments_md(
            registry.all_experiments(), store, args.experiments_md
        )
        print(f"status map written to {path}\n")

    if failures:
        print(f"FAILED shape checks: {failures}")
        return 1
    print(
        f"all {len(selected)} experiments reproduced the paper's shapes "
        f"(artifacts + manifest under {store.root}/)."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
