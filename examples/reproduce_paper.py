#!/usr/bin/env python3
"""Regenerate every figure and theorem validation of the paper.

Runs the full experiment registry (Figures 1-3, Theorems 1-5, Lemma 1,
Corollaries 1-2, the Section V-C trade-offs and the Section VI
convolutional refinement) and prints each regenerated table with its
shape checks — the same artifacts EXPERIMENTS.md records.

Run:  python examples/reproduce_paper.py            # everything (~1 min)
      python examples/reproduce_paper.py figure3    # one experiment
"""

import sys
import time

from repro.experiments import ALL_EXPERIMENTS


def main(argv: list[str]) -> int:
    wanted = argv[1:] or list(ALL_EXPERIMENTS)
    unknown = [w for w in wanted if w not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}")
        print(f"available: {', '.join(ALL_EXPERIMENTS)}")
        return 2

    failures = []
    for name in wanted:
        start = time.perf_counter()
        result = ALL_EXPERIMENTS[name]()
        elapsed = time.perf_counter() - start
        print(result.report())
        print(f"  ({elapsed:.1f}s)\n")
        if not result.passed:
            failures.append(name)

    if failures:
        print(f"FAILED shape checks: {failures}")
        return 1
    print(f"all {len(wanted)} experiments reproduced the paper's shapes.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
