#!/usr/bin/env python3
"""Mission reliability planning: how much redundancy does a lifetime buy?

The deployment question behind the paper's motivation (flight control,
radar, electric cars): components age and die during a mission, and
there is no stopping for retraining.  Two redundancy architectures
compete:

* **neuron-grained over-provisioning** (the paper): replicate neurons
  inside the network (Corollary 1); Theorem 3 + a binomial argument
  give an *exact certified* survival probability under iid failures;
* **machine-grained SMR** (the classical baseline): replicate the
  whole network and vote; survives while a majority of machines lives.

This example sizes both for a target mission: per-neuron failure
probability grows as ``1 - exp(-rate * t)``, machines fail as a whole
with the probability that *any* internal damage exceeds what a single
unprotected network absorbs.

Run:  python examples/mission_reliability_planning.py
"""

import numpy as np

from repro import build_mlp
from repro.core import replicate_network
from repro.distributed import ReplicatedEnsemble, smr_neuron_cost, smr_tolerance
from repro.faults import (
    certified_survival_probability,
    mission_survival_curve,
    monte_carlo_survival,
)


def main() -> None:
    epsilon, eps_prime = 0.5, 0.1
    rate = 0.02  # per-neuron failure rate (1/hours)
    horizon = [0.0, 5.0, 10.0, 20.0, 40.0]

    base = build_mlp(
        2,
        [12, 10],
        activation={"name": "sigmoid", "k": 0.5},
        init={"name": "uniform", "scale": 0.1},
        output_scale=0.06,
        seed=9,
    )
    print(base.summary())
    print(f"\nbudget eps - eps' = {epsilon - eps_prime}; "
          f"per-neuron failure rate {rate}/h")

    # ---- certified mission curves, several provisioning levels ---------
    print("\ncertified P[eps-guarantee survives] over mission time:")
    header = "  t(h)  " + "".join(f"r={r:<9d}" for r in (1, 2, 4))
    print(header)
    curves = {
        r: dict(mission_survival_curve(
            replicate_network(base, r), rate, horizon, epsilon, eps_prime
        ))
        for r in (1, 2, 4)
    }
    for t in horizon:
        row = f"  {t:5.1f} " + "".join(f"{curves[r][t]:<10.5f}" for r in (1, 2, 4))
        print(row)

    # ---- pick the cheapest r meeting a reliability target ---------------
    target_p, target_t = 0.999, 20.0
    chosen = None
    for r in (1, 2, 3, 4, 6, 8):
        net = replicate_network(base, r)
        p_fail = 1.0 - float(np.exp(-rate * target_t))
        p = certified_survival_probability(net, p_fail, epsilon, eps_prime)
        if p >= target_p:
            chosen = (r, net, p)
            break
    assert chosen is not None, "raise max r"
    r, net, p = chosen
    print(f"\ntarget: P >= {target_p} at t = {target_t}h "
          f"-> smallest replication r = {r} "
          f"({net.num_neurons} neurons, certified P = {p:.6f})")

    # Cross-check with Monte-Carlo injection (counts lucky placements too).
    rng = np.random.default_rng(1)
    est = monte_carlo_survival(
        net, 1.0 - float(np.exp(-rate * target_t)), epsilon, eps_prime,
        rng.random((24, 2)), n_trials=300, seed=2,
    )
    print(f"Monte-Carlo check: {est}")
    assert est.survival >= p - 0.05

    # ---- the SMR alternative at comparable cost -------------------------
    print("\nclassical SMR at comparable neuron budgets:")
    for n_replicas in (3, 5):
        cost = smr_neuron_cost(base, n_replicas)
        tol = smr_tolerance(n_replicas)
        ensemble = ReplicatedEnsemble.of_copies(base, n_replicas)
        for i in range(tol):
            ensemble.crash_replica(i)
        x = rng.random((16, 2))
        err = ensemble.vote_error(x, base)
        print(f"  r={n_replicas}: {cost} neurons, masks {tol} whole-machine "
              f"failures exactly (residual error {err:.2e}); "
              "but a single neuron death inside every replica is outside "
              "its failure model")
    print(f"\nthe paper's scheme at r={r}: {net.num_neurons} neurons, "
          f"certified against scattered neuron deaths with P >= {p:.4f}.")
    print("\nOK: redundancy sized analytically, confirmed by injection.")


if __name__ == "__main__":
    main()
