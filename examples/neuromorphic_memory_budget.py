#!/usr/bin/env python3
"""Memory-cost reduction for a neuromorphic deployment (Section V-A).

The paper cites IBM's neuromorphic chips running convolutional networks
at 25-275 mW; at that power envelope every activation bit counts.
Theorem 5 turns the question "how few bits can each layer use without
losing eps of output accuracy?" into arithmetic:

* we train a network, then sweep uniform fixed-point precision and
  compare the measured degradation against the Theorem-5 bound (the
  trade-off curve Proteus [31] measured on hardware);
* then we *invert* the bound: given an output-error budget, allocate
  per-layer bit widths greedily and report the memory saved;
* finally we show the Byzantine connection: quantisation error is just
  a bounded adversary, so the same network's crash certificate is
  unaffected by the precision reduction (budgets compose additively).

Run:  python examples/neuromorphic_memory_budget.py
"""

import numpy as np

from repro import build_mlp, certify
from repro.core import network_precision_bound
from repro.quantization import (
    build_quantized_network,
    greedy_bit_allocation,
    layer_error_coefficients,
    memory_savings,
    uniform_bit_allocation,
)
from repro.training import (
    MaxNormConstraint,
    Trainer,
    radial_wave,
    grid_inputs,
    sample_dataset,
    sup_error,
)


def main() -> None:
    rng = np.random.default_rng(3)
    target = radial_wave(dim=2, frequency=1.0)
    net = build_mlp(
        2,
        [32, 24],
        activation={"name": "sigmoid", "k": 2.0},
        init={"name": "uniform", "scale": 0.3},
        output_scale=0.25,
        seed=3,
    )
    X, y = sample_dataset(target, 2048, rng=rng)
    Trainer(optimizer="adam", regularizers=[MaxNormConstraint(0.4)]).train(
        net, X, y, epochs=200, batch_size=64, rng=rng
    )
    grid = grid_inputs(2, 30)
    eps_prime = sup_error(net, target, grid)
    print(net.summary())
    print(f"\nfull-precision eps' = {eps_prime:.4f}")

    # ---- the Proteus-style sweep ---------------------------------------
    print("\nbits  lambda      measured_err  theorem5_bound  memory_saved")
    for bits in (2, 3, 4, 6, 8, 10, 12):
        qnet = build_quantized_network(net, bits)
        measured = qnet.output_error(grid)
        bound = network_precision_bound(net, qnet.lambdas)
        saved = memory_savings(net, bits)
        flag = "  <-- bound respected" if measured <= bound else "  !!"
        print(
            f"{bits:4d}  {qnet.lambdas[0]:.6f}  {measured:12.6f}  "
            f"{bound:14.6f}  {saved:11.1%}{flag}"
        )
        assert measured <= bound + 1e-12

    # ---- inverting the bound: precision allocation ----------------------
    budget = 0.05
    coeffs = layer_error_coefficients(net)
    uniform = uniform_bit_allocation(net, budget)
    alloc = greedy_bit_allocation(net, budget)
    q_alloc = build_quantized_network(net, alloc)
    print(f"\noutput-error budget: {budget}")
    print(f"per-layer error coefficients c_l = {np.round(coeffs, 3)}")
    print(f"uniform allocation : {uniform} bits everywhere "
          f"({net.depth * uniform} layer-bits)")
    print(f"greedy allocation  : {alloc} ({sum(alloc)} layer-bits), "
          f"realised error {q_alloc.output_error(grid):.6f}, "
          f"memory saved {memory_savings(net, alloc):.1%}")
    assert q_alloc.output_error(grid) <= budget

    # ---- composing budgets: quantisation + crashes ----------------------
    epsilon = eps_prime + budget + 0.1  # quantisation eats `budget` of it
    cert = certify(net, epsilon - budget, eps_prime, mode="crash")
    print(
        f"\ncomposed guarantee: eps' {eps_prime:.4f} + quantisation {budget}"
        f" + crash budget {cert.budget:.4f} = eps {epsilon:.4f}"
    )
    print(f"still-certified crash distribution: {cert.maximal_distribution}")
    print("\nOK: Theorem 5 bound held across the whole precision sweep.")


if __name__ == "__main__":
    main()
