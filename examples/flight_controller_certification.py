#!/usr/bin/env python3
"""Certifying a neural controller for a critical deployment.

The paper's motivation: neural networks now fly aircraft and drive
cars, where "stopping a neural network and recovering its failures
through a new learning phase is not an option".  This example plays
the certification workflow end to end for a toy pitch-control surface:

* the "plant response" target is a smooth 3-D function (angle of
  attack, airspeed, elevator command) -> normalised response;
* the controller must stay within eps of the plant response *even
  while neurons die mid-flight* — no retraining allowed;
* we compare three deployment candidates: the network as trained, a
  weight-capped retrain (the Section V-C weight trade-off), and an
  Fep-regularised retrain (the paper's future-work learning scheme) —
  and show what each buys in certified tolerance;
* finally we run an in-flight failure storm (progressive crashes) on
  the distributed simulator and watch the guarantee hold until the
  certified budget is exhausted.

Run:  python examples/flight_controller_certification.py
"""

import numpy as np

from repro import build_mlp, certify
from repro.core import network_fep
from repro.distributed import DistributedNetwork
from repro.faults import FaultInjector, crash_scenario, worst_case_crash_scenario
from repro.training import (
    FepRegularizer,
    MaxNormConstraint,
    Trainer,
    TargetFunction,
    grid_inputs,
    sample_dataset,
    sup_error,
)


def plant_response() -> TargetFunction:
    """A smooth aerodynamic-style response surface on [0,1]^3."""

    def fn(x):
        aoa, speed, cmd = x[:, 0], x[:, 1], x[:, 2]
        lift = np.sin(np.pi * aoa) * (0.4 + 0.6 * speed)
        control = 0.3 * np.tanh(3.0 * (cmd - 0.5))
        return np.clip(0.5 * lift + control + 0.35, 0.0, 1.0)

    return TargetFunction("plant_response", 3, fn)


def train_candidate(name, regularizers, seed=0):
    target = plant_response()
    net = build_mlp(
        3,
        [32, 24],
        activation={"name": "sigmoid", "k": 1.0},
        init={"name": "uniform", "scale": 0.3},
        output_scale=0.3,
        seed=seed,
    )
    rng = np.random.default_rng(seed)
    X, y = sample_dataset(target, 2048, rng=rng)
    Trainer(optimizer="adam", regularizers=regularizers).train(
        net, X, y, epochs=120, batch_size=64, rng=rng
    )
    grid = grid_inputs(3, 12)
    eps_prime = sup_error(net, target, grid)
    return name, net, eps_prime, grid


def main() -> None:
    epsilon = 0.25  # the control-loop accuracy the airframe needs
    # Fep-aware training: only synapse stages >= 2 enter the bound, so the
    # caps leave the input features (stage 1) free.
    candidates = [
        train_candidate("plain", []),
        train_candidate(
            "stage>=2 capped (|w|<=0.06)",
            [MaxNormConstraint(0.06, stages=(2, 3))],
        ),
        train_candidate(
            "Fep-regularised (target f=(2,2))",
            [MaxNormConstraint(0.2, stages=(2, 3)), FepRegularizer((2, 2), lam=0.01)],
        ),
    ]

    print(f"required in-flight accuracy: eps = {epsilon}")
    print(f"{'candidate':38s} {'eps_prime':>9s} {'budget':>7s} "
          f"{'max crashes/layer':>18s} {'total':>6s}")
    best = None
    for name, net, eps_prime, grid in candidates:
        if eps_prime >= epsilon:
            print(f"{name:38s} {eps_prime:9.4f}   -- fails the accuracy gate --")
            continue
        cert = certify(net, epsilon, eps_prime, mode="crash")
        total = sum(cert.maximal_distribution)
        print(
            f"{name:38s} {eps_prime:9.4f} {cert.budget:7.4f} "
            f"{str(cert.per_layer_max):>18s} {total:6d}"
        )
        if best is None or total > best[3]:
            best = (name, net, cert, total, grid)

    assert best is not None, "no candidate met the accuracy gate"
    name, net, cert, total, grid = best
    print(f"\ndeploying: {name} (tolerates {cert.maximal_distribution} crashes)")

    # ---- in-flight failure storm on the message-passing simulator -----
    print("\nfailure storm (worst-case victims, one more crash per step):")
    sim = DistributedNetwork(net, capacity=net.output_bound)
    injector = FaultInjector(net, capacity=net.output_bound)
    probe = grid[:: max(1, len(grid) // 64)]
    nominal = net.forward(probe)
    max_dist = cert.maximal_distribution
    step_dists = []
    for k in range(1, total + 3):  # go two steps past the certificate
        remaining = k
        dist = [0] * net.depth
        for l in range(net.depth):
            take = min(remaining, max_dist[l] + (1 if k > total else 0))
            take = min(take, net.layer_sizes[l] - 1)
            dist[l] = take
            remaining -= take
            if remaining <= 0:
                break
        step_dists.append(tuple(dist))

    for dist in step_dists:
        scenario = worst_case_crash_scenario(net, dist)
        err = injector.output_error(probe, scenario)
        fep = network_fep(net, dist, mode="crash")
        certified = bool(cert.tolerates(dist))
        status = "CERTIFIED" if certified else "beyond certificate"
        print(
            f"  crashes {dist}: observed {err:.4f}, Fep {fep:.4f}, "
            f"budget {cert.budget:.4f}  [{status}]"
        )
        if certified:
            assert err <= cert.budget + 1e-9

    # Cross-check one storm step on the process-level simulator.
    sim.apply_scenario(worst_case_crash_scenario(net, step_dists[0]))
    sim_out = sim.run_batch(probe[:5])
    inj_out = injector.run(probe[:5], worst_case_crash_scenario(net, step_dists[0]))
    assert np.allclose(sim_out, inj_out, atol=1e-10)
    print("\nprocess-level simulator agrees with the vectorised engine.")
    print("OK: certified tolerance held exactly as far as Theorem 3 promised.")


if __name__ == "__main__":
    main()
