#!/usr/bin/env python3
"""Quickstart: train, over-provision, certify, and verify by injection.

The 60-second tour of the library — and of the paper's core insight:

1. train a compact approximation of a continuous target
   F: [0,1]^2 -> [0,1] and measure the precision eps' it achieves;
2. as trained, the network tolerates (almost) nothing: Theorem 3's
   Forward Error Propagation exceeds the budget eps - eps';
3. *over-provision* it: replicate every hidden neuron r times with
   outgoing weights divided by r (Corollary 1's construction).  The
   function is bit-identical, but every w_m shrinks — and suddenly a
   whole distribution of crashes is certified;
4. audit the certificate by fault injection — the observed worst-case
   error never exceeds the analytic bound;
5. describe the same stress test as a *run spec* — the declarative,
   JSON-round-trippable, content-hashable workload description that
   `repro.run` executes on the mask-native campaign engine (and that
   the CLI's `--spec`/`--dump-spec` persist and replay).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CampaignSpec,
    FaultSpec,
    NetworkRef,
    SamplerSpec,
    build_mlp,
    certify,
    empirical_audit,
    run,
    save_network,
)
from repro.core import replicate_network
from repro.training import (
    MaxNormConstraint,
    Trainer,
    gaussian_bump,
    grid_inputs,
    sample_dataset,
    sup_error,
)


def main() -> None:
    rng = np.random.default_rng(0)

    # -- 1. a compact trained approximation ------------------------------
    target = gaussian_bump(dim=2, width=0.25)
    net = build_mlp(
        2,
        [16],
        activation={"name": "sigmoid", "k": 1.0},
        init={"name": "uniform", "scale": 0.3},
        output_scale=0.3,
        seed=0,
    )
    X, y = sample_dataset(target, 1024, rng=rng)
    trainer = Trainer(optimizer="adam", regularizers=[MaxNormConstraint(0.6)])
    trainer.train(net, X, y, epochs=200, batch_size=64, rng=rng)
    print(net.summary())

    grid = grid_inputs(2, 25)
    eps_prime = sup_error(net, target, grid)
    epsilon = eps_prime + 0.15  # the accuracy we must keep under failures
    print(f"\nachieved eps' = {eps_prime:.4f}; required eps = {epsilon:.4f}")
    print(f"over-provision budget eps - eps' = {epsilon - eps_prime:.4f}")

    # -- 2. as trained: barely any tolerance -----------------------------
    cert0 = certify(net, epsilon, eps_prime, mode="crash")
    print(f"\ncompact network tolerates per layer: {cert0.per_layer_max}")

    # -- 3. Corollary-1 over-provisioning --------------------------------
    big = replicate_network(net, r=8)
    assert np.allclose(big.forward(grid), net.forward(grid), atol=1e-12)
    cert = certify(big, epsilon, eps_prime, mode="crash")
    print(f"after 8x replication ({big.layer_sizes} neurons, same function):")
    print(cert.summary())

    # -- 4. empirical audit ----------------------------------------------
    report = empirical_audit(cert, grid[::5], n_scenarios=300, seed=1)
    print(f"\naudit: {report}")
    print(
        f"worst observed error {report.worst_observed:.4f} <= "
        f"Fep bound {report.analytic_bound:.4f} <= budget {cert.budget:.4f}"
    )
    assert report.sound, "bound violated — this should never happen"
    assert sum(cert.maximal_distribution) > sum(cert0.maximal_distribution)
    print("\nOK: over-provisioning turned zero tolerance into a certified "
          f"{sum(cert.maximal_distribution)}-crash budget.")

    # -- 5. the same workload as declarative data ------------------------
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        net_path = save_network(big, Path(tmp) / "big.npz")
        spec = CampaignSpec(
            network=NetworkRef(path=str(net_path)),
            sampler=SamplerSpec(
                kind="fixed", distribution=cert.maximal_distribution
            ),
            fault=FaultSpec(kind="crash"),
            n_scenarios=300,
            batch=16,
            seed=1,
        )
        result = run(spec)  # the spec twin of the audit above
    assert result.max_error <= cert.budget + 1e-9
    print(
        f"\nspec {spec.content_hash()} (CampaignSpec, "
        f"{spec.n_scenarios} scenarios) replayed via repro.run: "
        f"max error {result.max_error:.4f} within budget {cert.budget:.4f}"
    )


if __name__ == "__main__":
    main()
