#!/usr/bin/env python3
"""Boosting a distributed network past its stragglers (Corollary 2).

Section V-B: in a network of physically-distributed neurons, some are
slow.  Waiting for every signal makes each layer as slow as its
slowest neuron.  Corollary 2 licenses an early-fire rule: once a
neuron has ``N - f`` of its inputs (for any crash distribution ``f``
tolerated by Theorem 3), it may reset the stragglers and fire —
the missing values read as crashes, which the certificate already
absorbs.

This example:

* certifies a straggler budget for a trained network;
* simulates 30 latency draws with a heavy-tailed straggler population
  and reports the wall-clock speedup of boosted vs wait-for-all;
* verifies the boosted outputs never drift beyond the crash-mode Fep;
* shows the knob: bigger tolerated ``f`` => bigger speedup, until the
  certificate runs out.

Run:  python examples/boosting_stragglers.py
"""

import numpy as np

from repro import build_mlp
from repro.core import check_theorem3, corollary2_required_signals, network_fep
from repro.distributed import LatencyModel, boosting_report, simulate_boosted_run
from repro.training import MaxNormConstraint, Trainer, sine_ridge, sample_dataset


def main() -> None:
    rng = np.random.default_rng(11)
    target = sine_ridge(dim=2, frequency=1.0)
    net = build_mlp(
        2,
        [20, 16],
        activation={"name": "sigmoid", "k": 0.25},
        init={"name": "uniform", "scale": 0.1},
        output_scale=0.08,
        seed=11,
    )
    X, y = sample_dataset(target, 1024, rng=rng)
    Trainer(optimizer="adam", regularizers=[MaxNormConstraint(0.1)]).train(
        net, X, y, epochs=80, batch_size=64, rng=rng
    )

    epsilon, eps_prime = 0.65, 0.25
    probe = rng.random((32, 2))

    print(net.summary())
    print(f"\nbudget eps - eps' = {epsilon - eps_prime}")
    print("\nstraggler budget f -> quota per layer, Fep, mean speedup "
          "(30 draws, 10% stragglers 10x slower):")
    for f in ((0, 0), (1, 1), (2, 2), (3, 3), (4, 4)):
        check = check_theorem3(net, f, epsilon, eps_prime, mode="crash")
        if not check.tolerated:
            print(f"  f={f}: NOT tolerated (Fep {check.error_bound:.3f} > "
                  f"{check.budget:.3f}) — boosting refused")
            continue
        quotas = corollary2_required_signals(net, f, epsilon, eps_prime)
        report = boosting_report(
            net, probe, f, epsilon, eps_prime,
            n_trials=30, straggler_fraction=0.10, straggler_scale=10.0, seed=7,
        )
        print(
            f"  f={f}: wait for {quotas} of {net.layer_sizes} signals, "
            f"Fep {check.error_bound:.4f}, "
            f"speedup x{report['mean_speedup']:.2f} "
            f"(worst drift {report['max_observed_error']:.4f})"
        )
        assert report["max_observed_error"] <= check.error_bound + 1e-9

    # One run in detail.
    f = (2, 2)
    latency = LatencyModel.uniform_random(
        net, straggler_fraction=0.15, straggler_scale=25.0,
        rng=np.random.default_rng(42),
    )
    result = simulate_boosted_run(net, probe, latency, f)
    print(f"\none draw in detail (f={f}):")
    print(f"  baseline layer completion times: "
          f"{tuple(round(t, 2) for t in result.baseline_layer_times)}")
    print(f"  boosted  layer completion times: "
          f"{tuple(round(t, 2) for t in result.boosted_layer_times)}")
    print(f"  resets sent per layer: {result.resets_per_layer}")
    print(f"  speedup x{result.speedup:.2f}, output drift "
          f"{result.observed_error:.5f} <= Fep "
          f"{network_fep(net, f, mode='crash'):.5f}")
    print("\nOK: early firing kept the epsilon-guarantee at a fraction "
          "of the wall-clock.")


if __name__ == "__main__":
    main()
