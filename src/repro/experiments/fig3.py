"""Figure 3 — output error vs Lipschitz constant across eight networks.

The paper's only measured plot: "Experimental values of the error (Er)
at the output of several neural networks, affected with similar amount
of neuron failures, plotted against the Lipschitz constant in a log
scale", with the observation that "Fep has a polynomial dependency on
K as observed in Figure 3".

Reproduction protocol (substitutions documented in DESIGN.md):

* the eight architectures are the concrete family of
  :data:`repro.network.builder.FIGURE3_SPECS` (depth 1-4, width 8-64);
* for each network and each K on a log-spaced grid, the *same* weights
  (same seed) and the *same* failure pattern are used — only the
  activation steepness varies, isolating the K-dependence;
* the failure load is "a similar amount" across networks: a fixed
  number of first-layer crashes (paper wording), measured as the max
  output error over a Monte-Carlo batch of failure placements plus the
  gradient-guided adversarial placement;
* expected shape: Er non-decreasing in K (up to MC noise) and, for the
  deeper networks, super-linear growth — the polynomial signature;
  the analytic Fep dominates every observation.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..analysis.stats import dominance_ratio, is_monotone, loglog_slope
from ..core.fep import network_fep
from ..faults.adversary import adversarial_crash_scenario
from ..faults.campaign import _monte_carlo_campaign, run_campaign
from ..faults.injector import FaultInjector
from ..network.builder import FIGURE3_SPECS, build_figure3_network
from .registry import experiment
from .runner import ExperimentResult

__all__ = ["run_figure3", "DEFAULT_K_GRID"]

DEFAULT_K_GRID: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0)


@experiment(
    "figure3",
    title="Output error vs Lipschitz constant across eight networks",
    anchor="Figure 3",
    tags=("figure", "campaign"),
    runtime="medium",
    order=30,
)
def run_figure3(
    *,
    k_grid: Sequence[float] = DEFAULT_K_GRID,
    n_fail: int = 2,
    n_scenarios: int = 60,
    n_inputs: int = 64,
    networks: Optional[Sequence[int]] = None,
    seed: int = 7,
    dtype: str = "float64",
) -> ExperimentResult:
    """Regenerate the Figure-3 series ``Er(K)`` for each network.

    The Monte-Carlo points run on the mask-native campaign engine
    (array-level placement sampling + streamed evaluation), so the
    per-point effort can be raised far beyond the default without the
    scenario-object overhead of the scalar path.

    Parameters
    ----------
    k_grid:
        Lipschitz constants to sweep (log-spaced, as in the figure).
    n_fail:
        First-layer crash count — the "similar amount of neuron
        failures" applied to every network.
    n_scenarios, n_inputs:
        Monte-Carlo effort per (network, K) point.
    networks:
        Indices into the 8-network family (default: all of them).
    dtype:
        Campaign evaluation precision; ``"float32"`` selects the fast
        path for large ``n_scenarios`` (bound-domination checks keep
        comfortable margin either way).
    """
    k_grid = tuple(sorted(float(k) for k in k_grid))
    net_ids = tuple(networks) if networks is not None else tuple(range(len(FIGURE3_SPECS)))
    rng = np.random.default_rng(seed)

    rows = []
    per_net_errors: dict[int, list[float]] = {i: [] for i in net_ids}
    per_net_bounds: dict[int, list[float]] = {i: [] for i in net_ids}
    for idx in net_ids:
        x = rng.random((n_inputs, FIGURE3_SPECS[idx][0]))
        for k in k_grid:
            net = build_figure3_network(idx, k)
            depth = net.depth
            dist = [0] * depth
            dist[0] = min(n_fail, net.layer_sizes[0] - 1)
            injector = FaultInjector(net, capacity=net.output_bound)
            mc = _monte_carlo_campaign(
                injector,
                x,
                dist,
                n_scenarios=n_scenarios,
                seed=seed + idx,
                dtype=dtype,
            )
            adv = adversarial_crash_scenario(net, dist, x)
            adv_err = run_campaign(injector, x, [adv]).max_error
            er = max(mc.max_error, adv_err)
            bound = network_fep(net, dist, mode="crash")
            per_net_errors[idx].append(er)
            per_net_bounds[idx].append(bound)
            rows.append(
                {
                    "net": f"Net {idx + 1}",
                    "depth": depth,
                    "K": k,
                    "f_layer1": dist[0],
                    "Er": er,
                    "fep_bound": bound,
                }
            )

    # --- shape checks -----------------------------------------------------
    monotone_ok = all(
        is_monotone(errs, increasing=True, tolerance=0.05 * max(errs))
        for errs in per_net_errors.values()
    )
    sound = (
        dominance_ratio(
            [b for bs in per_net_bounds.values() for b in bs],
            [e for es in per_net_errors.values() for e in es],
        )
        <= 1.0 + 1e-9
    )
    # Polynomial signature: deeper networks show larger log-log slope of
    # the *bound* (exactly depth - 1 + saturating activation effects) and
    # a positive slope of the measured error.
    slopes = {}
    for idx in net_ids:
        slope, _ = loglog_slope(k_grid, per_net_errors[idx])
        slopes[idx] = slope
    positive_slopes = all(s > 0 for s in slopes.values())
    depth_of = {i: len(FIGURE3_SPECS[i][1]) for i in net_ids}
    deep_ids = [i for i in net_ids if depth_of[i] >= 3]
    shallow_ids = [i for i in net_ids if depth_of[i] == 1]
    depth_orders = True
    if deep_ids and shallow_ids:
        depth_orders = min(slopes[i] for i in deep_ids) > max(
            -0.1, min(slopes[i] for i in shallow_ids) - 1.5
        ) and (
            np.mean([slopes[i] for i in deep_ids])
            > np.mean([slopes[i] for i in shallow_ids])
        )

    checks = {
        "error_increases_with_K": monotone_ok,
        "fep_bound_dominates_every_point": sound,
        "polynomial_growth_positive_loglog_slope": positive_slopes,
        "deeper_networks_grow_faster_in_K": bool(depth_orders),
    }
    return ExperimentResult(
        experiment_id="figure3",
        description="Output error Er vs Lipschitz constant K for eight "
        "networks under a fixed failure load (log-scale K)",
        rows=rows,
        shape_checks=checks,
        metrics={
            **{f"slope_net{i + 1}": s for i, s in slopes.items()},
            "worst_tightness": max(
                e / b
                for es, bs in zip(per_net_errors.values(), per_net_bounds.values())
                for e, b in zip(es, bs)
                if b > 0
            ),
        },
        notes=[
            "architectures are substitutes (paper does not disclose Nets 1-8)",
            "Er = max over MC placements + gradient-guided adversarial placement",
        ],
    )
