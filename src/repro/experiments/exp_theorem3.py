"""Theorem 3 — tolerated Byzantine failure distributions.

Validation protocol:

* **Certification + audit** — certify a network at ``(eps, eps')``,
  take its maximal tolerated distribution, and audit it empirically:
  Monte-Carlo plus adversarial Byzantine injection must never push the
  output error beyond the budget ``eps - eps'`` (the certificate's
  whole point: the epsilon-approximation survives).
* **Criticality** — on the linear-regime construction (where Fep is
  attained), any distribution whose Fep *exceeds* the budget actually
  breaks it: the bound cannot be relaxed, i.e. tightness at the
  decision boundary.
* **Capacity limit** — the tolerated distribution shrinks to nothing
  as the capacity grows (the quantitative road to Lemma 1).
"""

from __future__ import annotations

import numpy as np

from ..core.certification import certify, empirical_audit
from ..core.fep import forward_error_propagation
from ..core.tolerance import greedy_max_total_failures
from ..faults.injector import FaultInjector
from ..faults.scenarios import FailureScenario
from ..faults.types import OffsetFault
from ..network.builder import build_mlp
from ..network.model import NeuronAddress
from .constructions import linear_regime_network, linear_regime_probe
from .registry import experiment
from .runner import ExperimentResult

__all__ = ["run_theorem3"]


@experiment(
    "theorem3",
    title="Tolerated Byzantine failure distributions",
    anchor="Theorem 3",
    tags=("theorem", "byzantine", "campaign"),
    runtime="medium",
    order=60,
)
def run_theorem3(
    *,
    epsilon: float = 0.4,
    epsilon_prime: float = 0.1,
    capacity: float = 1.0,
    n_scenarios: int = 300,
    seed: int = 5,
) -> ExperimentResult:
    """Validate Theorem 3's tolerance condition end to end."""
    rng = np.random.default_rng(seed)
    budget = epsilon - epsilon_prime

    # --- certify + audit a generic network -------------------------------
    net = build_mlp(
        2,
        [12, 10],
        activation={"name": "sigmoid", "k": 0.5},
        init={"name": "uniform", "scale": 0.25},
        output_scale=0.1,
        seed=seed,
    )
    cert = certify(net, epsilon, epsilon_prime, mode="byzantine", capacity=capacity)
    x = rng.random((64, net.input_dim))
    audit = empirical_audit(cert, x, n_scenarios=n_scenarios, seed=seed)

    rows = [
        {
            "case": "certified-audit",
            "distribution": audit.distribution,
            "fep": audit.analytic_bound,
            "budget": budget,
            "worst_observed": audit.worst_observed,
            "within_budget": audit.worst_observed <= budget + 1e-9,
        }
    ]

    # --- decision boundary on the linear-regime construction -------------
    lin = linear_regime_network((6, 5), k=1.0)
    probe = linear_regime_probe(lin)
    inj = FaultInjector(lin, capacity=1.0)
    boundary_rows = []
    # Use a per-failure offset lambda and scale the "budget" to sit just
    # below / above the exactly-attained Fep.
    lam = 1e-3
    for f1 in (1, 2, 3):
        dist = (f1, 0)
        fep = forward_error_propagation(
            dist, lin.layer_sizes, lin.weight_maxes(), lin.lipschitz_constant, lam
        )
        scenario = FailureScenario(
            {NeuronAddress(1, i): OffsetFault(offset=lam) for i in range(f1)},
            name=f"boundary-f{f1}",
        )
        err = inj.output_error(probe, scenario)
        boundary_rows.append(
            {
                "case": "linear-boundary",
                "distribution": dist,
                "fep": fep,
                "budget": fep,  # the boundary: budget == Fep
                "worst_observed": err,
                "within_budget": err <= fep + 1e-12,
            }
        )
    rows.extend(boundary_rows)

    # --- capacity limit ---------------------------------------------------
    capacity_rows = []
    tolerated_sizes = []
    for c in (0.5, 1.0, 2.0, 4.0, 8.0):
        dist = greedy_max_total_failures(
            net, epsilon, epsilon_prime, capacity=c, mode="byzantine"
        )
        tolerated_sizes.append(sum(dist))
        capacity_rows.append(
            {
                "case": f"capacity C={c}",
                "distribution": dist,
                "fep": float("nan"),
                "budget": budget,
                "worst_observed": float("nan"),
                "within_budget": True,
            }
        )
    rows.extend(capacity_rows)

    checks = {
        "audit_respects_budget": audit.worst_observed <= budget + 1e-9,
        "audit_sound_vs_fep": audit.sound,
        "certified_distribution_nonempty": sum(cert.maximal_distribution) > 0,
        "boundary_error_equals_fep": all(
            abs(r["worst_observed"] - r["fep"]) <= 1e-6 * r["fep"]
            for r in boundary_rows
        ),
        "tolerance_shrinks_with_capacity": all(
            a >= b for a, b in zip(tolerated_sizes, tolerated_sizes[1:])
        ),
    }
    return ExperimentResult(
        experiment_id="theorem3",
        description="Byzantine distributions with Fep <= eps-eps' are "
        "tolerated; the condition is critical and shrinks with capacity",
        rows=rows,
        shape_checks=checks,
        metrics={
            "audit_tightness": audit.tightness,
            "certified_total_failures": float(sum(cert.maximal_distribution)),
            "tolerated_at_C0.5": float(tolerated_sizes[0]),
            "tolerated_at_C8": float(tolerated_sizes[-1]),
        },
    )
