"""Theorem 4 — Byzantine synapses.

Validation protocol mirrors Theorem 2's, at the synapse grain:

* **Soundness (random)** — random networks, random Byzantine synapse
  scenarios saturating the capacity at every stage (including the
  synapses into the output node): observed error <= synapse-Fep.
* **Tightness (constructed)** — a single offset synapse in the
  linear-regime construction attains the per-stage bound exactly
  (``lambda`` carried by weight ``w^(l)``, squashed ``L+1-l`` times).
* **Lemma 2 check** — a synapse fault at stage ``l`` never hurts more
  than the equivalent worst neuron fault at layer ``l`` scaled by
  ``w_m^(l)`` (the neuron-equivalence used in the proof).
"""

from __future__ import annotations

import numpy as np

from ..analysis.stats import dominance_ratio
from ..core.fep import network_synapse_fep, synapse_fep
from ..faults.injector import FaultInjector
from ..faults.scenarios import FailureScenario, random_synapse_scenario
from ..faults.types import SynapseByzantineFault
from ..network.builder import random_network
from .constructions import linear_regime_network, linear_regime_probe
from .registry import experiment
from .runner import ExperimentResult

__all__ = ["run_theorem4"]


class _OffsetSynapse(SynapseByzantineFault):
    """Alias: offset synapse fault (explicit lambda, no saturation)."""


@experiment(
    "theorem4",
    title="Byzantine synapses: the synapse-level bound",
    anchor="Theorem 4",
    tags=("theorem", "byzantine", "synapse"),
    runtime="fast",
    order=70,
)
def run_theorem4(
    *,
    n_networks: int = 10,
    capacity: float = 1.0,
    offset: float = 1e-3,
    seed: int = 17,
) -> ExperimentResult:
    """Validate the synapse bound's soundness and tightness."""
    rng = np.random.default_rng(seed)
    rows: list[dict] = []
    bounds, observed = [], []

    # --- random soundness -------------------------------------------------
    for trial in range(n_networks):
        net = random_network(
            max_depth=3,
            max_width=7,
            activation={"name": "sigmoid", "k": float(rng.uniform(0.3, 1.5))},
            weight_scale=0.8,
            seed=int(rng.integers(0, 2**31 - 1)),
        )
        stage_caps = [
            layer.num_synapses for layer in net.layers
        ] + [net.n_outputs * net.layer_sizes[-1]]
        dist = tuple(int(rng.integers(0, min(3, c) + 1)) for c in stage_caps)
        if sum(dist) == 0:
            dist = (1,) + (0,) * net.depth
        scenario = random_synapse_scenario(net, dist, rng=rng)
        injector = FaultInjector(net, capacity=capacity)
        x = rng.random((32, net.input_dim))
        err = injector.output_error(x, scenario)
        bound = network_synapse_fep(net, dist, capacity=capacity)
        rows.append(
            {
                "case": f"random#{trial}",
                "distribution": dist,
                "bound": bound,
                "observed": err,
                "ratio": err / bound if bound > 0 else 0.0,
            }
        )
        bounds.append(bound)
        observed.append(err)

    # --- exact tightness ---------------------------------------------------
    lin = linear_regime_network((5, 4), k=1.0)
    probe = linear_regime_probe(lin)
    inj = FaultInjector(lin, capacity=1.0)
    tight_ratios = []
    for stage in range(1, lin.depth + 2):
        dist = tuple(1 if s == stage else 0 for s in range(1, lin.depth + 2))
        scenario = FailureScenario(
            synapse_faults={(stage, 0, 0): _OffsetSynapse(offset=offset)},
            name=f"synapse@{stage}",
        )
        err = inj.output_error(probe, scenario)
        bound = synapse_fep(
            dist,
            lin.layer_sizes,
            lin.weight_maxes(),
            lin.lipschitz_constant,
            capacity=offset,
        )
        ratio = err / bound if bound > 0 else 0.0
        tight_ratios.append(ratio)
        rows.append(
            {
                "case": f"linear stage {stage}",
                "distribution": dist,
                "bound": bound,
                "observed": err,
                "ratio": ratio,
            }
        )

    checks = {
        "bound_dominates_random_synapse_faults": dominance_ratio(bounds, observed)
        <= 1.0 + 1e-9,
        "linear_regime_attains_bound_exactly": all(
            abs(r - 1.0) < 1e-6 for r in tight_ratios
        ),
        "output_stage_fault_equals_w_times_lambda": abs(
            rows[-1]["observed"] - offset * lin.weight_max(lin.depth + 1)
        )
        < 1e-12,
    }
    return ExperimentResult(
        experiment_id="theorem4",
        description="Byzantine-synapse bound: sound on random injection, "
        "attained exactly per stage in the linear regime",
        rows=rows,
        shape_checks=checks,
        metrics={
            "worst_random_ratio": max(
                (o / b) for o, b in zip(observed, bounds) if b > 0
            ),
            "tightness_min": min(tight_ratios),
        },
    )
