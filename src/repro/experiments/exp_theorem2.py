"""Theorem 2 — the Forward Error Propagation bound and its tightness.

Validation protocol:

* **Soundness (random)** — random multilayer networks, random Byzantine
  scenarios saturating the capacity: the observed output perturbation
  never exceeds Fep.
* **Tightness (constructed)** — the linear-regime hard-sigmoid
  construction with a controlled emission offset ``lambda`` attains
  Fep *exactly* (ratio = 1 to machine precision), for failures at
  every depth — validating the equality-case analysis, including the
  ``K**(L-l)`` depth dependence.
"""

from __future__ import annotations

import numpy as np

from ..analysis.stats import dominance_ratio
from ..core.fep import forward_error_propagation, network_fep
from ..faults.injector import FaultInjector
from ..faults.scenarios import FailureScenario, random_failure_scenario
from ..faults.types import ByzantineFault, OffsetFault
from ..network.builder import random_network
from ..network.model import NeuronAddress
from .constructions import (
    linear_regime_network,
    linear_regime_probe,
    linear_regime_safety_margin,
)
from .registry import experiment
from .runner import ExperimentResult

__all__ = ["run_theorem2"]


def _random_soundness(rows, bounds, observed, *, n_networks, capacity, seed):
    rng = np.random.default_rng(seed)
    for trial in range(n_networks):
        net = random_network(
            max_depth=3,
            max_width=8,
            activation={"name": "sigmoid", "k": float(rng.uniform(0.3, 2.0))},
            weight_scale=0.8,
            seed=int(rng.integers(0, 2**31 - 1)),
        )
        dist = tuple(int(rng.integers(0, n)) for n in net.layer_sizes)
        if sum(dist) == 0:
            dist = tuple(1 if i == 0 else 0 for i in range(net.depth))
        scenario = random_failure_scenario(
            net, dist, fault=ByzantineFault(sign=int(rng.choice([-1, 1]))), rng=rng
        )
        injector = FaultInjector(net, capacity=capacity)
        x = rng.random((32, net.input_dim))
        err = injector.output_error(x, scenario)
        fep = network_fep(net, dist, capacity=capacity, mode="byzantine")
        rows.append(
            {
                "case": f"random#{trial}",
                "depth": net.depth,
                "distribution": dist,
                "fep": fep,
                "observed": err,
                "ratio": err / fep if fep > 0 else 0.0,
            }
        )
        bounds.append(fep)
        observed.append(err)


@experiment(
    "theorem2",
    title="Forward Error Propagation: soundness and exact tightness",
    anchor="Theorem 2",
    tags=("theorem", "byzantine"),
    runtime="fast",
    order=50,
)
def run_theorem2(
    *,
    n_networks: int = 12,
    capacity: float = 1.0,
    layer_sizes: tuple[int, ...] = (4, 3, 3),
    k: float = 1.0,
    offset: float = 1e-3,
    seed: int = 11,
) -> ExperimentResult:
    """Validate Fep soundness (random nets) and exact tightness
    (linear-regime construction), per-depth."""
    rows: list[dict] = []
    bounds: list[float] = []
    observed: list[float] = []
    _random_soundness(
        rows, bounds, observed, n_networks=n_networks, capacity=capacity, seed=seed
    )

    # --- exact tightness in the linear regime ---------------------------
    net = linear_regime_network(layer_sizes, k=k)
    probe = linear_regime_probe(net)
    margin = linear_regime_safety_margin(net, probe)
    injector = FaultInjector(net, capacity=1.0)
    tight_ratios = []
    for layer in range(1, net.depth + 1):
        dist = tuple(1 if l == layer else 0 for l in range(1, net.depth + 1))
        scenario = FailureScenario(
            {NeuronAddress(layer, 0): OffsetFault(offset=offset)},
            name=f"offset@{layer}",
        )
        err = injector.output_error(probe, scenario)
        # Fep with C replaced by the actual |lambda| = offset.
        fep = forward_error_propagation(
            dist,
            net.layer_sizes,
            net.weight_maxes(),
            net.lipschitz_constant,
            capacity=offset,
        )
        ratio = err / fep if fep > 0 else 0.0
        tight_ratios.append(ratio)
        rows.append(
            {
                "case": f"linear-regime L={net.depth}",
                "depth": net.depth,
                "distribution": dist,
                "fep": fep,
                "observed": err,
                "ratio": ratio,
            }
        )

    checks = {
        "fep_dominates_random_byzantine": dominance_ratio(bounds, observed)
        <= 1.0 + 1e-9,
        "linear_regime_attains_fep_exactly": all(
            abs(r - 1.0) < 1e-6 for r in tight_ratios
        ),
        "perturbation_stayed_in_linear_region": margin > 0,
    }
    return ExperimentResult(
        experiment_id="theorem2",
        description="Forward Error Propagation bounds the output "
        "perturbation; attained exactly in the linear-regime construction",
        rows=rows,
        shape_checks=checks,
        metrics={
            "worst_random_ratio": max(
                (o / b) for o, b in zip(observed, bounds) if b > 0
            ),
            "tightness_min": min(tight_ratios),
            "tightness_max": max(tight_ratios),
            "linear_margin": margin,
        },
    )
