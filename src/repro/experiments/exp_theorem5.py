"""Theorem 5 / Section V-A — memory-cost reduction by precision scaling.

The paper gives "the first theoretical result quantifying those
trade-offs" between per-neuron precision and output accuracy (observed
experimentally by Proteus [31]).  Validation protocol:

* quantise a trained-size network's activations at 2..12 fixed-point
  bits; the measured output degradation must respect the Theorem-5
  bound built from ``lambda_l = 2**-(bits+1)``;
* the bound and the measurement both decay ~``2**-bits`` (halving per
  extra bit — the trade-off curve's shape);
* the bit-allocation solvers return configurations whose realised
  error meets the requested budget, and memory savings are reported.
"""

from __future__ import annotations

import numpy as np

from ..analysis.stats import dominance_ratio, is_monotone
from ..core.fep import network_precision_bound
from ..network.builder import build_mlp
from ..quantization.precision import (
    build_quantized_network,
    greedy_bit_allocation,
    memory_savings,
    uniform_bit_allocation,
)
from .registry import experiment
from .runner import ExperimentResult

__all__ = ["run_theorem5"]


@experiment(
    "theorem5",
    title="Memory-cost reduction by precision scaling",
    anchor="Theorem 5 / Section V-A",
    tags=("theorem", "quantization"),
    runtime="fast",
    order=80,
)
def run_theorem5(
    *,
    bits_grid: tuple[int, ...] = (2, 3, 4, 5, 6, 8, 10, 12),
    budget: float = 0.05,
    n_inputs: int = 256,
    seed: int = 23,
) -> ExperimentResult:
    """Validate the precision-reduction bound and its inversion."""
    rng = np.random.default_rng(seed)
    net = build_mlp(
        3,
        [16, 12],
        activation={"name": "sigmoid", "k": 1.0},
        init={"name": "uniform", "scale": 0.5},
        output_scale=0.3,
        seed=seed,
    )
    x = rng.random((n_inputs, net.input_dim))

    rows = []
    bounds, observed = [], []
    for bits in bits_grid:
        qnet = build_quantized_network(net, bits)
        err = qnet.output_error(x)
        bound = network_precision_bound(net, qnet.lambdas)
        saving = memory_savings(net, bits)
        rows.append(
            {
                "bits": bits,
                "lambda": qnet.lambdas[0],
                "observed_error": err,
                "theorem5_bound": bound,
                "memory_saving": saving,
            }
        )
        bounds.append(bound)
        observed.append(err)

    # Inversion: allocate bits for the requested output budget.
    b_uniform = uniform_bit_allocation(net, budget)
    alloc = greedy_bit_allocation(net, budget)
    q_alloc = build_quantized_network(net, alloc)
    realised = q_alloc.output_error(x)
    alloc_bound = network_precision_bound(net, q_alloc.lambdas)

    halvings = [bounds[i] / bounds[i + 1] for i in range(len(bits_grid) - 1)]
    expected = [
        2.0 ** (bits_grid[i + 1] - bits_grid[i]) for i in range(len(bits_grid) - 1)
    ]

    checks = {
        "bound_dominates_measured_error": dominance_ratio(bounds, observed)
        <= 1.0 + 1e-9,
        "error_decreases_with_bits": is_monotone(observed, increasing=False,
                                                 tolerance=1e-12),
        "bound_halves_per_extra_bit": all(
            abs(h - e) < 1e-9 for h, e in zip(halvings, expected)
        ),
        "greedy_allocation_meets_budget_analytically": alloc_bound <= budget + 1e-12,
        "greedy_allocation_meets_budget_empirically": realised <= budget + 1e-12,
        "greedy_no_worse_than_uniform": sum(alloc) <= net.depth * b_uniform,
        "memory_saving_positive": all(r["memory_saving"] > 0 for r in rows),
    }
    return ExperimentResult(
        experiment_id="theorem5",
        description="Precision-reduction bound (Theorem 5): quantisation "
        "error dominated, 2^-bits decay, invertible into bit budgets",
        rows=rows,
        shape_checks=checks,
        metrics={
            "uniform_bits_for_budget": float(b_uniform),
            "greedy_total_bits": float(sum(alloc)),
            "realised_error_at_allocation": realised,
            "tightness_at_2bits": observed[0] / bounds[0],
        },
        notes=[
            f"greedy allocation for budget {budget}: {alloc}",
            "hardware precision reduction (Proteus) simulated by "
            "fixed-point activation quantisers",
        ],
    )
