"""Decorator-based experiment registry: the index of the reproduction.

Every experiment module in this package registers its ``run_<id>``
entry point with the :func:`experiment` decorator, attaching the
metadata the pipeline needs to discover, select, schedule and report
it:

* ``anchor`` — where in the paper the claim lives ("Theorem 2",
  "Figure 3", "Section V-C", ...);
* ``tags`` — free-form selection labels (``"figure"``, ``"theorem"``,
  ``"campaign"``, ``"training"``, ...) consumed by
  ``repro run-all --filter``;
* ``runtime`` — a coarse cost class (``fast`` < ``medium`` < ``slow``)
  so callers can budget a run without executing anything;
* ``order`` — canonical presentation order in EXPERIMENTS.md and
  ``docs/paper_map.md`` (paper order, not import order).

:func:`discover` imports every ``exp_*``/``fig*`` module in the
package so the decorators run, then returns the registry in canonical
order — no hand-maintained list of experiments exists anywhere;
forgetting the decorator on a new module is caught by
``tests/test_registry.py``.  The artifact pipeline
(:mod:`repro.artifacts`) and the ``run-all`` / ``report`` CLI commands
are the registry's consumers.
"""

from __future__ import annotations

import importlib
import pkgutil
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .runner import ExperimentResult

__all__ = [
    "RegisteredExperiment",
    "RUNTIME_CLASSES",
    "experiment",
    "discover",
    "all_experiments",
    "get",
    "experiment_ids",
    "select",
    "unmatched",
]

#: Coarse cost classes, cheapest first.  ``fast`` finishes in well under
#: a second, ``medium`` within a few seconds, ``slow`` involves training
#: loops and may take tens of seconds at default parameters.
RUNTIME_CLASSES = ("fast", "medium", "slow")


@dataclass(frozen=True)
class RegisteredExperiment:
    """One registered reproduction experiment and its metadata."""

    experiment_id: str
    fn: Callable[..., ExperimentResult]
    title: str
    anchor: str
    tags: Tuple[str, ...] = ()
    runtime: str = "fast"
    order: int = 1000
    module: str = ""
    #: The declared run spec (:class:`repro.specs.Spec`), when the
    #: experiment's workload is spec-expressible.  Spec-declaring
    #: experiments are cache-keyed on the spec's content hash instead
    #: of the module source (see :func:`repro.artifacts.content_key`),
    #: so refactoring the module body no longer invalidates artifacts —
    #: only changing the *workload* does.
    spec: Optional[object] = None

    def spec_hash(self) -> Optional[str]:
        """The declared spec's content hash (None without a spec)."""
        return None if self.spec is None else self.spec.content_hash()

    @property
    def command(self) -> str:
        """The CLI invocation that runs (exactly) this experiment."""
        return f"python -m repro run-all --filter {self.experiment_id}"

    def run(self, **params) -> ExperimentResult:
        """Execute the experiment; forwards ``params`` to the entry point."""
        return self.fn(**params)

    def matches(self, token: str) -> bool:
        """Selection predicate for ``--filter`` tokens.

        A token selects this experiment when it equals the id, one of
        the tags, or the runtime class (case-insensitively), or is a
        substring of the id or of the paper anchor.
        """
        t = token.strip().lower()
        if not t:
            return False
        if t == self.experiment_id.lower() or t == self.runtime:
            return True
        if any(t == tag.lower() for tag in self.tags):
            return True
        return t in self.experiment_id.lower() or t in self.anchor.lower()


_REGISTRY: Dict[str, RegisteredExperiment] = {}
_DISCOVERED = False


def experiment(
    experiment_id: str,
    *,
    title: str,
    anchor: str,
    tags: Sequence[str] = (),
    runtime: str = "fast",
    order: int = 1000,
    spec: Optional[object] = None,
) -> Callable:
    """Register the decorated ``run_*`` function as an experiment.

    The function is returned unchanged — the decorator only records it,
    so direct calls (tests, benchmarks, examples) are unaffected.
    ``spec`` optionally declares the experiment's workload as a
    :class:`repro.specs.Spec`; the artifact store then keys caching and
    replay on the spec's content hash instead of the module source.
    """
    if runtime not in RUNTIME_CLASSES:
        raise ValueError(
            f"runtime must be one of {RUNTIME_CLASSES}, got {runtime!r}"
        )
    if not anchor:
        raise ValueError(f"experiment {experiment_id!r} needs a paper anchor")
    if spec is not None and not hasattr(spec, "content_hash"):
        raise ValueError(
            f"experiment {experiment_id!r} spec must be a repro.specs "
            f"Spec (content-hashable), got {type(spec).__name__}"
        )

    def decorator(fn: Callable[..., ExperimentResult]):
        entry = RegisteredExperiment(
            experiment_id=experiment_id,
            fn=fn,
            title=title,
            anchor=anchor,
            tags=tuple(tags),
            runtime=runtime,
            order=order,
            module=fn.__module__,
            spec=spec,
        )
        existing = _REGISTRY.get(experiment_id)
        if existing is not None and (
            existing.module != entry.module
            or existing.fn.__qualname__ != fn.__qualname__
        ):
            raise ValueError(
                f"duplicate experiment id {experiment_id!r}: "
                f"{existing.module}.{existing.fn.__qualname__} vs "
                f"{entry.module}.{fn.__qualname__}"
            )
        _REGISTRY[experiment_id] = entry
        return fn

    return decorator


def _iter_experiment_modules() -> List[str]:
    """Names of the package's experiment modules (``exp_*`` / ``fig*``)."""
    import repro.experiments as pkg

    return sorted(
        info.name
        for info in pkgutil.iter_modules(pkg.__path__)
        if info.name.startswith(("exp_", "fig"))
    )


def discover() -> Dict[str, RegisteredExperiment]:
    """Import every experiment module so decorators run; return the registry.

    Idempotent and cheap after the first call.  The returned dict is
    ordered canonically (``order``, then id) — paper order, independent
    of import order.
    """
    global _DISCOVERED
    if not _DISCOVERED:
        for name in _iter_experiment_modules():
            importlib.import_module(f"repro.experiments.{name}")
        _DISCOVERED = True
    return dict(
        sorted(_REGISTRY.items(), key=lambda kv: (kv[1].order, kv[0]))
    )


def all_experiments() -> List[RegisteredExperiment]:
    """Every registered experiment, in canonical order."""
    return list(discover().values())


def experiment_ids() -> List[str]:
    return [exp.experiment_id for exp in all_experiments()]


def get(experiment_id: str) -> RegisteredExperiment:
    discover()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known ids: "
            f"{', '.join(experiment_ids())}"
        ) from None


def select(
    tokens: Optional[Sequence[str]] = None,
) -> List[RegisteredExperiment]:
    """Experiments matching any of the ``--filter`` tokens.

    ``None`` or an empty sequence selects everything.  Tokens match
    ids, tags, or substrings of ids/anchors (see
    :meth:`RegisteredExperiment.matches`).
    """
    experiments = all_experiments()
    if not tokens:
        return experiments
    return [
        exp for exp in experiments if any(exp.matches(t) for t in tokens)
    ]


def unmatched(tokens: Optional[Sequence[str]]) -> List[str]:
    """The ``--filter`` tokens that select no experiment at all.

    Callers treat a non-empty return as an error: a typo next to a
    valid token must not silently validate less than was asked for.
    """
    experiments = all_experiments()
    return [
        t
        for t in (tokens or [])
        if not any(exp.matches(t) for exp in experiments)
    ]
