"""Section VI — convolutional refinement of the bounds.

The paper: in convolutional networks "the maximal weight constraint
``w_m^(l)`` ... will run only on the ``R^(l)``-different values of the
weights", and the limited receptive field "leads in turn to less
restrictive bounds (i.e. tolerating larger amounts of failures)".

Validation protocol:

* **Soundness of the refinement** — the receptive-field-aware Fep
  still dominates injected crash errors on convolutional networks;
* **Refinement never hurts** — refined Fep <= generic Fep, with a
  strict gap whenever a fan-out is actually limited;
* **Weight-sharing advantage** — over matched random draws, the max
  over ``R`` shared kernel values is (on average) smaller than the max
  over a dense layer's full weight matrix, so the conv bound is less
  restrictive for equal weight scales;
* **Dense degeneration** — on a dense network the refined bound equals
  Theorem 2's exactly.
"""

from __future__ import annotations

import numpy as np

from ..analysis.stats import dominance_ratio
from ..core.conv import bound_reduction_factor, receptive_field_fep
from ..core.fep import network_fep
from ..faults.campaign import _monte_carlo_campaign
from ..faults.injector import FaultInjector
from ..network.builder import build_conv_net, build_mlp
from .registry import experiment
from .runner import ExperimentResult

__all__ = ["run_conv"]


@experiment(
    "section6_conv",
    title="Convolutional refinement of the bounds",
    anchor="Section VI",
    tags=("extension", "conv", "campaign"),
    runtime="medium",
    order=140,
)
def run_conv(
    *,
    input_dim: int = 24,
    receptive_fields: tuple[int, ...] = (5, 3),
    n_scenarios: int = 80,
    n_draws: int = 200,
    seed: int = 47,
) -> ExperimentResult:
    """Validate the Section VI convolutional refinements."""
    rng = np.random.default_rng(seed)
    conv = build_conv_net(
        input_dim,
        receptive_fields,
        activation={"name": "sigmoid", "k": 1.0},
        init={"name": "uniform", "scale": 0.5},
        seed=seed,
    )
    x = rng.random((32, input_dim))

    distribution = (2,) + (0,) * (conv.depth - 1)
    generic = network_fep(conv, distribution, mode="crash")
    refined = receptive_field_fep(conv, distribution, mode="crash")
    reduction = bound_reduction_factor(conv, distribution, mode="crash")

    injector = FaultInjector(conv, capacity=conv.output_bound)
    campaign = _monte_carlo_campaign(
        injector, x, distribution, n_scenarios=n_scenarios, seed=seed
    )

    rows = [
        {
            "quantity": "generic Fep (Theorem 2)",
            "value": generic,
        },
        {
            "quantity": "refined Fep (receptive field)",
            "value": refined,
        },
        {
            "quantity": "bound reduction factor",
            "value": reduction,
        },
        {
            "quantity": "worst injected error",
            "value": campaign.max_error,
        },
    ]

    # Weight-sharing advantage over matched random draws.
    wins = 0
    for _ in range(n_draws):
        kernel_max = np.abs(rng.uniform(-0.5, 0.5, size=receptive_fields[0])).max()
        dense_max = np.abs(
            rng.uniform(-0.5, 0.5, size=(input_dim - receptive_fields[0] + 1, input_dim))
        ).max()
        wins += kernel_max <= dense_max
    share_advantage = wins / n_draws

    # Dense degeneration: refined == generic on an all-dense network.
    dense = build_mlp(
        4, [6, 5], init={"name": "uniform", "scale": 0.5}, output_scale=0.5, seed=seed
    )
    dense_dist = (2, 1)
    degeneration_gap = abs(
        receptive_field_fep(dense, dense_dist, mode="crash")
        - network_fep(dense, dense_dist, mode="crash")
    )

    checks = {
        "refined_bound_still_sound": dominance_ratio(
            [refined], [campaign.max_error]
        )
        <= 1.0 + 1e-9,
        "refined_at_most_generic": refined <= generic + 1e-12,
        "strict_gap_with_limited_fanout": reduction > 1.0,
        "weight_sharing_max_is_smaller": share_advantage > 0.95,
        "dense_network_degenerates_to_theorem2": degeneration_gap < 1e-12,
    }
    return ExperimentResult(
        experiment_id="section6_conv",
        description="Convolutional refinement: receptive-field-aware Fep "
        "is sound, strictly less restrictive, and degenerates to Theorem 2 "
        "on dense nets",
        rows=rows,
        shape_checks=checks,
        metrics={
            "reduction_factor": reduction,
            "weight_sharing_advantage": share_advantage,
            "worst_injected": campaign.max_error,
        },
    )
