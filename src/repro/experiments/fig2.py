"""Figure 2 — the K-tuned sigmoid profiles.

The paper's Figure 2 plots the sigmoid "centered around 0 and tuned
with several values of K.  The larger is K, the steeper is the slope
and the more discriminating is the activation function at each
neuron."  We regenerate the curves and verify the analytics the figure
rests on: the tuned sigmoid ``x -> sigmoid(4Kx)`` is exactly
K-Lipschitz, its slope at the origin is K, and steepness is monotone
in K.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..analysis.lipschitz import estimate_lipschitz, sigmoid_profile, slope_at_origin
from ..network.activations import Sigmoid
from .registry import experiment
from .runner import ExperimentResult

__all__ = ["run_figure2", "DEFAULT_KS"]

DEFAULT_KS: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0)


@experiment(
    "figure2",
    title="K-tuned sigmoid activation profiles",
    anchor="Figure 2",
    tags=("figure", "activation"),
    runtime="fast",
    order=20,
)
def run_figure2(ks: Sequence[float] = DEFAULT_KS) -> ExperimentResult:
    """Regenerate Figure 2's curves and check their analytic properties."""
    ks = tuple(float(k) for k in ks)
    profiles = sigmoid_profile(ks)
    rows = []
    steepness = []
    for k in ks:
        act = Sigmoid(k)
        k_emp = estimate_lipschitz(act)
        slope0 = slope_at_origin(act)
        xs, ys = profiles[k]
        # "Discrimination" proxy: output swing across a unit input window.
        swing = float(act(np.array([0.5]))[0] - act(np.array([-0.5]))[0])
        steepness.append(slope0)
        rows.append(
            {
                "K": k,
                "empirical_K": k_emp,
                "slope_at_0": slope0,
                "value_at_0": float(act(np.array([0.0]))[0]),
                "unit_window_swing": swing,
                "range_lo": float(ys.min()),
                "range_hi": float(ys.max()),
            }
        )

    checks = {
        # The tuned sigmoid is exactly K-Lipschitz (within grid resolution).
        "empirical_lipschitz_matches_K": all(
            abs(r["empirical_K"] - r["K"]) <= 0.01 * r["K"] for r in rows
        ),
        # Derivative peaks at the origin with value K.
        "slope_at_origin_equals_K": all(
            abs(r["slope_at_0"] - r["K"]) <= 1e-4 * max(1.0, r["K"]) for r in rows
        ),
        # All curves centred: value 1/2 at 0.
        "centred_at_half": all(abs(r["value_at_0"] - 0.5) < 1e-12 for r in rows),
        # Larger K => steeper (more discriminating).
        "steepness_monotone_in_K": all(
            a < b for a, b in zip(steepness, steepness[1:])
        ),
        # Squashing range stays within [0, 1].
        "range_within_unit_interval": all(
            -1e-12 <= r["range_lo"] and r["range_hi"] <= 1 + 1e-12 for r in rows
        ),
    }
    return ExperimentResult(
        experiment_id="figure2",
        description="K-tuned sigmoid profiles: steeper and more "
        "discriminating as K grows",
        rows=rows,
        shape_checks=checks,
        metrics={"n_curves": float(len(ks))},
    )
