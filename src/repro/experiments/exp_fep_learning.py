"""Extension — learning with Fep as a minimisation target.

The paper's concluding remarks: "An appealing research direction is to
consider a specific learning scheme taking the forward error
propagation as an additional minimization target which would reduce the
impacts of failures" (prior art [36] handles a single crash only).
:class:`repro.training.regularizers.FepRegularizer` implements it; this
experiment quantifies what it buys.

Protocol: train the same architecture on the same data three ways —
plain, L2-regularised, Fep-regularised (target distribution (2, 2)) —
to comparable fit, then compare (a) the analytic Fep at the target
distribution, (b) the certified maximal tolerated distribution, and
(c) the empirical worst injected error at the target distribution.
The Fep-regularised network must dominate on robustness while staying
within an accuracy tolerance of the plain one.
"""

from __future__ import annotations

import numpy as np

from ..core.fep import network_fep
from ..core.tolerance import greedy_max_total_failures
from ..faults.campaign import _monte_carlo_campaign
from ..faults.injector import FaultInjector
from ..network.builder import build_mlp
from ..training.data import gaussian_bump, grid_inputs, sample_dataset, sup_error
from ..training.regularizers import FepRegularizer, L2Regularizer
from ..training.trainer import Trainer
from .registry import experiment
from .runner import ExperimentResult

__all__ = ["run_fep_learning"]

TARGET_DISTRIBUTION = (2, 2)


def _train(regularizers, *, epochs, seed):
    target = gaussian_bump(2, width=0.25)
    net = build_mlp(
        2,
        [16, 12],
        activation={"name": "sigmoid", "k": 1.0},
        init={"name": "uniform", "scale": 0.4},
        output_scale=0.4,
        seed=seed,
    )
    rng = np.random.default_rng(seed)
    X, y = sample_dataset(target, 768, rng=rng)
    Trainer(optimizer="adam", regularizers=regularizers).train(
        net, X, y, epochs=epochs, batch_size=64, rng=rng
    )
    grid = grid_inputs(2, 20)
    return net, sup_error(net, target, grid), grid


@experiment(
    "extension_fep_learning",
    title="Learning with Fep as a minimisation target",
    anchor="Extension (Fep-regularised training)",
    tags=("extension", "training"),
    runtime="slow",
    order=160,
)
def run_fep_learning(
    *,
    epochs: int = 80,
    lam: float = 0.005,
    epsilon: float = 0.6,
    epsilon_prime: float = 0.2,
    n_scenarios: int = 100,
    seed: int = 67,
) -> ExperimentResult:
    """Compare plain / L2 / Fep-regularised training on robustness."""
    variants = {
        "plain": [],
        "l2": [L2Regularizer(lam=1e-4)],
        "fep": [FepRegularizer(TARGET_DISTRIBUTION, lam=lam)],
    }
    rows = []
    feps, fits, tolerated, observed = {}, {}, {}, {}
    for name, regs in variants.items():
        net, fit, grid = _train(regs, epochs=epochs, seed=seed)
        fep = network_fep(net, TARGET_DISTRIBUTION, mode="crash")
        dist = greedy_max_total_failures(net, epsilon, epsilon_prime, mode="crash")
        injector = FaultInjector(net, capacity=net.output_bound)
        campaign = _monte_carlo_campaign(
            injector, grid[::4], TARGET_DISTRIBUTION,
            n_scenarios=n_scenarios, seed=seed,
        )
        feps[name] = fep
        fits[name] = fit
        tolerated[name] = sum(dist)
        observed[name] = campaign.max_error
        rows.append(
            {
                "training": name,
                "sup_error": fit,
                "fep_at_(2,2)": fep,
                "certified_total_failures": sum(dist),
                "worst_injected_at_(2,2)": campaign.max_error,
            }
        )

    checks = {
        "fep_training_minimises_fep": feps["fep"] < feps["plain"]
        and feps["fep"] < feps["l2"],
        "fep_training_certifies_more_failures": tolerated["fep"]
        >= max(tolerated["plain"], tolerated["l2"]),
        "fep_training_reduces_injected_damage": observed["fep"]
        < observed["plain"],
        "accuracy_within_tolerance_of_plain": fits["fep"]
        <= fits["plain"] + 0.1,
        "all_bounds_sound": all(
            observed[name] <= feps[name] + 1e-9 for name in variants
        ),
    }
    return ExperimentResult(
        experiment_id="extension_fep_learning",
        description="Learning with Fep as a minimisation target (the "
        "paper's future-work scheme): robustness gained at small "
        "accuracy cost",
        rows=rows,
        shape_checks=checks,
        metrics={
            "fep_reduction_vs_plain": feps["plain"] / feps["fep"],
            "damage_reduction_vs_plain": observed["plain"]
            / max(observed["fep"], 1e-12),
            "accuracy_cost": fits["fep"] - fits["plain"],
        },
        notes=["extension: implements the concluding-remarks learning "
               "scheme; [36] handled a single crash only"],
    )
