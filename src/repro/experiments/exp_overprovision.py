"""Section II-C + Corollary 1 — over-provisioning buys robustness.

"Neural networks are not robust [when] built with the minimal amount
of neurons", but over-provisioning creates a budget ``eps - eps'``
that failures may consume, and Corollary 1 shows robust networks exist
arbitrarily close to non-robust ones.

Validation protocol, using the constructive replication mechanism
(duplicate each hidden neuron ``r`` times, divide outgoing weights by
``r``):

* the replicated network computes the *same function* (same eps');
* for a fixed failure distribution, Fep shrinks ~``1/r`` — so the
  tolerated failure count grows ~linearly in ``r``;
* :func:`minimal_replication_factor` finds the smallest ``r`` for a
  target distribution, and an injection campaign confirms the
  replicated network absorbs it within budget;
* Barron's ``Nmin = Theta(1/eps)``: the minimal network tolerates
  nothing, and the margin scales as predicted.
"""

from __future__ import annotations

import numpy as np

from ..core.fep import network_fep
from ..core.overprovision import (
    barron_nmin,
    minimal_replication_factor,
    replicate_network,
)
from ..core.tolerance import max_failures_single_layer
from ..faults.injector import FaultInjector
from ..faults.masks import (
    FixedDistributionSampler,
    MaskCampaignEngine,
    sampled_campaign_errors,
)
from ..network.builder import build_mlp
from .registry import experiment
from .runner import ExperimentResult

__all__ = ["run_overprovision"]


@experiment(
    "corollary1_overprovision",
    title="Over-provisioning by neuron replication",
    anchor="Corollary 1 / Section II-C",
    tags=("corollary", "overprovision", "campaign"),
    runtime="medium",
    order=100,
)
def run_overprovision(
    *,
    epsilon: float = 0.3,
    epsilon_prime: float = 0.1,
    factors: tuple[int, ...] = (1, 2, 4, 8),
    seed: int = 53,
) -> ExperimentResult:
    """Validate the replication construction behind Corollary 1."""
    rng = np.random.default_rng(seed)
    base = build_mlp(
        2,
        [6, 5],
        activation={"name": "sigmoid", "k": 0.5},
        init={"name": "uniform", "scale": 0.6},
        output_scale=0.6,
        seed=seed,
    )
    x = rng.random((64, base.input_dim))
    nominal = base.forward(x)

    rows = []
    func_gaps, feps, tolerances = [], [], []
    probe_dist_base = (1, 0)
    for r in factors:
        rep = replicate_network(base, r)
        gap = float(np.max(np.abs(rep.forward(x) - nominal)))
        fep = network_fep(rep, probe_dist_base, mode="crash")
        tol = max_failures_single_layer(rep, 1, epsilon, epsilon_prime, mode="crash")
        func_gaps.append(gap)
        feps.append(fep)
        tolerances.append(tol)
        rows.append(
            {
                "r": r,
                "layer_sizes": rep.layer_sizes,
                "function_gap": gap,
                "fep_one_crash": fep,
                "max_crashes_layer1": tol,
            }
        )

    # Minimal replication for an otherwise-intolerable distribution.
    target_dist = (3, 2)
    base_check = network_fep(base, target_dist, mode="crash") <= (
        epsilon - epsilon_prime
    )
    r_star, replicated = minimal_replication_factor(
        base, target_dist, epsilon, epsilon_prime, mode="crash"
    )
    # Audit the replicated network directly on the mask engine: sample
    # the target distribution as (S, N_l) crash masks and stream them
    # through one engine (no per-scenario objects anywhere).
    injector = FaultInjector(replicated, capacity=replicated.output_bound)
    engine = MaskCampaignEngine(injector, x)
    campaign_errors = sampled_campaign_errors(
        injector,
        x,
        FixedDistributionSampler(replicated, target_dist),
        400,
        seed=seed,
        engine=engine,
    )
    campaign_worst = float(campaign_errors.max())

    checks = {
        "replication_preserves_function": max(func_gaps) < 1e-9,
        "fep_shrinks_with_replication": all(
            a > b for a, b in zip(feps, feps[1:])
        ),
        "tolerance_grows_with_replication": all(
            a <= b for a, b in zip(tolerances, tolerances[1:])
        )
        and tolerances[-1] > tolerances[0],
        "target_distribution_needed_replication": not base_check or r_star == 1,
        "replicated_network_absorbs_target": campaign_worst
        <= (epsilon - epsilon_prime) + 1e-9,
        "barron_nmin_scales_inverse_epsilon": barron_nmin(0.01)
        == 10 * barron_nmin(0.1),
    }
    return ExperimentResult(
        experiment_id="corollary1_overprovision",
        description="Over-provisioning by neuron replication: same "
        "function, ~1/r Fep, ~r x tolerance (Corollary 1's mechanism)",
        rows=rows,
        shape_checks=checks,
        metrics={
            "minimal_r_for_(3,2)": float(r_star),
            "campaign_worst": campaign_worst,
            "budget": epsilon - epsilon_prime,
        },
    )
