"""Corollary 2 / Section V-B — boosting computations.

A neuron "has to wait only for ``N_{l-1} - f_{l-1}`` signals from layer
``l-1`` to send a value to layer ``l+1``, as well as a reset to the
missing neurons, while guaranteeing a correct epsilon-approximation".

Validation protocol: attach latencies with a heavy-straggler population
to every neuron, run the boosted protocol against the wait-for-all
baseline over many latency draws, and check that (a) the quota is
exactly ``N_l - f_l``, (b) the boosted output never deviates beyond the
crash-mode Fep at ``(f_l)`` (which itself fits the budget), and (c)
wall-clock improves markedly whenever stragglers exist.
"""

from __future__ import annotations

import numpy as np

from ..core.bounds import corollary2_required_signals
from ..core.fep import network_fep
from ..distributed.boosting import boosting_report
from ..faults.campaign import _monte_carlo_campaign
from ..faults.injector import FaultInjector
from ..faults.masks import (
    FixedDistributionSampler,
    MixedFaultSampler,
    SynapseBernoulliSampler,
)
from ..faults.types import SynapseNoiseFault
from ..network.builder import build_mlp
from .registry import experiment
from .runner import ExperimentResult

__all__ = ["run_boosting"]


@experiment(
    "corollary2_boosting",
    title="Boosting: fire after N-f signals, reset stragglers",
    anchor="Corollary 2 / Section V-B",
    tags=("corollary", "boosting", "distributed"),
    runtime="medium",
    order=110,
)
def run_boosting(
    *,
    epsilon: float = 0.5,
    epsilon_prime: float = 0.1,
    n_trials: int = 15,
    straggler_scale: float = 10.0,
    seed: int = 31,
) -> ExperimentResult:
    """Validate the boosting scheme's safety and its speedup."""
    rng = np.random.default_rng(seed)
    net = build_mlp(
        2,
        [14, 12],
        activation={"name": "sigmoid", "k": 0.5},
        init={"name": "uniform", "scale": 0.15},
        output_scale=0.05,
        seed=seed,
    )
    x = rng.random((16, net.input_dim))

    # Pick a tolerated straggler budget: one per layer if affordable.
    distribution = (1, 1)
    bound = network_fep(net, distribution, mode="crash")
    budget = epsilon - epsilon_prime
    quotas = corollary2_required_signals(net, distribution, epsilon, epsilon_prime)

    report = boosting_report(
        net,
        x,
        distribution,
        epsilon,
        epsilon_prime,
        n_trials=n_trials,
        straggler_fraction=0.12,
        straggler_scale=straggler_scale,
        seed=seed,
    )
    # Control: without stragglers boosting saves little.
    control = boosting_report(
        net,
        x,
        distribution,
        epsilon,
        epsilon_prime,
        n_trials=n_trials,
        straggler_fraction=0.0,
        straggler_scale=1.0,
        seed=seed,
    )

    # Mixed-deployment audit: boosting prices stragglers as crashes,
    # but a realistic deployment also carries low-level synapse noise.
    # The widened mask engine samples the heterogeneous population
    # (the straggler distribution's crashes + Bernoulli synapse noise)
    # in one campaign; the epsilon budget must still hold with margin.
    mixed_sampler = MixedFaultSampler(
        [
            FixedDistributionSampler(net, distribution),
            SynapseBernoulliSampler(
                net, 0.05, fault=SynapseNoiseFault(sigma=0.01)
            ),
        ]
    )
    mixed = _monte_carlo_campaign(
        FaultInjector(net, capacity=net.output_bound),
        x,
        distribution,
        n_scenarios=2000,
        sampler=mixed_sampler,
        seed=seed,
    )

    rows = [
        {
            "regime": "with stragglers",
            "quotas": quotas,
            "mean_speedup": report["mean_speedup"],
            "min_speedup": report["min_speedup"],
            "max_observed_error": report["max_observed_error"],
            "fep_bound": bound,
            "budget": budget,
        },
        {
            "regime": "no stragglers",
            "quotas": quotas,
            "mean_speedup": control["mean_speedup"],
            "min_speedup": control["min_speedup"],
            "max_observed_error": control["max_observed_error"],
            "fep_bound": bound,
            "budget": budget,
        },
        {
            "regime": "mixed deployment (crashes + synapse noise)",
            "quotas": quotas,
            "mean_speedup": None,
            "min_speedup": None,
            "max_observed_error": mixed.max_error,
            "fep_bound": bound,
            "budget": budget,
        },
    ]
    checks = {
        "quota_is_N_minus_f": quotas
        == tuple(n - f for n, f in zip(net.layer_sizes, distribution)),
        "boosted_error_within_fep_bound": report["max_observed_error"]
        <= bound + 1e-9,
        "fep_bound_within_budget": bound <= budget + 1e-12,
        "speedup_with_stragglers": report["mean_speedup"] > 2.0,
        "speedup_never_below_one": report["min_speedup"] >= 1.0
        and control["min_speedup"] >= 1.0,
        "little_to_gain_without_stragglers": control["mean_speedup"]
        < report["mean_speedup"],
        "mixed_deployment_keeps_budget": mixed.quantile(0.99) <= budget,
    }
    return ExperimentResult(
        experiment_id="corollary2_boosting",
        description="Boosting: fire after N-f signals, reset stragglers; "
        "epsilon kept, latency slashed",
        rows=rows,
        shape_checks=checks,
        metrics={
            "mean_speedup": report["mean_speedup"],
            "max_observed_error": report["max_observed_error"],
            "fep_bound": bound,
            "mixed_deployment_p99_error": mixed.quantile(0.99),
        },
    )
