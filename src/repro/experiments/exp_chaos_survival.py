"""Extension — temporal chaos vs the certified mission-survival bound.

The paper's Section-V deployment story is temporal: components fail
over *mission time* with ``p(t) = 1 - exp(-rate * t)``, and Theorem 3
certifies a placement-free lower bound on the probability the
epsilon-guarantee survives to ``t``
(:func:`~repro.faults.reliability.mission_survival_curve`).  The chaos
subsystem simulates exactly that story forward in time — a fleet of
replicas accumulating exponential-lifetime crashes with no repair,
every epoch evaluated on the mask campaign engine — so the two must
agree: the *empirical* survival curve (fraction of replicas whose
error never exceeded the budget by epoch ``t``) must weakly dominate
the certified bound at every mission time, because Monte-Carlo
placements also credit lucky configurations the worst case forbids.

Validation protocol:

* empirical survival curve >= certified bound at every mission grid
  point (weak dominance, seeded);
* chaos actually bites: violations occur within the horizon, and the
  survival curve is monotone nonincreasing;
* the budget-threshold detector is exact against ground truth
  (precision = recall = 1 by construction — firing *is* violating);
* deterministic replay: the same seed reproduces the identical SLO
  report.
"""

from __future__ import annotations

import numpy as np

from ..chaos import (
    ComponentLifetimeProcess,
    ThresholdDetector,
    run_chaos_campaign,
)
from ..faults.reliability import mission_survival_curve
from ..network.builder import build_mlp
from .registry import experiment
from .runner import ExperimentResult

__all__ = ["run_chaos_survival"]


@experiment(
    "chaos_survival",
    title="No-repair chaos fleet dominates the certified mission bound",
    anchor="Extension (Section V-A mission survival, temporal)",
    tags=("extension", "chaos", "campaign", "reliability"),
    runtime="medium",
    order=160,
)
def run_chaos_survival(
    *,
    epsilon: float = 0.5,
    epsilon_prime: float = 0.1,
    failure_rate: float = 0.03,
    epochs: int = 40,
    n_replicas: int = 64,
    seed: int = 11,
) -> ExperimentResult:
    """No-repair chaos runs converge on the certified survival bound."""
    net = build_mlp(
        2,
        [12, 10],
        activation={"name": "sigmoid", "k": 1.0},
        init={"name": "uniform", "scale": 0.4},
        output_scale=0.3,
        seed=5,
    )
    x = np.random.default_rng(5).random((16, 2))
    budget = epsilon - epsilon_prime

    report = run_chaos_campaign(
        net,
        x,
        [ComponentLifetimeProcess(failure_rate)],
        detectors=[ThresholdDetector(budget)],
        epochs=epochs,
        n_replicas=n_replicas,
        epsilon=epsilon,
        epsilon_prime=epsilon_prime,
        seed=seed,
    )
    empirical = report.survival_curve()  # (epochs + 1,)

    grid = sorted({0, epochs // 4, epochs // 2, epochs})
    certified = mission_survival_curve(
        net, failure_rate, [float(t) for t in grid], epsilon, epsilon_prime
    )
    rows = [
        {
            "mission_time": t,
            "certified_survival": cert,
            "empirical_survival": float(empirical[t]),
            "margin": float(empirical[t]) - cert,
        }
        for (t, cert) in ((int(t), c) for t, c in certified)
    ]

    replay = run_chaos_campaign(
        net,
        x,
        [ComponentLifetimeProcess(failure_rate)],
        detectors=[ThresholdDetector(budget)],
        epochs=epochs,
        n_replicas=n_replicas,
        epsilon=epsilon,
        epsilon_prime=epsilon_prime,
        seed=seed,
    )

    det = report.detector_stats["threshold"]
    checks = {
        "empirical_dominates_certified": all(
            row["empirical_survival"] >= row["certified_survival"] - 1e-12
            for row in rows
        ),
        "certain_at_t_zero": rows[0]["empirical_survival"] == 1.0
        and rows[0]["certified_survival"] == 1.0,
        "survival_curve_nonincreasing": bool(
            np.all(np.diff(empirical) <= 1e-12)
        ),
        "chaos_bites_within_horizon": report.n_violation_episodes > 0
        and report.availability < 1.0,
        "threshold_detector_exact": det["precision"] == 1.0
        and det["recall"] == 1.0,
        "deterministic_replay": report.to_dict() == replay.to_dict(),
    }
    return ExperimentResult(
        experiment_id="chaos_survival",
        description="Temporal chaos (no repair, exponential lifetimes) "
        "dominates the certified mission-survival bound at every "
        "mission time",
        rows=rows,
        shape_checks=checks,
        metrics={
            "availability": report.availability,
            "final_certified": rows[-1]["certified_survival"],
            "final_empirical": rows[-1]["empirical_survival"],
            "median_epochs_to_first_violation": float(
                np.median(report.time_to_first_violation)
            ),
            "mtbf": report.mtbf,
            "mttr": report.mttr,
        },
        notes=[
            "extension: the chaos fleet replays Section V-A's mission "
            "lifetime model forward in time on the campaign engine; the "
            "certified curve is its analytic lower envelope"
        ],
    )
