"""Extension — temporal chaos vs the certified mission-survival bound.

The paper's Section-V deployment story is temporal: components fail
over *mission time* with ``p(t) = 1 - exp(-rate * t)``, and Theorem 3
certifies a placement-free lower bound on the probability the
epsilon-guarantee survives to ``t``
(:func:`~repro.faults.reliability.mission_survival_curve`).  The chaos
subsystem simulates exactly that story forward in time — a fleet of
replicas accumulating exponential-lifetime crashes with no repair,
every epoch evaluated on the mask campaign engine — so the two must
agree: the *empirical* survival curve (fraction of replicas whose
error never exceeded the budget by epoch ``t``) must weakly dominate
the certified bound at every mission time, because Monte-Carlo
placements also credit lucky configurations the worst case forbids.

The campaign itself is *declared*, not wired: :func:`chaos_survival_spec`
builds the :class:`~repro.specs.ChaosSpec` (the experiment's workload
as versioned, hashable data), the registry stores it, and the entry
point executes it through ``repro.run`` — so the artifact store keys
caching/replay on the spec's content hash, and replaying the stored
spec (``repro chaos --spec ...``) reproduces the identical report.

Validation protocol:

* empirical survival curve >= certified bound at every mission grid
  point (weak dominance, seeded);
* chaos actually bites: violations occur within the horizon, and the
  survival curve is monotone nonincreasing;
* the budget-threshold detector is exact against ground truth
  (precision = recall = 1 by construction — firing *is* violating);
* deterministic replay: re-running the *stored spec* reproduces the
  identical SLO report.
"""

from __future__ import annotations

import numpy as np

from ..faults.reliability import mission_survival_curve
from ..specs import (
    ChaosSpec,
    DetectorSpec,
    NetworkRef,
    ProcessSpec,
    run as run_spec,
)
from .registry import experiment
from .runner import ExperimentResult

__all__ = ["run_chaos_survival", "chaos_survival_spec"]

#: The probe/topology recipe both chaos experiments share (a builder
#: ref hashes stably, so the spec is replayable with no file on disk).
_NETWORK = NetworkRef(
    builder="mlp",
    params={
        "input_dim": 2,
        "hidden": [12, 10],
        "activation": {"name": "sigmoid", "k": 1.0},
        "init": {"name": "uniform", "scale": 0.4},
        "output_scale": 0.3,
        "seed": 5,
    },
)


def chaos_survival_spec(
    *,
    epsilon: float = 0.5,
    epsilon_prime: float = 0.1,
    failure_rate: float = 0.03,
    epochs: int = 40,
    n_replicas: int = 64,
    seed: int = 11,
) -> ChaosSpec:
    """The no-repair mission-survival campaign as a declarative spec."""
    return ChaosSpec(
        network=_NETWORK,
        epsilon=epsilon,
        epsilon_prime=epsilon_prime,
        processes=(ProcessSpec(kind="lifetime", rate=failure_rate),),
        detectors=(DetectorSpec(kind="threshold"),),
        epochs=epochs,
        replicas=n_replicas,
        batch=16,
        seed=seed,
        probe_seed=5,
    )


@experiment(
    "chaos_survival",
    title="No-repair chaos fleet dominates the certified mission bound",
    anchor="Extension (Section V-A mission survival, temporal)",
    tags=("extension", "chaos", "campaign", "reliability"),
    runtime="medium",
    order=160,
    spec=chaos_survival_spec(),
)
def run_chaos_survival(
    *,
    epsilon: float = 0.5,
    epsilon_prime: float = 0.1,
    failure_rate: float = 0.03,
    epochs: int = 40,
    n_replicas: int = 64,
    seed: int = 11,
) -> ExperimentResult:
    """No-repair chaos runs converge on the certified survival bound."""
    spec = chaos_survival_spec(
        epsilon=epsilon,
        epsilon_prime=epsilon_prime,
        failure_rate=failure_rate,
        epochs=epochs,
        n_replicas=n_replicas,
        seed=seed,
    )
    net = spec.network.resolve()

    report = run_spec(spec)
    empirical = report.survival_curve()  # (epochs + 1,)

    grid = sorted({0, epochs // 4, epochs // 2, epochs})
    certified = mission_survival_curve(
        net, failure_rate, [float(t) for t in grid], epsilon, epsilon_prime
    )
    rows = [
        {
            "mission_time": t,
            "certified_survival": cert,
            "empirical_survival": float(empirical[t]),
            "margin": float(empirical[t]) - cert,
        }
        for (t, cert) in ((int(t), c) for t, c in certified)
    ]

    # Replay-for-free: the stored spec round-trips through JSON and
    # reproduces the identical report (what `repro chaos --spec` does).
    replay = run_spec(ChaosSpec.from_dict(spec.to_dict()))

    det = report.detector_stats["threshold"]
    checks = {
        "empirical_dominates_certified": all(
            row["empirical_survival"] >= row["certified_survival"] - 1e-12
            for row in rows
        ),
        "certain_at_t_zero": rows[0]["empirical_survival"] == 1.0
        and rows[0]["certified_survival"] == 1.0,
        "survival_curve_nonincreasing": bool(
            np.all(np.diff(empirical) <= 1e-12)
        ),
        "chaos_bites_within_horizon": report.n_violation_episodes > 0
        and report.availability < 1.0,
        "threshold_detector_exact": det["precision"] == 1.0
        and det["recall"] == 1.0,
        "deterministic_replay": report.to_dict() == replay.to_dict(),
    }
    return ExperimentResult(
        experiment_id="chaos_survival",
        description="Temporal chaos (no repair, exponential lifetimes) "
        "dominates the certified mission-survival bound at every "
        "mission time",
        rows=rows,
        shape_checks=checks,
        metrics={
            "availability": report.availability,
            "final_certified": rows[-1]["certified_survival"],
            "final_empirical": rows[-1]["empirical_survival"],
            "median_epochs_to_first_violation": float(
                np.median(report.time_to_first_violation)
            ),
            "mtbf": report.mtbf,
            "mttr": report.mttr,
            "spec_hash": chaos_survival_spec().content_hash(),
        },
        notes=[
            "extension: the chaos fleet replays Section V-A's mission "
            "lifetime model forward in time on the campaign engine; the "
            "certified curve is its analytic lower envelope",
            "workload declared as a ChaosSpec: the artifact is keyed on "
            "the spec's content hash and replayable via "
            "`repro chaos --spec`",
        ],
    )
