"""Extension — telemetry-native chaos: replayed incidents match live.

The telemetry refactor's headline claim is that a chaos campaign's
:class:`~repro.chaos.telemetry.TelemetryTrace` is a *complete* record
of the incident: every report statistic is a pure function of the
trace (:func:`~repro.chaos.telemetry.report_from_trace`), and any
detector can be re-run against the stored stream — no network, no
fault simulation — and emit the exact alarm cells of the live run
(:mod:`repro.chaos.replay`).  That is what turns every stored campaign
into an AIOpsLab-style static benchmark problem
(:mod:`repro.chaos.aiops`): detection, localization and root-cause
analysis are scored against the trace's ground-truth channels at
near-zero compute.

Validation protocol:

* **replay parity** — rebuilding the spec's detectors and replaying
  the stored trace reproduces the live alarm grids bitwise, repairs
  and all (the policy repaired mid-campaign, so detector re-arming is
  genuinely exercised);
* **serial == parallel** — the same campaign on 2 workers assembles a
  bitwise-identical trace (block concatenation is deterministic);
* **persistence round-trip** — save/load through the schema-versioned
  JSON + npz pair is the identity, and the report derived from the
  loaded trace equals the live report exactly;
* **oracle calibration** — localization and RCA scored with the
  ground-truth extractors themselves are perfect (pins the scoring);
* **budget-threshold TTD** — the threshold detector fires the epoch a
  violation starts, so its time-to-detect is exactly zero.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from ..specs import (
    ChaosSpec,
    DetectorSpec,
    PolicySpec,
    ProcessSpec,
    TelemetrySpec,
    run as run_spec,
)
from .exp_chaos_survival import _NETWORK
from .registry import experiment
from .runner import ExperimentResult

__all__ = ["run_incident_replay", "incident_replay_spec"]


def incident_replay_spec(
    *,
    epsilon: float = 0.3,
    epsilon_prime: float = 0.1,
    failure_rate: float = 0.1,
    epochs: int = 40,
    n_replicas: int = 32,
    seed: int = 7,
) -> ChaosSpec:
    """A repairing, two-detector campaign with telemetry capture on.

    Exponential lifetimes plus transient bursts keep both RCA classes
    populated; the detector-triggered repair policy guarantees the
    trace carries repair events, so replay must re-arm detector state
    mid-stream to stay bitwise faithful.
    """
    return ChaosSpec(
        network=_NETWORK,
        epsilon=epsilon,
        epsilon_prime=epsilon_prime,
        processes=(
            ProcessSpec(kind="lifetime", rate=failure_rate),
            ProcessSpec(kind="bursts", rate=0.15),
        ),
        detectors=(
            DetectorSpec(kind="threshold"),
            DetectorSpec(kind="cusum"),
        ),
        policy=PolicySpec(kind="repair", latency=1),
        epochs=epochs,
        replicas=n_replicas,
        batch=16,
        seed=seed,
        probe_seed=5,
        epochs_chunk=8,
        telemetry=TelemetrySpec(),
    )


@experiment(
    "incident_replay",
    title="Stored telemetry replays detectors bitwise and scores AIOps "
    "tasks",
    anchor="Extension (telemetry-native chaos; AIOpsLab-style replay)",
    tags=("extension", "chaos", "telemetry", "aiops"),
    runtime="medium",
    order=165,
    spec=incident_replay_spec(),
)
def run_incident_replay(
    *,
    epsilon: float = 0.3,
    epsilon_prime: float = 0.1,
    failure_rate: float = 0.1,
    epochs: int = 40,
    n_replicas: int = 32,
    seed: int = 7,
) -> ExperimentResult:
    """Replayed detectors emit the live run's exact alarm epochs."""
    import numpy as np

    from ..chaos.aiops import (
        detection_scores,
        localization_truth,
        rca_truth,
        score_localization,
        score_rca,
    )
    from ..chaos.replay import replay_detectors
    from ..chaos.telemetry import (
        ACTION_REPAIR,
        load_trace,
        report_from_trace,
        save_trace,
    )
    from ..specs.dispatch import build_detector

    spec = incident_replay_spec(
        epsilon=epsilon,
        epsilon_prime=epsilon_prime,
        failure_rate=failure_rate,
        epochs=epochs,
        n_replicas=n_replicas,
        seed=seed,
    )
    report = run_spec(spec)
    trace = report.trace

    # Replay: fresh detector instances from the stored spec, stepped
    # through the trace alone.
    detectors = [build_detector(d, spec, None) for d in spec.detectors]
    replayed = replay_detectors(trace, detectors)
    replay_exact = all(
        np.array_equal(replayed[name], trace.alarms[name])
        for name in trace.detector_names
    )

    # Fork-once parallelism assembles the identical trace.
    parallel = run_spec(spec, workers=2)

    # Persistence round-trip through the JSON + npz pair.
    with tempfile.TemporaryDirectory() as tmp:
        loaded = load_trace(save_trace(trace, Path(tmp) / "incident"))
    round_trip = trace.equals(loaded)
    derived = report_from_trace(loaded)

    # AIOps scoring: live detectors + oracle baselines.
    detection = {
        name: detection_scores(trace, trace.alarms[name])
        for name in trace.detector_names
    }
    loc_oracle = score_localization(trace, localization_truth(trace))
    rca_oracle = score_rca(trace, rca_truth(trace))

    repair_epochs, _ = trace.actions(ACTION_REPAIR)
    thresh = detection["threshold"]
    checks = {
        "replay_parity_exact": replay_exact,
        "serial_equals_parallel_trace": parallel.trace.equals(trace)
        and parallel.to_dict() == report.to_dict(),
        "trace_round_trip_bitwise": round_trip,
        "report_pure_function_of_trace": derived.to_dict()
        == report.to_dict(),
        "chaos_bites_with_repairs": thresh["n_incidents"] > 0
        and repair_epochs.size > 0,
        "threshold_ttd_zero": thresh["detection_rate"] == 1.0
        and thresh["mean_ttd"] == 0.0,
        "oracle_localization_perfect": loc_oracle["layer_precision"] == 1.0
        and loc_oracle["layer_recall"] == 1.0,
        "oracle_rca_perfect": rca_oracle["accuracy"] == 1.0,
    }
    rows = [
        {
            "detector": name,
            "replayed_alarm_cells": int(replayed[name].sum()),
            "live_alarm_cells": int(trace.alarms[name].sum()),
            "detection_rate": scores["detection_rate"],
            "mean_ttd": scores["mean_ttd"],
            "false_alarm_cells": scores["false_alarm_cells"],
        }
        for name, scores in detection.items()
    ]
    return ExperimentResult(
        experiment_id="incident_replay",
        description="A stored chaos telemetry trace replays its "
        "detectors bitwise and scores AIOps detection/localization/RCA "
        "tasks without re-simulating",
        rows=rows,
        shape_checks=checks,
        metrics={
            "n_incidents": thresh["n_incidents"],
            "n_repair_events": int(repair_epochs.size),
            "availability": report.availability,
            "threshold_detection_rate": thresh["detection_rate"],
            "cusum_detection_rate": detection["cusum"]["detection_rate"],
            "cusum_mean_ttd": detection["cusum"]["mean_ttd"],
            "rca_accuracy_oracle": rca_oracle["accuracy"],
            "spec_hash": incident_replay_spec().content_hash(),
        },
        notes=[
            "extension: AIOpsLab-style static replay — the trace alone "
            "re-serves the incident to any detector, so every stored "
            "campaign is a reusable benchmark problem",
            "workload declared as a ChaosSpec with telemetry capture; "
            "the artifact is keyed on the spec's content hash",
        ],
    )
