"""Experiment harness: result containers and plain-text reporting.

Every experiment module exposes ``run_<id>(...) -> ExperimentResult``.
A result carries the regenerated rows/series of the corresponding paper
figure (or the validation table of a theorem) plus named *shape
checks* — the boolean assertions that constitute "the reproduction
holds": bounds dominate, errors grow with K, trade-offs slope the
right way.  Benchmarks execute the experiment under pytest-benchmark
and assert every shape check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = ["ExperimentResult", "format_table", "jsonable"]


def jsonable(value: Any) -> Any:
    """Recursively convert a result value into plain JSON types.

    Rows and metrics routinely carry numpy scalars/arrays and tuples;
    the artifact store persists results as JSON, so everything lowers
    to (str, int, float, bool, None, list, dict).  Non-finite floats
    survive as strings (JSON has no inf/nan).
    """
    import numpy as np

    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float) and not np.isfinite(value):
        return str(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, np.ndarray):
        if value.ndim == 0:
            # 0-d arrays: tolist() yields a bare scalar, which the
            # list comprehension below would try to iterate.  Unwrap
            # through the scalar path so non-finite values still get
            # the string treatment instead of corrupting the payload.
            return jsonable(value[()])
        return [jsonable(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    return str(value)


@dataclass
class ExperimentResult:
    """Outcome of one reproduction experiment.

    Attributes
    ----------
    experiment_id:
        Paper anchor, e.g. ``"figure3"`` or ``"theorem2"``.
    description:
        One-line statement of what the paper shows there.
    rows:
        The regenerated table/series, one dict per row.
    shape_checks:
        Named boolean claims that must hold for the reproduction to
        count (the *shape* of the paper's result, not its absolute
        numbers).
    metrics:
        Headline scalars (tightness ratios, slopes, speedups).
    notes:
        Substitutions or caveats worth surfacing in EXPERIMENTS.md.
    """

    experiment_id: str
    description: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    shape_checks: Dict[str, bool] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """All shape checks hold."""
        return all(self.shape_checks.values())

    def failed_checks(self) -> List[str]:
        return [name for name, ok in self.shape_checks.items() if not ok]

    def assert_passed(self) -> None:
        """Raise with the failing check names (bench-side assertion)."""
        failing = self.failed_checks()
        if failing:
            raise AssertionError(
                f"{self.experiment_id}: shape checks failed: {failing}\n"
                + format_table(self.rows)
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload — the artifact the store persists."""
        return {
            "experiment_id": self.experiment_id,
            "description": self.description,
            "rows": [jsonable(row) for row in self.rows],
            "shape_checks": {k: bool(v) for k, v in self.shape_checks.items()},
            "metrics": {k: jsonable(v) for k, v in self.metrics.items()},
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentResult":
        """Inverse of :meth:`to_dict` (tuples come back as lists).

        Non-finite metric values round-trip: JSON has no inf/nan, so
        :func:`jsonable` stores them as strings and they are coerced
        back to floats here.
        """
        metrics = {}
        for k, v in payload.get("metrics", {}).items():
            if isinstance(v, str):
                try:
                    v = float(v)  # "inf" / "-inf" / "nan"
                except ValueError:
                    pass
            metrics[k] = v
        return cls(
            experiment_id=payload["experiment_id"],
            description=payload["description"],
            rows=[dict(row) for row in payload.get("rows", [])],
            shape_checks=dict(payload.get("shape_checks", {})),
            metrics=metrics,
            notes=list(payload.get("notes", [])),
        )

    def report(self) -> str:
        """Human-readable report used by the example scripts."""
        lines = [f"== {self.experiment_id}: {self.description}"]
        if self.rows:
            lines.append(format_table(self.rows))
        if self.metrics:
            lines.append(
                "metrics: "
                + ", ".join(f"{k}={_fmt(v)}" for k, v in sorted(self.metrics.items()))
            )
        for name, ok in self.shape_checks.items():
            lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, tuple):
        return "(" + ",".join(_fmt(v) for v in value) + ")"
    return str(value)


def format_table(rows: Sequence[Mapping[str, Any]]) -> str:
    """Fixed-width plain-text table from row dicts (union of keys)."""
    if not rows:
        return "(no rows)"
    keys: List[str] = []
    for row in rows:
        for k in row:
            if k not in keys:
                keys.append(k)
    cells = [[_fmt(row.get(k, "")) for k in keys] for row in rows]
    widths = [
        max(len(keys[i]), *(len(r[i]) for r in cells)) for i in range(len(keys))
    ]
    header = "  ".join(k.ljust(w) for k, w in zip(keys, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(c.ljust(w) for c, w in zip(r, widths)) for r in cells)
    return "\n".join([header, sep, body])
