"""Section V-C — robustness vs ease-of-learning trade-offs.

Two knobs, two experiments:

* **Lipschitz constant K** — "choosing a low value of K leads to
  satisfying the inequalities ... with high numbers of faults", but a
  low-K activation is less discriminating, so learning is harder (more
  epochs / worse fit at equal effort).  We train the same architecture
  at several K and report (robustness = tolerated uniform fraction,
  learning = achieved sup error at fixed epochs); robustness must fall
  with K while the fit improves (or the fit at the lowest K is the
  worst).
* **Synaptic weights** — "imposing low weights leaves room for higher
  numbers of faults ... more neurons are needed to sum to the desired
  value, if the weights are lower."  We train under max-norm caps of
  decreasing size; tolerance must grow as the cap shrinks while the
  achievable fit degrades.
"""

from __future__ import annotations

import numpy as np

from ..analysis.stats import is_monotone
from ..core.tolerance import max_uniform_fraction
from ..network.builder import build_mlp
from ..training.data import gaussian_bump, grid_inputs, sample_dataset, sup_error
from ..training.regularizers import MaxNormConstraint
from ..training.trainer import Trainer
from .registry import experiment
from .runner import ExperimentResult

__all__ = ["run_tradeoff_k", "run_tradeoff_weights"]


def _train_fresh(
    k: float,
    *,
    max_norm: float | None,
    epochs: int,
    seed: int,
    hidden=(12,),
):
    """Train one network; returns (network, sup_error achieved)."""
    target = gaussian_bump(2, width=0.2)
    net = build_mlp(
        2,
        list(hidden),
        activation={"name": "sigmoid", "k": k},
        init={"name": "uniform", "scale": 0.3},
        output_scale=0.3,
        seed=seed,
    )
    rng = np.random.default_rng(seed)
    X, y = sample_dataset(target, 512, rng=rng)
    regs = [MaxNormConstraint(max_norm)] if max_norm is not None else []
    trainer = Trainer(optimizer="adam", regularizers=regs)
    trainer.train(net, X, y, epochs=epochs, batch_size=64, rng=rng)
    grid = grid_inputs(2, 25)
    return net, sup_error(net, target, grid)


@experiment(
    "tradeoff_k",
    title="Steep activations learn faster but tolerate less",
    anchor="Section V-C (activation steepness)",
    tags=("tradeoff", "training"),
    runtime="slow",
    order=120,
)
def run_tradeoff_k(
    *,
    k_grid: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0),
    epochs: int = 60,
    epsilon: float = 0.5,
    epsilon_prime: float = 0.2,
    seed: int = 41,
) -> ExperimentResult:
    """The K trade-off: robustness falls with K, fitting power rises."""
    rows = []
    robustness, fits = [], []
    for k in k_grid:
        net, err = _train_fresh(k, max_norm=0.8, epochs=epochs, seed=seed)
        frac = max_uniform_fraction(net, epsilon, epsilon_prime, mode="crash")
        robustness.append(frac)
        fits.append(err)
        rows.append(
            {
                "K": k,
                "tolerated_uniform_fraction": frac,
                "achieved_sup_error": err,
                "w_maxes": tuple(round(w, 3) for w in net.weight_maxes()),
            }
        )
    checks = {
        # Analytic side: lower K satisfies the bound with more faults.
        "robustness_decreases_with_K": is_monotone(
            robustness, increasing=False, tolerance=1e-12
        ),
        "lowest_K_is_most_robust": robustness[0] == max(robustness),
        # Learning side: the least discriminating activation fits no
        # better than the steepest one (small tolerance for MC noise).
        "lowest_K_fits_worst": fits[0] >= fits[-1] - 0.02,
    }
    return ExperimentResult(
        experiment_id="tradeoff_k",
        description="Section V-C trade-off on K: low K buys fault "
        "tolerance, high K buys discriminating power",
        rows=rows,
        shape_checks=checks,
        metrics={
            "robustness_span": robustness[0] - robustness[-1],
            "fit_span": fits[0] - fits[-1],
        },
        notes=["learning cost proxied by achieved sup error at fixed epochs"],
    )


@experiment(
    "tradeoff_weights",
    title="Large weights learn faster but tolerate less",
    anchor="Section V-C (weight magnitude)",
    tags=("tradeoff", "training"),
    runtime="slow",
    order=130,
)
def run_tradeoff_weights(
    *,
    caps: tuple[float, ...] = (0.1, 0.2, 0.4, 0.8),
    epochs: int = 60,
    epsilon: float = 0.5,
    epsilon_prime: float = 0.2,
    seed: int = 43,
) -> ExperimentResult:
    """The weight trade-off: small caps buy tolerance, cost accuracy."""
    rows = []
    robustness, fits = [], []
    for cap in caps:
        net, err = _train_fresh(0.5, max_norm=cap, epochs=epochs, seed=seed)
        frac = max_uniform_fraction(net, epsilon, epsilon_prime, mode="crash")
        robustness.append(frac)
        fits.append(err)
        rows.append(
            {
                "weight_cap": cap,
                "w_max_realised": max(net.weight_maxes()),
                "tolerated_uniform_fraction": frac,
                "achieved_sup_error": err,
            }
        )
    checks = {
        "caps_are_respected": all(
            r["w_max_realised"] <= r["weight_cap"] + 1e-12 for r in rows
        ),
        "robustness_decreases_as_cap_grows": is_monotone(
            robustness, increasing=False, tolerance=1e-12
        ),
        "tightest_cap_is_most_robust": robustness[0] == max(robustness),
        # Small tolerance: with few epochs the fits can tie.
        "tightest_cap_fits_worst": fits[0] >= fits[-1] - 0.02,
    }
    return ExperimentResult(
        experiment_id="tradeoff_weights",
        description="Section V-C trade-off on weights: max-norm caps "
        "trade approximation power for failure tolerance",
        rows=rows,
        shape_checks=checks,
        metrics={
            "robustness_span": robustness[0] - robustness[-1],
            "fit_span": fits[0] - fits[-1],
        },
    )
