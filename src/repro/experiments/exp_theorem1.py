"""Theorem 1 — single-layer crash tolerance: ``Nfail <= (eps-eps')/w_m``.

Validation protocol:

* **Soundness** — on a generic single-layer network, the *exhaustive*
  crash campaign (every subset of ``Nfail`` neurons, every probe
  input) never adds more error than ``Nfail * w_m``; hence any
  ``Nfail`` within the bound keeps the epsilon-approximation.
* **Tightness** — on the saturated worst-case construction
  (:func:`repro.experiments.constructions.saturated_single_layer`) the
  observed error approaches ``Nfail * w_m`` (ratio -> 1), so no larger
  ``Nfail`` could be tolerated in general — the paper's adversary
  killing "key neurons ... broadcasting the highest possible value".
"""

from __future__ import annotations

import numpy as np

from ..analysis.stats import dominance_ratio
from ..core.bounds import theorem1_max_crashes
from ..faults.campaign import exhaustive_crash_campaign
from ..faults.injector import FaultInjector
from ..faults.scenarios import crash_scenario
from ..network.builder import build_mlp
from .constructions import saturated_single_layer
from .registry import experiment
from .runner import ExperimentResult

__all__ = ["run_theorem1"]


@experiment(
    "theorem1",
    title="Single-layer crash tolerance bound",
    anchor="Theorem 1",
    tags=("theorem", "crash"),
    runtime="fast",
    order=40,
)
def run_theorem1(
    *,
    n_neurons: int = 10,
    max_fail: int = 4,
    n_inputs: int = 64,
    seed: int = 3,
) -> ExperimentResult:
    """Validate Theorem 1's bound and its tightness."""
    rng = np.random.default_rng(seed)

    # --- soundness on a generic net ------------------------------------
    net = build_mlp(
        2,
        [n_neurons],
        activation={"name": "sigmoid", "k": 1.0},
        init={"name": "uniform", "scale": 0.6},
        output_scale=0.4,
        seed=seed,
    )
    w_m = net.weight_max(2)
    x = rng.random((n_inputs, 2))
    injector = FaultInjector(net, capacity=net.output_bound)

    rows = []
    bounds, observed = [], []
    for n_fail in range(1, max_fail + 1):
        result = exhaustive_crash_campaign(injector, x, n_fail)
        bound = n_fail * w_m
        rows.append(
            {
                "construction": "generic",
                "n_fail": n_fail,
                "bound": bound,
                "worst_observed": result.max_error,
                "configurations": result.num_scenarios,
                "tightness": result.max_error / bound,
            }
        )
        bounds.append(bound)
        observed.append(result.max_error)

    # --- tightness on the saturated construction ------------------------
    worst = saturated_single_layer(n_neurons, w_max=0.05)
    w_m_worst = worst.weight_max(2)
    probe = np.ones((1, 1))
    inj_worst = FaultInjector(worst, capacity=worst.output_bound)
    tight_rows = []
    for n_fail in (1, 2, 3):
        scenario = crash_scenario([(1, i) for i in range(n_fail)])
        err = inj_worst.output_error(probe, scenario)
        bound = n_fail * w_m_worst
        tight_rows.append(
            {
                "construction": "saturated",
                "n_fail": n_fail,
                "bound": bound,
                "worst_observed": err,
                "configurations": 1,
                "tightness": err / bound,
            }
        )
    rows.extend(tight_rows)

    # --- the closed-form max --------------------------------------------
    eps, eps_prime = 0.3, 0.1
    nmax = theorem1_max_crashes(eps, eps_prime, w_m)

    checks = {
        "bound_dominates_exhaustive_campaign": dominance_ratio(bounds, observed)
        <= 1.0 + 1e-9,
        "tightness_ratio_above_99_percent": all(
            r["tightness"] > 0.99 for r in tight_rows
        ),
        "max_crashes_formula_is_floor": nmax == int((eps - eps_prime) / w_m + 1e-12),
        "bound_grows_linearly_in_nfail": all(
            abs(rows[i]["bound"] / rows[0]["bound"] - (i + 1)) < 1e-9
            for i in range(max_fail)
        ),
    }
    return ExperimentResult(
        experiment_id="theorem1",
        description="Single-layer crash bound Nfail <= (eps-eps')/w_m: "
        "sound on exhaustive injection, tight on the saturated adversary",
        rows=rows,
        shape_checks=checks,
        metrics={
            "w_max": w_m,
            "theorem1_max_crashes(eps=.3,eps'=.1)": float(nmax),
            "best_tightness": max(r["tightness"] for r in tight_rows),
        },
    )
