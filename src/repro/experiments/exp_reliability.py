"""Extension — probabilistic reliability from the worst-case bounds.

Not a figure of the paper, but its natural deployment-facing corollary
(and the question the introduction's flight-control/radar/electric-car
motivation implies): if neurons fail independently with probability
``p``, Theorem 3 certifies survival whenever the per-layer *counts*
land in the tolerated region — giving an exact, placement-free lower
bound on mission reliability.

Validation protocol:

* the certified survival probability is 1 at ``p = 0``, decreases
  monotonically in ``p``, and increases with the over-provision budget;
* Monte-Carlo injection (which also credits lucky placements) always
  estimates at least the certified bound;
* over-provisioning by replication (Corollary 1) measurably flattens
  the mission-survival curve — the reliability payoff of redundancy.
"""

from __future__ import annotations

import numpy as np

from ..core.overprovision import replicate_network
from ..faults.injector import FaultInjector
from ..faults.masks import MaskCampaignEngine
from ..faults.reliability import (
    certified_survival_probability,
    mission_survival_curve,
    monte_carlo_survival,
)
from ..faults.types import IntermittentFault, SynapseNoiseFault
from ..network.builder import build_mlp
from .registry import experiment
from .runner import ExperimentResult

__all__ = ["run_reliability"]


@experiment(
    "extension_reliability",
    title="Certified survival under iid neuron failures",
    anchor="Extension (Section V-A reliability)",
    tags=("extension", "reliability", "campaign"),
    runtime="medium",
    order=150,
)
def run_reliability(
    *,
    epsilon: float = 0.5,
    epsilon_prime: float = 0.1,
    p_grid: tuple[float, ...] = (0.0, 0.02, 0.05, 0.1, 0.2),
    n_trials: int = 250,
    seed: int = 61,
) -> ExperimentResult:
    """Validate the certified-survival layer end to end."""
    rng = np.random.default_rng(seed)
    net = build_mlp(
        2,
        [10, 8],
        activation={"name": "sigmoid", "k": 0.5},
        init={"name": "uniform", "scale": 0.08},
        output_scale=0.05,
        seed=seed,
    )
    x = rng.random((32, 2))

    # One mask engine for the whole p-grid: the weight casts, nominal
    # forward pass and chunk buffers are shared by every survival
    # campaign below instead of being rebuilt per grid point.
    engine = MaskCampaignEngine(
        FaultInjector(net, capacity=net.output_bound), x
    )

    rows = []
    certified, estimated, estimates = [], [], {}
    for p in p_grid:
        cert = certified_survival_probability(net, p, epsilon, epsilon_prime)
        est = monte_carlo_survival(
            net, p, epsilon, epsilon_prime, x, n_trials=n_trials, seed=seed,
            engine=engine,
        )
        certified.append(cert)
        estimated.append(est.survival)
        estimates[p] = est
        rows.append(
            {
                "p_fail": p,
                "certified_survival": cert,
                "mc_survival": est.survival,
                "mc_ci": (round(est.ci_low, 3), round(est.ci_high, 3)),
            }
        )

    # Beyond permanent crashes: the widened mask engine runs the whole
    # fault taxonomy, so the same survival machinery (and the same
    # shared engine) prices transient and synapse-grained failure
    # modes.  A transient crash (hits only a fraction of evaluations)
    # can only be gentler than a permanent one at the same p; small
    # Gaussian noise on i.i.d.-failing synapses is gentler still.
    p_mixed = 0.1
    permanent = estimates.get(p_mixed) or monte_carlo_survival(
        net, p_mixed, epsilon, epsilon_prime, x, n_trials=n_trials,
        seed=seed, engine=engine,
    )
    transient = monte_carlo_survival(
        net, p_mixed, epsilon, epsilon_prime, x,
        fault=IntermittentFault(p=0.5), n_trials=n_trials, seed=seed,
        engine=engine,
    )
    synapse_noise = monte_carlo_survival(
        net, p_mixed, epsilon, epsilon_prime, x,
        fault=SynapseNoiseFault(sigma=0.05),
        capacity=net.output_bound, n_trials=n_trials, seed=seed,
        engine=engine,
    )
    for label, est in (
        (f"permanent crash @ p={p_mixed}", permanent),
        (f"transient crash (hit 50%) @ p={p_mixed}", transient),
        (f"synapse noise (sigma 0.05) @ p={p_mixed}", synapse_noise),
    ):
        rows.append(
            {
                "p_fail": label,
                "certified_survival": est.certified_lower_bound,
                "mc_survival": est.survival,
                "mc_ci": (round(est.ci_low, 3), round(est.ci_high, 3)),
            }
        )

    # Over-provisioning flattens the mission curve.  The rate is chosen
    # so per-neuron failure probability reaches ~0.6 by the horizon —
    # deep into the regime where the compact network's certificate dies.
    # The mission grid shares the same engine as the p-grid above: the
    # weight casts and nominal pass are paid once for the whole
    # experiment, and every certified point gains its Monte-Carlo twin.
    times = (0.0, 10.0, 40.0)
    rate = 0.025
    base_curve = mission_survival_curve(
        net, rate, times, epsilon, epsilon_prime,
        x=x, n_trials=n_trials, seed=seed, engine=engine,
    )
    big = replicate_network(net, 3)
    big_curve = mission_survival_curve(
        big, rate, times, epsilon, epsilon_prime
    )
    for (t, pb, pm), (_, pr) in zip(base_curve, big_curve):
        rows.append(
            {
                "p_fail": f"t={t} (rate {rate})",
                "certified_survival": pb,
                "mc_survival": pm,
                "mc_ci": f"(replicated x3 certified: {pr:.4f})",
            }
        )

    checks = {
        "certain_at_p_zero": certified[0] == 1.0 and estimated[0] == 1.0,
        "certified_monotone_in_p": all(
            a >= b - 1e-12 for a, b in zip(certified, certified[1:])
        ),
        "mc_dominates_certified": all(
            e >= c - 0.06  # MC noise allowance at n_trials
            for e, c in zip(estimated, certified)
        ),
        "replication_flattens_mission_curve": all(
            pr >= pb - 1e-12
            for (_, pb, _), (_, pr) in zip(base_curve, big_curve)
        )
        and big_curve[-1][1] > base_curve[-1][1],
        "mission_mc_dominates_certified": all(
            pm >= pb - 0.06 for (_, pb, pm) in base_curve
        ),
        # Transient faults dominate their permanent twin (MC noise
        # allowance), and tiny clipped synapse noise is gentler still.
        "transient_no_worse_than_permanent": transient.survival
        >= permanent.survival - 0.06,
        "synapse_noise_no_worse_than_crash": synapse_noise.survival
        >= permanent.survival - 0.06,
    }
    return ExperimentResult(
        experiment_id="extension_reliability",
        description="Certified survival under iid neuron failures; "
        "replication flattens the mission curve (extension, not a "
        "paper figure)",
        rows=rows,
        shape_checks=checks,
        metrics={
            "certified_at_p0.05": certified[2],
            "mc_at_p0.05": estimated[2],
            "mission_gain_at_t20": big_curve[-1][1] - base_curve[-1][1],
        },
        notes=["extension: the paper proves the worst case; this layer "
               "integrates it against iid failure probabilities"],
    )
