"""Baseline comparison — state-machine replication vs neuron-grained
over-provisioning (paper, Introduction).

The classical route to robustness treats the whole network as one
state machine, replicates it on ``r`` machines and votes; the unit of
failure is a machine.  The paper's route keeps one network and spends
extra neurons inside it.  This experiment implements both and compares
them on the axis the paper highlights — *neurons deployed per failure
masked* — plus a correctness demonstration of each scheme on its own
failure model:

* SMR masks ``floor((r-1)/2)`` arbitrary *machine* failures exactly
  (median voting; verified by injection, including the breaking point
  at ``f = tolerance + 1``);
* Corollary-1 replication masks a certified distribution of *neuron*
  failures (Theorem 3; verified by injection);
* the cost table shows the regimes: SMR pays 3x to mask its first
  failure but masks *total machine loss*; intra-network
  over-provisioning masks only scattered neuron deaths but does so at
  finer granularity (and no voting client).
"""

from __future__ import annotations

import numpy as np

from ..core.overprovision import replicate_network
from ..core.tolerance import greedy_max_total_failures
from ..distributed.replication import ReplicatedEnsemble, smr_neuron_cost, smr_tolerance
from ..faults.campaign import _monte_carlo_campaign
from ..faults.injector import FaultInjector
from ..network.builder import build_mlp
from .registry import experiment
from .runner import ExperimentResult

__all__ = ["run_smr_baseline"]


@experiment(
    "baseline_smr",
    title="State-machine replication vs neuron-grained over-provisioning",
    anchor="Introduction (SMR baseline)",
    tags=("baseline", "campaign"),
    runtime="medium",
    order=170,
)
def run_smr_baseline(
    *,
    epsilon: float = 0.5,
    epsilon_prime: float = 0.1,
    replica_counts: tuple[int, ...] = (1, 3, 5, 7),
    n_scenarios: int = 100,
    seed: int = 71,
) -> ExperimentResult:
    """Compare the two robustness architectures on cost and guarantees."""
    rng = np.random.default_rng(seed)
    base = build_mlp(
        2,
        [10, 8],
        activation={"name": "sigmoid", "k": 0.5},
        init={"name": "uniform", "scale": 0.12},
        output_scale=0.08,
        seed=seed,
    )
    x = rng.random((48, 2))
    budget = epsilon - epsilon_prime

    rows = []
    # --- SMR side ----------------------------------------------------------
    smr_ok = True
    smr_break_ok = True
    for r in replica_counts:
        ensemble = ReplicatedEnsemble.of_copies(base, r)
        tol = smr_tolerance(r)
        # Byzantine replicas emitting a huge value: masked up to tol.
        for i in range(tol):
            ensemble.make_replica_byzantine(i, 1e6)
        err_at_tol = ensemble.vote_error(x, base)
        smr_ok &= err_at_tol <= 1e-9
        # One more Byzantine replica breaks the vote (for odd r >= 3).
        if tol + 1 <= r - 1:
            ensemble.make_replica_byzantine(tol, 1e6)
            err_beyond = ensemble.vote_error(x, base)
            smr_break_ok &= err_beyond > budget
        rows.append(
            {
                "scheme": f"SMR r={r}",
                "neurons_deployed": smr_neuron_cost(base, r),
                "failures_masked": tol,
                "failure_unit": "machine",
                "worst_error_at_tolerance": err_at_tol,
            }
        )

    # --- paper side ----------------------------------------------------------
    paper_ok = True
    for r in (1, 2, 4):
        net = replicate_network(base, r)
        dist = greedy_max_total_failures(net, epsilon, epsilon_prime, mode="crash")
        injector = FaultInjector(net, capacity=net.output_bound)
        campaign = _monte_carlo_campaign(
            injector, x, dist, n_scenarios=n_scenarios, seed=seed
        )
        paper_ok &= campaign.max_error <= budget + 1e-9
        rows.append(
            {
                "scheme": f"over-provision r={r}",
                "neurons_deployed": net.num_neurons,
                "failures_masked": sum(dist),
                "failure_unit": "neuron",
                "worst_error_at_tolerance": campaign.max_error,
            }
        )

    # Cost-per-masked-failure comparison at comparable deployments.
    smr3 = next(r for r in rows if r["scheme"] == "SMR r=3")
    op_rows = [r for r in rows if r["scheme"].startswith("over-provision")
               and r["failures_masked"] > 0]
    finer_grained = bool(op_rows) and any(
        r["neurons_deployed"] <= smr3["neurons_deployed"]
        and r["failures_masked"] >= 1
        for r in op_rows
    )

    checks = {
        "smr_masks_exactly_floor_half": smr_ok,
        "smr_breaks_one_past_tolerance": smr_break_ok,
        "overprovision_respects_theorem3": paper_ok,
        "overprovision_masks_neuron_faults_below_smr3_cost": finer_grained,
        "smr_single_replica_masks_nothing": smr_tolerance(1) == 0,
    }
    return ExperimentResult(
        experiment_id="baseline_smr",
        description="Classical whole-network replication (SMR + median "
        "vote) vs the paper's neuron-grained over-provisioning",
        rows=rows,
        shape_checks=checks,
        metrics={
            "smr3_neurons_per_masked_failure": smr3["neurons_deployed"]
            / max(1, smr3["failures_masked"]),
        },
        notes=[
            "baseline: the Introduction's alternative design; the unit of "
            "failure is the machine, so intra-network neuron deaths are "
            "outside its model (and vice versa)"
        ],
    )
