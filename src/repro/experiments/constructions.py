"""Worst-case network constructions used by the tightness experiments.

The paper's tightness proofs pick (a) inputs on which the failing
neurons emit values at the activation maximum, (b) failing neurons
carrying the maximal weights, and (c) positively-proportional error
contributions.  Two constructions realise those equality cases
empirically:

* :func:`saturated_single_layer` — Theorem 1's adversary: every neuron
  saturates near 1 on the probe input and every output weight equals
  ``w_m``, so crashing ``f`` neurons removes ``~ f * w_m`` from the
  output;
* :func:`linear_regime_network` — Theorems 2-4's equality case: a
  hard-sigmoid network biased into its *linear* region with all-equal
  positive weights, where a small emission error ``lambda`` propagates
  *exactly* as ``lambda * K^(L-l) * prod (N * w)`` — Fep with ``C``
  replaced by ``lambda`` is attained to machine precision.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..network.activations import HardSigmoid, Sigmoid
from ..network.layers import DenseLayer
from ..network.model import FeedForwardNetwork

__all__ = [
    "saturated_single_layer",
    "linear_regime_network",
    "linear_regime_probe",
    "linear_regime_safety_margin",
]


def saturated_single_layer(
    n_neurons: int = 12,
    *,
    w_max: float = 0.05,
    input_dim: int = 1,
    k: float = 1.0,
    drive: float = 60.0,
) -> FeedForwardNetwork:
    """Theorem-1 worst case: saturated neurons, all-equal output weights.

    Every hidden neuron has a large positive input drive, so on the
    probe input ``x = 1`` it emits ``sigmoid(4k * drive) ~ 1``; the
    output weights all equal ``w_max`` (positively proportional).
    Crashing any ``f`` neurons then removes ``f * w_max * y ~ f * w_max``
    — the bound's equality case.
    """
    if n_neurons < 2:
        raise ValueError(f"need at least 2 neurons, got {n_neurons}")
    weights = np.full((n_neurons, input_dim), drive, dtype=np.float64)
    layer = DenseLayer(
        input_dim,
        n_neurons,
        Sigmoid(k),
        weights=weights,
        use_bias=False,
    )
    out_w = np.full((1, n_neurons), w_max, dtype=np.float64)
    return FeedForwardNetwork([layer], out_w)


def linear_regime_network(
    layer_sizes: Sequence[int],
    *,
    input_dim: int = 2,
    k: float = 1.0,
    margin: float = 0.25,
) -> FeedForwardNetwork:
    """Theorem-2/3/4 equality case: hard sigmoid in its linear region.

    Construction: ``HardSigmoid(k)`` activations (value ``k*s + 1/2``
    while ``|s| < 1/(2k)``), no biases, all weights positive and equal
    per stage, sized so that every pre-activation stays strictly inside
    the linear window for all inputs in the cube::

        w^(1) = margin / (2k * d)          (|s_1| <= d * w1 < 1/(2k))
        w^(l) = margin / (2k * N_{l-1})    (|s_l| <= N * w * y_max,
                                            y_max <= 1)

    In the linear regime the network is *affine*, the per-neuron slope
    is exactly ``k``, and error contributions are positively
    proportional — so an emission offset ``lambda`` at layer ``l``
    reaches the output multiplied by exactly
    ``k^(L-l) * prod_{l'>l} N_l' w^(l')``, attaining Theorem 2's bound
    with ``C = lambda``.

    ``margin < 1`` keeps slack for the injected perturbations; the
    remaining slack is reported by :func:`linear_regime_safety_margin`.
    """
    layer_sizes = [int(n) for n in layer_sizes]
    if not layer_sizes or any(n < 1 for n in layer_sizes):
        raise ValueError(f"bad layer sizes {layer_sizes}")
    if not 0 < margin < 1:
        raise ValueError(f"margin must be in (0, 1), got {margin}")
    act = HardSigmoid(k)
    layers = []
    fan_in = input_dim
    for l, n in enumerate(layer_sizes, start=1):
        w_val = margin / (2.0 * k * fan_in)
        weights = np.full((n, fan_in), w_val, dtype=np.float64)
        layers.append(DenseLayer(fan_in, n, act, weights=weights, use_bias=False))
        fan_in = n
    out_w = np.full((1, fan_in), margin / fan_in, dtype=np.float64)
    return FeedForwardNetwork(layers, out_w)


def linear_regime_probe(network: FeedForwardNetwork, value: float = 0.5) -> np.ndarray:
    """A probe input (constant coordinates) for the linear construction."""
    return np.full((1, network.input_dim), float(value))


def linear_regime_safety_margin(
    network: FeedForwardNetwork, x: np.ndarray
) -> float:
    """Distance (in pre-activation units) to the nearest clip boundary.

    Perturbation experiments must keep every induced pre-activation
    shift below this margin for the linear (equality-case) analysis to
    hold exactly.
    """
    margins = []
    y = np.asarray(x, dtype=np.float64)
    if y.ndim == 1:
        y = y[None, :]
    for layer in network.layers:
        s = layer.pre_activation(y)
        k = layer.activation.lipschitz
        # Linear while 0 < k*s + 1/2 < 1, i.e. |s| < 1/(2k).
        margins.append(float((0.5 / k) - np.abs(s).max()))
        y = layer.activation(s)
    return min(margins)
