"""Figure 1 — the example topology (d=3, L=3, N=(4,3,4)).

Figure 1 is illustrative, but it pins down the paper's model: inputs
and the output node are *clients* (dotted), not neurons; every neuron
of layer ``l-1`` feeds every neuron of layer ``l``; the output node is
linear.  We build exactly that network and assert the structural
invariants, which also exercises the topology exporter.
"""

from __future__ import annotations

import numpy as np

from ..analysis.topology import figure1_network_stats, to_graph
from ..network.builder import build_mlp
from .registry import experiment
from .runner import ExperimentResult

__all__ = ["run_figure1"]


@experiment(
    "figure1",
    title="Example topology robustness walk-through",
    anchor="Figure 1",
    tags=("figure", "crash"),
    runtime="fast",
    order=10,
)
def run_figure1(seed: int = 59) -> ExperimentResult:
    """Build the Figure-1 network and verify its structure."""
    net = build_mlp(
        3,
        [4, 3, 4],
        activation="sigmoid",
        init={"name": "uniform", "scale": 0.5},
        output_scale=0.5,
        seed=seed,
    )
    stats = figure1_network_stats(net)
    g = to_graph(net)

    # Synapse count of the full bipartite wiring (+ output stage).
    expected_synapses = 3 * 4 + 4 * 3 + 3 * 4 + 4 * 1
    rows = [
        {"property": "d (input clients)", "value": stats["input_dim"]},
        {"property": "L (layers)", "value": stats["depth"]},
        {"property": "N per layer", "value": stats["layer_sizes"]},
        {"property": "neurons", "value": stats["n_neurons"]},
        {"property": "synapses", "value": stats["n_synapses"]},
        {"property": "longest path (edges)", "value": stats["longest_path_len"]},
    ]
    checks = {
        "matches_paper_shape": stats["input_dim"] == 3
        and stats["depth"] == 3
        and stats["layer_sizes"] == (4, 3, 4),
        "clients_are_not_neurons": stats["n_clients"] == 3 + 1
        and stats["n_neurons"] == 11,
        "full_bipartite_wiring": stats["n_synapses"] == expected_synapses,
        "is_feedforward_dag": stats["is_dag"],
        "input_to_output_path_has_L_plus_1_hops": stats["longest_path_len"] == 4,
        "forward_pass_runs": bool(
            np.isfinite(net.forward(np.array([0.2, 0.5, 0.8]))).all()
        ),
    }
    return ExperimentResult(
        experiment_id="figure1",
        description="The example topology: d=3, L=3, N=(4,3,4); inputs "
        "and output node are clients",
        rows=rows,
        shape_checks=checks,
        metrics={"n_synapses": float(stats["n_synapses"])},
    )
