"""Extension — availability vs rejuvenation period: the boosting trade.

Section V-B's boosting scheme doubles as *software rejuvenation*: a
replica restarts fully repaired and serves its restart epoch in
boosted mode, with the reset stragglers of one
:func:`~repro.distributed.boosting.boosted_reset_masks` draw as that
epoch's crash mask.  Corollary 2 prices the restart — the blip is
bounded by ``Fep(tolerated)``, which the certificate keeps inside the
epsilon budget — so rejuvenation trades a *bounded, certified* error
blip against the *unbounded* error of accumulated wear-out faults.

Every campaign in the sweep is *declared*:
:func:`chaos_rejuvenation_spec` builds the
:class:`~repro.specs.ChaosSpec` for one rejuvenation period (``None``
= the no-repair baseline), the registry stores the canonical sweep
spec, and the entry point executes each through ``repro.run`` — the
artifact store keys caching/replay on the spec's content hash.

This experiment sweeps the rejuvenation period over a fleet whose
components wear out (Weibull lifetimes, ``shape > 1``) and validates
the trade:

* every rejuvenation period beats the no-repair baseline on
  availability (same seed, same fault schedule law);
* availability improves (weakly) as rejuvenation gets more frequent —
  the blips are certified within budget, so they never cost
  availability, only latency;
* on a fault-free fleet the rejuvenation blips are bounded by the
  analytic ``Fep(tolerated)`` (Corollary 2's guarantee, measured);
* the boosted restarts actually save latency (mean speedup > 1,
  Section V-B's entire point).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.fep import network_fep
from ..core.tolerance import greedy_max_total_failures
from ..specs import (
    ChaosSpec,
    NetworkRef,
    PolicySpec,
    ProcessSpec,
    run as run_spec,
)
from .registry import experiment
from .runner import ExperimentResult

__all__ = ["run_chaos_rejuvenation", "chaos_rejuvenation_spec"]

#: Same deterministic topology recipe as `chaos_survival`.
_NETWORK = NetworkRef(
    builder="mlp",
    params={
        "input_dim": 2,
        "hidden": [12, 10],
        "activation": {"name": "sigmoid", "k": 1.0},
        "init": {"name": "uniform", "scale": 0.4},
        "output_scale": 0.3,
        "seed": 5,
    },
)


def chaos_rejuvenation_spec(
    *,
    period: Optional[int] = 10,
    epsilon: float = 0.5,
    epsilon_prime: float = 0.1,
    failure_rate: float = 0.04,
    weibull_shape: float = 1.6,
    epochs: int = 60,
    n_replicas: int = 48,
    seed: int = 13,
    keep_errors: bool = False,
) -> ChaosSpec:
    """One wear-out rejuvenation campaign as a declarative spec.

    ``period=None`` is the no-repair baseline; otherwise the policy
    rejuvenates every ``period`` epochs with the straggler budget
    derived from the certificate at lowering (``tolerated=None``).
    """
    policy = (
        PolicySpec()
        if period is None
        else PolicySpec(kind="rejuvenate", period=int(period))
    )
    return ChaosSpec(
        network=_NETWORK,
        epsilon=epsilon,
        epsilon_prime=epsilon_prime,
        processes=(
            ProcessSpec(
                kind="lifetime", rate=failure_rate, shape=weibull_shape
            ),
        ),
        detectors=(),
        policy=policy,
        epochs=epochs,
        replicas=n_replicas,
        batch=16,
        seed=seed,
        probe_seed=5,
        keep_errors=keep_errors,
    )


@experiment(
    "chaos_rejuvenation",
    title="Availability vs rejuvenation period (boosted restarts)",
    anchor="Extension (Section V-B boosting as rejuvenation)",
    tags=("extension", "chaos", "campaign", "boosting"),
    runtime="medium",
    order=161,
    spec=chaos_rejuvenation_spec(),
)
def run_chaos_rejuvenation(
    *,
    epsilon: float = 0.5,
    epsilon_prime: float = 0.1,
    failure_rate: float = 0.04,
    weibull_shape: float = 1.6,
    epochs: int = 60,
    n_replicas: int = 48,
    periods: tuple = (5, 10, 20),
    seed: int = 13,
) -> ExperimentResult:
    """Sweep availability vs rejuvenation period, the boosting trade-off."""
    net = _NETWORK.resolve()
    # The straggler budget the certificate tolerates: resets drawn from
    # it keep every restart blip inside the epsilon budget.
    tolerated = greedy_max_total_failures(net, epsilon, epsilon_prime)
    fep_bound = network_fep(net, tolerated, mode="crash")

    def campaign(period: Optional[int]):
        return run_spec(
            chaos_rejuvenation_spec(
                period=period,
                epsilon=epsilon,
                epsilon_prime=epsilon_prime,
                failure_rate=failure_rate,
                weibull_shape=weibull_shape,
                epochs=epochs,
                n_replicas=n_replicas,
                seed=seed,
            )
        )

    baseline = campaign(None)
    rows = [
        {
            "period": "none",
            "availability": baseline.availability,
            "violations": baseline.violation_fraction,
            "mttr_epochs": baseline.mttr,
            "rejuvenations": 0,
            "mean_boost_speedup": None,
        }
    ]
    sweeps = []
    for period in periods:
        rep = campaign(int(period))
        sweeps.append((int(period), rep))
        rows.append(
            {
                "period": int(period),
                "availability": rep.availability,
                "violations": rep.violation_fraction,
                "mttr_epochs": rep.mttr,
                "rejuvenations": rep.policy_stats.get("rejuvenations", 0),
                "mean_boost_speedup": rep.policy_stats.get(
                    "mean_boost_speedup"
                ),
            }
        )

    # Corollary-2 blip audit on a fault-free fleet: with a zero failure
    # rate every nonzero error is a rejuvenation reset blip, so the
    # worst epoch error must sit under the analytic Fep bound.
    quiet = run_spec(
        chaos_rejuvenation_spec(
            period=5,
            epsilon=epsilon,
            epsilon_prime=epsilon_prime,
            failure_rate=0.0,
            weibull_shape=1.0,
            epochs=20,
            n_replicas=16,
            seed=seed,
            keep_errors=True,
        )
    )
    worst_blip = float(quiet.errors.max())

    availabilities = [rep.availability for _, rep in sweeps]
    speedups = [
        rep.policy_stats.get("mean_boost_speedup") for _, rep in sweeps
    ]
    checks = {
        "rejuvenation_beats_no_repair": all(
            a > baseline.availability for a in availabilities
        ),
        "more_frequent_is_no_worse": all(
            a >= b - 5e-3
            for a, b in zip(availabilities, availabilities[1:])
        ),
        "restart_blip_within_fep_bound": worst_blip <= fep_bound + 1e-9,
        "blip_within_epsilon_budget": worst_blip
        <= (epsilon - epsilon_prime) + 1e-9,
        "boosted_restarts_save_latency": all(s and s > 1.0 for s in speedups),
    }
    return ExperimentResult(
        experiment_id="chaos_rejuvenation",
        description="Availability vs rejuvenation period under wear-out "
        "faults; boosted restarts keep blips inside the certified budget",
        rows=rows,
        shape_checks=checks,
        metrics={
            "baseline_availability": baseline.availability,
            "best_availability": max(availabilities),
            "worst_restart_blip": worst_blip,
            "fep_bound": fep_bound,
            "tolerated_total": float(sum(tolerated)),
            "spec_hash": chaos_rejuvenation_spec().content_hash(),
        },
        notes=[
            "extension: rejuvenation = full repair + one boosted-mode "
            "epoch whose reset set is a Corollary-2 straggler draw; the "
            "trade is a certified blip vs unbounded wear-out error",
            "every swept campaign is a ChaosSpec; the canonical "
            "period=10 spec keys the artifact cache",
        ],
    )
