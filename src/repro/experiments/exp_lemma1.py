"""Lemma 1 — with unbounded transmission, a single Byzantine neuron
defeats any network.

Validation protocol: fix a network and make one *last-layer* neuron
Byzantine (the paper's proof places it "at layer L", feeding the
linear output node — inner-layer damage is squashed by downstream
activations, which is exactly why the catastrophe needs the last
layer).  Sweep the capacity upward: the output error grows without
bound (linearly in C once the deviation dominates), so *no*
epsilon-guarantee survives — and equivalently, the tolerated failure
count from Theorem 3 collapses to zero as ``C -> inf``.
"""

from __future__ import annotations

import numpy as np

from ..analysis.stats import is_monotone
from ..core.tolerance import greedy_max_total_failures
from ..faults.injector import FaultInjector
from ..faults.scenarios import byzantine_scenario
from ..network.builder import build_mlp
from .registry import experiment
from .runner import ExperimentResult

__all__ = ["run_lemma1"]


@experiment(
    "lemma1",
    title="Unbounded transmission defeats any network",
    anchor="Lemma 1",
    tags=("lemma", "byzantine"),
    runtime="fast",
    order=90,
)
def run_lemma1(
    *,
    capacities: tuple[float, ...] = (1.0, 4.0, 16.0, 64.0, 256.0),
    epsilon: float = 0.4,
    epsilon_prime: float = 0.1,
    seed: int = 29,
) -> ExperimentResult:
    """Show the unbounded-transmission catastrophe quantitatively."""
    rng = np.random.default_rng(seed)
    net = build_mlp(
        2,
        [10, 8],
        activation={"name": "sigmoid", "k": 0.5},
        init={"name": "uniform", "scale": 0.5},
        output_scale=0.5,
        seed=seed,
    )
    x = rng.random((32, net.input_dim))
    # One Byzantine neuron in the LAST layer (the Lemma-1 proof's choice).
    scenario = byzantine_scenario([(net.depth, 0)], name="single-byzantine")

    rows = []
    errors, tolerated = [], []
    for c in capacities:
        injector = FaultInjector(net, capacity=c)
        err = injector.output_error(x, scenario)
        dist = greedy_max_total_failures(
            net, epsilon, epsilon_prime, capacity=c, mode="byzantine"
        )
        errors.append(err)
        tolerated.append(sum(dist))
        rows.append(
            {
                "capacity": c,
                "single_byzantine_error": err,
                "tolerated_failures": sum(dist),
                "breaks_eps_0.4": err > epsilon,
            }
        )

    # Linear-in-C growth once the emission dominates the nominal value.
    late_ratio = errors[-1] / errors[-2]
    cap_ratio = capacities[-1] / capacities[-2]

    checks = {
        "error_grows_unboundedly_with_capacity": is_monotone(
            errors, increasing=True
        )
        and errors[-1] > 10 * errors[0],
        "error_growth_is_asymptotically_linear_in_C": abs(late_ratio - cap_ratio)
        < 0.2 * cap_ratio,
        "large_capacity_breaks_any_epsilon": errors[-1] > epsilon,
        "tolerated_failures_vanish_as_C_grows": tolerated[-1] == 0
        and is_monotone(tolerated, increasing=False),
    }
    return ExperimentResult(
        experiment_id="lemma1",
        description="Unbounded transmission: one Byzantine neuron's damage "
        "grows linearly in C; tolerance collapses to zero",
        rows=rows,
        shape_checks=checks,
        metrics={
            "error_at_C1": errors[0],
            "error_at_Cmax": errors[-1],
            "growth_factor": errors[-1] / errors[0],
        },
    )
