"""Introduction's observation, operationalised — crash ≡ elimination.

"If the failures of a number of neurons do not impact the overall
result, then these neurons could have been eliminated from the design
of that network in the first place."  A tolerated crash distribution
is therefore a *certified pruning budget*: physically removing those
neurons provably keeps the epsilon-approximation.

Validation protocol:

* pruning a set S equals permanently crashing S (exact functional
  equivalence, the duality itself);
* pruning a certified distribution of lowest-influence neurons keeps
  the realised output shift within the Fep bound, hence within the
  budget — with the network now genuinely smaller;
* pruning an adversarially-chosen set of the same size hurts more
  (influence ordering matters), and pruning *more* than the certified
  budget can exceed it — the certificate is the safe boundary.
"""

from __future__ import annotations

import numpy as np

from ..analysis.pruning import certified_prune, lowest_influence_neurons, prune_neurons
from ..core.fep import network_fep
from ..core.tolerance import greedy_max_total_failures
from ..faults.adversary import adversarial_crash_scenario
from ..faults.injector import FaultInjector
from ..network.builder import build_mlp
from .registry import experiment
from .runner import ExperimentResult

__all__ = ["run_pruning"]


@experiment(
    "intro_pruning",
    title="Crash equals elimination: pruning as fault tolerance",
    anchor="Introduction (pruning)",
    tags=("baseline", "pruning"),
    runtime="fast",
    order=180,
)
def run_pruning(
    *,
    epsilon: float = 0.5,
    epsilon_prime: float = 0.1,
    seed: int = 73,
) -> ExperimentResult:
    """Validate certified pruning end to end."""
    rng = np.random.default_rng(seed)
    net = build_mlp(
        2,
        [14, 12],
        activation={"name": "sigmoid", "k": 0.5},
        init={"name": "uniform", "scale": 0.09},
        output_scale=0.05,
        seed=seed,
    )
    x = rng.random((48, 2))
    nominal = net.forward(x)
    budget = epsilon - epsilon_prime

    # --- the duality -----------------------------------------------------
    from ..faults.scenarios import crash_scenario

    victims = [(1, 0), (1, 3), (2, 5)]
    injector = FaultInjector(net, capacity=net.output_bound)
    crashed_out = injector.run(x, crash_scenario(victims))
    pruned_same = prune_neurons(net, victims)
    duality_gap = float(np.max(np.abs(pruned_same.forward(x) - crashed_out)))

    # --- certified pruning ------------------------------------------------
    dist = greedy_max_total_failures(net, epsilon, epsilon_prime, mode="crash")
    pruned, fep = certified_prune(net, epsilon, epsilon_prime, x)
    realised = float(np.max(np.abs(pruned.forward(x) - nominal)))

    # --- influence ordering matters ----------------------------------------
    adv = adversarial_crash_scenario(net, dist, x)
    adv_err = injector.output_error(x, adv)
    low_err = realised

    rows = [
        {
            "quantity": "prune-vs-crash duality gap",
            "value": duality_gap,
        },
        {
            "quantity": f"certified budget (f={dist}, Fep)",
            "value": fep,
        },
        {
            "quantity": "realised shift after certified prune",
            "value": realised,
        },
        {
            "quantity": "adversarial victims of same size",
            "value": adv_err,
        },
        {
            "quantity": "neurons removed",
            "value": float(net.num_neurons - pruned.num_neurons),
        },
    ]
    checks = {
        "pruning_is_exactly_permanent_crash": duality_gap < 1e-12,
        "certified_prune_within_budget": realised <= budget + 1e-9,
        "certified_prune_within_fep": realised <= fep + 1e-9,
        "network_actually_shrank": pruned.num_neurons
        == net.num_neurons - sum(dist),
        "low_influence_beats_adversarial": low_err <= adv_err + 1e-12,
        "certified_budget_nonempty": sum(dist) > 0,
    }
    return ExperimentResult(
        experiment_id="intro_pruning",
        description="Crash ≡ elimination: a tolerated distribution is a "
        "certified pruning budget (Introduction's over-provisioning "
        "observation)",
        rows=rows,
        shape_checks=checks,
        metrics={
            "neurons_removed": float(net.num_neurons - pruned.num_neurons),
            "budget_utilisation": realised / budget,
        },
    )
