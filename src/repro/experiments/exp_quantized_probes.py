"""Extension — quantized probe tiers vs the Theorem 5 precision bound.

Section V-A bounds the output error a network accrues when every
layer-``l`` emission carries an implementation error of at most
``lambda_l`` (Theorem 5); the engine backend seam turns that model
into runnable campaign tiers (``quantized-int8`` rounds emissions to 8
fractional bits, ``float16`` to IEEE binary16 — see
:mod:`repro.backends.quantized`).  This experiment relates those probe
tiers to the paper's Byzantine tolerance story:

* **Does certified tolerance survive reduced-precision inference?**
  The campaign injects worst-case Byzantine neurons (capacity ``C =
  sup phi``); the Theorem 2 Fep bound certifies the fault error at
  full precision, and Theorem 5 adds at most ``network_precision_bound
  (net, lambdas)`` on top — so every tier's empirical max error must
  stay under ``fep_bound + t5_bound``.  Observed per-tier deviations
  from the float64 reference are reported alongside their analytic
  envelope ``2 * t5_bound`` (quantisation moves the faulty and the
  nominal output by at most ``t5_bound`` each).

* **At what bit-width does the empirical error cross the bound's
  certification margin?**  Sweeping fixed-point probes over ``bits =
  2..12`` (fault-free, via :class:`~repro.quantization.quantizers.
  QuantizedNetwork`), the Theorem 5 bound halves per bit while the
  empirical max error tracks it from below; against an epsilon budget
  ``eps = fep_bound + margin`` the crossing bit-width is the smallest
  width whose precision penalty fits the margin.  The analytic
  crossing can only be later (more bits) than the empirical one —
  the audit that the bound is an over-approximation, never an under-
  approximation.

The campaign workload is *declared* as a :class:`~repro.specs.
CampaignSpec` with ``engine.backend = "quantized-int8"`` — the
registry stores it, the artifact store keys caching on its content
hash, and replaying the stored spec through ``repro.run`` reproduces
the identical errors (the other tiers are ``spec.replace`` variations
of the same workload).

Validation protocol:

* the Theorem 5 bound dominates the fault-free empirical max error at
  every swept bit-width (and the bound is monotone in bits);
* the quantized campaign engines match :class:`QuantizedNetwork`
  bit-for-bit on the nominal (fault-free) forward pass — the backend
  tier *is* the quantization model;
* every tier's campaign max error stays within the combined
  fault + precision bound (certified tolerance survives int8/float16);
* the empirical crossing bit-width is no later than the analytic one,
  and both lie inside the swept range;
* deterministic replay: re-running the stored spec reproduces the
  identical error distribution.
"""

from __future__ import annotations

import numpy as np

from ..core.fep import network_fep, network_precision_bound
from ..quantization import FixedPointQuantizer, HalfPrecisionQuantizer, QuantizedNetwork
from ..specs import (
    CampaignSpec,
    EngineSpec,
    FaultSpec,
    NetworkRef,
    SamplerSpec,
    run as run_spec,
)
from .registry import experiment
from .runner import ExperimentResult

__all__ = ["run_quantized_probes", "quantized_probes_spec"]

#: The probe topology: a builder ref hashes stably, so the declared
#: spec is replayable with no file on disk.
_NETWORK = NetworkRef(
    builder="mlp",
    params={
        "input_dim": 3,
        "hidden": [14, 10],
        "activation": {"name": "sigmoid", "k": 1.0},
        "init": {"name": "uniform", "scale": 0.4},
        "output_scale": 0.3,
        "seed": 13,
    },
)

#: Byzantine neuron failures per hidden layer (Theorem 2's f_l).
_DISTRIBUTION = (2, 1)


def quantized_probes_spec(
    *,
    n_scenarios: int = 3000,
    seed: int = 17,
    backend: str = "quantized-int8",
) -> CampaignSpec:
    """The Byzantine campaign on a quantized probe tier, as data."""
    return CampaignSpec(
        network=_NETWORK,
        sampler=SamplerSpec(kind="fixed", distribution=_DISTRIBUTION),
        fault=FaultSpec(kind="byzantine"),
        n_scenarios=n_scenarios,
        batch=16,
        seed=seed,
        engine=EngineSpec(backend=backend),
    )


def _tier_lambdas(net, backend: str):
    """Per-layer ``lambda_l`` of a backend tier (0.0 = full precision)."""
    if backend == "quantized-int8":
        return tuple(FixedPointQuantizer(8).max_error for _ in range(net.depth))
    if backend == "float16":
        return tuple(
            HalfPrecisionQuantizer().max_error for _ in range(net.depth)
        )
    return tuple(0.0 for _ in range(net.depth))


@experiment(
    "quantized_probes",
    title="Quantized probe tiers stay inside the Theorem 5 envelope",
    anchor="Extension (Theorem 5 x Theorem 2, quantized inference)",
    tags=("extension", "quantization", "campaign", "backend"),
    runtime="medium",
    order=165,
    spec=quantized_probes_spec(),
)
def run_quantized_probes(
    *,
    n_scenarios: int = 3000,
    seed: int = 17,
    bits_grid=tuple(range(2, 13)),
    margin_bits: int = 7,
) -> ExperimentResult:
    """Certified tolerance survives int8/float16 probe inference."""
    spec = quantized_probes_spec(n_scenarios=n_scenarios, seed=seed)
    net = spec.network.resolve()
    capacity = net.output_bound
    probes = np.random.default_rng(seed).random((spec.batch, net.input_dim))

    # Theorem 2: the certified fault bound at full precision.
    fep_bound = network_fep(
        net, _DISTRIBUTION, capacity=capacity, mode="byzantine"
    )

    # -- campaign tiers ---------------------------------------------------
    tiers = []
    ref_max = None
    for backend in ("numpy", "quantized-int8", "float16"):
        tier_spec = spec.replace(engine=spec.engine.replace(backend=backend))
        result = run_spec(tier_spec)
        lam = _tier_lambdas(net, backend)
        t5 = network_precision_bound(net, lam) if any(lam) else 0.0
        tier_max = float(np.max(result.errors))
        if backend == "numpy":
            ref_max = tier_max
        tiers.append(
            {
                "backend": backend,
                "lambda": max(lam),
                "max_error": tier_max,
                "theorem5_bound": t5,
                "combined_bound": fep_bound + t5,
                "deviation_from_reference": abs(tier_max - ref_max),
                "deviation_envelope": 2.0 * t5,
                "tolerance_survives": bool(tier_max <= fep_bound + t5 + 1e-12),
            }
        )

    # The quantized engines ARE the quantization model: their nominal
    # forward pass must match QuantizedNetwork on the same quantisers.
    from ..backends import build_engine
    from ..faults.injector import FaultInjector

    nominal_gap = 0.0
    for backend, qfactory in (
        ("quantized-int8", lambda: FixedPointQuantizer(8)),
        ("float16", HalfPrecisionQuantizer),
    ):
        eng = build_engine(
            backend, FaultInjector(net, capacity=capacity), probes
        )
        qnet = QuantizedNetwork(net, [qfactory() for _ in range(net.depth)])
        nominal_gap = max(
            nominal_gap,
            float(np.max(np.abs(eng.nominal - qnet.forward(probes)))),
        )

    # -- fault-free bit sweep vs the analytic bound -----------------------
    margin = network_precision_bound(
        net, [FixedPointQuantizer(margin_bits).max_error] * net.depth
    )
    rows = []
    for bits in bits_grid:
        qnet = QuantizedNetwork(
            net, [FixedPointQuantizer(int(bits)) for _ in range(net.depth)]
        )
        bound = network_precision_bound(net, qnet.lambdas)
        empirical = qnet.output_error(probes)
        rows.append(
            {
                "bits": int(bits),
                "lambda": float(qnet.lambdas[0]),
                "empirical_max_error": empirical,
                "theorem5_bound": bound,
                "within_margin_analytic": bool(bound <= margin + 1e-15),
                "within_margin_empirical": bool(empirical <= margin + 1e-15),
            }
        )
    analytic_cross = min(
        (r["bits"] for r in rows if r["within_margin_analytic"]), default=None
    )
    empirical_cross = min(
        (r["bits"] for r in rows if r["within_margin_empirical"]), default=None
    )

    # Replay-for-free: the stored spec reproduces the identical errors.
    replay = run_spec(CampaignSpec.from_dict(spec.to_dict()))
    declared = run_spec(spec)

    bounds = np.array([r["theorem5_bound"] for r in rows])
    checks = {
        "theorem5_dominates_empirical": all(
            r["empirical_max_error"] <= r["theorem5_bound"] + 1e-15
            for r in rows
        ),
        "bound_monotone_in_bits": bool(np.all(np.diff(bounds) < 0)),
        "backend_matches_quantized_network": nominal_gap == 0.0,
        "int8_tolerance_survives": tiers[1]["tolerance_survives"],
        "float16_tolerance_survives": tiers[2]["tolerance_survives"],
        "tiers_within_deviation_envelope": all(
            t["deviation_from_reference"] <= t["deviation_envelope"] + 1e-12
            for t in tiers
        ),
        "crossing_bitwidths_in_range": analytic_cross is not None
        and empirical_cross is not None,
        "empirical_crosses_no_later_than_analytic": (
            empirical_cross is not None
            and analytic_cross is not None
            and empirical_cross <= analytic_cross
        ),
        "deterministic_replay": bool(
            np.array_equal(declared.errors, replay.errors)
        ),
    }
    return ExperimentResult(
        experiment_id="quantized_probes",
        description="Quantized probe tiers (int8 / float16 backends) keep "
        "the Byzantine campaign inside the combined Theorem 2 + Theorem 5 "
        "envelope; the bit sweep locates the precision needed to preserve "
        "the certification margin",
        rows=rows,
        shape_checks=checks,
        metrics={
            "fep_bound": fep_bound,
            "reference_max_error": tiers[0]["max_error"],
            "int8_max_error": tiers[1]["max_error"],
            "float16_max_error": tiers[2]["max_error"],
            "int8_theorem5_bound": tiers[1]["theorem5_bound"],
            "float16_theorem5_bound": tiers[2]["theorem5_bound"],
            "analytic_crossing_bits": float(analytic_cross or -1),
            "empirical_crossing_bits": float(empirical_cross or -1),
            "nominal_gap_vs_quantized_network": nominal_gap,
            "spec_hash": quantized_probes_spec().content_hash(),
        },
        notes=[
            "extension: the engine backend seam realises Theorem 5's "
            "implementation-error model as runnable campaign tiers; the "
            "bound is audited against empirical max error at every "
            "swept bit-width",
            "workload declared as a CampaignSpec (backend="
            "quantized-int8): the artifact is keyed on the spec's "
            "content hash and replayable via `repro campaign --spec`",
            "tier deviations from the float64 reference sit inside the "
            "2*t5 envelope (quantisation moves faulty and nominal "
            "outputs by at most t5 each)",
        ],
    )
