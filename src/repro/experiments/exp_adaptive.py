"""Extension — adaptive sampling audits Theorem 2 at rare-event rates.

The paper validates its certified tolerance claims by Monte-Carlo
injection; at deployment scale the interesting violation rates sit at
``1e-3 .. 1e-6``, where a fixed-size campaign planned a priori
(Hoeffding: ``n = log(2/delta) / (2 (w/2)^2)`` scenarios for a CI of
width ``w``) wastes an order of magnitude more scenarios than the
realised variance needs.  This experiment runs the same rare-event
audit three ways and checks they agree:

* **fixed-S reference** — the a-priori Hoeffding sample size at the
  target width, the non-adaptive baseline every stopped run is
  measured against;
* **confidence-sequence stop** — the empirical-Bernstein anytime CI
  (:func:`repro.faults.adaptive.adaptive_campaign_errors`) declared as
  a ``StoppingSpec`` on the campaign spec, stopping at the first block
  boundary whose CI width meets the target;
* **stratified rare-event estimator** — binomial weights over
  total-fault-count shells with Theorem-3-certified shells pruned and
  the budget concentrated on the uncertified tail
  (``allocation='rare'``, the importance-weighted path).

Validation protocol:

* the stopped run halts before the cap and its anytime CI contains
  the fixed-S reference rate (the statistical-guarantee check);
* scenarios saved vs the fixed-S reference at equal CI width are
  >= 10x;
* the stopped errors are a bitwise prefix of the fixed-size campaign
  with the same seed, and the parallel run stops at the same epoch
  with identical errors (deterministic stop epoch);
* the stratified CI covers the reference rate too, and the Theorem-3
  certificate prunes a positive probability mass without sampling it.
"""

from __future__ import annotations

import numpy as np

from ..faults.adaptive import hoeffding_fixed_n
from ..specs import (
    CampaignSpec,
    FaultSpec,
    NetworkRef,
    SamplerSpec,
    StoppingSpec,
    run as run_spec,
)
from .registry import experiment
from .runner import ExperimentResult

__all__ = ["run_adaptive_sampling", "adaptive_sampling_spec"]

#: Same probe topology as the quantized-probes experiment: a builder
#: ref hashes stably, so the declared spec replays with no file on
#: disk.
_NETWORK = NetworkRef(
    builder="mlp",
    params={
        "input_dim": 3,
        "hidden": [14, 10],
        "activation": {"name": "sigmoid", "k": 1.0},
        "init": {"name": "uniform", "scale": 0.4},
        "output_scale": 0.3,
        "seed": 13,
    },
)

#: The audited violation level: around the p99.97 of the error
#: distribution under this workload, so the true rate lives in the
#: rare-event regime (~3e-4) a fixed-size campaign can barely resolve.
_THRESHOLD = 0.5
_TARGET_CI = 0.01
_DELTA = 0.05


def adaptive_sampling_spec(
    *,
    n_cap: int = 200_000,
    seed: int = 23,
) -> CampaignSpec:
    """The rare-event audit with confidence-sequence stopping, as data."""
    return CampaignSpec(
        network=_NETWORK,
        sampler=SamplerSpec(kind="bernoulli", p_fail=0.08),
        fault=FaultSpec(kind="crash"),
        n_scenarios=n_cap,
        batch=16,
        seed=seed,
        threshold=_THRESHOLD,
        stopping=StoppingSpec(
            method="empirical_bernstein",
            target_ci=_TARGET_CI,
            delta=_DELTA,
            min_scenarios=1024,
        ),
    )


@experiment(
    "adaptive_sampling",
    title="Confidence-sequence stopping matches the fixed-S rare-event audit",
    anchor="Extension (Theorem 2 audit, adaptive sampling)",
    tags=("extension", "adaptive", "campaign", "statistics"),
    runtime="fast",
    order=170,
    spec=adaptive_sampling_spec(),
)
def run_adaptive_sampling(
    *,
    n_cap: int = 200_000,
    seed: int = 23,
) -> ExperimentResult:
    """Anytime CI + stratified estimator vs the fixed-S reference."""
    spec = adaptive_sampling_spec(n_cap=n_cap, seed=seed)

    # Fixed-S reference: the a-priori Hoeffding size at the target CI.
    n_ref = hoeffding_fixed_n(_TARGET_CI, _DELTA)
    reference = run_spec(spec.replace(stopping=None, n_scenarios=n_ref))
    ref_rate = reference.fraction_exceeding(_THRESHOLD)

    # Confidence-sequence stop (serial, parallel, and bitwise prefix).
    adaptive = run_spec(spec)
    rep = adaptive.adaptive
    parallel = run_spec(spec, workers=2)
    fixed_prefix = run_spec(
        spec.replace(stopping=None, n_scenarios=rep.n_scenarios)
    )
    savings = n_ref / rep.n_scenarios

    # Stratified rare-event estimator on a fraction of the reference
    # budget, importance-weighted over the uncertified shells.
    stratified = run_spec(
        spec.replace(
            n_scenarios=8192,
            stopping=StoppingSpec(
                method="empirical_bernstein",
                stratify=True,
                allocation="rare",
                delta=_DELTA,
            ),
        )
    )
    srep = stratified.adaptive

    rows = [
        {
            "estimator": "fixed_hoeffding_reference",
            "n_scenarios": n_ref,
            "violation_rate": ref_rate,
            "ci_low": max(0.0, ref_rate - _TARGET_CI / 2),
            "ci_high": min(1.0, ref_rate + _TARGET_CI / 2),
        },
        {
            "estimator": "empirical_bernstein_stop",
            "n_scenarios": rep.n_scenarios,
            "violation_rate": rep.estimate,
            "ci_low": rep.ci_low,
            "ci_high": rep.ci_high,
        },
        {
            "estimator": "stratified_rare",
            "n_scenarios": srep.n_scenarios,
            "violation_rate": srep.estimate,
            "ci_low": srep.ci_low,
            "ci_high": srep.ci_high,
        },
    ]
    checks = {
        "stopped_before_cap": bool(rep.stopped and rep.n_scenarios < n_cap),
        "anytime_ci_covers_reference_rate": bool(
            rep.ci_low <= ref_rate <= rep.ci_high
        ),
        "savings_at_equal_width_at_least_10x": bool(savings >= 10.0),
        "stop_epoch_bitwise_prefix_of_fixed_run": bool(
            np.array_equal(adaptive.errors, fixed_prefix.errors)
        ),
        "parallel_stop_deterministic": bool(
            np.array_equal(adaptive.errors, parallel.errors)
            and parallel.adaptive == rep
        ),
        "stratified_ci_covers_reference_rate": bool(
            srep.ci_low <= ref_rate <= srep.ci_high
        ),
        "certificate_prunes_positive_mass": bool(srep.certified_mass > 0.0),
    }
    return ExperimentResult(
        experiment_id="adaptive_sampling",
        description=(
            "Anytime-valid early stopping and stratified rare-event "
            "estimation reproduce the fixed-S Monte-Carlo audit of the "
            "certified-tolerance claims at a fraction of the scenarios."
        ),
        rows=rows,
        shape_checks=checks,
        metrics={
            "reference_rate": float(ref_rate),
            "n_reference": float(n_ref),
            "n_adaptive": float(rep.n_scenarios),
            "scenarios_saved_factor": float(savings),
            "stratified_certified_mass": float(srep.certified_mass),
        },
        notes=[
            "The fixed-S reference is the a-priori Hoeffding size "
            f"n = log(2/delta)/(2 (w/2)^2) at w = {_TARGET_CI}, "
            f"delta = {_DELTA}.",
        ],
    )
