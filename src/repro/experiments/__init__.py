"""One module per paper figure/claim; each exposes ``run_*`` returning
an :class:`repro.experiments.runner.ExperimentResult` whose shape
checks constitute the reproduction criteria (see EXPERIMENTS.md).

Every entry point registers itself with the decorator-based
:mod:`repro.experiments.registry`; :data:`ALL_EXPERIMENTS` below is
derived from that registry (canonical paper order), not hand-listed.
The artifact pipeline (:mod:`repro.artifacts`) and the ``run-all`` /
``report`` CLI commands consume the registry directly.
"""

from . import registry
from .exp_adaptive import run_adaptive_sampling
from .exp_boosting import run_boosting
from .exp_chaos_rejuvenation import run_chaos_rejuvenation
from .exp_chaos_survival import run_chaos_survival
from .exp_conv import run_conv
from .exp_fep_learning import run_fep_learning
from .exp_incident_replay import run_incident_replay
from .exp_lemma1 import run_lemma1
from .exp_overprovision import run_overprovision
from .exp_pruning import run_pruning
from .exp_quantized_probes import run_quantized_probes
from .exp_reliability import run_reliability
from .exp_smr_baseline import run_smr_baseline
from .exp_theorem1 import run_theorem1
from .exp_theorem2 import run_theorem2
from .exp_theorem3 import run_theorem3
from .exp_theorem4 import run_theorem4
from .exp_theorem5 import run_theorem5
from .exp_tradeoff import run_tradeoff_k, run_tradeoff_weights
from .fig1 import run_figure1
from .fig2 import run_figure2
from .fig3 import run_figure3
from .registry import RegisteredExperiment, experiment
from .runner import ExperimentResult, format_table

#: Every experiment entry point, keyed by id, in canonical paper order.
#: Derived from the registry — kept as the stable dict-of-callables API.
ALL_EXPERIMENTS = {
    exp.experiment_id: exp.fn for exp in registry.all_experiments()
}


def run_all(verbose: bool = False) -> dict[str, ExperimentResult]:
    """Run every experiment with default (fast) parameters."""
    results = {}
    for name, fn in ALL_EXPERIMENTS.items():
        result = fn()
        results[name] = result
        if verbose:
            print(result.report())
            print()
    return results


__all__ = [
    "ExperimentResult",
    "RegisteredExperiment",
    "experiment",
    "registry",
    "format_table",
    "ALL_EXPERIMENTS",
    "run_all",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_theorem1",
    "run_theorem2",
    "run_theorem3",
    "run_theorem4",
    "run_theorem5",
    "run_lemma1",
    "run_overprovision",
    "run_boosting",
    "run_tradeoff_k",
    "run_tradeoff_weights",
    "run_conv",
    "run_reliability",
    "run_fep_learning",
    "run_smr_baseline",
    "run_pruning",
    "run_quantized_probes",
    "run_adaptive_sampling",
    "run_incident_replay",
]
