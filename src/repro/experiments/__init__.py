"""One module per paper figure/claim; each exposes ``run_*`` returning
an :class:`repro.experiments.runner.ExperimentResult` whose shape
checks constitute the reproduction criteria (see EXPERIMENTS.md).
"""

from .exp_boosting import run_boosting
from .exp_conv import run_conv
from .exp_fep_learning import run_fep_learning
from .exp_lemma1 import run_lemma1
from .exp_overprovision import run_overprovision
from .exp_pruning import run_pruning
from .exp_reliability import run_reliability
from .exp_smr_baseline import run_smr_baseline
from .exp_theorem1 import run_theorem1
from .exp_theorem2 import run_theorem2
from .exp_theorem3 import run_theorem3
from .exp_theorem4 import run_theorem4
from .exp_theorem5 import run_theorem5
from .exp_tradeoff import run_tradeoff_k, run_tradeoff_weights
from .fig1 import run_figure1
from .fig2 import run_figure2
from .fig3 import run_figure3
from .runner import ExperimentResult, format_table

#: Every experiment, keyed by paper anchor — the per-experiment index.
ALL_EXPERIMENTS = {
    "figure1": run_figure1,
    "figure2": run_figure2,
    "figure3": run_figure3,
    "theorem1": run_theorem1,
    "theorem2": run_theorem2,
    "theorem3": run_theorem3,
    "theorem4": run_theorem4,
    "theorem5": run_theorem5,
    "lemma1": run_lemma1,
    "corollary1_overprovision": run_overprovision,
    "corollary2_boosting": run_boosting,
    "tradeoff_k": run_tradeoff_k,
    "tradeoff_weights": run_tradeoff_weights,
    "section6_conv": run_conv,
    "extension_reliability": run_reliability,
    "extension_fep_learning": run_fep_learning,
    "baseline_smr": run_smr_baseline,
    "intro_pruning": run_pruning,
}


def run_all(verbose: bool = False) -> dict[str, ExperimentResult]:
    """Run every experiment with default (fast) parameters."""
    results = {}
    for name, fn in ALL_EXPERIMENTS.items():
        result = fn()
        results[name] = result
        if verbose:
            print(result.report())
            print()
    return results


__all__ = [
    "ExperimentResult",
    "format_table",
    "ALL_EXPERIMENTS",
    "run_all",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_theorem1",
    "run_theorem2",
    "run_theorem3",
    "run_theorem4",
    "run_theorem5",
    "run_lemma1",
    "run_overprovision",
    "run_boosting",
    "run_tradeoff_k",
    "run_tradeoff_weights",
    "run_conv",
    "run_reliability",
    "run_fep_learning",
    "run_smr_baseline",
    "run_pruning",
]
