"""Reduced-precision probe tiers: the ``quantized-int8`` / ``float16``
backends.

Theorem 5 models a network whose layer-``l`` emissions are rounded
with worst-case error ``lambda_l`` before transmission.
:class:`QuantizedMaskEngine` realises exactly that inside the mask
campaign engine: it hooks
:meth:`~repro.faults.masks.MaskCampaignEngine._post_activation` and
rounds every layer's post-activation values — nominal forward pass
included — to the tier's wire precision *before* fault channels
corrupt them.  Campaign errors therefore measure fault deviation at
the quantized precision (faulty-quantized vs nominal-quantized), the
quantity the paper's combined fault+quantisation bound
(:func:`~repro.core.fep.precision_error_bound`) speaks about.

Two registered tiers:

* ``quantized-int8`` — 8 fractional bits on ``[0, 1]``
  (:class:`~repro.quantization.quantizers.FixedPointQuantizer`,
  ``lambda_l = 2**-9``); assumes the paper's bounded-activation model
  (sigmoid-style emissions in ``[0, 1]`` — values outside clip).
* ``float16`` — IEEE binary16 round-trip
  (:class:`~repro.quantization.quantizers.HalfPrecisionQuantizer`,
  ``lambda_l = 2**-12`` on ``[0, 1]``).

The matching fault-free reference is
:class:`~repro.quantization.quantizers.QuantizedNetwork` with the same
per-layer quantisers — the quantized-probes experiment audits one
against the other.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..faults.masks import MaskCampaignEngine
from ..quantization.quantizers import (
    FixedPointQuantizer,
    HalfPrecisionQuantizer,
    Quantizer,
)
from . import register_backend

__all__ = ["QuantizedMaskEngine"]


class QuantizedMaskEngine(MaskCampaignEngine):
    """A mask campaign engine whose emissions pass through per-layer
    quantisers.

    ``quantizers`` holds one :class:`Quantizer` (or ``None`` for
    full precision) per hidden layer.  The hook fires on every
    post-activation buffer — the cached first layer, the streamed
    hidden layers, the sparse stage-1 correction cells, and the
    nominal forward pass at construction — so quantized and
    full-precision cells never mix within one campaign.
    """

    def __init__(
        self,
        injector,
        x: np.ndarray,
        *,
        quantizers: Sequence["Quantizer | None"],
        chunk_size: int = 1024,
        reduction: str = "max",
        dtype: "str | np.dtype" = np.float64,
    ):
        qs = tuple(quantizers)
        depth = injector.network.depth
        if len(qs) != depth:
            raise ValueError(
                f"need one quantizer per hidden layer ({depth}), got {len(qs)}"
            )
        # Set before super().__init__: the base constructor runs the
        # nominal forward pass, which already calls the hook.
        self._quantizers = qs
        super().__init__(
            injector, x, chunk_size=chunk_size, reduction=reduction,
            dtype=dtype,
        )

    @property
    def quantizers(self) -> tuple:
        return self._quantizers

    @property
    def lambdas(self) -> tuple:
        """Per-layer worst-case rounding errors — Theorem 5's
        ``lambda_l`` vector for this tier."""
        return tuple(
            0.0 if q is None else float(q.max_error)
            for q in self._quantizers
        )

    def _post_activation(self, l0: int, arr: np.ndarray) -> None:
        q = self._quantizers[l0]
        if q is not None:
            arr[...] = q(arr)


def _int8_engine(injector, x, *, chunk_size, reduction, dtype, workers):
    qs = [FixedPointQuantizer(8) for _ in range(injector.network.depth)]
    return QuantizedMaskEngine(
        injector, x, quantizers=qs, chunk_size=chunk_size,
        reduction=reduction, dtype=dtype,
    )


def _float16_engine(injector, x, *, chunk_size, reduction, dtype, workers):
    qs = [HalfPrecisionQuantizer() for _ in range(injector.network.depth)]
    return QuantizedMaskEngine(
        injector, x, quantizers=qs, chunk_size=chunk_size,
        reduction=reduction, dtype=dtype,
    )


register_backend("quantized-int8", _int8_engine)
register_backend("float16", _float16_engine)
