"""The ``threaded`` backend: chunk evaluation tiled over a thread pool.

The hot campaign loop — GEMM, segment-sum synapse corrections, mask
channels — spends nearly all its time inside NumPy calls that release
the GIL, so a thread pool scales it without the fork-once machinery's
per-process network copies.  :class:`ThreadedMaskEngine` keeps one
:class:`~repro.faults.masks.MaskCampaignEngine` per pool thread (each
with its own activation buffers and workspace), splits every batch
into fixed tiles, and evaluates tiles concurrently.

Determinism contract: the tile layout and the per-tile generators
depend only on the batch size and the engine's tile width — never on
the pool size or scheduling order — so results are identical across
worker counts (``serial == threaded``).  Deterministic fault batches
are additionally bitwise-identical to the ``numpy`` backend evaluated
at the same slice layout (``chunk_size == tile``); across layouts
they agree to float associativity, exactly like the serial engine
across chunk sizes.  Stochastic batches draw from per-tile spawned
generators, so they are reproducible for a fixed seed but follow a
different (equally distributed) stream than the serial engine.
"""

from __future__ import annotations

import os
import queue
import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter as _perf_counter
from typing import List, Optional

import numpy as np

from ..faults.masks import MaskCampaignEngine
from ..profiling import PhaseProfile
from . import register_backend

__all__ = ["ThreadedMaskEngine"]

#: Default tile width: small enough to keep all threads busy on one
#: SAMPLE_BLOCK-sized batch, large enough to amortise slice overhead.
DEFAULT_TILE = 256


class ThreadedMaskEngine:
    """Evaluates mask batches by tiling slices over a thread pool.

    Drop-in for :class:`MaskCampaignEngine` wherever an ``engine=`` is
    accepted: exposes the same evaluation methods and the attributes
    the campaign runners guard on.  ``workers=0`` sizes the pool from
    ``os.cpu_count()``.

    When :attr:`profile` is set the tiles run serially on one member
    engine (phase timers are not thread-safe); the tile layout and
    draw streams are unchanged, so profiling never changes results.
    When :attr:`obs` (a :class:`~repro.obs.RunObserver`) is *also*
    set, the pool stays tile-parallel instead: each member engine
    charges a private per-call profile folded into :attr:`profile`
    afterwards, and every tile records its queue wait and per-worker
    busy time into the observer's metrics (timing-valued, hence
    scheduling-dependent — the numeric results stay deterministic).
    """

    def __init__(
        self,
        injector,
        x: np.ndarray,
        *,
        chunk_size: int = 1024,
        reduction: str = "max",
        dtype: "str | np.dtype" = np.float64,
        workers: int = 0,
        tile: Optional[int] = None,
    ):
        n = int(workers) if workers else (os.cpu_count() or 1)
        self.workers = max(1, min(n, 32))
        self._engines: List[MaskCampaignEngine] = [
            MaskCampaignEngine(
                injector, x, chunk_size=chunk_size, reduction=reduction,
                dtype=dtype,
            )
            for _ in range(self.workers)
        ]
        lead = self._engines[0]
        self.injector = lead.injector
        self.network = lead.network
        self.capacity = lead.capacity
        self.chunk_size = lead.chunk_size
        self.reduction = lead.reduction
        self.dtype = lead.dtype
        self.xb64 = lead.xb64
        self.xb = lead.xb
        self.batch_size = lead.batch_size
        self.tile = int(tile) if tile else min(DEFAULT_TILE, self.chunk_size)
        if self.tile < 1:
            raise ValueError(f"tile must be >= 1, got {self.tile}")
        self.profile = None
        self.obs = None
        self._obs_lock = threading.Lock()
        self._engine_index = {id(e): i for i, e in enumerate(self._engines)}
        self._pool: Optional[ThreadPoolExecutor] = None
        # Engines are borrowed through this queue; the pool never runs
        # more than ``workers`` tasks at once, so a get() always finds
        # a free engine without blocking.
        self._idle: "queue.SimpleQueue[MaskCampaignEngine]" = queue.SimpleQueue()
        for eng in self._engines:
            self._idle.put(eng)

    # -- internals ---------------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="mask-engine",
            )
        return self._pool

    def _tiles(self, S: int):
        return [(lo, min(lo + self.tile, S)) for lo in range(0, S, self.tile)]

    def _tile_rngs(self, batch, rng, n_tiles):
        """Per-tile generators for stochastic batches (spawned in tile
        order, so the streams depend only on the layout), else Nones."""
        if not batch.is_stochastic:
            return [None] * n_tiles
        rng = self._engines[0]._resolve_rng(batch, rng)
        return rng.spawn(n_tiles)

    def _eval_tile(self, batch, lo, hi, trng, want_outputs):
        obs = self.obs
        if obs is None:
            eng = self._idle.get()
            try:
                return eng._evaluate_slice(batch, lo, hi, want_outputs, trng)
            finally:
                self._idle.put(eng)
        t0 = _perf_counter()
        eng = self._idle.get()
        wait = _perf_counter() - t0
        t1 = _perf_counter()
        try:
            return eng._evaluate_slice(batch, lo, hi, want_outputs, trng)
        finally:
            busy = _perf_counter() - t1
            self._idle.put(eng)
            worker = self._engine_index[id(eng)]
            with self._obs_lock:
                obs.metrics.histogram(
                    "repro_tile_queue_wait_seconds",
                    help="Seconds each tile waited for a free member engine.",
                ).observe(wait)
                obs.metrics.counter(
                    "repro_tiles",
                    "Tiles evaluated, by pool member.",
                    worker=worker,
                ).inc()
                obs.metrics.counter(
                    "repro_tile_busy_seconds",
                    "Evaluation seconds, by pool member (utilization).",
                    worker=worker,
                ).inc(busy)

    def _run(self, batch, want_outputs, rng):
        S = batch.num_scenarios
        tiles = self._tiles(S)
        rngs = self._tile_rngs(batch, rng, len(tiles))
        fold_profile = None
        if (
            self.profile is not None and self.obs is None
        ) or self.workers == 1 or len(tiles) == 1:
            lead = self._engines[0]
            prev = lead.profile
            lead.profile = self.profile
            try:
                return [
                    lead._evaluate_slice(batch, lo, hi, want_outputs, trng)
                    for (lo, hi), trng in zip(tiles, rngs)
                ]
            finally:
                lead.profile = prev
        if self.profile is not None:
            # Observed run: stay tile-parallel; each member engine
            # charges a private profile, folded below in engine order.
            fold_profile = self.profile
            for eng in self._engines:
                eng.profile = PhaseProfile()
        pool = self._ensure_pool()
        try:
            futures = [
                pool.submit(
                    self._eval_tile, batch, lo, hi, trng, want_outputs
                )
                for (lo, hi), trng in zip(tiles, rngs)
            ]
            return [f.result() for f in futures]
        finally:
            if fold_profile is not None:
                for eng in self._engines:
                    fold_profile.add_dict(eng.profile.as_dict())
                    eng.profile = None

    # -- public API --------------------------------------------------------

    def evaluate(self, batch, *, rng=None) -> np.ndarray:
        """Per-scenario output errors ``(S,)``; tile-parallel."""
        if batch.num_scenarios == 0:
            return np.empty(0, dtype=np.float64)
        pieces = self._run(batch, False, rng)
        return np.concatenate(pieces).astype(np.float64, copy=False)

    def outputs(self, batch, *, rng=None) -> np.ndarray:
        """Faulty outputs ``(S, B, n_outputs)``; tile-parallel."""
        if batch.num_scenarios == 0:
            return np.empty((0, self.batch_size, self.network.n_outputs))
        return np.concatenate(self._run(batch, True, rng))

    @property
    def nominal(self) -> np.ndarray:
        return self._engines[0].nominal

    def close(self) -> None:
        """Shut the pool down (idempotent); the engine stays usable —
        the next evaluation simply rebuilds the pool."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def _threaded_engine(injector, x, *, chunk_size, reduction, dtype, workers):
    return ThreadedMaskEngine(
        injector, x, chunk_size=chunk_size, reduction=reduction, dtype=dtype,
        workers=workers,
    )


register_backend("threaded", _threaded_engine)
