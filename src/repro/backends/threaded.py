"""The ``threaded`` backend: chunk evaluation tiled over a thread pool.

The hot campaign loop — GEMM, segment-sum synapse corrections, mask
channels — spends nearly all its time inside NumPy calls that release
the GIL, so a thread pool scales it without the fork-once machinery's
per-process network copies.  :class:`ThreadedMaskEngine` keeps one
:class:`~repro.faults.masks.MaskCampaignEngine` per pool thread (each
with its own activation buffers and workspace), splits every batch
into fixed tiles, and evaluates tiles concurrently.

Determinism contract: the tile layout and the per-tile generators
depend only on the batch size and the engine's tile width — never on
the pool size or scheduling order — so results are identical across
worker counts (``serial == threaded``).  Deterministic fault batches
are additionally bitwise-identical to the ``numpy`` backend evaluated
at the same slice layout (``chunk_size == tile``); across layouts
they agree to float associativity, exactly like the serial engine
across chunk sizes.  Stochastic batches draw from per-tile spawned
generators, so they are reproducible for a fixed seed but follow a
different (equally distributed) stream than the serial engine.
"""

from __future__ import annotations

import os
import queue
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional

import numpy as np

from ..faults.masks import MaskCampaignEngine
from . import register_backend

__all__ = ["ThreadedMaskEngine"]

#: Default tile width: small enough to keep all threads busy on one
#: SAMPLE_BLOCK-sized batch, large enough to amortise slice overhead.
DEFAULT_TILE = 256


class ThreadedMaskEngine:
    """Evaluates mask batches by tiling slices over a thread pool.

    Drop-in for :class:`MaskCampaignEngine` wherever an ``engine=`` is
    accepted: exposes the same evaluation methods and the attributes
    the campaign runners guard on.  ``workers=0`` sizes the pool from
    ``os.cpu_count()``.

    When :attr:`profile` is set the tiles run serially on one member
    engine (phase timers are not thread-safe); the tile layout and
    draw streams are unchanged, so profiling never changes results.
    """

    def __init__(
        self,
        injector,
        x: np.ndarray,
        *,
        chunk_size: int = 1024,
        reduction: str = "max",
        dtype: "str | np.dtype" = np.float64,
        workers: int = 0,
        tile: Optional[int] = None,
    ):
        n = int(workers) if workers else (os.cpu_count() or 1)
        self.workers = max(1, min(n, 32))
        self._engines: List[MaskCampaignEngine] = [
            MaskCampaignEngine(
                injector, x, chunk_size=chunk_size, reduction=reduction,
                dtype=dtype,
            )
            for _ in range(self.workers)
        ]
        lead = self._engines[0]
        self.injector = lead.injector
        self.network = lead.network
        self.capacity = lead.capacity
        self.chunk_size = lead.chunk_size
        self.reduction = lead.reduction
        self.dtype = lead.dtype
        self.xb64 = lead.xb64
        self.xb = lead.xb
        self.batch_size = lead.batch_size
        self.tile = int(tile) if tile else min(DEFAULT_TILE, self.chunk_size)
        if self.tile < 1:
            raise ValueError(f"tile must be >= 1, got {self.tile}")
        self.profile = None
        self._pool: Optional[ThreadPoolExecutor] = None
        # Engines are borrowed through this queue; the pool never runs
        # more than ``workers`` tasks at once, so a get() always finds
        # a free engine without blocking.
        self._idle: "queue.SimpleQueue[MaskCampaignEngine]" = queue.SimpleQueue()
        for eng in self._engines:
            self._idle.put(eng)

    # -- internals ---------------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="mask-engine",
            )
        return self._pool

    def _tiles(self, S: int):
        return [(lo, min(lo + self.tile, S)) for lo in range(0, S, self.tile)]

    def _tile_rngs(self, batch, rng, n_tiles):
        """Per-tile generators for stochastic batches (spawned in tile
        order, so the streams depend only on the layout), else Nones."""
        if not batch.is_stochastic:
            return [None] * n_tiles
        rng = self._engines[0]._resolve_rng(batch, rng)
        return rng.spawn(n_tiles)

    def _eval_tile(self, batch, lo, hi, trng, want_outputs):
        eng = self._idle.get()
        try:
            return eng._evaluate_slice(batch, lo, hi, want_outputs, trng)
        finally:
            self._idle.put(eng)

    def _run(self, batch, want_outputs, rng):
        S = batch.num_scenarios
        tiles = self._tiles(S)
        rngs = self._tile_rngs(batch, rng, len(tiles))
        if self.profile is not None or self.workers == 1 or len(tiles) == 1:
            lead = self._engines[0]
            prev = lead.profile
            lead.profile = self.profile
            try:
                return [
                    lead._evaluate_slice(batch, lo, hi, want_outputs, trng)
                    for (lo, hi), trng in zip(tiles, rngs)
                ]
            finally:
                lead.profile = prev
        pool = self._ensure_pool()
        futures = [
            pool.submit(self._eval_tile, batch, lo, hi, trng, want_outputs)
            for (lo, hi), trng in zip(tiles, rngs)
        ]
        return [f.result() for f in futures]

    # -- public API --------------------------------------------------------

    def evaluate(self, batch, *, rng=None) -> np.ndarray:
        """Per-scenario output errors ``(S,)``; tile-parallel."""
        if batch.num_scenarios == 0:
            return np.empty(0, dtype=np.float64)
        pieces = self._run(batch, False, rng)
        return np.concatenate(pieces).astype(np.float64, copy=False)

    def outputs(self, batch, *, rng=None) -> np.ndarray:
        """Faulty outputs ``(S, B, n_outputs)``; tile-parallel."""
        if batch.num_scenarios == 0:
            return np.empty((0, self.batch_size, self.network.n_outputs))
        return np.concatenate(self._run(batch, True, rng))

    @property
    def nominal(self) -> np.ndarray:
        return self._engines[0].nominal

    def close(self) -> None:
        """Shut the pool down (idempotent); the engine stays usable —
        the next evaluation simply rebuilds the pool."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def _threaded_engine(injector, x, *, chunk_size, reduction, dtype, workers):
    return ThreadedMaskEngine(
        injector, x, chunk_size=chunk_size, reduction=reduction, dtype=dtype,
        workers=workers,
    )


register_backend("threaded", _threaded_engine)
