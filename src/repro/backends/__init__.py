"""The engine backend seam: one registry under every campaign run.

:class:`~repro.specs.model.EngineSpec` names its evaluation backend
(``backend=`` field, validated against
:data:`~repro.specs.model.ENGINE_BACKENDS`); this package maps those
names onto engine factories so :mod:`repro.specs.dispatch` and the CLI
route every campaign through one seam instead of hard-wiring
:class:`~repro.faults.masks.MaskCampaignEngine`:

* ``numpy`` — the reference in-process engine (bitwise-stable float64
  results, the baseline every other tier is measured against);
* ``threaded`` — tiles chunk evaluation over a thread pool
  (:class:`~repro.backends.threaded.ThreadedMaskEngine`; the GEMM +
  segment-sum path releases the GIL);
* ``quantized-int8`` / ``float16`` — reduced-precision probe tiers
  (:class:`~repro.backends.quantized.QuantizedMaskEngine`) that round
  every layer's emissions to the wire precision of Theorem 5's
  quantisation model before faults corrupt them.

Every factory shares one signature::

    factory(injector, x, *, chunk_size, reduction, dtype, workers)

and returns an engine exposing the :class:`MaskCampaignEngine`
evaluation contract (``evaluate`` / ``outputs`` / ``nominal`` plus the
``network`` / ``injector`` / ``xb64`` / ``chunk_size`` / ``profile``
attributes the campaign runners guard on) — so a backend engine drops
straight into ``sampled_campaign_errors(engine=...)``.

The adaptive layer (:mod:`repro.faults.adaptive`) rides the same
contract: confidence-sequence stopping and the stratified estimator
consume engines exclusively through ``evaluate`` on
:data:`~repro.faults.masks.SAMPLE_BLOCK` boundaries, so every backend
tier composes with early stopping unchanged — a ``StoppingSpec`` on a
``quantized-int8`` campaign stops on exactly the blocks the numpy tier
would, just cheaper per block.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

__all__ = [
    "available_backends",
    "build_engine",
    "get_backend",
    "register_backend",
]

#: backend name -> engine factory, filled by :func:`register_backend`.
_BACKENDS: Dict[str, Callable] = {}


def register_backend(name: str, factory: Callable) -> Callable:
    """Register ``factory`` under ``name`` (last registration wins).

    Factories take ``(injector, x, *, chunk_size, reduction, dtype,
    workers)`` and return an engine with the
    :class:`~repro.faults.masks.MaskCampaignEngine` evaluation
    contract.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    _BACKENDS[name] = factory
    return factory


def get_backend(name: str) -> Callable:
    """The factory registered under ``name``; ``KeyError`` with the
    available names otherwise."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown engine backend {name!r}; available: "
            f"{available_backends()}"
        ) from None


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def build_engine(
    name: str,
    injector,
    x,
    *,
    chunk_size: int = 1024,
    reduction: str = "max",
    dtype: "str | np.dtype" = np.float64,
    workers: int = 0,
):
    """Build the engine for backend ``name`` — THE seam entry point.

    ``workers`` is advisory: the ``threaded`` backend sizes its pool
    from it, the in-process backends ignore it (their process fan-out
    is the campaign runners' job, not the engine's).
    """
    return get_backend(name)(
        injector,
        x,
        chunk_size=chunk_size,
        reduction=reduction,
        dtype=dtype,
        workers=workers,
    )


def _numpy_engine(injector, x, *, chunk_size, reduction, dtype, workers):
    """The reference backend: a plain :class:`MaskCampaignEngine`."""
    from ..faults.masks import MaskCampaignEngine

    return MaskCampaignEngine(
        injector, x, chunk_size=chunk_size, reduction=reduction, dtype=dtype
    )


register_backend("numpy", _numpy_engine)

# Importing the tier modules registers "threaded", "quantized-int8"
# and "float16" (they call register_backend at import time).
from . import quantized, threaded  # noqa: E402,F401  (registration imports)
