"""``repro.run``: one dispatcher lowering every spec onto the engines.

The spec layer (:mod:`repro.specs.model`) is pure data; this module is
the single place where data becomes execution:

* :class:`~repro.specs.model.CampaignSpec` compiles its
  ``FaultSpec``/``SamplerSpec`` pair into the mask-sampler family and
  streams scenarios through
  :func:`~repro.faults.masks.sampled_campaign_errors` (or the bulk
  combination compiler for exhaustive sweeps) — the same engines the
  deprecated direct-kwargs entry points used;
* :class:`~repro.specs.model.SurvivalSpec` evaluates the certified
  Theorem-3 bound or the Monte-Carlo injection estimate;
* :class:`~repro.specs.model.ChaosSpec` builds its
  process/detector/policy/traffic objects and hands them to the chaos
  orchestrator.

Adding a new workload to the system is therefore one spec subclass
plus one lowering rule here — no CLI fork, no new keyword entry point.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Optional

import numpy as np

from .model import (
    CampaignSpec,
    ChaosSpec,
    DetectorSpec,
    FaultSpec,
    PolicySpec,
    SamplerSpec,
    Spec,
    SpecError,
    SurvivalSpec,
    load_spec,
    spec_from_dict,
)

__all__ = ["run", "build_sampler", "build_detector", "build_policy"]


def _probe_batch(spec, network) -> np.ndarray:
    """The random probe inputs a spec evaluates over.

    Drawn from ``probe_seed`` (default: the campaign ``seed``), exactly
    as the CLI has always drawn them — so a spec replays the argparse
    path bit for bit.
    """
    seed = spec.probe_seed if spec.probe_seed is not None else spec.seed
    rng = np.random.default_rng(seed)
    return rng.random((max(1, spec.batch), network.input_dim))


def build_sampler(
    sampler: SamplerSpec, fault: Optional[FaultSpec], network
):
    """Lower a sampler/fault spec pair onto the mask-sampler family.

    ``fault`` is the campaign-level default; a sampler carrying its own
    ``fault`` (mixed components always do) overrides it.  Neuron
    faults route to the neuron samplers, synapse faults to the sparse
    synapse samplers — the same dispatch ``monte_carlo_campaign`` and
    ``monte_carlo_survival`` perform.
    """
    from ..faults.masks import (
        BernoulliSampler,
        FixedDistributionSampler,
        FixedSynapseDistributionSampler,
        MixedFaultSampler,
        SynapseBernoulliSampler,
    )

    if sampler.kind == "mixed":
        return MixedFaultSampler(
            [
                build_sampler(comp, comp.fault, network)
                for comp in sampler.components
            ]
        )
    fault_spec = sampler.fault if sampler.fault is not None else fault
    fault_spec = fault_spec if fault_spec is not None else FaultSpec()
    model = fault_spec.to_fault_model()
    if sampler.kind == "fixed":
        if fault_spec.is_synapse:
            return FixedSynapseDistributionSampler(
                network, sampler.distribution, fault=model
            )
        return FixedDistributionSampler(
            network, sampler.distribution, fault=model
        )
    if sampler.kind == "bernoulli":
        if fault_spec.is_synapse:
            return SynapseBernoulliSampler(
                network, sampler.p_fail, fault=model
            )
        return BernoulliSampler(network, sampler.p_fail, fault=model)
    raise SpecError(
        f"sampler kind {sampler.kind!r} has no direct lowering "
        "(exhaustive sweeps are lowered at the campaign level)"
    )


def build_detector(spec: DetectorSpec, chaos: ChaosSpec, network):
    """Lower a detector spec in the context of its chaos campaign.

    Unset thresholds resolve against the epsilon budget; the certified
    alarm borrows the first process's rate when ``failure_rate`` is
    unset (the CLI's ``--rate`` convention).
    """
    from ..chaos.detectors import (
        CertifiedAlarmDetector,
        CUSUMDetector,
        ThresholdDetector,
    )

    budget = chaos.epsilon - chaos.epsilon_prime
    if spec.kind == "threshold":
        return ThresholdDetector(
            spec.threshold if spec.threshold is not None else budget
        )
    if spec.kind == "cusum":
        return CUSUMDetector(
            spec.drift if spec.drift is not None else budget / 2.0,
            spec.threshold if spec.threshold is not None else 2.0 * budget,
        )
    rate = (
        spec.failure_rate
        if spec.failure_rate is not None
        else chaos.processes[0].rate
    )
    return CertifiedAlarmDetector(
        network,
        rate,
        chaos.epsilon,
        chaos.epsilon_prime,
        p_threshold=spec.p_threshold,
        dt=spec.dt,
        capacity=chaos.capacity,
        mode=spec.mode,
    )


def build_policy(spec: PolicySpec, chaos: ChaosSpec, network):
    """Lower a policy spec; ``tolerated=None`` derives the boosted
    rejuvenation's straggler budget from the certificate."""
    from ..chaos.policies import (
        DetectorRepairPolicy,
        NoRepairPolicy,
        PeriodicRejuvenationPolicy,
        SpareActivationPolicy,
    )

    if spec.kind == "rejuvenate":
        tolerated = spec.tolerated
        if tolerated is None:
            from ..core.tolerance import greedy_max_total_failures

            tolerated = greedy_max_total_failures(
                network, chaos.epsilon, chaos.epsilon_prime
            )
        return PeriodicRejuvenationPolicy(
            spec.period,
            tolerated,
            straggler_fraction=spec.straggler_fraction,
            straggler_scale=spec.straggler_scale,
        )
    if spec.kind == "repair":
        return DetectorRepairPolicy(
            latency=spec.latency,
            downtime=spec.downtime,
            detector=spec.detector,
        )
    if spec.kind == "spare":
        return SpareActivationPolicy(
            spec.spares,
            swap_latency=spec.swap_latency,
            detector=spec.detector,
        )
    return NoRepairPolicy()


def _run_campaign(spec: CampaignSpec, engine, workers, profile, obs=None):
    from ..faults.campaign import CampaignResult, exhaustive_crash_campaign
    from ..faults.injector import FaultInjector
    from ..faults.masks import sampled_campaign_errors
    from ..obs.recorder import span_if

    if engine is not None:
        # Engine reuse: the engine owns the network/injector instance
        # (a freshly-resolved copy would fail its identity guard); the
        # spec must still describe the same capacity and probe batch —
        # sampled_campaign_errors verifies the latter bit for bit.
        network = engine.network
        injector = engine.injector
        if (
            spec.capacity is not None
            and engine.capacity != float(spec.capacity)
        ):
            raise SpecError(
                f"engine capacity {engine.capacity} != spec capacity "
                f"{spec.capacity}"
            )
    else:
        with span_if(obs, "network-load"):
            network = spec.network.resolve()
        capacity = (
            spec.capacity
            if spec.capacity is not None
            else network.output_bound
        )
        injector = FaultInjector(network, capacity=capacity)
    x = _probe_batch(spec, network)
    n_workers = workers if workers is not None else spec.engine.workers
    chunk = spec.engine.chunk_size if spec.engine.chunk_size else 1024

    owned_engine = None
    if engine is None and spec.engine.backend != "numpy":
        # The backend seam: a non-default backend builds its engine
        # through the registry; the campaign runners then treat it
        # exactly like a caller-supplied engine (in-process — the
        # threaded backend owns its own parallelism, so the process
        # fan-out stays off).
        from ..backends import build_engine

        engine = owned_engine = build_engine(
            spec.engine.backend,
            injector,
            x,
            chunk_size=chunk,
            reduction=spec.engine.reduction,
            dtype=spec.engine.dtype,
            workers=n_workers,
        )
        n_workers = 0
        if obs is not None and hasattr(owned_engine, "obs"):
            owned_engine.obs = obs
    try:
        if spec.sampler.kind == "exhaustive":
            return exhaustive_crash_campaign(
                injector,
                x,
                spec.sampler.n_fail,
                chunk_size=chunk,
                reduction=spec.engine.reduction,
                n_workers=n_workers,
                dtype=spec.engine.dtype,
                engine=engine,
                profile=profile,
                obs=obs,
            )
        sampler = build_sampler(spec.sampler, spec.fault, network)
        stopping = spec.effective_stopping
        if stopping is not None:
            threshold = (
                stopping.threshold
                if stopping.threshold is not None
                else spec.threshold
            )
            if stopping.stratify:
                from ..faults.adaptive import stratified_violation_estimate

                if n_workers and n_workers > 1:
                    raise SpecError(
                        "stratified stopping runs in-process (per-shell "
                        "engine reuse); drop the workers fan-out"
                    )
                fault_spec = (
                    spec.sampler.fault
                    if spec.sampler.fault is not None
                    else spec.fault
                )
                report = stratified_violation_estimate(
                    injector,
                    x,
                    spec.sampler.p_fail,
                    spec.n_scenarios,
                    threshold=threshold,
                    fault=(
                        fault_spec.to_fault_model()
                        if fault_spec is not None
                        else None
                    ),
                    allocation=stopping.allocation,
                    pilot=stopping.pilot,
                    delta=stopping.delta,
                    # The injector clips every faulty emission to its
                    # capacity, so the Fep certificate at exactly that
                    # capacity prunes shells soundly for the whole
                    # neuron-fault taxonomy.
                    prune_mode="byzantine",
                    seed=spec.seed,
                    chunk_size=chunk,
                    reduction=spec.engine.reduction,
                    dtype=spec.engine.dtype,
                    engine=engine,
                    profile=profile,
                    obs=obs,
                )
                return CampaignResult(
                    np.asarray([]), [], spec.engine.reduction, report
                )
            from ..faults.adaptive import adaptive_campaign_errors

            errors, report = adaptive_campaign_errors(
                injector,
                x,
                sampler,
                spec.n_scenarios,
                threshold=threshold,
                method=stopping.method,
                target_ci=stopping.target_ci,
                delta=stopping.delta,
                min_scenarios=stopping.min_scenarios,
                seed=spec.seed,
                chunk_size=chunk,
                reduction=spec.engine.reduction,
                dtype=spec.engine.dtype,
                n_workers=n_workers,
                engine=engine,
                profile=profile,
                obs=obs,
            )
            return CampaignResult(
                errors, [], spec.engine.reduction, report
            )
        errors = sampled_campaign_errors(
            injector,
            x,
            sampler,
            spec.n_scenarios,
            seed=spec.seed,
            chunk_size=chunk,
            reduction=spec.engine.reduction,
            dtype=spec.engine.dtype,
            n_workers=n_workers,
            engine=engine,
            profile=profile,
            obs=obs,
        )
        return CampaignResult(errors, [], spec.engine.reduction)
    finally:
        if owned_engine is not None and hasattr(owned_engine, "close"):
            owned_engine.close()


def _run_survival(spec: SurvivalSpec, engine, workers, profile=None, obs=None):
    from ..faults.reliability import (
        certified_survival_probability,
        monte_carlo_survival,
    )
    from ..obs.recorder import span_if

    if workers is not None and workers > 1:
        # monte_carlo_survival has no pool fan-out; silently running
        # serial would misreport what the caller asked for.
        raise SpecError(
            "workers fan-out is not supported for survival specs (the "
            "certified bound is exact and the Monte-Carlo estimate "
            "runs in-process)"
        )
    with span_if(obs, "network-load"):
        network = spec.network.resolve()
    if spec.method == "certified":
        if engine is not None:
            raise SpecError(
                "engine= reuse only applies to sampled workloads, not "
                "the certified bound"
            )
        # The certified bound is a closed-form count-grid evaluation —
        # no engine runs, so a profile stays at zero; the span still
        # times it.
        with span_if(obs, "certified-bound"):
            return certified_survival_probability(
                network,
                spec.p_fail,
                spec.epsilon,
                spec.epsilon_prime,
                mode=spec.mode,
                capacity=spec.capacity,
            )
    x = _probe_batch(spec, network)
    fault = spec.fault.to_fault_model() if spec.fault is not None else None
    return monte_carlo_survival(
        network,
        spec.p_fail,
        spec.epsilon,
        spec.epsilon_prime,
        x,
        fault=fault,
        capacity=spec.capacity,
        n_trials=spec.n_trials,
        seed=spec.seed,
        engine=engine,
        stopping=spec.stopping,
        profile=profile,
        obs=obs,
    )


def _run_chaos(spec: ChaosSpec, engine, workers, profile=None, obs=None):
    from ..chaos.campaign import _run_chaos_campaign
    from ..obs.recorder import span_if

    if engine is not None:
        raise SpecError(
            "engine= reuse only applies to static campaign specs; the "
            "chaos orchestrator owns its engine per replica block"
        )
    if spec.engine.backend != "numpy":
        raise SpecError(
            "engine backends only route static campaign specs; the chaos "
            "orchestrator owns its engines per replica block (got "
            f"backend={spec.engine.backend!r})"
        )
    with span_if(obs, "network-load"):
        network = spec.network.resolve()
    x = _probe_batch(spec, network)
    processes = [p.build() for p in spec.processes]
    detectors = [build_detector(d, spec, network) for d in spec.detectors]
    policy = build_policy(spec.policy, spec, network)
    traffic = spec.traffic.build()
    n_workers = workers if workers is not None else spec.engine.workers
    return _run_chaos_campaign(
        network,
        x,
        processes,
        traffic=traffic,
        detectors=detectors,
        policy=policy,
        epochs=spec.epochs,
        n_replicas=spec.replicas,
        epsilon=spec.epsilon,
        epsilon_prime=spec.epsilon_prime,
        capacity=spec.capacity,
        seed=spec.seed,
        epochs_chunk=spec.epochs_chunk,
        chunk_size=spec.engine.chunk_size,
        dtype=spec.engine.dtype,
        n_workers=n_workers,
        keep_errors=spec.keep_errors,
        telemetry=spec.telemetry,
        spec_payload=spec.to_dict(),
        profile=profile,
        obs=obs,
    )


def run(
    spec: "Spec | Mapping | str | Path",
    *,
    engine=None,
    workers: Optional[int] = None,
    profile=None,
    obs=None,
):
    """Execute any run spec on the engines; THE entry point.

    ``spec`` may be a spec object, a ``to_dict`` payload, or a path to
    a JSON spec file.  Returns what the workload naturally produces:

    * :class:`CampaignSpec` -> :class:`~repro.faults.campaign.CampaignResult`
    * :class:`SurvivalSpec` -> ``float`` (certified) or
      :class:`~repro.faults.reliability.ReliabilityEstimate` (monte_carlo)
    * :class:`ChaosSpec`    -> :class:`~repro.chaos.campaign.ChaosReport`

    Campaign specs route through the engine backend seam: a spec whose
    ``engine.backend`` is not ``"numpy"`` builds its engine via the
    :mod:`repro.backends` registry.  ``engine`` optionally reuses a
    prebuilt engine (any backend) across sampled campaign/survival
    specs sharing a network and probe batch (a survival curve over a
    p-grid pays weight casts once) — it takes precedence over the
    spec's ``backend``.  ``workers`` overrides the spec's
    ``engine.workers`` without rewriting the spec.

    ``profile`` (a :class:`~repro.profiling.PhaseProfile`) accumulates
    per-phase wall time for any spec kind, serial or fan-out — the
    CLI's ``--profile`` flag.  ``obs`` (a
    :class:`~repro.obs.RunObserver`) records the run's span trace and
    metrics; observation never touches a random stream, so results are
    bitwise identical with it on or off.  When both are given the
    observer publishes the caller's profile; when only ``obs`` is
    given its embedded profile is used.  A spec whose ``obs`` field is
    enabled with a ``record`` path self-observes: the dispatcher
    builds an observer and persists the run record there.
    """
    if isinstance(spec, (str, Path)):
        spec = load_spec(spec)
    elif isinstance(spec, Mapping):
        spec = spec_from_dict(spec)
    if workers is not None and workers < 0:
        raise SpecError(f"workers must be >= 0, got {workers}")

    owned_obs = None
    obs_spec = getattr(spec, "obs", None)
    if obs is None and obs_spec is not None and obs_spec.enabled \
            and obs_spec.record:
        from ..obs import RunObserver

        obs = owned_obs = RunObserver(events=obs_spec.events)
    if obs is not None and profile is None:
        profile = obs.profile

    def dispatch():
        if isinstance(spec, CampaignSpec):
            return _run_campaign(spec, engine, workers, profile, obs)
        if isinstance(spec, SurvivalSpec):
            return _run_survival(spec, engine, workers, profile, obs)
        if isinstance(spec, ChaosSpec):
            return _run_chaos(spec, engine, workers, profile, obs)
        raise SpecError(
            f"{type(spec).__name__} is not a runnable spec (expected "
            "CampaignSpec, SurvivalSpec or ChaosSpec)"
        )

    if obs is None:
        return dispatch()
    eff_workers = workers
    if eff_workers is None:
        eff_workers = getattr(getattr(spec, "engine", None), "workers", 0)
    with obs.span(
        "run", kind=spec.spec_tag, spec=spec.content_hash(),
        workers=eff_workers,
    ):
        result = dispatch()
    obs.finalize(profile)
    if owned_obs is not None:
        from ..obs import save_run_record

        save_run_record(obs.record(spec.to_dict()), obs_spec.record)
    return result
