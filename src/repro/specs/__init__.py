"""Declarative run specs: every workload as versioned, hashable data.

This package is the stable public API under every campaign, survival
and chaos entry point (see docs/api.md for the full field reference):

>>> from repro import CampaignSpec, FaultSpec, NetworkRef, SamplerSpec, run
>>> spec = CampaignSpec(
...     network=NetworkRef(path="net.npz"),
...     sampler=SamplerSpec(kind="fixed", distribution=(2, 1)),
...     fault=FaultSpec(kind="noise", sigma=0.1),
...     n_scenarios=10_000,
... )
>>> result = run(spec)                      # doctest: +SKIP
>>> spec == type(spec).from_dict(spec.to_dict())
True

Specs are frozen dataclasses validated eagerly at construction,
round-trip through JSON byte-identically (``--dump-spec`` /
``--spec`` on the CLI), and content-hash canonically — the
:class:`~repro.artifacts.ArtifactStore` keys caching and replay on
those hashes for experiments that declare their spec.
"""

from .dispatch import build_detector, build_policy, build_sampler, run
from .model import (
    ENGINE_BACKENDS,
    FAULT_KINDS,
    DETECTOR_KINDS,
    POLICY_KINDS,
    PROCESS_KINDS,
    SAMPLER_KINDS,
    SPEC_VERSION,
    STOPPING_METHODS,
    ALLOCATION_KINDS,
    TRAFFIC_KINDS,
    CampaignSpec,
    ChaosSpec,
    ServiceSpec,
    DetectorSpec,
    EngineSpec,
    FaultSpec,
    NetworkRef,
    ObsSpec,
    PolicySpec,
    ProcessSpec,
    SamplerSpec,
    Spec,
    StoppingSpec,
    SpecError,
    SurvivalSpec,
    TelemetrySpec,
    TrafficSpec,
    load_spec,
    save_spec,
    spec_from_dict,
)

__all__ = [
    "SPEC_VERSION",
    "SpecError",
    "Spec",
    "NetworkRef",
    "FaultSpec",
    "StoppingSpec",
    "SamplerSpec",
    "EngineSpec",
    "ObsSpec",
    "CampaignSpec",
    "SurvivalSpec",
    "ProcessSpec",
    "DetectorSpec",
    "PolicySpec",
    "TrafficSpec",
    "TelemetrySpec",
    "ChaosSpec",
    "ServiceSpec",
    "run",
    "spec_from_dict",
    "load_spec",
    "save_spec",
    "build_sampler",
    "build_detector",
    "build_policy",
    "FAULT_KINDS",
    "SAMPLER_KINDS",
    "STOPPING_METHODS",
    "ALLOCATION_KINDS",
    "ENGINE_BACKENDS",
    "PROCESS_KINDS",
    "DETECTOR_KINDS",
    "POLICY_KINDS",
    "TRAFFIC_KINDS",
]
