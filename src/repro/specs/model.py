"""The declarative run-spec layer: every workload as serializable data.

A *spec* is a frozen dataclass describing one study — a fault-injection
campaign, a survival analysis, or a temporal chaos run — completely:
the network (by file path or deterministic builder recipe), the fault
model, the scenario sampler, the engine parameters, and for chaos runs
the process/detector/policy/traffic quadruple.  Specs are

* **validated eagerly** — every constraint the run layers would reject
  is checked at construction, so a bad spec fails where it is built,
  not ten minutes into a campaign;
* **serializable** — ``to_dict``/``from_dict`` round-trip through plain
  JSON (``to_json``/``load_spec``); ``from_dict`` is strict: unknown
  keys, missing required keys, and ``spec_version`` mismatches all
  raise :class:`SpecError`;
* **schema-versioned** — every serialized spec carries
  ``spec_version``; bumping :data:`SPEC_VERSION` invalidates stored
  specs explicitly instead of silently reinterpreting them;
* **content-hashable** — :meth:`Spec.content_hash` digests the
  canonical JSON form, which is what the
  :class:`~repro.artifacts.ArtifactStore` keys caching and replay on
  for spec-declaring experiments.

The lowering from specs onto the mask-native engines lives in
:mod:`repro.specs.dispatch` (``repro.run``); this module is pure data
and never imports the heavy numerical machinery.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Type

__all__ = [
    "SPEC_VERSION",
    "SpecError",
    "Spec",
    "NetworkRef",
    "FaultSpec",
    "StoppingSpec",
    "SamplerSpec",
    "EngineSpec",
    "ObsSpec",
    "CampaignSpec",
    "SurvivalSpec",
    "ProcessSpec",
    "DetectorSpec",
    "PolicySpec",
    "TrafficSpec",
    "TelemetrySpec",
    "ChaosSpec",
    "ServiceSpec",
    "spec_from_dict",
    "load_spec",
    "save_spec",
    "FAULT_KINDS",
    "SAMPLER_KINDS",
    "STOPPING_METHODS",
    "ALLOCATION_KINDS",
    "ENGINE_BACKENDS",
    "PROCESS_KINDS",
    "DETECTOR_KINDS",
    "POLICY_KINDS",
    "TRAFFIC_KINDS",
]

#: Schema version stamped into every serialized spec.  Readers reject
#: any other value — stored specs never get silently reinterpreted.
SPEC_VERSION = 1


class SpecError(ValueError):
    """A spec failed validation or deserialization."""


def _jsonify(value: Any) -> Any:
    """Plain-JSON view of a spec field value (tuples become lists)."""
    if isinstance(value, Spec):
        return value.to_dict()
    if isinstance(value, (tuple, list)):
        return [_jsonify(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonify(value[k]) for k in value}
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    raise SpecError(
        f"spec field value {value!r} of type {type(value).__name__} is "
        "not JSON-serializable"
    )


#: ``spec`` tag -> dataclass, filled by :func:`_register`.
_SPEC_TYPES: Dict[str, Type["Spec"]] = {}


def _register(tag: str):
    def decorate(cls):
        cls.spec_tag = tag
        _SPEC_TYPES[tag] = cls
        return cls

    return decorate


class Spec:
    """Base for every run-spec dataclass: strict (de)serialization,
    canonical JSON, and content hashing.

    Subclasses declare ``_nested`` (field name -> spec class) and
    ``_nested_tuples`` (field name -> element spec class) so
    ``from_dict`` can rebuild the object graph from plain JSON;
    plain-value tuples (failure distributions, tolerated counts) are
    normalised by each class's ``__post_init__``.
    """

    spec_tag: str = ""
    _nested: Dict[str, type] = {}
    _nested_tuples: Dict[str, type] = {}
    #: Fields omitted from ``to_dict`` while ``None`` — the mechanism
    #: for adding optional fields to an existing schema without
    #: invalidating stored specs: an absent key deserializes to the
    #: ``None`` default, so old payloads round-trip byte-identically
    #: and keep their content hashes.
    _omit_if_none: Tuple[str, ...] = ()

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON dict with the ``spec`` tag and ``spec_version``."""
        out: Dict[str, Any] = {
            "spec": self.spec_tag,
            "spec_version": SPEC_VERSION,
        }
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if value is None and f.name in self._omit_if_none:
                continue
            out[f.name] = _jsonify(value)
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "Spec":
        """Strict inverse of :meth:`to_dict`.

        Raises :class:`SpecError` on a wrong/missing ``spec`` tag, a
        ``spec_version`` mismatch, unknown keys, or missing required
        keys; optional keys fall back to their field defaults.
        """
        if not isinstance(data, Mapping):
            raise SpecError(
                f"{cls.spec_tag} spec must be a mapping, got "
                f"{type(data).__name__}"
            )
        payload = dict(data)
        tag = payload.pop("spec", None)
        if tag != cls.spec_tag:
            raise SpecError(
                f"expected spec tag {cls.spec_tag!r}, got {tag!r}"
            )
        version = payload.pop("spec_version", None)
        if version != SPEC_VERSION:
            raise SpecError(
                f"spec_version mismatch for {cls.spec_tag!r}: stored "
                f"{version!r}, this build reads {SPEC_VERSION}"
            )
        kwargs: Dict[str, Any] = {}
        for f in dataclasses.fields(cls):
            if f.name in payload:
                value = payload.pop(f.name)
                if f.name in cls._nested and value is not None:
                    value = cls._nested[f.name].from_dict(value)
                elif f.name in cls._nested_tuples and value is not None:
                    element = cls._nested_tuples[f.name]
                    value = tuple(element.from_dict(item) for item in value)
                kwargs[f.name] = value
            elif (
                f.default is dataclasses.MISSING
                and f.default_factory is dataclasses.MISSING
            ):
                raise SpecError(
                    f"{cls.spec_tag} spec is missing required key {f.name!r}"
                )
        if payload:
            raise SpecError(
                f"unknown key(s) {sorted(payload)} in {cls.spec_tag!r} spec"
            )
        return cls(**kwargs)

    def to_json(self) -> str:
        """Stable pretty JSON (sorted keys, trailing newline) — the
        ``--dump-spec`` format, byte-identical across round-trips."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def canonical_json(self) -> str:
        """Minimal sorted-key JSON, the hashing pre-image."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def content_hash(self) -> str:
        """16-hex-digit digest of the canonical JSON form — the cache /
        replay key (two specs collide iff they describe the same run)."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()[:16]

    def replace(self, **changes) -> "Spec":
        """A copy with ``changes`` applied (re-validated eagerly)."""
        return dataclasses.replace(self, **changes)

    # -- shared validation helpers ----------------------------------------

    def _freeze(self, name: str, value) -> None:
        object.__setattr__(self, name, value)

    @staticmethod
    def _require(condition: bool, message: str) -> None:
        if not condition:
            raise SpecError(message)

    def _validate_nested(self) -> None:
        """Nested spec fields hold the right spec type (or None only
        where the field defaults to None) — so a stored payload with
        ``"network": null`` fails as a SpecError at construction, not
        as an AttributeError deep inside a run."""
        fields_by_name = {f.name: f for f in dataclasses.fields(self)}
        for name, expected in self._nested.items():
            value = getattr(self, name)
            if value is None:
                self._require(
                    fields_by_name[name].default is None,
                    f"{self.spec_tag} spec field {name!r} may not be null",
                )
                continue
            self._require(
                isinstance(value, expected),
                f"{self.spec_tag} spec field {name!r} must be a "
                f"{expected.__name__}, got {type(value).__name__}",
            )
        for name, expected in self._nested_tuples.items():
            value = getattr(self, name)
            self._require(
                value is not None,
                f"{self.spec_tag} spec field {name!r} may not be null",
            )
            for item in value:
                self._require(
                    isinstance(item, expected),
                    f"{self.spec_tag} spec field {name!r} entries must "
                    f"be {expected.__name__}, got {type(item).__name__}",
                )


def spec_from_dict(data: Mapping) -> Spec:
    """Rebuild any spec from its ``to_dict`` form via the ``spec`` tag."""
    if not isinstance(data, Mapping):
        raise SpecError(f"spec payload must be a mapping, got {type(data).__name__}")
    tag = data.get("spec")
    cls = _SPEC_TYPES.get(tag)
    if cls is None:
        raise SpecError(
            f"unknown spec tag {tag!r}; known tags: {sorted(_SPEC_TYPES)}"
        )
    return cls.from_dict(data)


def load_spec(path: "str | Path") -> Spec:
    """Read a JSON spec file written by :func:`save_spec` / ``--dump-spec``."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise SpecError(f"{path} is not valid JSON: {exc}") from None
    return spec_from_dict(data)


def save_spec(spec: Spec, path: "str | Path") -> Path:
    """Write ``spec`` as pretty JSON; returns the path."""
    path = Path(path)
    path.write_text(spec.to_json(), encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# Network references
# ---------------------------------------------------------------------------

#: Builder recipes a :class:`NetworkRef` can name, with their required
#: and optional parameter keys (mirroring :mod:`repro.network.builder`).
_BUILDERS: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    "mlp": (
        ("input_dim", "hidden"),
        ("activation", "n_outputs", "init", "use_bias", "output_scale", "seed"),
    ),
    "conv": (
        ("input_dim", "receptive_fields"),
        ("activation", "n_outputs", "init", "use_bias", "seed"),
    ),
    "figure3": (("index", "k"), ("seed", "weight_scale")),
}


@_register("network")
@dataclass(frozen=True)
class NetworkRef(Spec):
    """Where the network comes from: a saved archive or a builder recipe.

    Exactly one of ``path`` (a ``save_network()`` ``.npz`` archive) and
    ``builder`` (a deterministic recipe: ``"mlp"``, ``"conv"`` or
    ``"figure3"``, with ``params`` forwarded to the corresponding
    :mod:`repro.network.builder` function) must be set.  Builder refs
    hash stably — two specs naming the same recipe share cache keys —
    while path refs hash on the path string (the archive's content is
    the caller's responsibility to pin).
    """

    path: Optional[str] = None
    builder: Optional[str] = None
    params: Mapping = field(default_factory=dict)

    def __post_init__(self):
        self._require(
            (self.path is None) != (self.builder is None),
            "NetworkRef needs exactly one of path= or builder=",
        )
        if self.path is not None:
            self._freeze("path", str(self.path))
            self._require(
                not self.params,
                "NetworkRef(path=...) takes no params (they belong to "
                "builder recipes)",
            )
            self._freeze("params", {})
            return
        if self.builder not in _BUILDERS:
            raise SpecError(
                f"unknown builder {self.builder!r}; known: "
                f"{sorted(_BUILDERS)}"
            )
        required, optional = _BUILDERS[self.builder]
        params = {str(k): _jsonify(v) for k, v in dict(self.params).items()}
        missing = [k for k in required if k not in params]
        unknown = sorted(set(params) - set(required) - set(optional))
        self._require(
            not missing,
            f"builder {self.builder!r} params missing {missing}",
        )
        self._require(
            not unknown,
            f"builder {self.builder!r} params has unknown key(s) {unknown}",
        )
        self._freeze("params", params)

    def resolve(self):
        """Load or build the :class:`FeedForwardNetwork` this names."""
        if self.path is not None:
            from ..network.serialization import load_network

            return load_network(self.path)
        from ..network import builder as b

        params = dict(self.params)
        if self.builder == "mlp":
            return b.build_mlp(
                params.pop("input_dim"), params.pop("hidden"), **params
            )
        if self.builder == "conv":
            return b.build_conv_net(
                params.pop("input_dim"),
                params.pop("receptive_fields"),
                **params,
            )
        return b.build_figure3_network(
            params.pop("index"), params.pop("k"), **params
        )


# ---------------------------------------------------------------------------
# Fault models
# ---------------------------------------------------------------------------

#: Spec fault kinds, matching :attr:`repro.faults.types.FaultModel.kind`.
FAULT_KINDS = (
    "crash",
    "byzantine",
    "stuck",
    "offset",
    "noise",
    "intermittent",
    "sign_flip",
    "synapse_crash",
    "synapse_byzantine",
    "synapse_noise",
)

#: Kinds for which ``value`` is meaningful (requested emission /
#: stuck-at level / additive offset).
_VALUE_KINDS = ("byzantine", "stuck", "offset", "synapse_byzantine")


@_register("fault")
@dataclass(frozen=True)
class FaultSpec(Spec):
    """One fault model of the taxonomy (Sections II-B & V, Lemma 2).

    ``value`` is the requested Byzantine emission / synapse offset
    (``None`` = saturate the capacity, the tightness-proof worst case)
    or the stuck-at level / additive offset (``None`` = 1.0, the CLI
    default).  ``sigma`` drives the Gaussian kinds, ``p`` the
    intermittent hit probability, ``inner`` the fault an intermittent
    wrapper applies on a hit (``None`` = crash).
    """

    kind: str = "crash"
    value: Optional[float] = None
    sigma: float = 0.1
    p: float = 0.5
    sign: int = 1
    inner: Optional["FaultSpec"] = None

    def __post_init__(self):
        self._validate_nested()
        self._require(
            self.kind in FAULT_KINDS,
            f"fault kind {self.kind!r} not in taxonomy {FAULT_KINDS}",
        )
        self._require(self.sign in (-1, 1), f"sign must be +-1, got {self.sign}")
        self._require(self.sigma >= 0, f"sigma must be >= 0, got {self.sigma}")
        self._require(0 <= self.p <= 1, f"p must be in [0,1], got {self.p}")
        if self.value is not None:
            self._freeze("value", float(self.value))
            self._require(
                self.kind in _VALUE_KINDS,
                f"value= is meaningless for fault kind {self.kind!r} "
                f"(only {_VALUE_KINDS} read it)",
            )
        if self.inner is not None:
            self._require(
                self.kind == "intermittent",
                "inner= is only valid for kind='intermittent'",
            )
            self._require(
                not self.inner.is_synapse,
                "intermittent faults wrap neuron faults, got "
                f"{self.inner.kind!r}",
            )

    @property
    def is_synapse(self) -> bool:
        return self.kind.startswith("synapse_")

    def to_fault_model(self):
        """Instantiate the :class:`~repro.faults.types.FaultModel`."""
        from ..faults import types as t

        if self.kind == "crash":
            return t.CrashFault()
        if self.kind == "byzantine":
            return t.ByzantineFault(value=self.value, sign=self.sign)
        if self.kind == "stuck":
            return t.StuckAtFault(
                value=self.value if self.value is not None else 1.0
            )
        if self.kind == "offset":
            return t.OffsetFault(
                offset=self.value if self.value is not None else 1.0
            )
        if self.kind == "noise":
            return t.NoiseFault(sigma=self.sigma)
        if self.kind == "intermittent":
            inner = (
                self.inner.to_fault_model()
                if self.inner is not None
                else t.CrashFault()
            )
            return t.IntermittentFault(p=self.p, fault=inner)
        if self.kind == "sign_flip":
            return t.SignFlipFault()
        if self.kind == "synapse_crash":
            return t.SynapseCrashFault()
        if self.kind == "synapse_byzantine":
            return t.SynapseByzantineFault(offset=self.value, sign=self.sign)
        return t.SynapseNoiseFault(sigma=self.sigma)


FaultSpec._nested = {"inner": FaultSpec}


# ---------------------------------------------------------------------------
# Adaptive stopping
# ---------------------------------------------------------------------------

#: Anytime-valid confidence-sequence families the adaptive sampler can
#: stop on (:mod:`repro.faults.adaptive`).
STOPPING_METHODS = ("hoeffding", "empirical_bernstein")

#: Per-stratum sample allocation rules for the stratified estimator.
ALLOCATION_KINDS = ("proportional", "neyman", "rare")


@_register("stopping")
@dataclass(frozen=True)
class StoppingSpec(Spec):
    """Adaptive-sampling control for campaign and survival runs.

    When present, the run streams scenario blocks through an
    anytime-valid confidence sequence over the violation rate
    (``errors > threshold``) and stops at the first block boundary
    where the two-sided CI width is ``<= target_ci`` — valid at
    confidence ``1 - delta`` simultaneously over every look (union
    bound over block boundaries).  ``method`` picks the Hoeffding or
    empirical-Bernstein half-width; the latter adapts to the observed
    variance and stops far earlier in the rare-event regime.

    ``threshold`` is the violation level; ``None`` defers to the
    campaign's ``threshold`` (campaigns) or the epsilon budget
    ``epsilon - epsilon_prime`` (survival runs).  ``min_scenarios``
    floors the sample count before the first stop decision; the
    campaign's ``n_scenarios`` / ``n_trials`` remains the hard cap, so
    stopping never changes the block layout — an adaptive run is a
    prefix of the fixed-size run.

    ``stratify=True`` switches to the stratified estimator over
    total-fault-count shells (Bernoulli samplers only): shell ``k``
    carries binomial weight ``C(N, k) p^k (1-p)^(N-k)``, shells whose
    every count distribution is Theorem-3 tolerated contribute exactly
    zero without sampling, and ``allocation`` splits the scenario
    budget (``proportional`` to the weights — exactly unbiased;
    ``neyman`` ``∝ w_k * sigma_k`` from a ``pilot`` phase; ``rare``
    uniform over the uncertified shells, the importance-weighted
    rare-event path).
    """

    method: str = "hoeffding"
    target_ci: float = 0.05
    delta: float = 0.05
    threshold: Optional[float] = None
    min_scenarios: int = 1024
    stratify: bool = False
    allocation: str = "proportional"
    pilot: int = 256

    def __post_init__(self):
        self._require(
            self.method in STOPPING_METHODS,
            f"stopping method must be one of {STOPPING_METHODS}, got "
            f"{self.method!r}",
        )
        self._require(
            0 < self.target_ci < 1,
            f"target_ci is a CI width in (0,1), got {self.target_ci}",
        )
        self._require(
            0 < self.delta < 1,
            f"delta must be in (0,1), got {self.delta}",
        )
        if self.threshold is not None:
            self._freeze("threshold", float(self.threshold))
            self._require(
                self.threshold >= 0,
                f"threshold must be >= 0, got {self.threshold}",
            )
        self._require(
            self.min_scenarios >= 1,
            f"min_scenarios must be >= 1, got {self.min_scenarios}",
        )
        self._require(
            self.allocation in ALLOCATION_KINDS,
            f"allocation must be one of {ALLOCATION_KINDS}, got "
            f"{self.allocation!r}",
        )
        self._require(
            self.stratify or self.allocation == "proportional",
            "allocation= only applies to the stratified estimator "
            "(stratify=True)",
        )
        self._require(
            self.pilot >= 2,
            f"pilot must be >= 2 (a variance needs two draws), got "
            f"{self.pilot}",
        )


# ---------------------------------------------------------------------------
# Samplers
# ---------------------------------------------------------------------------

SAMPLER_KINDS = ("fixed", "bernoulli", "exhaustive", "mixed")


@_register("sampler")
@dataclass(frozen=True)
class SamplerSpec(Spec):
    """How scenarios are drawn (the mask-sampler family of DESIGN.md).

    * ``fixed`` — exactly ``distribution[l]`` failures per layer
      (per-*stage* synapse counts, length ``L + 1``, for synapse
      faults) — Figure 3's workload;
    * ``bernoulli`` — every component fails independently with
      ``p_fail`` — Section V-A's survival workload;
    * ``exhaustive`` — every configuration of exactly ``n_fail``
      crashes (crash-only by definition);
    * ``mixed`` — a heterogeneous population: each ``components`` entry
      is a ``fixed``/``bernoulli`` spec carrying its *own* ``fault``,
      merged with later-wins collisions.
    """

    kind: str = "fixed"
    distribution: Optional[Tuple[int, ...]] = None
    p_fail: Optional[float] = None
    n_fail: Optional[int] = None
    fault: Optional[FaultSpec] = None
    components: Tuple["SamplerSpec", ...] = ()
    stopping: Optional[StoppingSpec] = None

    def __post_init__(self):
        self._validate_nested()
        if self.stopping is not None:
            self._require(
                self.kind in ("fixed", "bernoulli"),
                "stopping= rides on sampled scenario streams "
                f"(fixed/bernoulli), not {self.kind!r}",
            )
            self._require(
                not self.stopping.stratify or self.kind == "bernoulli",
                "the stratified estimator needs the i.i.d. regime "
                "(kind='bernoulli') for its binomial shell weights",
            )
        self._require(
            self.kind in SAMPLER_KINDS,
            f"sampler kind {self.kind!r} not in {SAMPLER_KINDS}",
        )
        if self.distribution is not None:
            self._freeze(
                "distribution", tuple(int(f) for f in self.distribution)
            )
        if self.components:
            self._freeze("components", tuple(self.components))
        if self.kind == "fixed":
            self._require(
                self.distribution is not None,
                "fixed sampler needs distribution=(f_1, ..., f_L)",
            )
            self._require(
                all(f >= 0 for f in self.distribution),
                f"failure counts must be >= 0, got {self.distribution}",
            )
            self._require(
                self.p_fail is None and self.n_fail is None,
                "fixed sampler reads only distribution=",
            )
        elif self.kind == "bernoulli":
            self._require(
                self.p_fail is not None and 0 <= self.p_fail <= 1,
                f"bernoulli sampler needs p_fail in [0,1], got {self.p_fail}",
            )
            self._require(
                self.distribution is None and self.n_fail is None,
                "bernoulli sampler reads only p_fail=",
            )
        elif self.kind == "exhaustive":
            self._require(
                self.n_fail is not None and self.n_fail >= 0,
                f"exhaustive sampler needs n_fail >= 0, got {self.n_fail}",
            )
            self._require(
                self.distribution is None and self.p_fail is None,
                "exhaustive sampler reads only n_fail=",
            )
            self._require(
                self.fault is None,
                "the exhaustive sweep is crash-only by definition",
            )
        if self.kind == "mixed":
            self._require(
                len(self.components) > 0,
                "mixed sampler needs at least one component",
            )
            for comp in self.components:
                self._require(
                    comp.kind in ("fixed", "bernoulli"),
                    f"mixed components must be fixed/bernoulli, got "
                    f"{comp.kind!r}",
                )
                self._require(
                    comp.fault is not None,
                    "every mixed component carries its own fault=",
                )
                self._require(
                    comp.stopping is None,
                    "stopping= belongs to the top-level sampler (or the "
                    "campaign), not to mixed components",
                )
        else:
            self._require(
                not self.components,
                f"components= is only valid for kind='mixed', not "
                f"{self.kind!r}",
            )


SamplerSpec._nested = {"fault": FaultSpec, "stopping": StoppingSpec}
SamplerSpec._nested_tuples = {"components": SamplerSpec}
SamplerSpec._omit_if_none = ("stopping",)


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------

#: Evaluation backends the engine seam can route a campaign through.
#: ``numpy`` is the reference in-process engine; ``threaded`` tiles
#: chunk evaluation over a thread pool (the GEMM + segment-sum path
#: releases the GIL); ``quantized-int8`` / ``float16`` are reduced-
#: precision probe tiers built on :class:`~repro.quantization.
#: quantizers.QuantizedNetwork`.
ENGINE_BACKENDS = ("numpy", "threaded", "quantized-int8", "float16")


@_register("engine")
@dataclass(frozen=True)
class EngineSpec(Spec):
    """Mask-engine evaluation parameters shared by every workload.

    ``chunk_size=None`` takes the subsystem default (1024 scenario rows
    for static campaigns; ``epochs_chunk * REPLICA_BLOCK`` for chaos
    windows).  ``dtype='float32'`` selects the fast evaluation path;
    ``workers > 1`` fans chunks/blocks over the fork-once pool.
    ``backend`` picks the evaluation engine from
    :data:`ENGINE_BACKENDS` (stored specs predating the field load as
    ``"numpy"``, the reference engine).
    """

    chunk_size: Optional[int] = None
    dtype: str = "float64"
    workers: int = 0
    reduction: str = "max"
    backend: str = "numpy"

    def __post_init__(self):
        self._require(
            self.dtype in ("float32", "float64"),
            f"dtype must be float32/float64, got {self.dtype!r}",
        )
        self._require(
            self.backend in ENGINE_BACKENDS,
            f"backend must be one of {ENGINE_BACKENDS}, got {self.backend!r}",
        )
        self._require(
            self.chunk_size is None or self.chunk_size >= 1,
            f"chunk_size must be >= 1, got {self.chunk_size}",
        )
        self._require(
            self.workers >= 0,
            f"workers must be >= 0 (0 = in-process), got {self.workers}",
        )
        self._require(
            self.reduction in ("max", "mean"),
            f"reduction must be max/mean, got {self.reduction!r}",
        )


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


@_register("obs")
@dataclass(frozen=True)
class ObsSpec(Spec):
    """Run observability (span trace + metrics) for any runnable spec.

    Nested (optionally) inside :class:`CampaignSpec`,
    :class:`SurvivalSpec` and :class:`ChaosSpec`; its absence means no
    observation, which is also the pre-observability payload shape —
    old spec payloads lower and hash unchanged.

    ``enabled`` switches the whole subsystem; ``events`` keeps or
    drops point events (adaptive-stopping looks, artifact-cache
    hits/misses) within the span trace; ``record`` names a path where
    ``repro.run`` persists the finished run record
    (:func:`~repro.obs.save_run_record` — the file the ``repro obs``
    command renders).  Observation draws no randomness: results are
    bitwise identical with it on or off.
    """

    enabled: bool = True
    events: bool = True
    record: Optional[str] = None

    def __post_init__(self):
        if self.record is not None:
            self._require(
                bool(str(self.record).strip()),
                "record must be a non-empty path (or null)",
            )


# ---------------------------------------------------------------------------
# Static campaigns
# ---------------------------------------------------------------------------


@_register("campaign")
@dataclass(frozen=True)
class CampaignSpec(Spec):
    """A static fault-injection campaign (the ``campaign`` CLI verb).

    ``seed`` drives both the scenario stream and — unless
    ``probe_seed`` overrides it — the random probe batch of ``batch``
    inputs.  ``capacity=None`` defaults to ``sup phi`` at lowering.
    ``threshold`` optionally asks the report for the fraction of
    scenarios exceeding that error (the empirical guarantee-break
    probability).  ``stopping`` turns the campaign adaptive
    (:class:`StoppingSpec`; ``n_scenarios`` becomes the hard cap) —
    it overrides a ``stopping`` nested in the sampler.  ``obs``
    (optional, :class:`ObsSpec`) observes the run; omitted, the
    payload is byte-identical to pre-observability specs.
    """

    network: NetworkRef
    sampler: SamplerSpec
    fault: FaultSpec = FaultSpec()
    n_scenarios: int = 10_000
    batch: int = 32
    seed: int = 0
    probe_seed: Optional[int] = None
    capacity: Optional[float] = None
    threshold: Optional[float] = None
    engine: EngineSpec = EngineSpec()
    stopping: Optional[StoppingSpec] = None
    obs: Optional[ObsSpec] = None

    def __post_init__(self):
        self._validate_nested()
        self._require(
            self.n_scenarios >= 1,
            f"n_scenarios must be >= 1, got {self.n_scenarios}",
        )
        self._require(self.batch >= 1, f"batch must be >= 1, got {self.batch}")
        if self.sampler.kind == "exhaustive":
            self._require(
                self.fault.kind == "crash" and self.fault.value is None,
                "the exhaustive sweep enumerates crash configurations; "
                f"fault {self.fault.kind!r} only applies to sampled "
                "campaigns",
            )
        stopping = self.effective_stopping
        if stopping is not None:
            self._require(
                self.sampler.kind in ("fixed", "bernoulli"),
                "adaptive stopping rides on sampled scenario streams "
                f"(fixed/bernoulli), not {self.sampler.kind!r}",
            )
            self._require(
                stopping.threshold is not None or self.threshold is not None,
                "an adaptive campaign needs a violation threshold: set "
                "stopping.threshold or the campaign threshold",
            )
            if stopping.stratify:
                self._require(
                    self.sampler.kind == "bernoulli",
                    "the stratified estimator needs the i.i.d. regime "
                    "(sampler kind='bernoulli') for its binomial shell "
                    "weights",
                )
                fault = (
                    self.sampler.fault
                    if self.sampler.fault is not None
                    else self.fault
                )
                self._require(
                    not fault.is_synapse,
                    "the stratified shells are neuron-count shells "
                    "(Theorem 3 certifies neuron counts); synapse faults "
                    "run the unstratified confidence sequence",
                )

    @property
    def effective_stopping(self) -> Optional[StoppingSpec]:
        """The stopping rule this campaign runs under: the campaign's
        own ``stopping``, else the sampler's, else ``None``."""
        if self.stopping is not None:
            return self.stopping
        return self.sampler.stopping


CampaignSpec._nested = {
    "network": NetworkRef,
    "sampler": SamplerSpec,
    "fault": FaultSpec,
    "engine": EngineSpec,
    "stopping": StoppingSpec,
    "obs": ObsSpec,
}
CampaignSpec._omit_if_none = ("stopping", "obs")


# ---------------------------------------------------------------------------
# Survival
# ---------------------------------------------------------------------------


@_register("survival")
@dataclass(frozen=True)
class SurvivalSpec(Spec):
    """A survival-probability study under i.i.d. component failures.

    ``method='certified'`` evaluates the exact Theorem-3 lower bound
    (:func:`~repro.faults.reliability.certified_survival_probability`,
    the ``survival`` CLI verb); ``method='monte_carlo'`` estimates the
    actual survival by injection
    (:func:`~repro.faults.reliability.monte_carlo_survival`), with
    ``fault`` selecting the failure model and ``n_trials``/``batch``/
    ``seed`` the experiment size.
    """

    network: NetworkRef
    p_fail: float
    epsilon: float
    epsilon_prime: float
    mode: str = "crash"
    capacity: Optional[float] = None
    method: str = "certified"
    fault: Optional[FaultSpec] = None
    n_trials: int = 500
    batch: int = 32
    seed: int = 0
    probe_seed: Optional[int] = None
    stopping: Optional[StoppingSpec] = None
    obs: Optional[ObsSpec] = None

    def __post_init__(self):
        if self.stopping is not None:
            self._require(
                self.method == "monte_carlo",
                "stopping= only applies to method='monte_carlo' (the "
                "certified bound is exact, nothing to stop early)",
            )
        self._validate_nested()
        self._require(
            0 <= self.p_fail <= 1, f"p_fail must be in [0,1], got {self.p_fail}"
        )
        self._require(
            0 < self.epsilon_prime <= self.epsilon,
            "need 0 < epsilon_prime <= epsilon, got "
            f"epsilon={self.epsilon}, epsilon_prime={self.epsilon_prime}",
        )
        self._require(
            self.mode in ("crash", "byzantine"),
            f"mode must be crash/byzantine, got {self.mode!r}",
        )
        self._require(
            self.method in ("certified", "monte_carlo"),
            f"method must be certified/monte_carlo, got {self.method!r}",
        )
        if self.method == "certified":
            self._require(
                self.fault is None,
                "fault= only applies to method='monte_carlo' (the "
                "certified bound is placement- and behaviour-free)",
            )
        self._require(
            self.n_trials >= 1, f"n_trials must be >= 1, got {self.n_trials}"
        )
        self._require(self.batch >= 1, f"batch must be >= 1, got {self.batch}")
        if self.stopping is not None and self.stopping.stratify:
            self._require(
                self.fault is None or not self.fault.is_synapse,
                "the stratified shells are neuron-count shells (Theorem "
                "3 certifies neuron counts); synapse faults run the "
                "unstratified confidence sequence",
            )


SurvivalSpec._nested = {
    "network": NetworkRef,
    "fault": FaultSpec,
    "stopping": StoppingSpec,
    "obs": ObsSpec,
}
SurvivalSpec._omit_if_none = ("stopping", "obs")


# ---------------------------------------------------------------------------
# Chaos: processes, detectors, policies, traffic
# ---------------------------------------------------------------------------

PROCESS_KINDS = ("lifetime", "poisson", "bursts", "blasts")


@_register("process")
@dataclass(frozen=True)
class ProcessSpec(Spec):
    """One fault arrival/lifetime process of the chaos subsystem.

    ``lifetime`` with ``shape=1`` is the exponential mission model
    (``shape > 1`` Weibull wear-out — the CLI's ``weibull`` sugar),
    ``poisson`` memoryless per-layer arrivals, ``bursts`` transient
    soft-error storms (gate_p channel), ``blasts`` correlated layer
    losses.  ``fraction=None`` takes the process default (0.2 for
    bursts, 0.5 for blasts).
    """

    kind: str = "lifetime"
    rate: float = 0.02
    shape: float = 1.0
    dt: float = 1.0
    duration: int = 3
    fraction: Optional[float] = None
    hit_p: float = 0.5

    def __post_init__(self):
        self._require(
            self.kind in PROCESS_KINDS,
            f"process kind {self.kind!r} not in {PROCESS_KINDS}",
        )
        self._require(self.rate >= 0, f"rate must be >= 0, got {self.rate}")
        if self.kind in ("bursts", "blasts"):
            self._require(
                self.rate <= 1,
                f"{self.kind} rate is a per-epoch probability, got "
                f"{self.rate}",
            )
        self._require(self.shape > 0, f"shape must be > 0, got {self.shape}")
        self._require(self.dt > 0, f"dt must be > 0, got {self.dt}")
        self._require(
            self.duration >= 1, f"duration must be >= 1, got {self.duration}"
        )
        if self.fraction is not None:
            self._require(
                0 < self.fraction <= 1,
                f"fraction must be in (0,1], got {self.fraction}",
            )
        self._require(
            0 <= self.hit_p <= 1, f"hit_p must be in [0,1], got {self.hit_p}"
        )

    def build(self):
        """Instantiate the :class:`~repro.chaos.processes.FaultProcess`."""
        from ..chaos import processes as p

        if self.kind == "lifetime":
            return p.ComponentLifetimeProcess(
                self.rate, shape=self.shape, dt=self.dt
            )
        if self.kind == "poisson":
            return p.PoissonArrivalProcess(self.rate)
        if self.kind == "bursts":
            return p.TransientBurstProcess(
                self.rate,
                duration=self.duration,
                fraction=self.fraction if self.fraction is not None else 0.2,
                hit_p=self.hit_p,
            )
        return p.CorrelatedBlastProcess(
            self.rate,
            fraction=self.fraction if self.fraction is not None else 0.5,
        )


DETECTOR_KINDS = ("threshold", "cusum", "certified")


@_register("detector")
@dataclass(frozen=True)
class DetectorSpec(Spec):
    """One error-drift detector watching the fleet.

    ``threshold=None`` resolves to the epsilon budget at lowering
    (``2 x budget`` for CUSUM, whose ``drift`` defaults to
    ``budget / 2``).  The ``certified`` kind is the Theorem-3
    preventive alarm: ``failure_rate=None`` borrows the first
    process's rate.
    """

    kind: str = "threshold"
    threshold: Optional[float] = None
    drift: Optional[float] = None
    failure_rate: Optional[float] = None
    p_threshold: float = 0.9
    dt: float = 1.0
    mode: str = "crash"

    def __post_init__(self):
        self._require(
            self.kind in DETECTOR_KINDS,
            f"detector kind {self.kind!r} not in {DETECTOR_KINDS}",
        )
        if self.threshold is not None:
            self._require(
                self.threshold >= 0,
                f"threshold must be >= 0, got {self.threshold}",
            )
        if self.drift is not None:
            self._require(
                self.drift >= 0, f"drift must be >= 0, got {self.drift}"
            )
        if self.failure_rate is not None:
            self._require(
                self.failure_rate >= 0,
                f"failure_rate must be >= 0, got {self.failure_rate}",
            )
        self._require(
            0 < self.p_threshold <= 1,
            f"p_threshold must be in (0,1], got {self.p_threshold}",
        )
        self._require(self.dt > 0, f"dt must be > 0, got {self.dt}")
        self._require(
            self.mode in ("crash", "byzantine"),
            f"mode must be crash/byzantine, got {self.mode!r}",
        )


POLICY_KINDS = ("none", "rejuvenate", "repair", "spare")


@_register("policy")
@dataclass(frozen=True)
class PolicySpec(Spec):
    """How the fleet heals (Section V's deployment stories).

    ``rejuvenate`` restarts every ``period`` epochs in boosted mode
    (``tolerated=None`` derives the straggler budget from the
    certificate via ``greedy_max_total_failures``); ``repair`` is
    detector-triggered with ``latency``/``downtime``; ``spare`` swaps
    in ``spares`` warm spares per replica block after ``swap_latency``
    epochs.  ``detector`` names the triggering detector kind
    (``None`` = any firing).
    """

    kind: str = "none"
    period: int = 10
    tolerated: Optional[Tuple[int, ...]] = None
    straggler_fraction: float = 0.1
    straggler_scale: float = 10.0
    latency: int = 2
    downtime: int = 1
    spares: int = 4
    swap_latency: int = 1
    detector: Optional[str] = None

    def __post_init__(self):
        self._require(
            self.kind in POLICY_KINDS,
            f"policy kind {self.kind!r} not in {POLICY_KINDS}",
        )
        self._require(
            self.period >= 1, f"period must be >= 1, got {self.period}"
        )
        if self.tolerated is not None:
            self._freeze("tolerated", tuple(int(f) for f in self.tolerated))
            self._require(
                all(f >= 0 for f in self.tolerated),
                f"tolerated counts must be >= 0, got {self.tolerated}",
            )
        self._require(
            0 <= self.straggler_fraction <= 1,
            f"straggler_fraction must be in [0,1], got "
            f"{self.straggler_fraction}",
        )
        self._require(
            self.straggler_scale > 0,
            f"straggler_scale must be > 0, got {self.straggler_scale}",
        )
        self._require(
            self.latency >= 0, f"latency must be >= 0, got {self.latency}"
        )
        self._require(
            self.downtime >= 0, f"downtime must be >= 0, got {self.downtime}"
        )
        self._require(
            self.spares >= 0, f"spares must be >= 0, got {self.spares}"
        )
        self._require(
            self.swap_latency >= 0,
            f"swap_latency must be >= 0, got {self.swap_latency}",
        )
        if self.detector is not None:
            self._require(
                self.kind in ("repair", "spare"),
                "detector= only applies to the closed-loop policies "
                "(repair/spare)",
            )


TRAFFIC_KINDS = ("constant", "diurnal", "bursty")


@_register("traffic")
@dataclass(frozen=True)
class TrafficSpec(Spec):
    """The request stream weighting the SLO statistics."""

    kind: str = "constant"
    rate: float = 1000.0
    amplitude: float = 0.5
    period: int = 24
    alpha: float = 2.5
    modulate_probes: bool = False

    def __post_init__(self):
        self._require(
            self.kind in TRAFFIC_KINDS,
            f"traffic kind {self.kind!r} not in {TRAFFIC_KINDS}",
        )
        self._require(self.rate >= 0, f"rate must be >= 0, got {self.rate}")
        self._require(
            0 <= self.amplitude <= 1,
            f"amplitude must be in [0,1], got {self.amplitude}",
        )
        self._require(
            self.period >= 1, f"period must be >= 1, got {self.period}"
        )
        self._require(
            self.alpha > 1, f"alpha must be > 1 (finite mean), got {self.alpha}"
        )

    def build(self):
        """Instantiate the :class:`~repro.chaos.traffic.TrafficModel`."""
        from ..chaos import traffic as t

        if self.kind == "constant":
            return t.ConstantTraffic(self.rate)
        if self.kind == "diurnal":
            return t.DiurnalTraffic(
                self.rate,
                amplitude=self.amplitude,
                period=self.period,
                modulate_probes=self.modulate_probes,
            )
        return t.ParetoBurstyTraffic(
            self.rate, alpha=self.alpha, modulate_probes=self.modulate_probes
        )


@_register("telemetry")
@dataclass(frozen=True)
class TelemetrySpec(Spec):
    """Telemetry capture and retention for a chaos campaign.

    Nested (optionally) inside :class:`ChaosSpec`; its absence means
    the campaign records only what the report needs and persists
    nothing, which is also the pre-telemetry payload shape — old spec
    payloads lower and hash unchanged.

    ``enabled`` turns trace capture on; ``ground_truth`` additionally
    records the fault-label channels (per-layer crash/transient
    counts, per-process damage attribution) that the AIOps scoring
    tasks need.  Retention trims what :meth:`~repro.chaos.telemetry.
    TelemetryTrace.retained` persists: ``retain_errors=False`` drops
    the dense float error grid (disabling replay of the stored copy),
    ``retain_epochs=N`` keeps only the first ``N`` epochs.
    """

    enabled: bool = True
    ground_truth: bool = True
    retain_errors: bool = True
    retain_epochs: Optional[int] = None

    def __post_init__(self):
        if self.retain_epochs is not None:
            self._require(
                self.retain_epochs >= 1,
                f"retain_epochs must be >= 1, got {self.retain_epochs}",
            )


@_register("chaos")
@dataclass(frozen=True)
class ChaosSpec(Spec):
    """A temporal chaos campaign over a deployed replica fleet.

    The spec form of :func:`repro.chaos.run_chaos_campaign`: fault
    ``processes`` degrade ``replicas`` replicas over ``epochs`` epochs
    while ``detectors`` watch the error series, ``policy`` heals, and
    ``traffic`` weights the SLO report.  ``seed`` drives the whole
    fault/traffic schedule; ``probe_seed`` (default: ``seed``) draws
    the ``batch`` random probe inputs.  ``telemetry`` (optional)
    captures the campaign's :class:`~repro.chaos.telemetry.
    TelemetryTrace` for replay and AIOps scoring; omitted, the
    payload is byte-identical to pre-telemetry specs.
    """

    network: NetworkRef
    epsilon: float
    epsilon_prime: float
    processes: Tuple[ProcessSpec, ...] = (ProcessSpec(),)
    detectors: Tuple[DetectorSpec, ...] = (DetectorSpec(),)
    policy: PolicySpec = PolicySpec()
    traffic: TrafficSpec = TrafficSpec()
    epochs: int = 50
    replicas: int = 32
    batch: int = 32
    seed: int = 0
    probe_seed: Optional[int] = None
    epochs_chunk: int = 32
    capacity: Optional[float] = None
    keep_errors: bool = False
    engine: EngineSpec = EngineSpec()
    telemetry: Optional[TelemetrySpec] = None
    obs: Optional[ObsSpec] = None

    def __post_init__(self):
        self._validate_nested()
        self._require(
            0 < self.epsilon_prime <= self.epsilon,
            "need 0 < epsilon_prime <= epsilon, got "
            f"epsilon={self.epsilon}, epsilon_prime={self.epsilon_prime}",
        )
        self._freeze("processes", tuple(self.processes))
        self._freeze("detectors", tuple(self.detectors))
        self._require(
            len(self.processes) > 0, "need at least one fault process"
        )
        kinds = [d.kind for d in self.detectors]
        self._require(
            len(set(kinds)) == len(kinds),
            f"detector kinds must be unique, got {kinds}",
        )
        self._require(self.epochs >= 1, f"epochs must be >= 1, got {self.epochs}")
        self._require(
            self.replicas >= 1, f"replicas must be >= 1, got {self.replicas}"
        )
        self._require(self.batch >= 1, f"batch must be >= 1, got {self.batch}")
        self._require(
            self.epochs_chunk >= 1,
            f"epochs_chunk must be >= 1, got {self.epochs_chunk}",
        )
        if self.policy.detector is not None:
            self._require(
                self.policy.detector in kinds,
                f"policy triggers on detector {self.policy.detector!r}, "
                f"but the spec runs {kinds or 'no detectors'}",
            )
        if self.policy.kind in ("repair", "spare"):
            self._require(
                len(self.detectors) > 0,
                f"closed-loop policy {self.policy.kind!r} needs at least "
                "one detector to trigger on",
            )


ChaosSpec._nested = {
    "network": NetworkRef,
    "policy": PolicySpec,
    "traffic": TrafficSpec,
    "engine": EngineSpec,
    "telemetry": TelemetrySpec,
    "obs": ObsSpec,
}
ChaosSpec._nested_tuples = {
    "processes": ProcessSpec,
    "detectors": DetectorSpec,
}
ChaosSpec._omit_if_none = ("telemetry", "obs")


@_register("service")
@dataclass(frozen=True)
class ServiceSpec(Spec):
    """The resident campaign service: endpoint + admission control.

    Configures :class:`repro.service.CampaignService` — the asyncio
    daemon behind ``repro serve``.  Exactly one endpoint: a filesystem
    ``socket`` path (the default transport) *or* a loopback ``host`` +
    ``port`` pair.  ``max_inflight`` bounds the worker pool running
    engine evaluations off the event loop, ``queue_depth`` bounds the
    admission queue (a full queue sheds with a typed REJECTED), and
    ``job_timeout`` (seconds, optional) turns stuck evaluations into
    typed TIMEOUT responses instead of hung sockets.  ``results_dir``
    (optional) roots an :class:`~repro.artifacts.ArtifactStore` whose
    spec-hash-keyed run cache answers repeats without re-evaluation;
    ``cache_entries`` bounds the in-memory result cache.  Optional
    fields ride ``_omit_if_none``, so pre-service payloads stay
    byte-identical.
    """

    socket: Optional[str] = None
    host: Optional[str] = None
    port: Optional[int] = None
    max_inflight: int = 2
    queue_depth: int = 64
    job_timeout: Optional[float] = None
    results_dir: Optional[str] = None
    cache_entries: int = 256

    def __post_init__(self):
        self._validate_nested()
        if self.socket is not None:
            self._require(
                self.host is None and self.port is None,
                "socket and host/port endpoints are mutually exclusive",
            )
            self._require(
                isinstance(self.socket, str) and len(self.socket) > 0,
                f"socket must be a non-empty path, got {self.socket!r}",
            )
        if (self.host is None) != (self.port is None):
            raise SpecError(
                "host and port must be set together, got "
                f"host={self.host!r}, port={self.port!r}"
            )
        if self.port is not None:
            self._require(
                1 <= self.port <= 65535,
                f"port must be in 1..65535, got {self.port}",
            )
            self._require(
                self.host in ("127.0.0.1", "localhost", "::1"),
                f"host must be a loopback address, got {self.host!r}",
            )
        self._require(
            self.max_inflight >= 1,
            f"max_inflight must be >= 1, got {self.max_inflight}",
        )
        self._require(
            self.queue_depth >= 0,
            f"queue_depth must be >= 0, got {self.queue_depth}",
        )
        if self.job_timeout is not None:
            self._require(
                self.job_timeout > 0,
                f"job_timeout must be > 0, got {self.job_timeout}",
            )
        self._require(
            self.cache_entries >= 0,
            f"cache_entries must be >= 0, got {self.cache_entries}",
        )


ServiceSpec._omit_if_none = (
    "socket",
    "host",
    "port",
    "job_timeout",
    "results_dir",
)
