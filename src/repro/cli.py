"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments [names...]``
    Run the paper-reproduction experiments (default: all) and print the
    regenerated tables + shape checks.
``certify <net.npz> --epsilon E --epsilon-prime E'``
    Load a saved network and print its robustness certificate
    (crash or Byzantine mode).
``inspect <net.npz>``
    Topology summary and the structural quantities the bounds read.
``survival <net.npz> --p-fail P --epsilon E --epsilon-prime E'``
    Certified survival probability under i.i.d. neuron failures.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'When Neurons Fail' (IPDPS 2017): "
        "fault-tolerance bounds for feed-forward neural networks.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser(
        "experiments", help="run paper-reproduction experiments"
    )
    p_exp.add_argument(
        "names", nargs="*", help="experiment ids (default: all); see --list"
    )
    p_exp.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    p_exp.add_argument(
        "--markdown", metavar="PATH", default=None,
        help="also write a Markdown report to PATH",
    )

    def add_eps(p):
        p.add_argument("--epsilon", type=float, required=True,
                       help="required accuracy eps")
        p.add_argument("--epsilon-prime", type=float, required=True,
                       help="achieved over-provisioned accuracy eps' (< eps)")

    p_cert = sub.add_parser("certify", help="certify a saved network")
    p_cert.add_argument("network", help="path to a save_network() .npz archive")
    add_eps(p_cert)
    p_cert.add_argument("--mode", choices=("crash", "byzantine"), default="crash")
    p_cert.add_argument("--capacity", type=float, default=None,
                        help="transmission capacity C (byzantine mode)")

    p_ins = sub.add_parser("inspect", help="topology summary of a saved network")
    p_ins.add_argument("network", help="path to a save_network() .npz archive")

    p_sur = sub.add_parser(
        "survival", help="certified survival probability under iid failures"
    )
    p_sur.add_argument("network", help="path to a save_network() .npz archive")
    add_eps(p_sur)
    p_sur.add_argument("--p-fail", type=float, required=True,
                       help="per-neuron failure probability")
    p_sur.add_argument("--mode", choices=("crash", "byzantine"), default="crash")
    p_sur.add_argument("--capacity", type=float, default=None)
    return parser


def _cmd_experiments(args) -> int:
    from .experiments import ALL_EXPERIMENTS

    if args.list:
        for name in ALL_EXPERIMENTS:
            print(name)
        return 0
    names = args.names or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}", file=sys.stderr)
        return 2
    failed = []
    results = {}
    for name in names:
        result = ALL_EXPERIMENTS[name]()
        results[name] = result
        print(result.report())
        print()
        if not result.passed:
            failed.append(name)
    if args.markdown:
        from .analysis.reporting import write_markdown_report

        path = write_markdown_report(results, args.markdown)
        print(f"markdown report written to {path}")
    if failed:
        print(f"FAILED: {failed}", file=sys.stderr)
        return 1
    return 0


def _cmd_certify(args) -> int:
    from .core.certification import certify
    from .network.serialization import load_network

    network = load_network(args.network)
    cert = certify(
        network,
        args.epsilon,
        args.epsilon_prime,
        mode=args.mode,
        capacity=args.capacity,
    )
    print(cert.summary())
    return 0


def _cmd_inspect(args) -> int:
    from .analysis.topology import topology_stats
    from .network.serialization import load_network

    network = load_network(args.network)
    print(network.summary())
    stats = topology_stats(network)
    print(f"  mean |weight|: {stats['mean_abs_weight']:.4g}")
    print(f"  DAG: {stats['is_dag']}, longest path: {stats['longest_path_len']} hops")
    return 0


def _cmd_survival(args) -> int:
    from .faults.reliability import certified_survival_probability
    from .network.serialization import load_network

    network = load_network(args.network)
    p = certified_survival_probability(
        network,
        args.p_fail,
        args.epsilon,
        args.epsilon_prime,
        mode=args.mode,
        capacity=args.capacity,
    )
    print(
        f"certified P[eps-guarantee survives | p_fail={args.p_fail}] >= {p:.6f}"
    )
    return 0


_COMMANDS = {
    "experiments": _cmd_experiments,
    "certify": _cmd_certify,
    "inspect": _cmd_inspect,
    "survival": _cmd_survival,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro``."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - module execution path
    raise SystemExit(main())
