"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run-all [--filter TOKEN ...]``
    Execute the experiment registry through the artifact pipeline:
    results persist under ``results/`` with a provenance manifest,
    unchanged experiments are cache hits, and EXPERIMENTS.md is
    regenerated.  ``--filter`` selects by id, tag, or anchor substring;
    ``--jobs N`` fans out over the fork-once worker pool.
``report``
    Regenerate EXPERIMENTS.md from the stored artifacts without
    running anything.
``experiments [names...]``
    Run the paper-reproduction experiments (default: all) and print the
    regenerated tables + shape checks (no persistence — see ``run-all``
    for the artifact pipeline).
``certify <net.npz> --epsilon E --epsilon-prime E'``
    Load a saved network and print its robustness certificate
    (crash or Byzantine mode).
``inspect <net.npz>``
    Topology summary and the structural quantities the bounds read.
``survival <net.npz> --p-fail P --epsilon E --epsilon-prime E'``
    Certified survival probability under i.i.d. neuron failures.
``campaign <net.npz> [--exhaustive N | --distribution f1,f2,...]``
    Mask-native fault-injection campaign: Monte-Carlo over a fixed
    per-layer distribution, or the exhaustive sweep of all ``C(n, N)``
    crash configurations.  ``--fault`` selects any model in the
    taxonomy — static (crash / byzantine / stuck / offset), stochastic
    (noise / intermittent / sign-flip) or synapse-grained
    (synapse-crash / synapse-byzantine / synapse-noise, with
    ``--distribution`` then naming per-stage synapse counts, length
    L+1) — all on the same engine.
``chaos <net.npz> --process poisson --rate R --policy rejuvenate --epochs N``
    Temporal chaos campaign (the deployment-lifecycle subsystem): a
    fleet of replicas serves traffic over discrete epochs while fault
    processes degrade it, detectors watch the error series, and a
    repair policy heals it; prints the SLO report (availability,
    time-to-first-violation, MTBF/MTTR, detector precision/recall).
``obs <record.json> [--openmetrics | --jsonl | --profile]``
    Inspect a run's observability record (saved via ``--obs PATH`` on
    campaign/survival/chaos, or ``ObsSpec(record=...)`` in a spec):
    span tree + metrics table by default, or the OpenMetrics text
    exposition, the JSONL event stream, or the per-phase profile view.
``serve [--socket PATH | --port N] [--max-inflight N] [--queue-depth N]``
    Run the resident campaign service: an asyncio daemon that accepts
    spec jobs over JSONL, coalesces identical submissions by content
    hash, answers repeats from the artifact store, streams per-chunk
    progress, and sheds load with typed responses (see
    :mod:`repro.service`).
``submit <spec.json> [--stream] [--timeout S] [--json]``
    Send one campaign/survival/chaos spec to a running service and
    print the result (exit 1 on a typed rejected/timeout/error
    terminal, exit 2 when no daemon answers or the spec is malformed).
``shutdown [--no-drain]``
    Stop a running service, draining in-flight jobs by default.

The ``campaign``, ``survival`` and ``chaos`` commands are thin shells
over the declarative run-spec layer (:mod:`repro.specs`): argparse
flags build a spec, ``repro.run(spec)`` executes it.  Each carries
``--dump-spec`` (print the spec JSON instead of running — the exact
workload as versioned, hashable data) and ``--spec FILE`` (run from a
stored spec; a positional network path overrides the spec's network).
``--dump-spec`` output round-trips byte-identically through
``--spec``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


def _bounded(cast, minimum, message, *, maximum=None, exclusive=False):
    """An argparse type: ``cast`` the token, reject values < ``minimum``
    (or ``<=``/``>=`` the bounds with ``exclusive=True``, and above
    ``maximum`` when one is given) with ``message`` — the shared shape
    of every numeric CLI guard."""

    kind = "an integer" if cast is int else "a number"

    def parse(text: str):
        try:
            value = cast(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"expected {kind}, got {text!r}"
            )
        below = value <= minimum if exclusive else value < minimum
        above = maximum is not None and (
            value >= maximum if exclusive else value > maximum
        )
        if below or above:
            raise argparse.ArgumentTypeError(f"{message}, got {value}")
        return value

    return parse


_positive_int = _bounded(int, 1, "expected a positive integer")
_nonneg_int = _bounded(int, 0, "expected a nonnegative integer")
_nonneg_float = _bounded(float, 0, "expected a nonnegative number")
#: Worker counts: 0 means in-process, negatives are an error.
_workers_count = _bounded(int, 0, "worker count must be >= 0 (0 = in-process)")
#: CI widths and confidence deltas live strictly inside (0, 1).
_unit_open_float = _bounded(
    float, 0, "expected a number strictly between 0 and 1",
    maximum=1, exclusive=True,
)
#: Probabilities: the closed unit interval.
_unit_float = _bounded(
    float, 0, "expected a probability in [0, 1]", maximum=1,
)


def _engine_backends():
    """The spec layer's backend names (pure data — safe at parser-build
    time, no numerical imports)."""
    from .specs.model import ENGINE_BACKENDS

    return ENGINE_BACKENDS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'When Neurons Fail' (IPDPS 2017): "
        "fault-tolerance bounds for feed-forward neural networks.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_all = sub.add_parser(
        "run-all",
        help="run the experiment registry with artifact caching",
    )
    p_all.add_argument(
        "--filter", action="append", default=None, dest="filters",
        metavar="TOKEN",
        help="select experiments by id, tag, or anchor substring "
             "(repeatable; default: everything)",
    )
    p_all.add_argument(
        "--list", action="store_true",
        help="list the selected experiments and exit",
    )
    p_all.add_argument(
        "--force", action="store_true",
        help="re-run even on a cache hit",
    )
    p_all.add_argument(
        "--jobs", type=_workers_count, default=0, metavar="N",
        help="worker processes (0 = in-process)",
    )
    p_all.add_argument(
        "--results-dir", default="results", metavar="DIR",
        help="artifact store root (default: results/)",
    )
    p_all.add_argument(
        "--experiments-md", default="EXPERIMENTS.md", metavar="PATH",
        help="regenerated report path (default EXPERIMENTS.md; "
             "'-' skips the write)",
    )

    p_rep = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md from stored artifacts"
    )
    p_rep.add_argument(
        "--results-dir", default="results", metavar="DIR",
        help="artifact store root (default: results/)",
    )
    p_rep.add_argument(
        "--output", default="EXPERIMENTS.md", metavar="PATH",
        help="where to write the report (default EXPERIMENTS.md)",
    )

    p_exp = sub.add_parser(
        "experiments", help="run paper-reproduction experiments"
    )
    p_exp.add_argument(
        "names", nargs="*", help="experiment ids (default: all); see --list"
    )
    p_exp.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    p_exp.add_argument(
        "--markdown", metavar="PATH", default=None,
        help="also write a Markdown report to PATH",
    )

    def add_eps(p, required=True):
        p.add_argument("--epsilon", type=float, required=required,
                       default=None, help="required accuracy eps")
        p.add_argument("--epsilon-prime", type=float, required=required,
                       default=None,
                       help="achieved over-provisioned accuracy eps' (< eps)")

    def add_spec_io(p):
        """The declarative escape hatch every workload command carries:
        run from a stored spec, or print the spec argparse would build."""
        p.add_argument(
            "--spec", metavar="FILE", default=None,
            help="run from a JSON run-spec file instead of flags: the "
                 "file defines the whole workload (explicit workload "
                 "flags are rejected, remaining flags ignored); a "
                 "positional network path, if given, overrides the "
                 "spec's network",
        )
        p.add_argument(
            "--dump-spec", action="store_true",
            help="print the run spec as JSON and exit without running "
                 "(the --spec input format; round-trips byte-identically)",
        )

    def add_obs(p, with_profile=True):
        """Observability flags every workload command carries."""
        p.add_argument(
            "--obs", metavar="RECORD", default=None,
            help="observe the run — span trace + metrics registry — "
                 "and persist the record to RECORD.json (inspect it "
                 "with 'repro obs'); never changes results",
        )
        if with_profile:
            p.add_argument(
                "--profile", action="store_true",
                help="report per-phase wall time (sampling / compile / "
                     "gemm / corrections / reduction), serial or "
                     "parallel",
            )

    def add_stopping(p):
        """Adaptive-sampling flags shared by campaign and survival —
        all default to None so ``--spec`` conflict detection sees only
        explicitly-typed values."""
        from .specs.model import ALLOCATION_KINDS, STOPPING_METHODS

        p.add_argument(
            "--target-ci", type=_unit_open_float, default=None, metavar="W",
            help="adaptive early stop: halt at the first chunk boundary "
                 "where the anytime-valid CI on the violation rate is "
                 "narrower than W (strictly between 0 and 1)",
        )
        p.add_argument(
            "--delta", type=_unit_open_float, default=None, metavar="D",
            help="confidence budget of the adaptive CI, strictly between "
                 "0 and 1 (default 0.05: the interval holds with "
                 "probability >= 0.95 over all looks)",
        )
        p.add_argument(
            "--stopping-method", choices=STOPPING_METHODS, default=None,
            help="confidence-sequence family (default hoeffding; "
                 "empirical_bernstein adapts to the observed variance — "
                 "the rare-event choice)",
        )
        p.add_argument(
            "--min-scenarios", type=_positive_int, default=None, metavar="N",
            help="scenarios to draw before the first stop decision "
                 "(default 1024)",
        )
        p.add_argument(
            "--stratify", action="store_true", default=None,
            help="stratified estimator over total-fault-count shells "
                 "(Theorem-3-certified shells skipped) instead of the "
                 "confidence sequence; needs Bernoulli sampling and a "
                 "neuron fault",
        )
        p.add_argument(
            "--allocation", choices=ALLOCATION_KINDS, default=None,
            help="stratified budget split (default proportional = exactly "
                 "unbiased; neyman pilots each shell; rare spreads "
                 "uniformly over uncertified shells — the "
                 "importance-weighted rare-event path)",
        )

    p_cert = sub.add_parser("certify", help="certify a saved network")
    p_cert.add_argument("network", help="path to a save_network() .npz archive")
    add_eps(p_cert)
    p_cert.add_argument("--mode", choices=("crash", "byzantine"), default="crash")
    p_cert.add_argument("--capacity", type=float, default=None,
                        help="transmission capacity C (byzantine mode)")

    p_ins = sub.add_parser("inspect", help="topology summary of a saved network")
    p_ins.add_argument("network", help="path to a save_network() .npz archive")

    p_sur = sub.add_parser(
        "survival", help="certified survival probability under iid failures"
    )
    p_sur.add_argument("network", nargs="?", default=None,
                       help="path to a save_network() .npz archive")
    add_eps(p_sur, required=False)
    p_sur.add_argument("--p-fail", type=float, default=None,
                       help="per-neuron failure probability")
    p_sur.add_argument("--mode", choices=("crash", "byzantine"), default="crash")
    p_sur.add_argument("--capacity", type=float, default=None)
    p_sur.add_argument(
        "--method", choices=("certified", "monte_carlo"), default=None,
        help="certified Theorem-3 lower bound (default) or Monte-Carlo "
             "injection estimate; any adaptive flag implies monte_carlo",
    )
    p_sur.add_argument(
        "--n-trials", type=_positive_int, default=None, metavar="N",
        help="Monte-Carlo trial count — the hard cap when an adaptive "
             "stop is set (default 500)",
    )
    p_sur.add_argument("--workers", type=_workers_count, default=0,
                       help="worker processes for the Monte-Carlo "
                            "estimate (0 = in-process)")
    add_stopping(p_sur)
    add_spec_io(p_sur)
    add_obs(p_sur)

    p_cam = sub.add_parser(
        "campaign", help="mask-native fault-injection campaign"
    )
    p_cam.add_argument("network", nargs="?", default=None,
                       help="path to a save_network() .npz archive")
    group = p_cam.add_mutually_exclusive_group()
    group.add_argument(
        "--distribution", metavar="f1,f2,...",
        help="per-layer failure counts for a Monte-Carlo campaign",
    )
    group.add_argument(
        "--exhaustive", type=int, metavar="N_FAIL",
        help="evaluate every configuration of exactly N_FAIL crashes",
    )
    group.add_argument(
        "--p-fail", type=_unit_float, default=None, metavar="P",
        help="Bernoulli campaign: fail every component independently "
             "with probability P (the survival workload's sampler; "
             "required for --stratify)",
    )
    p_cam.add_argument("--n-scenarios", type=_positive_int, default=None,
                       help="Monte-Carlo sample count (default 10000; "
                            "Monte-Carlo only)")
    p_cam.add_argument("--fault",
                       choices=("crash", "byzantine", "stuck", "offset",
                                "noise", "intermittent", "sign-flip",
                                "synapse-crash", "synapse-byzantine",
                                "synapse-noise"),
                       default=None,
                       help="fault model (default crash; Monte-Carlo only — "
                            "the exhaustive sweep is crash by definition). "
                            "synapse-* faults read --distribution as "
                            "per-stage synapse counts (length L+1)")
    p_cam.add_argument("--value", type=float, default=None,
                       help="fault magnitude: stuck-at value / additive "
                            "offset (default 1.0), or the requested "
                            "Byzantine emission / synapse offset "
                            "(default: saturate the capacity)")
    p_cam.add_argument("--sigma", type=float, default=0.1,
                       help="noise std-dev for --fault noise / "
                            "synapse-noise (default 0.1)")
    p_cam.add_argument("--p-transient", type=float, default=0.5,
                       help="per-evaluation hit probability for "
                            "--fault intermittent (default 0.5)")
    p_cam.add_argument("--capacity", type=float, default=None,
                       help="transmission capacity C (default: sup phi)")
    p_cam.add_argument("--batch", type=_positive_int, default=32,
                       help="random probe inputs to sweep (default 32)")
    p_cam.add_argument("--seed", type=int, default=0)
    p_cam.add_argument("--chunk-size", type=_positive_int, default=1024)
    p_cam.add_argument("--workers", type=_workers_count, default=0,
                       help="worker processes (0 = in-process)")
    p_cam.add_argument("--dtype", choices=("float32", "float64"),
                       default="float64",
                       help="evaluation precision (float32 = fast path)")
    p_cam.add_argument("--backend", choices=_engine_backends(),
                       default="numpy",
                       help="evaluation engine backend: numpy (reference), "
                            "threaded (thread-pool tiling), or a "
                            "reduced-precision probe tier "
                            "(quantized-int8 / float16)")
    p_cam.add_argument("--profile", action="store_true",
                       help="report per-phase wall time (sampling / "
                            "compile / gemm / corrections / reduction), "
                            "serial or parallel")
    p_cam.add_argument("--threshold", type=float, default=None,
                       help="also report the fraction of scenarios "
                            "exceeding this error (the violation level "
                            "for adaptive stopping)")
    add_stopping(p_cam)
    add_spec_io(p_cam)
    add_obs(p_cam, with_profile=False)

    p_chaos = sub.add_parser(
        "chaos",
        help="temporal chaos campaign over a deployed replica fleet",
    )
    p_chaos.add_argument("network", nargs="?", default=None,
                         help="path to a save_network() .npz archive")
    add_eps(p_chaos, required=False)
    p_chaos.add_argument(
        "--process", action="append", dest="processes",
        choices=("lifetime", "weibull", "poisson", "bursts", "blasts"),
        default=None,
        help="fault process (repeatable; default: lifetime — exponential "
             "component lifetimes at --rate)",
    )
    p_chaos.add_argument("--rate", type=_nonneg_float, default=0.02,
                         help="per-epoch fault rate: component hazard "
                              "(lifetime/weibull), arrivals per layer "
                              "(poisson), or event probability "
                              "(bursts/blasts) (default 0.02)")
    p_chaos.add_argument("--weibull-shape", type=_nonneg_float, default=2.0,
                         help="Weibull shape for --process weibull "
                              "(default 2.0, wear-out)")
    p_chaos.add_argument("--epochs", type=_positive_int, default=50,
                         help="mission length in epochs (default 50)")
    p_chaos.add_argument("--replicas", type=_positive_int, default=32,
                         help="fleet size (default 32)")
    p_chaos.add_argument(
        "--policy", choices=("none", "rejuvenate", "repair", "spare"),
        default="none",
        help="repair policy (default none; rejuvenate = periodic boosted "
             "restarts, repair = detector-triggered with latency, spare "
             "= warm-spare activation)",
    )
    p_chaos.add_argument("--period", type=_positive_int, default=10,
                         help="rejuvenation period in epochs (default 10)")
    p_chaos.add_argument("--latency", type=_nonneg_int, default=2,
                         help="repair latency in epochs for --policy "
                              "repair (default 2)")
    p_chaos.add_argument("--spares", type=_nonneg_int, default=4,
                         help="warm spares per 16-replica block for "
                              "--policy spare (zone-local pools; "
                              "default 4)")
    p_chaos.add_argument(
        "--detector", action="append", dest="detectors",
        choices=("threshold", "cusum", "certified"),
        default=None,
        help="error-drift detector (repeatable; default: threshold at "
             "the epsilon budget)",
    )
    p_chaos.add_argument(
        "--traffic", choices=("constant", "diurnal", "bursty"),
        default="constant",
        help="request-stream model weighting the SLO statistics "
             "(default constant)",
    )
    p_chaos.add_argument("--batch", type=_positive_int, default=32,
                         help="random probe inputs (default 32)")
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--epochs-chunk", type=_positive_int, default=32,
                         help="epochs per streamed engine evaluation "
                              "(detection granularity; default 32)")
    p_chaos.add_argument("--workers", type=_workers_count, default=0,
                         help="worker processes over replica blocks "
                              "(0 = in-process)")
    p_chaos.add_argument("--dtype", choices=("float32", "float64"),
                         default="float64",
                         help="evaluation precision (float32 = fast path)")
    p_chaos.add_argument("--capacity", type=float, default=None,
                         help="transmission capacity C (default: sup phi)")
    p_chaos.add_argument("--telemetry", metavar="TRACE", default=None,
                         help="record the campaign's telemetry trace "
                              "(ground-truth fault labels included) and "
                              "persist it to TRACE.json + TRACE.npz")
    p_chaos.add_argument("--replay", metavar="TRACE", default=None,
                         help="skip simulation: replay a stored trace "
                              "against its spec's detectors and check "
                              "alarm parity with the live run")
    add_spec_io(p_chaos)
    add_obs(p_chaos)

    p_obs = sub.add_parser(
        "obs",
        help="inspect a stored observability record (trace + metrics)",
    )
    p_obs.add_argument(
        "record",
        help="path to a record saved by --obs RECORD (or "
             "ObsSpec(record=...)); '.json' may be omitted",
    )
    obs_mode = p_obs.add_mutually_exclusive_group()
    obs_mode.add_argument(
        "--openmetrics", action="store_true",
        help="print the metrics as an OpenMetrics text exposition",
    )
    obs_mode.add_argument(
        "--jsonl", action="store_true",
        help="print the span/event stream as JSON lines (walk order)",
    )
    obs_mode.add_argument(
        "--profile", action="store_true",
        help="print the per-phase wall-time table (the --profile view "
             "rebuilt from the published metrics)",
    )

    p_aiops = sub.add_parser(
        "aiops",
        help="score AIOps tasks (detection / localization / RCA) over "
             "a stored telemetry trace",
    )
    p_aiops.add_argument("trace",
                         help="path to a trace saved by chaos --telemetry "
                              "(.json/.npz stem)")

    def add_endpoint(p):
        """--socket / --host / --port, shared by the service commands."""
        p.add_argument(
            "--socket", metavar="PATH", default=None,
            help="unix socket path (default: repro-service.sock)",
        )
        p.add_argument(
            "--host", default=None,
            help="loopback TCP host (with --port; default 127.0.0.1)",
        )
        p.add_argument(
            "--port", type=_positive_int, default=None,
            help="loopback TCP port (instead of --socket)",
        )

    p_serve = sub.add_parser(
        "serve",
        help="run the resident campaign service (spec jobs over JSONL)",
    )
    add_endpoint(p_serve)
    p_serve.add_argument(
        "--spec", metavar="FILE", default=None,
        help="run from a stored ServiceSpec JSON (conflicts with the "
             "endpoint/limit flags)",
    )
    p_serve.add_argument(
        "--dump-spec", action="store_true",
        help="print the ServiceSpec JSON instead of serving",
    )
    p_serve.add_argument(
        "--max-inflight", type=_positive_int, default=None,
        help="engine evaluations running concurrently (default 2)",
    )
    p_serve.add_argument(
        "--queue-depth", type=_nonneg_int, default=None,
        help="admitted jobs waiting for a runner before shedding "
             "(default 64; 0 = unbounded)",
    )
    p_serve.add_argument(
        "--job-timeout", type=_bounded(
            float, 0, "job timeout must be > 0", exclusive=True,
        ), default=None, metavar="SECONDS",
        help="per-job evaluation timeout (default: none)",
    )
    p_serve.add_argument(
        "--results-dir", metavar="DIR", default=None,
        help="ArtifactStore root for the spec-hash result cache",
    )
    p_serve.add_argument(
        "--cache-entries", type=_nonneg_int, default=None,
        help="in-memory result-cache entries (default 256; 0 disables)",
    )

    p_submit = sub.add_parser(
        "submit",
        help="submit a campaign/survival/chaos spec to a running service",
    )
    p_submit.add_argument(
        "spec", metavar="SPEC",
        help="path to a workload spec JSON (campaign/survival/chaos)",
    )
    add_endpoint(p_submit)
    p_submit.add_argument(
        "--stream", action="store_true",
        help="print per-chunk progress as the engines evaluate",
    )
    p_submit.add_argument(
        "--timeout", type=_bounded(
            float, 0, "timeout must be > 0", exclusive=True,
        ), default=None, metavar="SECONDS",
        help="override the service's job timeout for this submission",
    )
    p_submit.add_argument(
        "--json", action="store_true",
        help="print the full result payload as JSON instead of a summary",
    )

    p_down = sub.add_parser(
        "shutdown", help="stop a running campaign service"
    )
    add_endpoint(p_down)
    p_down.add_argument(
        "--no-drain", action="store_true",
        help="stop immediately instead of draining in-flight jobs",
    )
    return parser


def _cmd_run_all(args) -> int:
    from .analysis.reporting import write_experiments_md
    from .artifacts import ArtifactStore
    from .experiments import registry

    selected = registry.select(args.filters)
    bad_tokens = registry.unmatched(args.filters)
    if not selected or bad_tokens:
        what = (
            f"filter(s) match no experiment: {bad_tokens}"
            if bad_tokens
            else f"no experiment matches filter(s) {args.filters}"
        )
        print(
            f"{what}; known ids: {', '.join(registry.experiment_ids())}",
            file=sys.stderr,
        )
        return 2
    if args.list:
        for exp in selected:
            print(
                f"{exp.experiment_id:28s} {exp.runtime:6s} {exp.anchor}"
                f"  [{', '.join(exp.tags)}]"
            )
        return 0

    store = ArtifactStore(args.results_dir)
    outcomes = store.run_many(
        selected, force=args.force, n_workers=args.jobs, log=print
    )
    failed = [o.experiment_id for o in outcomes if not o.passed]
    n_cached = sum(1 for o in outcomes if o.cached)
    executed_s = sum(o.wall_time_s for o in outcomes if not o.cached)
    print(
        f"{len(outcomes)} experiments: {len(outcomes) - len(failed)} pass, "
        f"{len(failed)} fail, {n_cached} cached ({executed_s:.1f}s executed; "
        f"manifest: {store.manifest_path})"
    )
    if args.experiments_md != "-":
        path = write_experiments_md(
            registry.all_experiments(), store, args.experiments_md
        )
        print(f"report written to {path}")
    if failed:
        print(f"FAILED: {failed}", file=sys.stderr)
        return 1
    return 0


def _cmd_report(args) -> int:
    from .analysis.reporting import write_experiments_md
    from .artifacts import ArtifactStore
    from .experiments import registry

    store = ArtifactStore(args.results_dir)
    experiments = registry.all_experiments()
    manifest = store.load_manifest()
    entries = manifest["entries"]
    n_stored = sum(1 for e in experiments if e.experiment_id in entries)
    path = write_experiments_md(experiments, store, args.output)
    print(
        f"report written to {path} ({n_stored}/{len(experiments)} "
        "experiments have stored artifacts)"
    )
    cache = manifest.get("cache", {})
    print(
        f"artifact cache: {int(cache.get('hits', 0))} hits, "
        f"{int(cache.get('misses', 0))} misses (lifetime)"
    )
    return 0


def _cmd_experiments(args) -> int:
    from .experiments import ALL_EXPERIMENTS

    if args.list:
        for name in ALL_EXPERIMENTS:
            print(name)
        return 0
    names = args.names or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}", file=sys.stderr)
        return 2
    failed = []
    results = {}
    for name in names:
        result = ALL_EXPERIMENTS[name]()
        results[name] = result
        print(result.report())
        print()
        if not result.passed:
            failed.append(name)
    if args.markdown:
        from .analysis.reporting import write_markdown_report

        path = write_markdown_report(results, args.markdown)
        print(f"markdown report written to {path}")
    if failed:
        print(f"FAILED: {failed}", file=sys.stderr)
        return 1
    return 0


def _cmd_certify(args) -> int:
    from .core.certification import certify
    from .network.serialization import load_network

    network = load_network(args.network)
    cert = certify(
        network,
        args.epsilon,
        args.epsilon_prime,
        mode=args.mode,
        capacity=args.capacity,
    )
    print(cert.summary())
    return 0


def _cmd_inspect(args) -> int:
    from .analysis.topology import topology_stats
    from .network.serialization import load_network

    network = load_network(args.network)
    print(network.summary())
    stats = topology_stats(network)
    print(f"  mean |weight|: {stats['mean_abs_weight']:.4g}")
    print(f"  DAG: {stats['is_dag']}, longest path: {stats['longest_path_len']} hops")
    return 0


def _stopping_spec_from_args(args):
    """A StoppingSpec when any adaptive flag was typed, else None —
    untyped flags keep the spec's (and old specs') defaults."""
    from . import specs

    opts = {}
    if args.target_ci is not None:
        opts["target_ci"] = args.target_ci
    if args.delta is not None:
        opts["delta"] = args.delta
    if args.stopping_method is not None:
        opts["method"] = args.stopping_method
    if args.min_scenarios is not None:
        opts["min_scenarios"] = args.min_scenarios
    if args.stratify is not None:
        opts["stratify"] = args.stratify
    if args.allocation is not None:
        opts["allocation"] = args.allocation
        # --allocation neyman/rare only makes sense stratified; saying
        # so implicitly beats rejecting the obvious intent.
        opts.setdefault("stratify", True)
    if not opts:
        return None
    return specs.StoppingSpec(**opts)


def _campaign_spec_from_args(args):
    """Lower the ``campaign`` argparse namespace to a CampaignSpec."""
    from . import specs

    if args.exhaustive is not None:
        ignored = [
            name
            for name, value in (
                ("--fault", args.fault),
                ("--value", args.value),
                ("--n-scenarios", args.n_scenarios),
            )
            if value is not None
        ]
        if ignored:
            raise ValueError(
                f"{', '.join(ignored)} only appl"
                f"{'ies' if len(ignored) == 1 else 'y'} to Monte-Carlo "
                "campaigns (--distribution); the exhaustive sweep "
                "enumerates crash configurations"
            )
        sampler = specs.SamplerSpec(kind="exhaustive", n_fail=args.exhaustive)
        fault = specs.FaultSpec()
    elif args.p_fail is not None:
        sampler = specs.SamplerSpec(kind="bernoulli", p_fail=args.p_fail)
        kind = (args.fault or "crash").replace("-", "_")
        fault = specs.FaultSpec(
            kind=kind,
            value=(
                args.value
                if kind in ("byzantine", "stuck", "offset", "synapse_byzantine")
                else None
            ),
            sigma=args.sigma,
            p=args.p_transient,
        )
    elif args.distribution is not None:
        try:
            distribution = tuple(
                int(v) for v in args.distribution.split(",") if v.strip() != ""
            )
        except ValueError:
            raise ValueError(f"bad distribution {args.distribution!r}") from None
        sampler = specs.SamplerSpec(kind="fixed", distribution=distribution)
        kind = (args.fault or "crash").replace("-", "_")
        fault = specs.FaultSpec(
            kind=kind,
            # value=None is the capacity-saturating worst case for the
            # Byzantine kinds and the 1.0 default for stuck/offset.
            value=(
                args.value
                if kind in ("byzantine", "stuck", "offset", "synapse_byzantine")
                else None
            ),
            sigma=args.sigma,
            p=args.p_transient,
        )
    else:
        raise ValueError(
            "one of --distribution, --p-fail or --exhaustive is required "
            "(or run from a stored --spec FILE)"
        )
    n_scenarios = args.n_scenarios if args.n_scenarios is not None else 10_000
    return specs.CampaignSpec(
        network=specs.NetworkRef(path=args.network),
        sampler=sampler,
        fault=fault,
        n_scenarios=n_scenarios,
        batch=args.batch,
        seed=args.seed,
        capacity=args.capacity,
        threshold=args.threshold,
        stopping=_stopping_spec_from_args(args),
        engine=specs.EngineSpec(
            chunk_size=args.chunk_size,
            dtype=args.dtype,
            workers=args.workers,
            backend=args.backend,
        ),
    )


def _survival_spec_from_args(args):
    """Lower the ``survival`` argparse namespace to a SurvivalSpec."""
    from . import specs

    missing = [
        flag
        for flag, value in (
            ("--p-fail", args.p_fail),
            ("--epsilon", args.epsilon),
            ("--epsilon-prime", args.epsilon_prime),
        )
        if value is None
    ]
    if missing:
        raise ValueError(
            f"{', '.join(missing)} required (or run from a stored "
            "--spec FILE)"
        )
    stopping = _stopping_spec_from_args(args)
    method = args.method
    if method is None:
        # An adaptive flag only makes sense for the injection estimate.
        method = "monte_carlo" if stopping is not None else "certified"
    return specs.SurvivalSpec(
        network=specs.NetworkRef(path=args.network),
        p_fail=args.p_fail,
        epsilon=args.epsilon,
        epsilon_prime=args.epsilon_prime,
        mode=args.mode,
        capacity=args.capacity,
        method=method,
        n_trials=args.n_trials if args.n_trials is not None else 500,
        stopping=stopping,
    )


def _chaos_spec_from_args(args):
    """Lower the ``chaos`` argparse namespace to a ChaosSpec."""
    from . import specs

    if args.epsilon is None or args.epsilon_prime is None:
        raise ValueError(
            "--epsilon and --epsilon-prime required (or run from a "
            "stored --spec FILE)"
        )
    process_specs = {
        "lifetime": lambda: specs.ProcessSpec(kind="lifetime", rate=args.rate),
        "weibull": lambda: specs.ProcessSpec(
            kind="lifetime", rate=args.rate,
            shape=max(args.weibull_shape, 1e-9),
        ),
        "poisson": lambda: specs.ProcessSpec(kind="poisson", rate=args.rate),
        "bursts": lambda: specs.ProcessSpec(
            kind="bursts", rate=min(args.rate, 1.0)
        ),
        "blasts": lambda: specs.ProcessSpec(
            kind="blasts", rate=min(args.rate, 1.0)
        ),
    }
    policy_specs = {
        "none": lambda: specs.PolicySpec(),
        # tolerated=None derives the straggler budget from the
        # certificate at lowering (greedy_max_total_failures).
        "rejuvenate": lambda: specs.PolicySpec(
            kind="rejuvenate", period=args.period
        ),
        "repair": lambda: specs.PolicySpec(
            kind="repair", latency=args.latency
        ),
        "spare": lambda: specs.PolicySpec(kind="spare", spares=args.spares),
    }
    return specs.ChaosSpec(
        network=specs.NetworkRef(path=args.network),
        epsilon=args.epsilon,
        epsilon_prime=args.epsilon_prime,
        processes=tuple(
            process_specs[name]()
            for name in (args.processes or ["lifetime"])
        ),
        detectors=tuple(
            specs.DetectorSpec(kind=name)
            for name in (args.detectors or ["threshold"])
        ),
        policy=policy_specs[args.policy](),
        traffic=specs.TrafficSpec(kind=args.traffic),
        epochs=args.epochs,
        replicas=args.replicas,
        batch=args.batch,
        seed=args.seed,
        epochs_chunk=args.epochs_chunk,
        capacity=args.capacity,
        engine=specs.EngineSpec(dtype=args.dtype, workers=args.workers),
    )


#: Workload flags (all defaulting to None) that must not be combined
#: with ``--spec`` — a stored spec is edited, not partially overridden,
#: so an explicitly-typed flag silently losing to the file is a trap.
#: Adaptive flags: shared by the campaign and survival conflict rows.
_STOPPING_CONFLICTS = (
    ("--target-ci", "target_ci"),
    ("--delta", "delta"),
    ("--stopping-method", "stopping_method"),
    ("--min-scenarios", "min_scenarios"),
    ("--stratify", "stratify"),
    ("--allocation", "allocation"),
)

_SPEC_CONFLICTS = {
    "campaign": (
        ("--distribution", "distribution"),
        ("--exhaustive", "exhaustive"),
        ("--p-fail", "p_fail"),
        ("--fault", "fault"),
        ("--value", "value"),
        ("--n-scenarios", "n_scenarios"),
        ("--threshold", "threshold"),
        ("--capacity", "capacity"),
    )
    + _STOPPING_CONFLICTS,
    "survival": (
        ("--p-fail", "p_fail"),
        ("--epsilon", "epsilon"),
        ("--epsilon-prime", "epsilon_prime"),
        ("--capacity", "capacity"),
        ("--method", "method"),
        ("--n-trials", "n_trials"),
    )
    + _STOPPING_CONFLICTS,
    "chaos": (
        ("--epsilon", "epsilon"),
        ("--epsilon-prime", "epsilon_prime"),
        ("--process", "processes"),
        ("--detector", "detectors"),
        ("--capacity", "capacity"),
    ),
}


def _resolve_spec(args, build, spec_class):
    """The shared ``--spec FILE`` / argparse-builder shell.

    Loads the stored spec (type-checked against the command) or builds
    one from the flags; a positional network path overrides the stored
    spec's network reference, and any other explicit workload flag is
    rejected (edit the spec file instead of half-overriding it).
    """
    from . import specs

    if args.spec is not None:
        passed = [
            flag
            for flag, attr in _SPEC_CONFLICTS[spec_class.spec_tag]
            if getattr(args, attr, None) is not None
        ]
        if passed:
            raise ValueError(
                f"{', '.join(passed)} cannot be combined with --spec — "
                "the stored spec defines the workload (edit the file, "
                "or rebuild it with --dump-spec); only a positional "
                "network path overrides"
            )
        try:
            spec = specs.load_spec(args.spec)
        except OSError as exc:
            raise ValueError(f"cannot read spec file: {exc}") from None
        if not isinstance(spec, spec_class):
            raise ValueError(
                f"{args.spec} holds a {spec.spec_tag!r} spec; this "
                f"command runs {spec_class.spec_tag!r} specs"
            )
        if args.network is not None:
            spec = spec.replace(network=specs.NetworkRef(path=args.network))
        return spec
    if args.network is None:
        raise ValueError("network archive required (or pass --spec FILE)")
    return build(args)


def _observer_from_args(args):
    """A fresh :class:`~repro.obs.RunObserver` when ``--obs`` was
    typed, else None."""
    if getattr(args, "obs", None) is None:
        return None
    from .obs import RunObserver

    return RunObserver()


def _save_obs(obs, spec, path) -> None:
    """Persist the observer's run record next to the workload output."""
    from .obs import save_run_record

    out = save_run_record(obs.record(spec.to_dict()), path)
    print(f"obs record -> {out} (inspect with 'repro obs {out}')")


def _describe_sampler(spec) -> str:
    sampler = spec.sampler
    if sampler.kind == "fixed":
        return f"distribution {sampler.distribution}, fault {spec.fault.kind}"
    if sampler.kind == "bernoulli":
        return f"p_fail {sampler.p_fail}, fault {spec.fault.kind}"
    return f"mixed population ({len(sampler.components)} components)"


def _cmd_survival(args) -> int:
    from . import specs

    try:
        spec = _resolve_spec(args, _survival_spec_from_args, specs.SurvivalSpec)
        if args.dump_spec:
            print(spec.to_json(), end="")
            return 0
        profile = None
        if args.profile:
            from .profiling import PhaseProfile

            profile = PhaseProfile()
        obs = _observer_from_args(args)
        outcome = specs.run(
            spec,
            workers=args.workers or None,
            profile=profile,
            obs=obs,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if spec.method == "certified":
        print(
            "certified P[eps-guarantee survives | "
            f"p_fail={spec.p_fail}] >= {outcome:.6f}"
        )
    else:
        print(f"monte-carlo survival: {outcome!r}")
    if profile is not None:
        print(profile.report())
    if obs is not None:
        _save_obs(obs, spec, args.obs)
    return 0


def _cmd_campaign(args) -> int:
    from . import specs

    try:
        spec = _resolve_spec(args, _campaign_spec_from_args, specs.CampaignSpec)
        if args.dump_spec:
            print(spec.to_json(), end="")
            return 0
        # Domain errors (combinatorial-explosion guard, bad distribution
        # shape/counts) should read as CLI errors, not tracebacks.
        if spec.sampler.kind == "exhaustive":
            from .faults.campaign import count_crash_configurations

            total = count_crash_configurations(
                spec.network.resolve(), spec.sampler.n_fail
            )
            print(f"exhaustive sweep: {total} configurations of "
                  f"{spec.sampler.n_fail} crashes")
        else:
            print(f"monte-carlo campaign: {spec.n_scenarios} scenarios, "
                  f"{_describe_sampler(spec)}")
        profile = None
        if args.profile:
            from .profiling import PhaseProfile

            profile = PhaseProfile()
        obs = _observer_from_args(args)
        result = specs.run(spec, profile=profile, obs=obs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.summary())
    if result.errors.size:
        print(
            f"  p50={result.quantile(0.5):.6g}  "
            f"p99={result.quantile(0.99):.6g}"
        )
    if spec.threshold is not None and result.errors.size:
        frac = result.fraction_exceeding(spec.threshold)
        print(f"  fraction exceeding {spec.threshold:g}: {frac:.4f}")
    rep = result.adaptive
    if rep is not None and hasattr(rep, "stopped"):
        word = "stopped" if rep.stopped else "hit the cap"
        print(
            f"  adaptive ({rep.method}): {word} after "
            f"{rep.n_scenarios}/{rep.n_cap} scenarios; violation rate "
            f"{rep.estimate:.6g} in [{rep.ci_low:.6g}, {rep.ci_high:.6g}] "
            f"at delta={rep.delta:g}"
        )
    elif rep is not None:
        print(
            f"  stratified ({rep.allocation}): violation rate "
            f"{rep.estimate:.6g} in [{rep.ci_low:.6g}, {rep.ci_high:.6g}], "
            f"n={rep.n_scenarios}, certified-zero mass "
            f"{rep.certified_mass:.6g} over shells {list(rep.certified_shells)}"
        )
    if profile is not None:
        print(profile.report())
    if obs is not None:
        _save_obs(obs, spec, args.obs)
    return 0


def _chaos_replay(path: str) -> int:
    """``chaos --replay TRACE``: re-serve a stored trace to the
    detectors its spec declares and report alarm parity with the live
    run — no network, no simulation."""
    import numpy as np

    from . import specs
    from .chaos.replay import replay_detectors
    from .chaos.telemetry import load_trace
    from .specs.dispatch import build_detector

    try:
        trace = load_trace(path)
    except OSError as exc:
        raise ValueError(f"cannot read trace: {exc}") from None
    if trace.spec_payload is None:
        raise ValueError(
            "trace carries no spec payload (not produced by a spec "
            "run); rebuild detectors in Python via "
            "repro.chaos.replay_detectors instead"
        )
    spec = specs.spec_from_dict(trace.spec_payload)
    network = None
    if any(d.kind == "certified" for d in spec.detectors):
        network = spec.network.resolve()  # certified alarm needs Fep
    detectors = [build_detector(d, spec, network) for d in spec.detectors]
    print(
        f"replaying {trace.epochs} epochs x {trace.n_replicas} replicas "
        f"({len(detectors)} detectors, no re-simulation)"
    )
    grids = replay_detectors(trace, detectors)
    exact = True
    for name in sorted(grids):
        live = trace.alarms.get(name)
        if live is None:
            status = "no live grid stored"
            exact = False
        elif np.array_equal(grids[name], live):
            status = "matches the live run exactly"
        else:
            status = "DIFFERS from the live run"
            exact = False
        print(f"  {name}: {int(grids[name].sum())} alarm cells; {status}")
    print("replay parity:", "exact" if exact else "NOT exact")
    return 0 if exact else 1


def _cmd_chaos(args) -> int:
    from . import specs

    try:
        if args.replay is not None:
            return _chaos_replay(args.replay)
        spec = _resolve_spec(args, _chaos_spec_from_args, specs.ChaosSpec)
        if args.telemetry is not None and spec.telemetry is None:
            spec = spec.replace(telemetry=specs.TelemetrySpec())
        if args.dump_spec:
            print(spec.to_json(), end="")
            return 0
        print(
            f"chaos campaign: {spec.replicas} replicas x {spec.epochs} "
            f"epochs, processes {[p.kind for p in spec.processes]}, "
            f"policy {spec.policy.kind}"
        )
        profile = None
        if args.profile:
            from .profiling import PhaseProfile

            profile = PhaseProfile()
        obs = _observer_from_args(args)
        report = specs.run(spec, profile=profile, obs=obs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    if args.telemetry is not None:
        from .chaos.telemetry import save_trace

        t = spec.telemetry
        trace = report.trace.retained(
            retain_errors=t.retain_errors, retain_epochs=t.retain_epochs
        )
        json_path = save_trace(trace, args.telemetry)
        print(
            f"telemetry trace -> {json_path} "
            f"(+ {json_path.with_suffix('.npz').name})"
        )
    if profile is not None:
        print(profile.report())
    if obs is not None:
        _save_obs(obs, spec, args.obs)
    return 0


def _cmd_obs(args) -> int:
    from .obs import (
        MetricsRegistry,
        RunTrace,
        events_jsonl,
        load_run_record,
        profile_from_metrics,
        render_metrics_table,
        render_openmetrics,
        render_span_tree,
    )

    try:
        record = load_run_record(args.record)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    trace = RunTrace.from_dict(record["trace"])
    metrics = MetricsRegistry.from_dict(record["metrics"])
    if args.openmetrics:
        print(render_openmetrics(metrics), end="")
    elif args.jsonl:
        print(events_jsonl(trace), end="")
    elif args.profile:
        print(profile_from_metrics(metrics).report())
    else:
        spec_payload = record.get("spec")
        if spec_payload:
            print(
                f"spec: {spec_payload.get('spec', '?')} "
                f"(version {spec_payload.get('spec_version', '?')})"
            )
        print(render_span_tree(trace))
        print(render_metrics_table(metrics))
    return 0


def _cmd_aiops(args) -> int:
    import json as _json

    from .chaos.aiops import scorecard
    from .chaos.telemetry import load_trace
    from .experiments.runner import jsonable

    try:
        trace = load_trace(args.trace)
        sheet = scorecard(trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(_json.dumps(jsonable(sheet), indent=2, sort_keys=True))
    return 0


def _make_client(args):
    """A ServiceClient for the parsed endpoint flags (submit/shutdown)."""
    from .service import DEFAULT_SOCKET, ServiceClient

    if args.port is not None:
        return ServiceClient(host=args.host or "127.0.0.1", port=args.port)
    if args.host is not None:
        raise ValueError("--host needs --port")
    return ServiceClient(args.socket or DEFAULT_SOCKET)


def _cmd_serve(args) -> int:
    import asyncio

    from .service import CampaignService
    from .specs import ServiceSpec, SpecError, load_spec

    try:
        if args.spec is not None:
            conflicts = [
                flag
                for flag, value in (
                    ("--socket", args.socket),
                    ("--host", args.host),
                    ("--port", args.port),
                    ("--max-inflight", args.max_inflight),
                    ("--queue-depth", args.queue_depth),
                    ("--job-timeout", args.job_timeout),
                    ("--results-dir", args.results_dir),
                    ("--cache-entries", args.cache_entries),
                )
                if value is not None
            ]
            if conflicts:
                raise SpecError(
                    f"--spec conflicts with {', '.join(conflicts)}; the "
                    "stored spec already fixes those"
                )
            spec = load_spec(args.spec)
            if not isinstance(spec, ServiceSpec):
                raise SpecError(
                    f"{args.spec} holds a {type(spec).__name__}, "
                    "serve needs a ServiceSpec"
                )
        else:
            kwargs = {}
            if args.port is not None:
                kwargs["host"] = args.host or "127.0.0.1"
                kwargs["port"] = args.port
            elif args.host is not None:
                raise SpecError("--host needs --port")
            elif args.socket is not None:
                kwargs["socket"] = args.socket
            for name in (
                "max_inflight", "queue_depth", "job_timeout",
                "results_dir", "cache_entries",
            ):
                value = getattr(args, name)
                if value is not None:
                    kwargs[name] = value
            spec = ServiceSpec(**kwargs)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.dump_spec:
        print(spec.to_json(), end="")
        return 0
    service = CampaignService(spec)
    print(f"repro service listening on {service.endpoint}", file=sys.stderr)
    try:
        asyncio.run(service.serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    return 0


def _cmd_submit(args) -> int:
    import json as _json

    from .service import ServiceUnavailable, summarize_result
    from .specs import load_spec

    try:
        spec = load_spec(args.spec)
        client = _make_client(args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def on_event(message):
        mtype = message.get("type")
        if mtype == "chunk" and args.stream:
            print(
                f"chunk {message.get('index')}: "
                f"{message.get('scenarios')} scenarios "
                f"({message.get('evaluated')} evaluated)",
                file=sys.stderr,
            )
        elif mtype == "adaptive" and args.stream:
            print(
                f"adaptive stop: n={message.get('n_scenarios')} "
                f"estimate={message.get('estimate'):.6g} "
                f"CI [{message.get('ci_low'):.6g}, "
                f"{message.get('ci_high'):.6g}]",
                file=sys.stderr,
            )

    try:
        terminal = client.submit(
            spec, stream=args.stream, timeout=args.timeout,
            on_event=on_event,
        )
    except ServiceUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        client.close()
    ttype = terminal.get("type")
    if ttype == "result":
        payload = terminal["result"]
        if args.json:
            print(_json.dumps(payload, indent=2, sort_keys=True))
        else:
            provenance = (
                "cached" if terminal.get("cached")
                else "coalesced" if terminal.get("coalesced")
                else "evaluated"
            )
            print(f"[{provenance}] {summarize_result(payload)}")
        return 0
    if ttype == "rejected":
        print(f"error: job rejected: {terminal.get('reason')}",
              file=sys.stderr)
    elif ttype == "timeout":
        print(f"error: job timed out after {terminal.get('timeout_s')}s",
              file=sys.stderr)
    else:
        print(f"error: {terminal.get('kind')}: {terminal.get('detail')}",
              file=sys.stderr)
    return 1


def _cmd_shutdown(args) -> int:
    from .service import ServiceUnavailable

    try:
        client = _make_client(args)
        ack = client.shutdown(drain=not args.no_drain)
    except (ValueError, ServiceUnavailable) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"service stopped (drained {ack.get('drained', 0)} jobs)")
    return 0


_COMMANDS = {
    "run-all": _cmd_run_all,
    "report": _cmd_report,
    "experiments": _cmd_experiments,
    "certify": _cmd_certify,
    "inspect": _cmd_inspect,
    "survival": _cmd_survival,
    "campaign": _cmd_campaign,
    "chaos": _cmd_chaos,
    "obs": _cmd_obs,
    "aiops": _cmd_aiops,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "shutdown": _cmd_shutdown,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro``."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - module execution path
    raise SystemExit(main())
