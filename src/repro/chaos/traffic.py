"""Request-stream generators: the traffic a deployed fleet serves.

A chaos campaign is not just "do faults break the network" but "do
faults break the network *while it matters*": an epoch serving the
diurnal peak weighs more than one serving the 4am trough, and a
Pareto burst landing on a degraded fleet is the scenario capacity
planning exists for.  A :class:`TrafficModel` emits one request count
per epoch; the campaign uses them to

* **weight the SLO statistics** — request-weighted availability counts
  a violating epoch by the traffic it failed, not by wall-clock; and
* optionally **modulate the probe batch** — with
  ``modulate_probes=True`` an epoch's error is reduced over a probe
  count proportional to its traffic (light epochs sample the input
  space more thinly, the monitoring-coverage effect).

Traffic draws come from a dedicated spawned generator in the campaign
parent, so every replica block (serial or parallel) observes the same
fleet-wide request series.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "TrafficModel",
    "ConstantTraffic",
    "DiurnalTraffic",
    "ParetoBurstyTraffic",
]


class TrafficModel:
    """Per-epoch request counts for the whole fleet.

    ``modulate_probes`` opts the model into probe-batch modulation
    (see module docstring); weighting of the SLO statistics always
    happens.
    """

    modulate_probes: bool = False

    def requests(self, n_epochs: int, rng: np.random.Generator) -> np.ndarray:
        """``(n_epochs,)`` nonnegative request counts."""
        raise NotImplementedError

    def probe_counts(
        self, requests: np.ndarray, batch_size: int
    ) -> np.ndarray:
        """Per-epoch probe counts in ``1..batch_size``, proportional to
        traffic (peak traffic probes the full batch)."""
        requests = np.asarray(requests, dtype=np.float64)
        peak = float(requests.max()) if requests.size else 0.0
        if peak <= 0:
            return np.ones(requests.shape, dtype=np.intp)
        counts = np.ceil(batch_size * requests / peak).astype(np.intp)
        return np.clip(counts, 1, batch_size)


class ConstantTraffic(TrafficModel):
    """A flat request stream: every epoch carries ``rate`` requests."""

    def __init__(self, rate: float = 1000.0):
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self.rate = float(rate)

    def requests(self, n_epochs, rng):
        return np.full(int(n_epochs), self.rate, dtype=np.float64)


class DiurnalTraffic(TrafficModel):
    """A sinusoidal day/night cycle around a base rate.

    ``rate(t) = base * (1 + amplitude * sin(2 pi (t + phase) / period))``,
    clipped at 0 — the classic diurnal load curve; rejuvenation
    policies should schedule restarts into its troughs.
    """

    def __init__(
        self,
        base: float = 1000.0,
        *,
        amplitude: float = 0.5,
        period: int = 24,
        phase: float = 0.0,
        modulate_probes: bool = False,
    ):
        if base < 0:
            raise ValueError(f"base must be >= 0, got {base}")
        if not 0 <= amplitude <= 1:
            raise ValueError(f"amplitude must be in [0,1], got {amplitude}")
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self.base = float(base)
        self.amplitude = float(amplitude)
        self.period = int(period)
        self.phase = float(phase)
        self.modulate_probes = bool(modulate_probes)

    def requests(self, n_epochs, rng):
        t = np.arange(int(n_epochs), dtype=np.float64)
        wave = 1.0 + self.amplitude * np.sin(
            2.0 * np.pi * (t + self.phase) / self.period
        )
        return np.maximum(0.0, self.base * wave)


class ParetoBurstyTraffic(TrafficModel):
    """Heavy-tailed bursts: ``base`` scaled by i.i.d. Pareto draws.

    ``rate(t) = base * Pareto(alpha)`` with the standard Lomax+1 form
    (mean ``alpha / (alpha - 1)`` for ``alpha > 1``) — most epochs sit
    near ``base``, a few carry multi-x bursts.  The burst epochs are
    where weighted availability diverges from the unweighted one.
    """

    def __init__(
        self,
        base: float = 1000.0,
        *,
        alpha: float = 2.5,
        modulate_probes: bool = False,
    ):
        if base < 0:
            raise ValueError(f"base must be >= 0, got {base}")
        if alpha <= 1:
            raise ValueError(
                f"alpha must be > 1 (finite mean), got {alpha}"
            )
        self.base = float(base)
        self.alpha = float(alpha)
        self.modulate_probes = bool(modulate_probes)

    def requests(self, n_epochs, rng):
        return self.base * (1.0 + rng.pareto(self.alpha, int(n_epochs)))
