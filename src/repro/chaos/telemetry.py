"""Telemetry-native chaos: the typed event stream every report derives from.

The chaos refactor's contract (DESIGN.md, seventh subsystem): the
epoch loop no longer computes summary statistics inline — it *emits*
a compact columnar :class:`TelemetryTrace` through a
:class:`TelemetryRecorder` seam, and everything downstream is a pure
function of the trace:

* :func:`report_from_trace` derives the classic
  :class:`~repro.chaos.campaign.ChaosReport` — bitwise identical to
  the numbers the old inline aggregation produced, because every
  aggregate is an order-independent integer reduction over the same
  grids;
* :mod:`repro.chaos.replay` re-serves a stored trace epoch-by-epoch
  to any detector without re-simulating;
* :mod:`repro.chaos.aiops` scores detection / localization / RCA
  tasks against the trace's ground-truth channels.

The trace is columnar, not evented, on the hot channels: per-epoch
per-replica error/violation/downtime/alarm grids are dense ``(E, R)``
arrays (they were already materialised per window by the old loop, so
recording them is free), while the sparse facts — repair and
rejuvenation-reset actions — are flat ``(kind, epoch, replica)``
event columns.  Ground-truth channels (per-layer crash/transient
counts and per-process damage attribution) are optional: they cost a
few array reductions per epoch and are only recorded when telemetry
is enabled with ``ground_truth=True``.

Blocks are the unit of parallelism: each replica block records its
own trace and :func:`concat_traces` joins them along the replica axis
in fixed block order, so the assembled trace is bitwise identical
whether the blocks ran serially or on the fork-once pool.

Persistence is schema-versioned and split: :func:`save_trace` writes
``<base>.json`` (scalar metadata, block policy stats, the originating
spec payload) plus ``<base>.npz`` (every array channel).  The JSON
side keeps Python's ``Infinity``/``NaN`` literals (``json`` reads
them back exactly), so a loaded trace reproduces its report bitwise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "ACTION_REPAIR",
    "ACTION_RESET",
    "TelemetryTrace",
    "TelemetryRecorder",
    "concat_traces",
    "report_from_trace",
    "episode_runs",
    "save_trace",
    "load_trace",
]

#: Version stamp written into every persisted trace; :func:`load_trace`
#: refuses a payload written by a different schema.
TRACE_SCHEMA_VERSION = 1

#: Action-event kinds (the ``action_kind`` column).
ACTION_REPAIR = 0  #: a policy fully repaired the replica this epoch
ACTION_RESET = 1  #: a rejuvenation served this epoch with reset masks


@dataclass
class TelemetryTrace:
    """Columnar telemetry of one chaos campaign (or one replica block).

    Grid channels are epoch-major ``(E, R)`` arrays; ground-truth
    channels add the layer axis (``(E, R, L)``) or the process axis
    (``(P, E, R)``).  ``block_sizes`` records the replica partition
    the campaign simulated with (fixed :data:`~repro.chaos.campaign.
    REPLICA_BLOCK` quanta), which is what lets the replayer reproduce
    per-block detector state exactly.

    Ground-truth semantics: ``crash_counts``/``transient_counts`` are
    the number of crashed / intermittent components per layer at each
    epoch's evaluation point; ``process_hits[p, e, r]`` is the damage
    (newly crashed or newly intermittent components, summed over
    layers) process ``p`` introduced on replica ``r`` at epoch ``e`` —
    arrivals that land on already-dead components are not double
    counted.
    """

    epochs: int
    n_replicas: int
    epsilon: float
    epsilon_prime: float
    layer_sizes: Tuple[int, ...]
    process_kinds: Tuple[str, ...]
    detector_names: Tuple[str, ...]
    policy_name: str
    epochs_chunk: int
    block_sizes: Tuple[int, ...]
    viol: np.ndarray  # (E, R) bool
    down: np.ndarray  # (E, R) bool
    alarms: Dict[str, np.ndarray] = field(default_factory=dict)
    action_kind: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int8)
    )
    action_epoch: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    action_replica: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    block_policy_stats: Tuple[dict, ...] = ()
    errors: Optional[np.ndarray] = None  # (E, R) float64
    requests: Optional[np.ndarray] = None  # (E,) float64
    crash_counts: Optional[np.ndarray] = None  # (E, R, L) int32
    transient_counts: Optional[np.ndarray] = None  # (E, R, L) int32
    process_hits: Optional[np.ndarray] = None  # (P, E, R) int32
    spec_payload: Optional[dict] = None
    schema_version: int = TRACE_SCHEMA_VERSION

    @property
    def budget(self) -> float:
        return self.epsilon - self.epsilon_prime

    @property
    def has_ground_truth(self) -> bool:
        return self.crash_counts is not None

    def observed(self) -> np.ndarray:
        """What monitoring saw: errors with downtime cells reading 0
        (an out-of-service replica reports as freshly repaired)."""
        if self.errors is None:
            raise ValueError(
                "trace has no error channel (dropped by retention); "
                "replay and observed() need retain_errors=True"
            )
        return np.where(self.down, 0.0, self.errors)

    def actions(self, kind: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(epochs, replicas)`` columns of the events of one kind,
        in recorded (block-major, epoch-ascending) order."""
        sel = self.action_kind == kind
        return self.action_epoch[sel], self.action_replica[sel]

    def equals(self, other: "TelemetryTrace") -> bool:
        """Bitwise trace equality (metadata and every array channel)."""
        if not isinstance(other, TelemetryTrace):
            return False
        meta = (
            "epochs", "n_replicas", "epsilon", "epsilon_prime",
            "layer_sizes", "process_kinds", "detector_names",
            "policy_name", "epochs_chunk", "block_sizes",
            "block_policy_stats", "spec_payload", "schema_version",
        )
        if any(getattr(self, k) != getattr(other, k) for k in meta):
            return False

        def same(a, b):
            if a is None or b is None:
                return a is None and b is None
            return bool(np.array_equal(a, b))

        if sorted(self.alarms) != sorted(other.alarms):
            return False
        if any(not same(g, other.alarms[n]) for n, g in self.alarms.items()):
            return False
        channels = (
            "viol", "down", "action_kind", "action_epoch",
            "action_replica", "errors", "requests", "crash_counts",
            "transient_counts", "process_hits",
        )
        return all(
            same(getattr(self, k), getattr(other, k)) for k in channels
        )

    def retained(
        self, *, retain_errors: bool = True, retain_epochs: Optional[int] = None
    ) -> "TelemetryTrace":
        """A retention-trimmed copy for persistence.

        ``retain_errors=False`` drops the dense float error channel
        (reports derived from the trimmed trace keep every statistic
        except the raw error grid; replay needs the channel and will
        refuse).  ``retain_epochs=N`` keeps only the *first* ``N``
        epochs — a prefix, so epoch numbering, window alignment and
        per-block replay of the retained horizon stay exact.
        """
        trimmed = self
        if retain_epochs is not None and retain_epochs < self.epochs:
            n = int(retain_epochs)
            if n < 1:
                raise ValueError(f"retain_epochs must be >= 1, got {n}")
            keep = self.action_epoch < n
            trimmed = replace(
                trimmed,
                epochs=n,
                viol=self.viol[:n],
                down=self.down[:n],
                alarms={k: g[:n] for k, g in self.alarms.items()},
                action_kind=self.action_kind[keep],
                action_epoch=self.action_epoch[keep],
                action_replica=self.action_replica[keep],
                errors=None if self.errors is None else self.errors[:n],
                requests=(
                    None if self.requests is None else self.requests[:n]
                ),
                crash_counts=(
                    None
                    if self.crash_counts is None
                    else self.crash_counts[:n]
                ),
                transient_counts=(
                    None
                    if self.transient_counts is None
                    else self.transient_counts[:n]
                ),
                process_hits=(
                    None
                    if self.process_hits is None
                    else self.process_hits[:, :n]
                ),
            )
        if not retain_errors and trimmed.errors is not None:
            trimmed = replace(trimmed, errors=None)
        return trimmed


class TelemetryRecorder:
    """The epoch loop's write seam: one recorder per replica block.

    The campaign installs the recorder as ``FleetState.telemetry``, so
    state mutations that carry operational meaning — full repairs,
    rejuvenation resets — emit events from the one place they happen,
    and the per-window evaluation results land in preallocated grid
    channels.  Recording draws nothing from the RNG, so a campaign's
    fault schedule is bitwise identical with telemetry on or off.
    """

    def __init__(
        self,
        *,
        epochs: int,
        n_replicas: int,
        epsilon: float,
        epsilon_prime: float,
        layer_sizes: Sequence[int],
        process_kinds: Sequence[str],
        detector_names: Sequence[str],
        policy_name: str,
        epochs_chunk: int,
        ground_truth: bool = False,
    ):
        E, R = int(epochs), int(n_replicas)
        self.epochs = E
        self.n_replicas = R
        self.epsilon = float(epsilon)
        self.epsilon_prime = float(epsilon_prime)
        self.layer_sizes = tuple(int(n) for n in layer_sizes)
        self.process_kinds = tuple(process_kinds)
        self.detector_names = tuple(detector_names)
        self.policy_name = str(policy_name)
        self.epochs_chunk = int(epochs_chunk)
        self.ground_truth = bool(ground_truth)
        self.errors = np.zeros((E, R), dtype=np.float64)
        self.viol = np.zeros((E, R), dtype=bool)
        self.down = np.zeros((E, R), dtype=bool)
        self.alarms = {
            name: np.zeros((E, R), dtype=bool) for name in self.detector_names
        }
        self._events: List[Tuple[int, int, int]] = []  # (kind, epoch, replica)
        L, P = len(self.layer_sizes), len(self.process_kinds)
        if self.ground_truth:
            self.crash_counts = np.zeros((E, R, L), dtype=np.int32)
            self.transient_counts = np.zeros((E, R, L), dtype=np.int32)
            self.process_hits = np.zeros((P, E, R), dtype=np.int32)
            # Window-local scratch: raw mask snapshots per epoch row,
            # reduced in one vectorised pass at the window flush.
            rows = min(self.epochs_chunk, E)
            self._crash_buf = [
                np.empty((rows, R, n), dtype=bool) for n in self.layer_sizes
            ]
            self._trans_buf = [
                np.empty((rows, R, n), dtype=bool) for n in self.layer_sizes
            ]
            self._trans_active = np.zeros(rows, dtype=bool)
            self._mid_damage = np.zeros((max(P - 1, 0), rows, R), np.int64)
            self._prev_zero = np.zeros((rows, R), dtype=bool)
            self._carry_zero = np.zeros(R, dtype=bool)
            self._carry_dead = np.zeros(R, dtype=np.int64)
            self._buffered_through = -1
        else:
            self.crash_counts = None
            self.transient_counts = None
            self.process_hits = None

    # -- event channels (called via the FleetState seam) -------------------

    def record_repair(self, epoch: int, replicas: np.ndarray) -> None:
        """A policy fully repaired ``replicas`` (boolean mask)."""
        for r in np.nonzero(replicas)[0]:
            self._events.append((ACTION_REPAIR, int(epoch), int(r)))
        if self.ground_truth:
            # A repaired replica's damage count drops to zero, which
            # moves the attribution baseline of the epoch whose steps
            # the repair precedes: this epoch's if its masks are not
            # buffered yet (start-of-epoch policy hook), the next
            # window's first otherwise (end-of-window hook).
            w = int(epoch) % self.epochs_chunk
            if w <= self._buffered_through:
                self._carry_zero |= replicas
            else:
                self._prev_zero[w] |= replicas

    def record_reset(self, epoch: int, replica: int) -> None:
        """A rejuvenating replica serves ``epoch`` with reset masks."""
        self._events.append((ACTION_RESET, int(epoch), int(replica)))

    # -- ground-truth channels ---------------------------------------------
    #
    # Per-epoch capture is a handful of raw mask copies into window
    # scratch; every reduction — per-layer health counts, per-process
    # damage attribution — is deferred to the window flush where it
    # vectorises over the whole ``(W, R, N_l)`` block.  That deferral
    # is what keeps full ground-truth recording inside the < 10%
    # overhead budget (``BENCH_campaign.json``, ``"telemetry"``).

    def damage_counts(self, state) -> np.ndarray:
        """Per-replica damaged-component count (crashed + intermittent),
        the ``(R,)`` int64 boundary value between the steps of a
        multi-process epoch (the epoch-end total is derived from the
        flushed health buffers instead)."""
        dead = sum(np.count_nonzero(c, axis=1) for c in state.crash)
        if state.has_transients:
            dead = dead + sum(
                np.count_nonzero(p > 0.0, axis=1) for p in state.transient_p
            )
        return np.asarray(dead, dtype=np.int64)

    def record_mid_damage(self, process_index: int, w: int, state) -> None:
        """Damage total right after process ``process_index`` stepped
        (window row ``w``) — only needed when several processes share
        an epoch and the deltas must be told apart."""
        self._mid_damage[process_index, w] = self.damage_counts(state)

    def record_epoch_state(self, w: int, state) -> None:
        """Buffer the fleet's raw masks for window row ``w`` — the
        epoch-end evaluation point the health channels describe."""
        for l0, buf in enumerate(self._crash_buf):
            buf[w] = state.crash[l0]
        if state.has_transients:
            for l0, buf in enumerate(self._trans_buf):
                np.greater(state.transient_p[l0], 0.0, out=buf[w])
            self._trans_active[w] = True
        self._buffered_through = w

    def _flush_ground_truth(self, first_epoch: int, w: int) -> None:
        """Reduce the buffered masks of one window into the per-layer
        health channels and the per-process damage attribution.

        The attribution baseline of epoch ``e`` is the previous
        epoch's dead count (transients were cleared at epoch start),
        zeroed for replicas a policy repaired before ``e``'s steps —
        exactly the value the old per-epoch differencing measured.
        """
        sl = slice(first_epoch, first_epoch + w)
        R = self.n_replicas
        dead = np.zeros((w, R), dtype=np.int64)
        for l0, buf in enumerate(self._crash_buf):
            counts = buf[:w].sum(axis=2, dtype=np.int32)
            self.crash_counts[sl, :, l0] = counts
            dead += counts
        total = dead
        active = self._trans_active[:w]
        if active.any():
            flaky = np.zeros((w, R), dtype=np.int64)
            for l0, buf in enumerate(self._trans_buf):
                if not active.all():
                    buf[:w][~active] = False
                counts = buf[:w].sum(axis=2, dtype=np.int32)
                self.transient_counts[sl, :, l0] = counts
                flaky += counts
            total = dead + flaky
            self._trans_active[:w] = False
        prev = np.empty((w, R), dtype=np.int64)
        prev[0] = self._carry_dead
        prev[1:] = dead[:-1]
        pz = self._prev_zero[:w]
        if pz.any():
            prev[pz] = 0
            self._prev_zero[:w] = False
        P = len(self.process_kinds)
        if P == 1:
            self.process_hits[0, sl] = total - prev
        elif P > 1:
            mids = self._mid_damage[:, :w]
            self.process_hits[0, sl] = mids[0] - prev
            for p in range(1, P - 1):
                self.process_hits[p, sl] = mids[p] - mids[p - 1]
            self.process_hits[P - 1, sl] = total - mids[P - 2]
        self._carry_dead = dead[w - 1].copy()
        if self._carry_zero.any():
            self._carry_dead[self._carry_zero] = 0
            self._carry_zero[:] = False
        self._buffered_through = -1

    # -- grid channels -----------------------------------------------------

    def record_window(
        self,
        first_epoch: int,
        errors: np.ndarray,
        down: np.ndarray,
        viol: np.ndarray,
        firings: Dict[str, np.ndarray],
    ) -> None:
        """One evaluated window's ``(W, R)`` grids, rows = epochs
        ``first_epoch .. first_epoch + W - 1``."""
        w = errors.shape[0]
        sl = slice(first_epoch, first_epoch + w)
        self.errors[sl] = errors
        self.down[sl] = down
        self.viol[sl] = viol
        for name, grid in firings.items():
            self.alarms[name][sl] = grid
        if self.ground_truth:
            self._flush_ground_truth(first_epoch, w)

    def finish(self, policy_stats: dict) -> TelemetryTrace:
        """Seal the block's trace (events sorted into flat columns)."""
        if self._events:
            kinds, epochs_col, reps = zip(*self._events)
        else:
            kinds, epochs_col, reps = (), (), ()
        return TelemetryTrace(
            epochs=self.epochs,
            n_replicas=self.n_replicas,
            epsilon=self.epsilon,
            epsilon_prime=self.epsilon_prime,
            layer_sizes=self.layer_sizes,
            process_kinds=self.process_kinds,
            detector_names=self.detector_names,
            policy_name=self.policy_name,
            epochs_chunk=self.epochs_chunk,
            block_sizes=(self.n_replicas,),
            viol=self.viol,
            down=self.down,
            alarms=self.alarms,
            action_kind=np.asarray(kinds, dtype=np.int8),
            action_epoch=np.asarray(epochs_col, dtype=np.int64),
            action_replica=np.asarray(reps, dtype=np.int64),
            block_policy_stats=(dict(policy_stats),),
            errors=self.errors,
            crash_counts=self.crash_counts,
            transient_counts=self.transient_counts,
            process_hits=self.process_hits,
        )


def concat_traces(
    blocks: Sequence[TelemetryTrace],
    *,
    requests: Optional[np.ndarray] = None,
    spec_payload: Optional[dict] = None,
) -> TelemetryTrace:
    """Join per-block traces along the replica axis, in block order.

    Block order is fixed by the campaign's replica partition, so the
    result is bitwise identical whether the blocks were simulated
    serially or on the fork-once pool.  Event columns concatenate
    block-major with replica indices offset to fleet coordinates.
    """
    if not blocks:
        raise ValueError("need at least one block trace")
    head = blocks[0]
    meta = (
        "epochs", "epsilon", "epsilon_prime", "layer_sizes",
        "process_kinds", "detector_names", "policy_name", "epochs_chunk",
    )
    for b in blocks[1:]:
        bad = [k for k in meta if getattr(b, k) != getattr(head, k)]
        if bad:
            raise ValueError(f"block traces disagree on {bad}")

    def cat(name, axis):
        parts = [getattr(b, name) for b in blocks]
        if any(p is None for p in parts):
            if not all(p is None for p in parts):
                raise ValueError(f"channel {name!r} present in some "
                                 "blocks but not others")
            return None
        return np.concatenate(parts, axis=axis)

    starts = np.concatenate(
        [[0], np.cumsum([b.n_replicas for b in blocks])]
    )
    kind = np.concatenate([b.action_kind for b in blocks])
    epoch = np.concatenate([b.action_epoch for b in blocks])
    replica = np.concatenate(
        [b.action_replica + starts[i] for i, b in enumerate(blocks)]
    )
    return TelemetryTrace(
        epochs=head.epochs,
        n_replicas=int(starts[-1]),
        epsilon=head.epsilon,
        epsilon_prime=head.epsilon_prime,
        layer_sizes=head.layer_sizes,
        process_kinds=head.process_kinds,
        detector_names=head.detector_names,
        policy_name=head.policy_name,
        epochs_chunk=head.epochs_chunk,
        block_sizes=tuple(int(b.n_replicas) for b in blocks),
        viol=cat("viol", 1),
        down=cat("down", 1),
        alarms={
            name: np.concatenate([b.alarms[name] for b in blocks], axis=1)
            for name in head.detector_names
        },
        action_kind=kind,
        action_epoch=epoch,
        action_replica=replica,
        block_policy_stats=tuple(
            stats for b in blocks for stats in b.block_policy_stats
        ),
        errors=cat("errors", 1),
        requests=requests,
        crash_counts=cat("crash_counts", 1),
        transient_counts=cat("transient_counts", 1),
        process_hits=cat("process_hits", 2),
        spec_payload=spec_payload,
    )


# ---------------------------------------------------------------------------
# Episode run-length encoding
# ---------------------------------------------------------------------------


def episode_runs(
    viol: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pure-numpy RLE over an ``(E, R)`` violation grid.

    Returns ``(replica, onset, length)`` int64 columns, one row per
    maximal run of consecutive violating epochs of one replica,
    ordered replica-major then onset-ascending.  Vectorised: the grid
    is padded with healthy sentinel rows and differenced, so run
    starts/ends fall out of two ``nonzero`` calls — no per-column
    Python (:func:`_episode_runs_scalar` is the test oracle).
    """
    viol = np.asarray(viol, dtype=bool)
    empty = np.zeros(0, dtype=np.int64)
    if viol.size == 0:
        return empty, empty.copy(), empty.copy()
    v = viol.T  # (R, E): row-major nonzero => replica-major run order
    padded = np.zeros((v.shape[0], v.shape[1] + 2), dtype=np.int8)
    padded[:, 1:-1] = v
    d = np.diff(padded, axis=1)
    rep, onset = np.nonzero(d == 1)
    _, end = np.nonzero(d == -1)  # same rows, pairwise aligned with starts
    return (
        rep.astype(np.int64),
        onset.astype(np.int64),
        (end - onset).astype(np.int64),
    )


def _episode_runs_scalar(
    viol: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-column Python oracle for :func:`episode_runs` (tests only)."""
    viol = np.asarray(viol, dtype=bool)
    rows: List[Tuple[int, int, int]] = []
    if viol.size:
        E, R = viol.shape
        for r in range(R):
            e = 0
            while e < E:
                if viol[e, r]:
                    start = e
                    while e < E and viol[e, r]:
                        e += 1
                    rows.append((r, start, e - start))
                else:
                    e += 1
    if not rows:
        z = np.zeros(0, dtype=np.int64)
        return z, z.copy(), z.copy()
    rep, onset, length = (np.asarray(c, dtype=np.int64) for c in zip(*rows))
    return rep, onset, length


# ---------------------------------------------------------------------------
# Report derivation
# ---------------------------------------------------------------------------


def report_from_trace(trace: TelemetryTrace, *, keep_errors: bool = False):
    """Derive the :class:`~repro.chaos.campaign.ChaosReport` from a trace.

    Every statistic is an order-independent integer reduction over the
    trace grids, so the derived report is bitwise identical to what
    the pre-telemetry inline aggregation produced — and independent of
    whether the trace was assembled serially or from parallel blocks.

    Degenerate fleets (the MTBF/MTTR contract): with zero violation
    episodes — a fault-free fleet, or one whose every cell sat in
    repair downtime — both ``mtbf`` and ``mttr`` are ``nan`` (the
    statistics are undefined, not zero or infinite).
    """
    from .campaign import ChaosReport  # deferred: campaign imports us

    E, R = trace.epochs, trace.n_replicas
    viol, down = trace.viol, trace.down
    total_cells = E * R
    viol_cells = int(viol.sum())
    down_cells = int(down.sum())
    good_by_epoch = (~viol & ~down).sum(axis=1)
    any_viol = viol.any(axis=0)
    first = np.where(any_viol, viol.argmax(axis=0), E)
    _, _, lengths = episode_runs(viol)
    episodes = int(lengths.shape[0])
    violating = int(lengths.sum())

    availability = float(good_by_epoch.sum()) / total_cells
    requests = trace.requests
    if requests is not None and requests.sum() > 0:
        weighted = float(
            (good_by_epoch / R * requests).sum() / requests.sum()
        )
    else:
        weighted = availability

    detector_stats = {}
    in_service = ~down
    for name in trace.detector_names:
        grid = trace.alarms[name]
        tp = int((grid & viol & in_service).sum())
        fp = int((grid & ~viol & in_service).sum())
        fn = int((~grid & viol & in_service).sum())
        detector_stats[name] = {
            "firings": int((grid & in_service).sum()),
            "tp": tp,
            "fp": fp,
            "fn": fn,
            "precision": tp / (tp + fp) if tp + fp else 1.0,
            "recall": tp / (tp + fn) if tp + fn else 1.0,
        }

    policy_stats: Dict[str, object] = {"name": trace.policy_name}
    for stats in trace.block_policy_stats:
        for k, v in stats.items():
            if isinstance(v, (int, np.integer)):
                policy_stats[k] = int(policy_stats.get(k, 0)) + int(v)
            elif isinstance(v, float):
                acc = policy_stats.setdefault(k, [])
                if isinstance(acc, list):
                    acc.append(v)
            elif v is not None:
                policy_stats.setdefault(k, v)
    for k, v in list(policy_stats.items()):
        if isinstance(v, list):
            policy_stats[k] = float(np.mean(v)) if v else None

    return ChaosReport(
        n_replicas=R,
        epochs=E,
        epsilon=float(trace.epsilon),
        epsilon_prime=float(trace.epsilon_prime),
        availability=availability,
        weighted_availability=weighted,
        violation_fraction=viol_cells / total_cells,
        downtime_fraction=down_cells / total_cells,
        time_to_first_violation=first,
        n_violation_episodes=episodes,
        mtbf=(
            float((total_cells - violating - down_cells) / episodes)
            if episodes
            else float("nan")
        ),
        mttr=float(violating / episodes) if episodes else float("nan"),
        detector_stats=detector_stats,
        policy_stats=policy_stats,
        requests=requests,
        errors=trace.errors if keep_errors else None,
        trace=trace,
    )


# ---------------------------------------------------------------------------
# Persistence (schema-versioned JSON metadata + npz array payload)
# ---------------------------------------------------------------------------

_ALARM_PREFIX = "alarms__"
_OPTIONAL_CHANNELS = (
    "errors", "requests", "crash_counts", "transient_counts", "process_hits",
)


def _trace_paths(path: "str | Path") -> Tuple[Path, Path]:
    base = Path(path)
    if base.suffix in (".json", ".npz"):
        base = base.with_suffix("")
    return base.with_suffix(".json"), base.with_suffix(".npz")


def save_trace(trace: TelemetryTrace, path: "str | Path") -> Path:
    """Persist ``trace`` as ``<base>.json`` + ``<base>.npz``; returns
    the JSON path.  ``path`` may carry either suffix (or none)."""
    json_path, npz_path = _trace_paths(path)
    arrays: Dict[str, np.ndarray] = {
        "viol": trace.viol,
        "down": trace.down,
        "action_kind": trace.action_kind,
        "action_epoch": trace.action_epoch,
        "action_replica": trace.action_replica,
    }
    for name, grid in trace.alarms.items():
        arrays[_ALARM_PREFIX + name] = grid
    for name in _OPTIONAL_CHANNELS:
        value = getattr(trace, name)
        if value is not None:
            arrays[name] = value
    meta = {
        "schema_version": trace.schema_version,
        "epochs": trace.epochs,
        "n_replicas": trace.n_replicas,
        "epsilon": trace.epsilon,
        "epsilon_prime": trace.epsilon_prime,
        "layer_sizes": list(trace.layer_sizes),
        "process_kinds": list(trace.process_kinds),
        "detector_names": list(trace.detector_names),
        "policy_name": trace.policy_name,
        "epochs_chunk": trace.epochs_chunk,
        "block_sizes": list(trace.block_sizes),
        "block_policy_stats": list(trace.block_policy_stats),
        "spec_payload": trace.spec_payload,
        "channels": sorted(arrays),
        "npz": npz_path.name,
    }
    json_path.parent.mkdir(parents=True, exist_ok=True)
    # allow_nan keeps Infinity/NaN literals (e.g. a rejuvenation
    # policy's mean_boost_speedup): json.loads reads them back exactly,
    # which is what keeps report-from-loaded-trace bitwise faithful.
    json_path.write_text(
        json.dumps(meta, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    np.savez_compressed(npz_path, **arrays)
    return json_path


def load_trace(path: "str | Path") -> TelemetryTrace:
    """Inverse of :func:`save_trace`; refuses other schema versions."""
    json_path, npz_path = _trace_paths(path)
    meta = json.loads(json_path.read_text(encoding="utf-8"))
    version = meta.get("schema_version")
    if version != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"trace {json_path} has schema_version {version!r}; this "
            f"build reads {TRACE_SCHEMA_VERSION}"
        )
    with np.load(npz_path) as payload:
        arrays = {name: payload[name] for name in payload.files}
    missing = {"viol", "down"} - set(arrays)
    if missing:
        raise ValueError(f"trace {npz_path} lost channels {sorted(missing)}")
    alarms = {
        name: arrays[_ALARM_PREFIX + name]
        for name in meta["detector_names"]
        if _ALARM_PREFIX + name in arrays
    }
    return TelemetryTrace(
        epochs=int(meta["epochs"]),
        n_replicas=int(meta["n_replicas"]),
        epsilon=float(meta["epsilon"]),
        epsilon_prime=float(meta["epsilon_prime"]),
        layer_sizes=tuple(meta["layer_sizes"]),
        process_kinds=tuple(meta["process_kinds"]),
        detector_names=tuple(meta["detector_names"]),
        policy_name=meta["policy_name"],
        epochs_chunk=int(meta["epochs_chunk"]),
        block_sizes=tuple(meta["block_sizes"]),
        viol=arrays["viol"],
        down=arrays["down"],
        alarms=alarms,
        action_kind=arrays["action_kind"],
        action_epoch=arrays["action_epoch"],
        action_replica=arrays["action_replica"],
        block_policy_stats=tuple(meta["block_policy_stats"]),
        errors=arrays.get("errors"),
        requests=arrays.get("requests"),
        crash_counts=arrays.get("crash_counts"),
        transient_counts=arrays.get("transient_counts"),
        process_hits=arrays.get("process_hits"),
        spec_payload=meta.get("spec_payload"),
        schema_version=int(version),
    )
