"""Error-drift detectors: the monitoring side of a chaos campaign.

A deployed fleet does not get to read its own fault masks — it
observes the *error series* its monitoring probes report and must
decide when the epsilon-guarantee is in danger.  Detectors consume
each evaluated window's per-epoch, per-replica errors (all replicas
vectorised; state is ``(R,)`` arrays) and emit boolean firing grids
that the campaign scores against ground truth (precision / recall)
and that repair policies may act on.

Three classical detector shapes:

* :class:`ThresholdDetector` — fire the epoch the observed error
  exceeds a threshold (default: the ``epsilon - epsilon'`` budget) —
  zero-latency, but blind to slow drift below the line;
* :class:`CUSUMDetector` — Page's cumulative-sum test on the error
  series: accumulates ``error - drift`` and fires when the sum climbs
  past a threshold, catching sustained degradation long before any
  single epoch breaches the budget;
* :class:`CertifiedAlarmDetector` — the *model-driven* alarm this repo
  can uniquely provide: invert
  :func:`~repro.faults.reliability.certified_survival_probability`
  under the mission lifetime model to the first epoch where the
  certified survival drops below a confidence target, and fire then —
  a preventive-maintenance alarm derived from Theorem 3, needing no
  observations at all.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..faults.reliability import certified_survival_probability
from ..network.model import FeedForwardNetwork

__all__ = [
    "DriftDetector",
    "ThresholdDetector",
    "CUSUMDetector",
    "CertifiedAlarmDetector",
]


class DriftDetector:
    """Base detector; subclasses are picklable and fleet-vectorised."""

    name = "detector"

    def reset(self, n_replicas: int) -> None:
        self.n_replicas = int(n_replicas)

    def update(self, errors: np.ndarray, first_epoch: int) -> np.ndarray:
        """Consume a ``(W, R)`` window of epoch errors (epoch
        ``first_epoch + k`` in row ``k``); return a same-shaped boolean
        firing grid."""
        raise NotImplementedError

    def on_repair(self, replicas: np.ndarray, epoch: int) -> None:
        """Notification that ``replicas`` (boolean mask) were repaired
        at ``epoch``; stateful detectors re-arm."""


class ThresholdDetector(DriftDetector):
    """Fire wherever the epoch error exceeds ``threshold``."""

    name = "threshold"

    def __init__(self, threshold: float):
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.threshold = float(threshold)

    def update(self, errors, first_epoch):
        return errors > self.threshold


class CUSUMDetector(DriftDetector):
    """One-sided CUSUM on the epoch error series.

    ``s <- max(0, s + error - drift)``; fire when ``s > threshold``,
    then re-arm (``s <- 0``).  ``drift`` is the tolerated per-epoch
    error level (healthy noise floor); the threshold trades detection
    latency against false alarms, as usual for Page's test.
    """

    name = "cusum"

    def __init__(self, drift: float, threshold: float):
        if drift < 0:
            raise ValueError(f"drift must be >= 0, got {drift}")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.drift = float(drift)
        self.threshold = float(threshold)

    def reset(self, n_replicas):
        super().reset(n_replicas)
        self.s = np.zeros(self.n_replicas, dtype=np.float64)

    def update(self, errors, first_epoch):
        fired = np.zeros(errors.shape, dtype=bool)
        for k in range(errors.shape[0]):  # epochs in the window, not cells
            np.maximum(0.0, self.s + errors[k] - self.drift, out=self.s)
            hit = self.s > self.threshold
            fired[k] = hit
            self.s[hit] = 0.0
        return fired

    def on_repair(self, replicas, epoch):
        self.s[replicas] = 0.0


class CertifiedAlarmDetector(DriftDetector):
    """Fep-certified preventive alarm (Theorem 3, open loop).

    Under per-component exponential lifetimes with ``failure_rate``,
    the certified survival probability at mission time ``t`` is
    ``P[(F_1..F_L) tolerated]`` with ``F_l ~ Binomial(N_l, 1 -
    exp(-rate * t))``.  This detector computes, once, the first epoch
    at which that bound drops below ``p_threshold``, and fires for
    each replica when its time-since-last-repair reaches that epoch —
    the certified "rejuvenate by now or lose the guarantee" alarm.
    """

    name = "certified"

    def __init__(
        self,
        network: FeedForwardNetwork,
        failure_rate: float,
        epsilon: float,
        epsilon_prime: float,
        *,
        p_threshold: float = 0.9,
        dt: float = 1.0,
        capacity: Optional[float] = None,
        mode: str = "crash",
        max_epochs: int = 1_000_000,
    ):
        if failure_rate < 0:
            raise ValueError(f"failure_rate must be >= 0, got {failure_rate}")
        if not 0 < p_threshold <= 1:
            raise ValueError(
                f"p_threshold must be in (0,1], got {p_threshold}"
            )
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        self.p_threshold = float(p_threshold)
        self.alarm_epoch = self._solve_alarm_epoch(
            network, failure_rate, epsilon, epsilon_prime,
            dt=dt, capacity=capacity, mode=mode, max_epochs=max_epochs,
        )

    def _solve_alarm_epoch(
        self, network, rate, epsilon, epsilon_prime,
        *, dt, capacity, mode, max_epochs,
    ) -> Optional[int]:
        """Smallest epoch with certified survival below the threshold
        (``None`` when the bound never drops that far)."""

        def certified(epoch: int) -> float:
            p = 1.0 - float(np.exp(-rate * epoch * dt))
            return certified_survival_probability(
                network, p, epsilon, epsilon_prime,
                capacity=capacity, mode=mode,
            )

        if certified(0) < self.p_threshold:
            return 0
        if rate == 0.0 or certified(max_epochs) >= self.p_threshold:
            return None
        # Exponential bracket + bisection: the bound is nonincreasing
        # in mission time, so the crossing epoch is well defined.
        hi = 1
        while certified(hi) >= self.p_threshold:
            hi *= 2
        lo = hi // 2
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if certified(mid) >= self.p_threshold:
                lo = mid
            else:
                hi = mid
        return hi

    def reset(self, n_replicas):
        super().reset(n_replicas)
        self.last_repair = np.zeros(self.n_replicas, dtype=np.int64)
        self._repair_log: list = []

    def update(self, errors, first_epoch):
        """Each epoch is judged against the replica's repair clock *as
        of that epoch*: repairs land mid-window (policies apply them at
        epoch start, before evaluation), so they are logged by
        :meth:`on_repair` and replayed here in epoch order rather than
        read from the end-of-window state."""
        fired = np.zeros(errors.shape, dtype=bool)
        pending = sorted(self._repair_log, key=lambda item: item[0])
        self._repair_log = []
        idx = 0
        for k in range(errors.shape[0]):
            epoch = first_epoch + k
            while idx < len(pending) and pending[idx][0] <= epoch:
                self.last_repair[pending[idx][1]] = pending[idx][0]
                idx += 1
            if self.alarm_epoch is not None:
                fired[k] = (epoch - self.last_repair) == self.alarm_epoch
        for repair_epoch, mask in pending[idx:]:
            self.last_repair[mask] = repair_epoch
        return fired

    def on_repair(self, replicas, epoch):
        self._repair_log.append((int(epoch), replicas.copy()))
