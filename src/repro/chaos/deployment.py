"""Deployed-fleet state and its lowering onto the campaign engine.

A chaos campaign watches ``R`` independent replicas of one trained
network serve traffic over discrete epochs while fault processes
(:mod:`repro.chaos.processes`) degrade them and repair policies
(:mod:`repro.chaos.policies`) heal them.  Two classes carry that
story:

* :class:`FleetState` — the mutable health of the fleet at one epoch:
  cumulative crash masks, component ages, per-epoch transient gates,
  per-epoch boosted-reset masks (rejuvenation) and repair downtime.
  Everything is an ``(R, N_l)`` array, mutated in place by processes
  and policies — no per-replica Python objects;
* :class:`EpochWindow` — the bridge to the engine: it snapshots the
  fleet once per epoch into preallocated ``(W, R, N_l)`` buffers and
  compiles a window of ``W`` epochs into **one**
  :class:`~repro.faults.injector.CompiledScenarioBatch` of
  ``W * R`` scenario rows (epoch-major), so the whole fleet × time
  grid streams through a single
  :class:`~repro.faults.masks.MaskCampaignEngine` evaluation — never
  per-scenario Python.

Everything temporal lowers onto exactly two engine channels: permanent
damage (crashes, blasts) and rejuvenation resets are crash (``zero``)
masks; transient bursts are crash masks Bernoulli-gated by ``gate_p``.
That is what keeps the chaos subsystem a thin layer: the fault
*semantics* live in one place (``apply_mask_channels``), shared with
every other campaign in the repo.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..faults.injector import CompiledScenarioBatch, FaultInjector
from ..faults.masks import MaskCampaignEngine, empty_mask_batch
from ..network.model import FeedForwardNetwork

__all__ = ["FleetState", "EpochWindow", "DeployedNetwork"]


class FleetState:
    """Health of ``R`` replicas at the current epoch.

    Attributes
    ----------
    crash:
        ``crash[l0]`` is the ``(R, N_{l+1})`` boolean mask of
        permanently failed components (cumulative until repaired).
    age:
        Epochs since each component's birth or last repair (drives
        Weibull wear-out).
    transient_p / has_transients:
        Per-epoch intermittent faults: ``transient_p`` is each cell's
        probability of emitting 0 per evaluation (0 = healthy), gated
        at evaluation time through the engine's ``gate_p`` channel.
        Cleared every epoch; burst processes re-arm the cells while a
        burst lasts, and overlapping bursts superpose as independent
        Bernoulli hits (``1 - (1-p1)(1-p2)``).
    reset_zero:
        Per-epoch boosted-reset masks: a rejuvenating replica serves
        its restart epoch with these components reading 0 (Corollary
        2's reset semantics), cleared afterwards.
    down_until:
        Replica ``r`` is out of service (repair downtime) while
        ``epoch < down_until[r]``.
    telemetry:
        The campaign's :class:`~repro.chaos.telemetry.TelemetryRecorder`
        seam (``None`` outside a recording campaign): repairs and
        rejuvenation resets are operationally meaningful state
        transitions, so they emit action events from the one place
        they happen rather than from every policy that triggers them.
    """

    def __init__(self, layer_sizes: Sequence[int], n_replicas: int):
        if n_replicas < 1:
            raise ValueError(f"need >= 1 replica, got {n_replicas}")
        self.layer_sizes = tuple(int(n) for n in layer_sizes)
        self.n_replicas = int(n_replicas)
        R = self.n_replicas
        self.crash: List[np.ndarray] = [
            np.zeros((R, n), dtype=bool) for n in self.layer_sizes
        ]
        self.age: List[np.ndarray] = [
            np.zeros((R, n), dtype=np.float64) for n in self.layer_sizes
        ]
        self.transient_p: List[np.ndarray] = [
            np.zeros((R, n), dtype=np.float64) for n in self.layer_sizes
        ]
        self.reset_zero: List[np.ndarray] = [
            np.zeros((R, n), dtype=bool) for n in self.layer_sizes
        ]
        self.down_until = np.zeros(R, dtype=np.int64)
        self.epoch = 0
        self.has_transients = False
        self.has_resets = False
        self.telemetry = None

    # -- epoch lifecycle ---------------------------------------------------

    def begin_epoch(self, epoch: int) -> None:
        """Clear the per-epoch channels and move the clock."""
        self.epoch = int(epoch)
        if self.has_transients:
            for g in self.transient_p:
                g.fill(0.0)
            self.has_transients = False
        if self.has_resets:
            for z in self.reset_zero:
                z.fill(False)
            self.has_resets = False

    def advance_ages(self) -> None:
        """Every component ages one epoch (called once per epoch)."""
        for a in self.age:
            a += 1.0

    # -- mutation API (processes / policies) -------------------------------

    def set_transient(self, l0: int, cells: np.ndarray, hit_p: float) -> None:
        """Mark ``cells`` intermittent for this epoch: each emits 0
        with probability ``hit_p`` per evaluation.  A cell hit by
        several transients superposes them as independent Bernoulli
        gates (``p <- 1 - (1-p)(1-hit_p)``), matching nested
        ``IntermittentFault`` composition."""
        if cells.any():
            p = self.transient_p[l0]
            # First fault on a cell keeps hit_p exact; only genuine
            # overlaps pay the superposition arithmetic.
            combined = np.where(
                p == 0.0, float(hit_p), 1.0 - (1.0 - p) * (1.0 - float(hit_p))
            )
            np.copyto(p, combined, where=cells)
            self.has_transients = True

    def set_resets(self, replica: int, reset_masks: Sequence[np.ndarray]) -> None:
        """Apply one replica's boosted-restart reset masks for this epoch."""
        for l0, mask in enumerate(reset_masks):
            self.reset_zero[l0][replica] |= mask
        self.has_resets = True
        if self.telemetry is not None:
            self.telemetry.record_reset(self.epoch, replica)

    def repair(self, replicas: np.ndarray) -> None:
        """Fully repair ``replicas`` (boolean ``(R,)`` mask): all
        components healthy, ages reset."""
        if not replicas.any():
            return
        for l0 in range(len(self.layer_sizes)):
            self.crash[l0][replicas] = False
            self.age[l0][replicas] = 0.0
        if self.telemetry is not None:
            self.telemetry.record_repair(self.epoch, replicas)

    @property
    def down_now(self) -> np.ndarray:
        """Replicas in repair downtime at the current epoch."""
        return self.epoch < self.down_until

    def failed_fraction(self) -> np.ndarray:
        """Per-replica fraction of permanently failed components."""
        dead = sum(c.sum(axis=1) for c in self.crash)
        total = sum(self.layer_sizes)
        return dead / float(total)


class EpochWindow:
    """Preallocated ``(W, R, N_l)`` snapshot buffers for one window.

    ``snapshot`` copies the fleet's current health into row ``w``;
    ``compile`` reshapes the filled rows into a ``(w * R, N_l)``
    mask batch (epoch-major: scenario ``k`` is epoch ``k // R``,
    replica ``k % R``) without touching per-scenario Python.
    """

    def __init__(self, layer_sizes: Sequence[int], window: int, n_replicas: int):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.layer_sizes = tuple(int(n) for n in layer_sizes)
        self.window = int(window)
        self.n_replicas = int(n_replicas)
        W, R = self.window, self.n_replicas
        self._zero = [
            np.zeros((W, R, n), dtype=bool) for n in self.layer_sizes
        ]
        self._gate = [
            np.ones((W, R, n), dtype=np.float64) for n in self.layer_sizes
        ]
        self._down = np.zeros((W, R), dtype=bool)
        self.count = 0
        self._any_gate = False

    def clear(self) -> None:
        self.count = 0
        if self._any_gate:
            for g in self._gate:
                g.fill(1.0)
        self._any_gate = False

    def snapshot(self, state: FleetState) -> None:
        """Record the fleet's health for the current epoch."""
        w = self.count
        if w >= self.window:
            raise RuntimeError("window buffers full; call clear() first")
        for l0 in range(len(self.layer_sizes)):
            zero = self._zero[l0][w]
            np.logical_or(state.crash[l0], state.reset_zero[l0], out=zero)
            if state.has_transients:
                gated = state.transient_p[l0] > 0.0
                # Permanent damage wins on overlap: a crashed component
                # is not "intermittently" dead.
                gated &= ~zero
                if gated.any():
                    zero |= gated
                    # The engine's gate_p is the fault's per-evaluation
                    # activation probability (1.0 = permanent), exactly
                    # the transient hit probability stored in the state.
                    gate = self._gate[l0][w]
                    np.copyto(gate, state.transient_p[l0], where=gated)
                    self._any_gate = True
        self._down[w] = state.down_now
        self.count += 1

    def compile(self) -> CompiledScenarioBatch:
        """The filled rows as one mask batch of ``count * R`` scenarios."""
        w, R = self.count, self.n_replicas
        S = w * R
        sizes = self.layer_sizes
        batch = empty_mask_batch(sizes, S)
        batch.zero_masks = [
            self._zero[l0][:w].reshape(S, n) for l0, n in enumerate(sizes)
        ]
        if self._any_gate:
            batch.gate_p = [
                self._gate[l0][:w].reshape(S, n) for l0, n in enumerate(sizes)
            ]
        return batch

    @property
    def down(self) -> np.ndarray:
        """Downtime cells of the filled rows, shape ``(count, R)``."""
        return self._down[: self.count]


class DeployedNetwork:
    """One replica fleet wired to a streaming engine.

    Owns the :class:`FleetState`, the :class:`EpochWindow` buffers and
    the :class:`~repro.faults.masks.MaskCampaignEngine` (built once —
    weight casts, nominal pass and chunk buffers are paid per fleet,
    not per epoch).  ``evaluate_window`` turns the buffered epochs
    into per-cell output errors, optionally reduced over a per-epoch
    probe count (traffic modulation).
    """

    def __init__(
        self,
        network: FeedForwardNetwork,
        x: np.ndarray,
        n_replicas: int,
        *,
        capacity: "float | None" = None,
        window: int = 32,
        chunk_size: Optional[int] = None,
        dtype: "str | np.dtype" = np.float64,
        engine: Optional[MaskCampaignEngine] = None,
    ):
        self.network = network
        if engine is None:
            capacity = capacity if capacity is not None else network.output_bound
            injector = FaultInjector(network, capacity=capacity)
            engine = MaskCampaignEngine(
                injector,
                x,
                chunk_size=chunk_size or max(int(window) * int(n_replicas), 1),
                dtype=dtype,
            )
        elif engine.network is not network:
            raise ValueError("engine was built for a different network")
        self.engine = engine
        self.state = FleetState(network.layer_sizes, n_replicas)
        self.window = EpochWindow(network.layer_sizes, window, n_replicas)

    @property
    def n_replicas(self) -> int:
        return self.state.n_replicas

    def evaluate_window(
        self,
        rng: np.random.Generator,
        probe_counts: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Errors of the buffered epochs, shape ``(count, R)``.

        ``probe_counts`` (per buffered epoch, values in ``1..B``)
        restricts each epoch's error reduction to its first ``n_e``
        probes — the traffic-modulated probe batch.  Without it the
        engine's streamed reduction over the full probe batch is used
        (the fast path).
        """
        w, R = self.window.count, self.n_replicas
        batch = self.window.compile()
        if probe_counts is None:
            return self.engine.evaluate(batch, rng=rng).reshape(w, R)
        counts = np.asarray(probe_counts, dtype=np.intp)
        if counts.shape != (w,):
            raise ValueError(
                f"probe_counts shape {counts.shape} != ({w},)"
            )
        B = self.engine.batch_size
        if counts.min() < 1 or counts.max() > B:
            raise ValueError(
                f"probe counts must lie in 1..{B}, got "
                f"[{counts.min()}, {counts.max()}]"
            )
        outs = self.engine.outputs(batch, rng=rng)  # (S, B, n_out)
        err = np.abs(
            outs - np.asarray(self.engine.nominal, dtype=np.float64)[None]
        ).max(axis=2)  # (S, B)
        live = np.arange(B)[None, :] < np.repeat(counts, R)[:, None]
        err[~live] = -np.inf
        return err.max(axis=1).reshape(w, R)
