"""Repair and mitigation policies: how a fleet heals.

Policies close the loop between the monitoring plane
(:mod:`repro.chaos.detectors`) and the fleet state
(:mod:`repro.chaos.deployment`).  The campaign calls
:meth:`~RepairPolicy.apply` at the start of every epoch (perform
repairs that have come due) and :meth:`~RepairPolicy.observe` after
every evaluated window (schedule new repairs from errors and detector
firings).  All repairs ripple to the fault processes and detectors,
so ages, burst timers and CUSUM statistics restart with the replica.

The menu covers the paper's Section-V deployment stories:

* :class:`NoRepairPolicy` — the mission-survival baseline: faults only
  accumulate, availability decays exactly like the certified
  mission-survival curve's lower bound;
* :class:`PeriodicRejuvenationPolicy` — software rejuvenation via the
  Corollary-2 boosting scheme: every ``period`` epochs a replica
  restarts fully repaired, and it serves its restart epoch in *boosted
  mode* — the reset stragglers of one
  :func:`~repro.distributed.boosting.boosted_reset_masks` draw become
  that epoch's crash mask, so the rejuvenation cost is a bounded,
  Fep-priced error blip rather than downtime.  The period is the
  boosting trade-off knob the `exp_chaos_rejuvenation` experiment
  sweeps;
* :class:`DetectorRepairPolicy` — closed-loop repair: when a detector
  fires, schedule a full repair ``latency`` epochs later and pay
  ``downtime`` epochs out of service (the MTTR the SLO report prices);
* :class:`SpareActivationPolicy` — over-provisioning at fleet grain: a
  pool of warm spares absorbs detector firings with a fast swap until
  the pool is dry, after which the fleet degrades like no-repair.
  :func:`recommended_spares` sizes the pool from the certified
  survival bound, the fleet-level twin of Corollary 1's neuron-level
  over-provisioning.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..distributed.boosting import LatencyModel, boosted_reset_masks
from ..faults.reliability import certified_survival_probability
from ..network.model import FeedForwardNetwork

__all__ = [
    "RepairPolicy",
    "NoRepairPolicy",
    "PeriodicRejuvenationPolicy",
    "DetectorRepairPolicy",
    "SpareActivationPolicy",
    "recommended_spares",
]


class RepairPolicy:
    """Base policy; subclasses are picklable and reset per block."""

    name = "policy"
    #: Closed-loop policies cap the campaign's evaluation window:
    #: detection/repair scheduling happens at window granularity, so a
    #: window swallowing the whole mission would mean repairs never
    #: land.  ``None`` = any window is fine (open-loop policies).
    suggested_window: "int | None" = None

    def reset(self, network: FeedForwardNetwork, n_replicas: int) -> None:
        self.network = network
        self.n_replicas = int(n_replicas)
        self.n_repairs = 0

    def apply(self, state, processes, detectors, rng) -> None:
        """Start-of-epoch hook: perform repairs that are due."""

    def observe(self, state, errors, firings, first_epoch: int) -> None:
        """End-of-window hook: ``errors`` and ``firings`` are ``(W, R)``
        grids for epochs ``first_epoch..first_epoch + W - 1``."""

    def stats(self) -> dict:
        """Aggregate counters for the SLO report."""
        return {"repairs": self.n_repairs}

    # -- shared plumbing ---------------------------------------------------

    def _full_repair(self, state, processes, detectors, replicas) -> None:
        """Repair ``replicas`` everywhere: fleet masks + ages, process
        state (burst timers), detector state (CUSUM sums, alarms)."""
        if not replicas.any():
            return
        state.repair(replicas)
        for proc in processes:
            proc.on_repair(state, replicas)
        for det in detectors:
            det.on_repair(replicas, state.epoch)
        self.n_repairs += int(replicas.sum())


class NoRepairPolicy(RepairPolicy):
    """Faults accumulate forever — the mission-survival baseline."""

    name = "none"


class PeriodicRejuvenationPolicy(RepairPolicy):
    """Rejuvenate every ``period`` epochs through a boosted restart.

    At each rejuvenation epoch every replica is fully repaired and
    serves that epoch in boosted mode: a fresh latency draw (the
    straggler population restarting processes exhibit) picks the
    ``tolerated[l]`` slowest producers per layer, and their reset set
    — via :func:`~repro.distributed.boosting.boosted_reset_masks` —
    is the replica's crash mask for the restart epoch.  Corollary 2
    bounds the blip by ``Fep(tolerated)``; the recorded makespans
    price the latency the boost saved versus waiting for stragglers.
    """

    name = "rejuvenate"

    def __init__(
        self,
        period: int,
        tolerated,
        *,
        straggler_fraction: float = 0.1,
        straggler_scale: float = 10.0,
    ):
        if period < 1:
            raise ValueError(f"rejuvenation period must be >= 1, got {period}")
        self.period = int(period)
        self.tolerated = tuple(int(f) for f in tolerated)
        self.straggler_fraction = float(straggler_fraction)
        self.straggler_scale = float(straggler_scale)

    def reset(self, network, n_replicas):
        super().reset(network, n_replicas)
        if len(self.tolerated) != network.depth:
            raise ValueError(
                f"tolerated length {len(self.tolerated)} != depth "
                f"{network.depth}"
            )
        self.n_rejuvenations = 0
        self.speedups: list = []

    def apply(self, state, processes, detectors, rng):
        if state.epoch == 0 or state.epoch % self.period != 0:
            return
        everyone = np.ones(self.n_replicas, dtype=bool)
        self._full_repair(state, processes, detectors, everyone)
        # Per-replica loop, deliberately: each replica's restart needs
        # an independent latency draw, and rejuvenation epochs are rare
        # (one in `period`) — this is process-side bookkeeping, not the
        # per-scenario hot loop, which stays on the streamed engine.
        for r in range(self.n_replicas):
            latency = LatencyModel.uniform_random(
                self.network,
                straggler_fraction=self.straggler_fraction,
                straggler_scale=self.straggler_scale,
                rng=rng,
            )
            masks, base_t, boost_t = boosted_reset_masks(
                self.network, latency, self.tolerated
            )
            state.set_resets(r, masks)
            self.speedups.append(base_t / boost_t if boost_t else float("inf"))
        self.n_rejuvenations += 1

    def stats(self):
        return {
            "repairs": self.n_repairs,
            "rejuvenations": self.n_rejuvenations,
            "mean_boost_speedup": (
                float(np.mean(self.speedups)) if self.speedups else None
            ),
        }


class DetectorRepairPolicy(RepairPolicy):
    """Repair a replica ``latency`` epochs after a detector fires.

    ``detector`` names which detector's firings trigger repairs
    (default: any).  A triggered replica is repaired at
    ``firing epoch + 1 + latency`` and is out of service for
    ``downtime`` epochs from the repair — the MTTR the report prices.
    At most one repair is in flight per replica.
    """

    name = "repair"
    suggested_window = 8

    def __init__(
        self,
        latency: int = 2,
        *,
        downtime: int = 1,
        detector: Optional[str] = None,
    ):
        if latency < 0:
            raise ValueError(f"repair latency must be >= 0, got {latency}")
        if downtime < 0:
            raise ValueError(f"downtime must be >= 0, got {downtime}")
        self.latency = int(latency)
        self.downtime = int(downtime)
        self.detector = detector

    def reset(self, network, n_replicas):
        super().reset(network, n_replicas)
        self.pending = np.full(n_replicas, -1, dtype=np.int64)

    def _trigger_grid(self, firings: dict) -> np.ndarray:
        if self.detector is not None:
            if self.detector not in firings:
                raise KeyError(
                    f"policy wants detector {self.detector!r}; campaign "
                    f"ran {sorted(firings)}"
                )
            return firings[self.detector]
        grids = list(firings.values())
        out = np.zeros(grids[0].shape, dtype=bool) if grids else None
        for g in grids:
            out |= g
        return out

    def observe(self, state, errors, firings, first_epoch):
        grid = self._trigger_grid(firings)
        if grid is None or not grid.any():
            return
        fired_any = grid.any(axis=0)
        first_fire = np.where(fired_any, grid.argmax(axis=0), 0)
        due = first_epoch + first_fire + 1 + self.latency
        # Windowed evaluation cannot repair the past: a repair that
        # came due inside the just-evaluated window lands on the next
        # epoch instead (monitoring-granularity latency).
        due = np.maximum(due, first_epoch + grid.shape[0])
        schedule = fired_any & (self.pending < 0)
        self.pending[schedule] = due[schedule]

    def apply(self, state, processes, detectors, rng):
        due = self.pending == state.epoch
        if not due.any():
            return
        self._full_repair(state, processes, detectors, due)
        state.down_until[due] = state.epoch + self.downtime
        self.pending[due] = -1


class SpareActivationPolicy(DetectorRepairPolicy):
    """Swap fired replicas for warm spares while the pool lasts.

    Identical trigger plumbing to :class:`DetectorRepairPolicy`, but
    each repair consumes one spare from a pool of ``n_spares`` and
    completes after ``swap_latency`` epochs with no downtime (the
    spare was already warm).  When the pool runs dry the fleet is on
    its own — scheduled swaps still waiting are cancelled.

    The pool is provisioned per replica *block*
    (:data:`~repro.chaos.campaign.REPLICA_BLOCK` replicas share
    ``n_spares`` spares) — availability-zone-local spares, which is
    also what keeps blocks independent and the campaign's serial and
    parallel paths bitwise identical.  :func:`recommended_spares`
    sizes the pool from the certified survival bound.
    """

    name = "spare"

    def __init__(
        self,
        n_spares: int,
        *,
        swap_latency: int = 1,
        detector: Optional[str] = None,
    ):
        super().__init__(swap_latency, downtime=0, detector=detector)
        if n_spares < 0:
            raise ValueError(f"n_spares must be >= 0, got {n_spares}")
        self.n_spares = int(n_spares)

    def reset(self, network, n_replicas):
        super().reset(network, n_replicas)
        self.spares_left = self.n_spares

    def apply(self, state, processes, detectors, rng):
        due = self.pending == state.epoch
        if not due.any():
            return
        idx = np.nonzero(due)[0][: self.spares_left]
        swap = np.zeros(self.n_replicas, dtype=bool)
        swap[idx] = True
        self._full_repair(state, processes, detectors, swap)
        self.spares_left -= int(swap.sum())
        self.pending[due] = -1  # dry pool: cancelled, not retried

    def stats(self):
        return {
            "repairs": self.n_repairs,
            "spares_used": self.n_spares - self.spares_left,
            "spares_left": self.spares_left,
        }


def recommended_spares(
    network: FeedForwardNetwork,
    n_replicas: int,
    failure_rate: float,
    horizon_epochs: int,
    epsilon: float,
    epsilon_prime: float,
    *,
    target_availability: float = 0.99,
    dt: float = 1.0,
    capacity: Optional[float] = None,
    mode: str = "crash",
) -> int:
    """Spare-pool size from the certified survival bound.

    The fleet-level face of Corollary-1 over-provisioning: with
    exponential component lifetimes, each replica independently loses
    its certificate by the horizon with probability at least ``q = 1 -
    certified_survival(p(horizon))``.  Expecting ``n_replicas * q``
    losses, the pool is sized to the smallest count whose expected
    shortfall keeps fleet availability at ``target_availability``
    (conservative: every loss consumes one spare).

    The returned count is *fleet-wide*;
    :class:`SpareActivationPolicy` provisions its pool per
    :data:`~repro.chaos.campaign.REPLICA_BLOCK`-replica block, so
    deploy ``ceil(k * REPLICA_BLOCK / n_replicas)`` spares per block
    to realise a fleet-wide pool of ``k``.
    """
    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
    if horizon_epochs < 0:
        raise ValueError(
            f"horizon_epochs must be >= 0, got {horizon_epochs}"
        )
    if not 0 < target_availability <= 1:
        raise ValueError(
            f"target_availability must be in (0,1], got {target_availability}"
        )
    p = 1.0 - float(np.exp(-failure_rate * horizon_epochs * dt))
    survive = certified_survival_probability(
        network, p, epsilon, epsilon_prime, capacity=capacity, mode=mode
    )
    q = 1.0 - survive
    from scipy import stats as sps

    # Smallest k with P[Binomial(R, q) <= k] >= target.
    k = int(sps.binom.ppf(target_availability, n_replicas, q))
    return max(0, k)
