"""Deterministic incident replay: re-serve a stored trace to detectors.

A :class:`~repro.chaos.telemetry.TelemetryTrace` carries everything a
detector ever saw during the live campaign: the observed error series
(downtime cells reading 0), the window cadence (``epochs_chunk``), the
replica partition (``block_sizes``) and the repair actions that re-arm
stateful detectors.  :func:`replay_detectors` replays that stream —
per block, window by window, repairs delivered before each window's
update exactly as the live ``policy.apply`` → ``detector.update``
ordering did — so any detector, including one that never ran in the
original campaign, can be evaluated against a stored incident at
near-zero compute: no network, no engine, no fault simulation.

Determinism contract: replaying the campaign's own detectors (same
construction parameters) reproduces the live alarm grids **exactly**
— the ``incident_replay`` experiment's headline shape check.  The one
structural difference from the live loop is that repairs landing at
the same epoch are delivered as a single grouped ``on_repair`` call;
every policy in :mod:`repro.chaos.policies` issues at most one repair
per epoch, and all shipped detectors treat a grouped mask identically
to consecutive same-epoch calls, so the grids are unchanged.

:func:`replay_report` is the round-trip convenience: derive the SLO
report of a stored trace with a *replayed* detector set swapped in.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from .detectors import DriftDetector
from .telemetry import ACTION_REPAIR, TelemetryTrace, report_from_trace

__all__ = ["replay_detectors", "replay_report"]


def replay_detectors(
    trace: TelemetryTrace, detectors: Sequence[DriftDetector]
) -> Dict[str, np.ndarray]:
    """Alarm grids of ``detectors`` run against a stored trace.

    Returns ``{detector name: (E, R) bool}``.  Requires the trace's
    error channel (``retain_errors=True`` at persistence time); the
    detectors are reset per replica block and stepped through the
    trace's recorded window cadence, with the block's repair events
    delivered in epoch order ahead of each window — the live loop's
    ordering, bit for bit.
    """
    names = [d.name for d in detectors]
    if len(set(names)) != len(names):
        raise ValueError(f"detector names must be unique, got {names}")
    observed = trace.observed()  # raises if the error channel was dropped
    E = trace.epochs
    chunk = max(int(trace.epochs_chunk), 1)
    out = {
        name: np.zeros((E, trace.n_replicas), dtype=bool) for name in names
    }
    repair_epochs, repair_replicas = trace.actions(ACTION_REPAIR)

    start = 0
    for size in trace.block_sizes:
        lo, hi = start, start + size
        start = hi
        for det in detectors:
            det.reset(size)
        # This block's repairs, grouped into one (R,) mask per epoch —
        # the shape of the live per-epoch policy.apply call.
        sel = (repair_replicas >= lo) & (repair_replicas < hi)
        by_epoch: Dict[int, np.ndarray] = {}
        for e, r in zip(repair_epochs[sel], repair_replicas[sel] - lo):
            mask = by_epoch.get(int(e))
            if mask is None:
                mask = by_epoch.setdefault(
                    int(e), np.zeros(size, dtype=bool)
                )
            mask[int(r)] = True

        epoch = 0
        while epoch < E:
            w = min(chunk, E - epoch)
            for e in range(epoch, epoch + w):
                mask = by_epoch.get(e)
                if mask is not None:
                    for det in detectors:
                        det.on_repair(mask, e)
            window = observed[epoch : epoch + w, lo:hi]
            for det in detectors:
                out[det.name][epoch : epoch + w, lo:hi] = det.update(
                    window, epoch
                )
            epoch += w
    return out


def replay_report(
    trace: TelemetryTrace, detectors: Sequence[DriftDetector]
):
    """The stored trace's :class:`~repro.chaos.campaign.ChaosReport`
    with ``detectors``' replayed alarm grids scored in place of the
    live ones (detector stats re-derived; every other statistic is
    untouched — it only depends on the violation/downtime grids)."""
    from dataclasses import replace

    alarms = replay_detectors(trace, detectors)
    swapped = replace(
        trace,
        detector_names=tuple(d.name for d in detectors),
        alarms=alarms,
    )
    return report_from_trace(swapped)
