"""The chaos orchestrator: lifecycle simulation → telemetry → SLO report.

``run_chaos_campaign`` is the fifth subsystem's entry point.  Per
epoch it (1) applies due repairs, (2) steps every fault process over
the whole replica fleet, (3) snapshots the fleet into the window
buffers; per *window* of ``epochs_chunk`` epochs it compiles one
:class:`~repro.faults.injector.CompiledScenarioBatch` of ``W * R``
scenario rows and streams it through a single
:class:`~repro.faults.masks.MaskCampaignEngine` evaluation — the hot
loop contains zero per-scenario Python.  Detectors consume the
evaluated errors and policies schedule repairs from the firings.

The loop computes no summary statistics of its own: every evaluated
window and every repair/rejuvenation action is *emitted* into a
:class:`~repro.chaos.telemetry.TelemetryTrace` through a
:class:`~repro.chaos.telemetry.TelemetryRecorder` (telemetry-native
chaos; DESIGN.md seventh subsystem), and the :class:`ChaosReport` —
availability (plain and request-weighted), the time-to-first-violation
distribution, MTBF / MTTR, per-detector precision/recall against
ground truth — is derived afterwards by the pure function
:func:`~repro.chaos.telemetry.report_from_trace`.  The trace rides on
the report (``report.trace``) for replay and AIOps scoring
(:mod:`repro.chaos.replay`, :mod:`repro.chaos.aiops`).

Determinism and parallelism follow the repo's campaign discipline
(DESIGN.md): replicas are partitioned into fixed blocks of
:data:`REPLICA_BLOCK`; block ``b`` always simulates with the ``b+1``-th
spawned child of ``SeedSequence(seed)`` (child 0 drives the traffic
draw), and the fork-once pool ships the network, probe batch, traffic
series, processes, detectors and policy to each worker exactly once —
jobs carry only ``(block size, seed)``.  The serial path iterates the
same blocks with the same seeds, so the fault schedule, detector
firings and SLO report are bitwise identical, serial == parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..deprecation import warn_spec_deprecation
from ..faults.injector import FaultInjector
from ..faults.masks import MaskCampaignEngine
from ..network.model import FeedForwardNetwork
from ..obs.recorder import RunObserver, block_span_if, fold_worker_payload
from ..parallel import bounded_map, fork_once_pool, worker_state
from .deployment import DeployedNetwork
from .detectors import DriftDetector
from .policies import NoRepairPolicy, RepairPolicy
from .processes import FaultProcess
from .telemetry import (
    TelemetryRecorder,
    TelemetryTrace,
    concat_traces,
    report_from_trace,
)
from .traffic import TrafficModel

__all__ = ["ChaosReport", "run_chaos_campaign", "REPLICA_BLOCK"]

#: Fixed parallel quantum: replica block ``b`` always covers replicas
#: ``[b * REPLICA_BLOCK, ...)`` and always simulates with the same
#: spawned seed, regardless of worker count — campaign results depend
#: only on the seed (the chaos twin of ``masks.SAMPLE_BLOCK``).
REPLICA_BLOCK = 16


@dataclass
class ChaosReport:
    """SLO summary of one chaos campaign.

    ``availability`` counts every (epoch, replica) cell that served
    within the error budget and was not in repair downtime;
    ``weighted_availability`` weighs cells by the epoch's request
    traffic.  ``mtbf`` / ``mttr`` are measured in epochs over
    violation *episodes* (maximal runs of consecutive violating
    epochs per replica).  ``detector_stats`` scores each detector's
    firings against ground truth (violating, in-service cells).

    Degenerate fleets: with zero violation episodes — a fault-free
    fleet, or one whose every cell sat in repair downtime — ``mtbf``
    and ``mttr`` are both ``nan``.  The statistics are undefined
    without an episode to average over; ``nan`` says so explicitly
    where older revisions mixed an ``inf`` MTBF with a ``0.0`` MTTR.

    ``trace`` is the campaign's full
    :class:`~repro.chaos.telemetry.TelemetryTrace` — the event stream
    this report was derived from (excluded from :meth:`to_dict`, like
    ``errors``).
    """

    n_replicas: int
    epochs: int
    epsilon: float
    epsilon_prime: float
    availability: float
    weighted_availability: float
    violation_fraction: float
    downtime_fraction: float
    time_to_first_violation: np.ndarray
    n_violation_episodes: int
    mtbf: float
    mttr: float
    detector_stats: Dict[str, dict] = field(default_factory=dict)
    policy_stats: Dict[str, object] = field(default_factory=dict)
    requests: Optional[np.ndarray] = None
    errors: Optional[np.ndarray] = None
    trace: Optional[TelemetryTrace] = None

    @property
    def budget(self) -> float:
        return self.epsilon - self.epsilon_prime

    def survival_curve(self) -> np.ndarray:
        """Empirical survival by mission time: entry ``m`` is the
        fraction of replicas with no violation during their first ``m``
        epochs, shape ``(epochs + 1,)`` (``curve[0] == 1``).

        The chaos twin of
        :func:`~repro.faults.reliability.mission_survival_curve`: under
        a no-repair policy and exponential lifetimes it must dominate
        the certified bound at every mission time ``m * dt``.
        """
        t = np.arange(self.epochs + 1)
        first = np.asarray(self.time_to_first_violation)
        return (first[None, :] >= t[:, None]).mean(axis=1)

    def to_dict(self) -> dict:
        from ..experiments.runner import jsonable

        payload = {
            k: jsonable(v)
            for k, v in self.__dict__.items()
            if k not in ("errors", "trace")
        }
        payload["budget"] = self.budget
        return payload

    def summary(self) -> str:
        lines = [
            f"ChaosReport(replicas={self.n_replicas}, epochs={self.epochs}, "
            f"budget={self.budget:.4g})",
            f"  availability:          {self.availability:.4f}"
            f"  (request-weighted {self.weighted_availability:.4f})",
            f"  violations:            {self.violation_fraction:.4f} of cells"
            f" in {self.n_violation_episodes} episodes",
            f"  MTBF / MTTR (epochs):  {self.mtbf:.4g} / {self.mttr:.4g}",
            f"  downtime:              {self.downtime_fraction:.4f} of cells",
            "  median epochs to first violation: "
            f"{float(np.median(self.time_to_first_violation)):.4g}",
        ]
        for name, stats in self.detector_stats.items():
            lines.append(
                f"  detector {name}: fired {stats['firings']}, "
                f"precision {stats['precision']:.3f}, "
                f"recall {stats['recall']:.3f}"
            )
        if self.policy_stats:
            pretty = ", ".join(
                f"{k}={v}" for k, v in sorted(self.policy_stats.items())
                if k != "name"
            )
            lines.append(
                f"  policy {self.policy_stats.get('name', '?')}: {pretty}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Block simulation (the unit of parallelism)
# ---------------------------------------------------------------------------


def _simulate_block(
    engine: MaskCampaignEngine,
    processes: Sequence[FaultProcess],
    detectors: Sequence[DriftDetector],
    policy: RepairPolicy,
    n_replicas: int,
    epochs: int,
    epochs_chunk: int,
    epsilon: float,
    epsilon_prime: float,
    probe_counts: Optional[np.ndarray],
    seed: np.random.SeedSequence,
    ground_truth: bool,
) -> TelemetryTrace:
    """Full lifecycle of one replica block; emits the block's trace.

    The process/detector/policy objects are reset here (the worker and
    the serial path reuse the same pickled objects across blocks), so
    a block's trajectory depends only on its seed.  The recorder is
    installed as the fleet state's telemetry seam, so repair and
    rejuvenation-reset actions are captured where they happen; it
    never touches the RNG, so the fault schedule is bitwise identical
    with ground-truth recording on or off.
    """
    rng = np.random.default_rng(seed)
    network = engine.network
    fleet = DeployedNetwork(
        network, engine.xb64, n_replicas, window=epochs_chunk, engine=engine
    )
    state = fleet.state
    for proc in processes:
        proc.reset(n_replicas, network.layer_sizes)
    for det in detectors:
        det.reset(n_replicas)
    policy.reset(network, n_replicas)

    recorder = TelemetryRecorder(
        epochs=epochs,
        n_replicas=n_replicas,
        epsilon=epsilon,
        epsilon_prime=epsilon_prime,
        layer_sizes=network.layer_sizes,
        process_kinds=tuple(type(p).__name__ for p in processes),
        detector_names=tuple(d.name for d in detectors),
        policy_name=policy.name,
        epochs_chunk=epochs_chunk,
        ground_truth=ground_truth,
    )
    state.telemetry = recorder
    budget = epsilon - epsilon_prime

    epoch = 0
    while epoch < epochs:
        w = min(epochs_chunk, epochs - epoch)
        fleet.window.clear()
        for k in range(w):
            state.begin_epoch(epoch + k)
            policy.apply(state, processes, detectors, rng)
            if ground_truth:
                # Per-process damage attribution: the recorder buffers
                # the epoch-end masks (plus mid-epoch totals when
                # several processes share an epoch) and differences
                # them in one vectorised pass at the window flush.
                last = len(processes) - 1
                for p_idx, proc in enumerate(processes):
                    proc.step(state, rng)
                    if p_idx < last:
                        recorder.record_mid_damage(p_idx, k, state)
                recorder.record_epoch_state(k, state)
            else:
                for proc in processes:
                    proc.step(state, rng)
            fleet.window.snapshot(state)
            state.advance_ages()
        counts = (
            probe_counts[epoch : epoch + w]
            if probe_counts is not None
            else None
        )
        errors = fleet.evaluate_window(rng, counts)  # (w, R)
        down_w = fleet.window.down
        viol_w = (errors > budget + 1e-12) & ~down_w
        # Monitoring sees nothing from an out-of-service replica: its
        # error reads as freshly-repaired (0) for the detectors.
        observed = np.where(down_w, 0.0, errors)
        firings_w = {
            det.name: det.update(observed, epoch) for det in detectors
        }
        policy.observe(state, errors, firings_w, epoch)
        recorder.record_window(epoch, errors, down_w, viol_w, firings_w)
        epoch += w

    state.telemetry = None
    return recorder.finish(policy.stats())


def _build_chaos_state(  # pragma: no cover - subprocess body
    network, capacity, xb, chunk_size, dtype, processes, detectors, policy,
    epochs, epochs_chunk, epsilon, epsilon_prime, probe_counts, ground_truth,
    instrument=False,
):
    injector = FaultInjector(network, capacity=capacity)
    engine = MaskCampaignEngine(
        injector, xb, chunk_size=chunk_size, dtype=dtype
    )
    return {
        "engine": engine,
        "processes": processes,
        "detectors": detectors,
        "policy": policy,
        "epochs": epochs,
        "epochs_chunk": epochs_chunk,
        "epsilon": epsilon,
        "epsilon_prime": epsilon_prime,
        "probe_counts": probe_counts,
        "ground_truth": ground_truth,
        "instrument": instrument,
    }


def _worker_simulate_block(job):  # pragma: no cover - subprocess body
    """Job payload: ``(block index, replica count, SeedSequence)``.

    Returns ``(trace, payload)`` — the block's telemetry trace plus
    its observation payload when the pool was built with
    ``instrument=True`` (else None); recording draws no randomness, so
    the fault schedule stays bitwise identical either way.
    """
    index, size, seed = job
    s = worker_state()
    engine = s["engine"]
    if not s.get("instrument"):
        trace = _simulate_block(
            engine, s["processes"], s["detectors"], s["policy"],
            size, s["epochs"], s["epochs_chunk"], s["epsilon"],
            s["epsilon_prime"], s["probe_counts"], seed, s["ground_truth"],
        )
        return trace, None
    ob = RunObserver()
    engine.profile = ob.profile
    try:
        with ob.block_span(index, size):
            trace = _simulate_block(
                engine, s["processes"], s["detectors"], s["policy"],
                size, s["epochs"], s["epochs_chunk"], s["epsilon"],
                s["epsilon_prime"], s["probe_counts"], seed,
                s["ground_truth"],
            )
    finally:
        engine.profile = None
    return trace, ob.worker_payload()


def run_chaos_campaign(
    network: FeedForwardNetwork,
    x: np.ndarray,
    processes: Sequence[FaultProcess],
    *,
    epochs: int,
    n_replicas: int,
    epsilon: float,
    epsilon_prime: float,
    traffic: Optional[TrafficModel] = None,
    detectors: Sequence[DriftDetector] = (),
    policy: Optional[RepairPolicy] = None,
    capacity: Optional[float] = None,
    seed: "int | np.random.SeedSequence | None" = 0,
    epochs_chunk: int = 32,
    chunk_size: Optional[int] = None,
    dtype: "str | np.dtype" = np.float64,
    n_workers: int = 0,
    keep_errors: bool = False,
) -> ChaosReport:
    """Deprecated direct-kwargs shim over :func:`_run_chaos_campaign`.

    Build a :class:`repro.ChaosSpec` and pass it to ``repro.run()``
    instead — the spec form is serializable, content-hashable, and
    replayable.  This shim warns once per process and forwards
    unchanged.
    """
    warn_spec_deprecation("run_chaos_campaign", "repro.ChaosSpec")
    return _run_chaos_campaign(
        network,
        x,
        processes,
        epochs=epochs,
        n_replicas=n_replicas,
        epsilon=epsilon,
        epsilon_prime=epsilon_prime,
        traffic=traffic,
        detectors=detectors,
        policy=policy,
        capacity=capacity,
        seed=seed,
        epochs_chunk=epochs_chunk,
        chunk_size=chunk_size,
        dtype=dtype,
        n_workers=n_workers,
        keep_errors=keep_errors,
    )


def _run_chaos_campaign(
    network: FeedForwardNetwork,
    x: np.ndarray,
    processes: Sequence[FaultProcess],
    *,
    epochs: int,
    n_replicas: int,
    epsilon: float,
    epsilon_prime: float,
    traffic: Optional[TrafficModel] = None,
    detectors: Sequence[DriftDetector] = (),
    policy: Optional[RepairPolicy] = None,
    capacity: Optional[float] = None,
    seed: "int | np.random.SeedSequence | None" = 0,
    epochs_chunk: int = 32,
    chunk_size: Optional[int] = None,
    dtype: "str | np.dtype" = np.float64,
    n_workers: int = 0,
    keep_errors: bool = False,
    telemetry=None,
    spec_payload: Optional[dict] = None,
    profile=None,
    obs=None,
) -> ChaosReport:
    """Simulate a deployed fleet under temporal chaos; return the SLO report.

    Parameters mirror the static campaigns where they overlap
    (``capacity`` defaults to ``sup phi``; ``dtype=float32`` selects
    the engine's fast path; ``n_workers > 1`` fans replica blocks out
    over the fork-once pool).  ``epochs_chunk`` is the evaluation
    window: each engine call covers ``epochs_chunk * block`` scenario
    rows, and detection/repair scheduling happens at window
    granularity (a real monitoring pipeline's aggregation interval).
    Larger windows amortise better; smaller windows tighten the
    repair feedback loop.

    The simulation emits a :class:`~repro.chaos.telemetry.TelemetryTrace`
    and the report is derived from it
    (:func:`~repro.chaos.telemetry.report_from_trace`); the trace is
    returned on ``report.trace``.  ``telemetry`` is an optional
    :class:`~repro.specs.TelemetrySpec`-shaped object (``enabled`` /
    ``ground_truth`` attributes): with both true, the trace also
    carries the ground-truth channels (per-layer crash/transient
    counts, per-process damage attribution) the AIOps tasks score
    against.  ``spec_payload`` (the originating spec's ``to_dict``)
    is embedded in the trace so a stored trace can rebuild its
    detectors for replay.

    ``profile`` accumulates per-phase engine wall time and ``obs``
    records one ``block`` span per replica block, worker payloads
    merged in block order exactly like the telemetry blocks — so the
    observed trace, like the report, is structurally identical serial
    vs parallel.
    """
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
    if epochs_chunk < 1:
        raise ValueError(f"epochs_chunk must be >= 1, got {epochs_chunk}")
    if not (0 < epsilon_prime <= epsilon):
        raise ValueError("need 0 < epsilon_prime <= epsilon")
    if not processes:
        raise ValueError("need at least one fault process")
    names = [d.name for d in detectors]
    if len(set(names)) != len(names):
        raise ValueError(f"detector names must be unique, got {names}")
    policy = policy if policy is not None else NoRepairPolicy()
    wanted = getattr(policy, "detector", None)
    if wanted is not None and wanted not in names:
        raise ValueError(
            f"policy {policy.name!r} triggers on detector {wanted!r}, but "
            f"the campaign runs {names or 'no detectors'}"
        )
    if policy.suggested_window is not None and not detectors:
        # suggested_window marks closed-loop policies: without a firing
        # source they would silently never repair.
        raise ValueError(
            f"closed-loop policy {policy.name!r} needs at least one "
            "detector to trigger on"
        )
    capacity = capacity if capacity is not None else network.output_bound
    epochs = int(epochs)
    epochs_chunk = min(int(epochs_chunk), epochs)
    if policy.suggested_window is not None:
        # Closed-loop policies schedule repairs from evaluated windows;
        # cap the window so their feedback loop can actually close.
        epochs_chunk = min(epochs_chunk, int(policy.suggested_window))

    ss = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    sizes = [REPLICA_BLOCK] * (n_replicas // REPLICA_BLOCK)
    if n_replicas % REPLICA_BLOCK:
        sizes.append(n_replicas % REPLICA_BLOCK)
    children = ss.spawn(len(sizes) + 1)
    traffic_rng = np.random.default_rng(children[0])
    requests = (
        traffic.requests(epochs, traffic_rng) if traffic is not None else None
    )

    xb, _ = network._as_batch(x)
    probe_counts = None
    if traffic is not None and traffic.modulate_probes:
        probe_counts = traffic.probe_counts(requests, xb.shape[0])
    chunk = chunk_size or max(epochs_chunk * REPLICA_BLOCK, 1)
    if obs is not None and profile is None:
        profile = obs.profile
    ground_truth = bool(
        telemetry is not None
        and getattr(telemetry, "enabled", False)
        and getattr(telemetry, "ground_truth", False)
    )

    if n_workers and n_workers > 1:
        with fork_once_pool(
            n_workers,
            _build_chaos_state,
            (
                network, capacity, xb, chunk, np.dtype(dtype).name,
                tuple(processes), tuple(detectors), policy,
                epochs, epochs_chunk, float(epsilon), float(epsilon_prime),
                probe_counts, ground_truth, profile is not None,
            ),
        ) as pool:
            blocks = []
            for block_trace, payload in bounded_map(
                pool,
                _worker_simulate_block,
                (
                    (b, size, child)
                    for b, (size, child) in enumerate(
                        zip(sizes, children[1:])
                    )
                ),
            ):
                blocks.append(block_trace)
                fold_worker_payload(payload, profile, obs)
    else:
        engine = MaskCampaignEngine(
            FaultInjector(network, capacity=capacity), xb,
            chunk_size=chunk, dtype=dtype,
        )
        if profile is not None:
            engine.profile = profile
        blocks = []
        for b, (size, child) in enumerate(zip(sizes, children[1:])):
            with block_span_if(obs, b, size):
                blocks.append(
                    _simulate_block(
                        engine, tuple(processes), tuple(detectors), policy,
                        size, epochs, epochs_chunk, float(epsilon),
                        float(epsilon_prime), probe_counts, child,
                        ground_truth,
                    )
                )
        engine.profile = None

    # Block order is fixed, so the assembled trace — and therefore the
    # derived report — is bitwise identical, serial == parallel.
    trace = concat_traces(blocks, requests=requests, spec_payload=spec_payload)
    return report_from_trace(trace, keep_errors=keep_errors)
