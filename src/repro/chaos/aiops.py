"""AIOps benchmark tasks scored over chaos telemetry alone.

Following the static log-replayer methodology of AIOpsLab (see
PAPERS.md), every stored :class:`~repro.chaos.telemetry.TelemetryTrace`
becomes a reusable benchmark problem at near-zero compute.  Three
tasks, each scored against the trace's ground-truth channels — no
re-simulation, no network evaluation:

* **Detection** (:func:`detection_scores`): given an ``(E, R)`` alarm
  grid (a live detector's recorded firings, or a replayed one from
  :mod:`repro.chaos.replay`), score time-to-detect against the
  violation episodes the trace actually contains.
* **Localization** (:func:`score_localization`): name the faulty
  layers of each incident; scored as set precision/recall against the
  layers with damaged components at onset, plus replica-set
  precision/recall of the flagged fleet subset.
* **Root-cause analysis** (:func:`score_rca`): classify which fault
  process caused each incident; scored as accuracy against the
  per-process damage-attribution channel.

Incidents are the maximal violation runs of
:func:`~repro.chaos.telemetry.episode_runs`; the truth extractors
(:func:`localization_truth`, :func:`rca_truth`) are exposed so oracle
baselines score 1.0 by construction — the calibration check the
``incident_replay`` experiment asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .telemetry import TelemetryTrace, episode_runs

__all__ = [
    "Incident",
    "incidents",
    "detection_scores",
    "localization_truth",
    "score_localization",
    "rca_truth",
    "score_rca",
    "scorecard",
]


@dataclass(frozen=True)
class Incident:
    """One maximal violation episode: ``length`` consecutive violating
    epochs of ``replica`` starting at ``onset``."""

    replica: int
    onset: int
    length: int

    @property
    def end(self) -> int:
        """One past the last violating epoch."""
        return self.onset + self.length


def incidents(trace: TelemetryTrace) -> List[Incident]:
    """The trace's violation episodes, replica-major, onset-ascending."""
    rep, onset, length = episode_runs(trace.viol)
    return [
        Incident(int(r), int(o), int(n))
        for r, o, n in zip(rep, onset, length)
    ]


# ---------------------------------------------------------------------------
# Detection
# ---------------------------------------------------------------------------


def detection_scores(
    trace: TelemetryTrace, alarm_grid: np.ndarray
) -> Dict[str, object]:
    """Score one ``(E, R)`` boolean alarm grid against the trace.

    An incident counts as *detected* if the grid fires on its replica
    at any epoch within ``[onset, end)``; time-to-detect (TTD) is the
    epoch gap from onset to the first in-episode firing.  Alarms in
    healthy in-service cells are false-alarm cells.  The replica-level
    precision/recall compare the set of replicas the grid ever flagged
    against the set that ever violated.
    """
    grid = np.asarray(alarm_grid, dtype=bool)
    if grid.shape != trace.viol.shape:
        raise ValueError(
            f"alarm grid shape {grid.shape} != trace grid "
            f"{trace.viol.shape}"
        )
    eps = incidents(trace)
    ttds: List[int] = []
    detected = 0
    for inc in eps:
        window = grid[inc.onset : inc.end, inc.replica]
        if window.any():
            detected += 1
            ttds.append(int(window.argmax()))
    false_cells = int((grid & ~trace.viol & ~trace.down).sum())
    flagged = set(np.nonzero(grid.any(axis=0))[0].tolist())
    truth = set(np.nonzero(trace.viol.any(axis=0))[0].tolist())
    tp = len(flagged & truth)
    return {
        "n_incidents": len(eps),
        "detected": detected,
        "detection_rate": detected / len(eps) if eps else float("nan"),
        "mean_ttd": float(np.mean(ttds)) if ttds else float("nan"),
        "median_ttd": float(np.median(ttds)) if ttds else float("nan"),
        "false_alarm_cells": false_cells,
        "replica_precision": tp / len(flagged) if flagged else 1.0,
        "replica_recall": tp / len(truth) if truth else 1.0,
    }


# ---------------------------------------------------------------------------
# Localization
# ---------------------------------------------------------------------------


def localization_truth(trace: TelemetryTrace) -> List[Tuple[int, ...]]:
    """Per incident, the layers holding damaged components at onset.

    Requires ground-truth channels (``telemetry.ground_truth=True``
    during the campaign).  A layer is faulty if it has any crashed or
    intermittent component on the incident's replica at its onset
    epoch.
    """
    if not trace.has_ground_truth:
        raise ValueError(
            "trace has no ground-truth channels; rerun the campaign "
            "with telemetry ground_truth=True to score localization"
        )
    damage = trace.crash_counts + trace.transient_counts  # (E, R, L)
    return [
        tuple(np.nonzero(damage[inc.onset, inc.replica])[0].tolist())
        for inc in incidents(trace)
    ]


def score_localization(
    trace: TelemetryTrace,
    predictions: Sequence[Sequence[int]],
) -> Dict[str, float]:
    """Set precision/recall of per-incident faulty-layer predictions.

    ``predictions[i]`` is the layer-index set claimed for incident
    ``i`` (same order as :func:`incidents`).  Per-incident precision
    and recall are averaged over incidents; an empty truth set scores
    an empty prediction as perfect.
    """
    truth = localization_truth(trace)
    if len(predictions) != len(truth):
        raise ValueError(
            f"{len(predictions)} predictions for {len(truth)} incidents"
        )
    precisions: List[float] = []
    recalls: List[float] = []
    for pred, true in zip(predictions, truth):
        p, t = set(int(x) for x in pred), set(true)
        hit = len(p & t)
        precisions.append(hit / len(p) if p else (1.0 if not t else 0.0))
        recalls.append(hit / len(t) if t else 1.0)
    return {
        "n_incidents": len(truth),
        "layer_precision": (
            float(np.mean(precisions)) if precisions else float("nan")
        ),
        "layer_recall": float(np.mean(recalls)) if recalls else float("nan"),
    }


# ---------------------------------------------------------------------------
# Root-cause analysis
# ---------------------------------------------------------------------------


def rca_truth(trace: TelemetryTrace) -> List[int]:
    """Per incident, the index of the fault process that contributed
    the most damage to the replica up to and including onset (ties go
    to the earliest-registered process, matching ``argmax``); ``-1``
    when no recorded process damaged the replica by then (e.g. the
    violation came from accumulated transients already repaired)."""
    if trace.process_hits is None:
        raise ValueError(
            "trace has no process-attribution channel; rerun the "
            "campaign with telemetry ground_truth=True to score RCA"
        )
    out: List[int] = []
    for inc in incidents(trace):
        hits = trace.process_hits[:, : inc.onset + 1, inc.replica].sum(
            axis=1
        )
        out.append(int(hits.argmax()) if hits.any() else -1)
    return out


def score_rca(
    trace: TelemetryTrace, predictions: Sequence[int]
) -> Dict[str, object]:
    """Classification accuracy of per-incident fault-process labels.

    ``predictions[i]`` is the claimed process index for incident ``i``
    (same order as :func:`incidents`); ``-1`` claims "no recorded
    cause".  Also reports per-kind accuracy keyed by the trace's
    process kinds.
    """
    truth = rca_truth(trace)
    if len(predictions) != len(truth):
        raise ValueError(
            f"{len(predictions)} predictions for {len(truth)} incidents"
        )
    correct = sum(
        1 for p, t in zip(predictions, truth) if int(p) == int(t)
    )
    by_kind: Dict[str, Dict[str, int]] = {}
    for p, t in zip(predictions, truth):
        kind = (
            trace.process_kinds[t] if 0 <= t < len(trace.process_kinds)
            else "none"
        )
        row = by_kind.setdefault(kind, {"n": 0, "correct": 0})
        row["n"] += 1
        row["correct"] += int(int(p) == int(t))
    return {
        "n_incidents": len(truth),
        "accuracy": correct / len(truth) if truth else float("nan"),
        "by_kind": {
            kind: {
                "n": row["n"],
                "accuracy": row["correct"] / row["n"],
            }
            for kind, row in sorted(by_kind.items())
        },
    }


# ---------------------------------------------------------------------------
# Scorecard
# ---------------------------------------------------------------------------


def scorecard(
    trace: TelemetryTrace,
    *,
    alarm_grids: Optional[Dict[str, np.ndarray]] = None,
) -> Dict[str, object]:
    """The full AIOps benchmark sheet for one trace.

    Detection is scored for every grid in ``alarm_grids`` (default:
    the trace's own recorded detectors); localization and RCA are
    scored for the oracle baselines built from the truth extractors —
    by construction 1.0, which pins the scoring itself (skipped with a
    note when the trace lacks ground-truth channels).
    """
    grids = trace.alarms if alarm_grids is None else alarm_grids
    sheet: Dict[str, object] = {
        "n_incidents": len(incidents(trace)),
        "detection": {
            name: detection_scores(trace, grid)
            for name, grid in sorted(grids.items())
        },
    }
    if trace.has_ground_truth:
        truth_layers = localization_truth(trace)
        sheet["localization_oracle"] = score_localization(
            trace, truth_layers
        )
        sheet["rca_oracle"] = score_rca(trace, rca_truth(trace))
    else:
        sheet["ground_truth"] = "absent"
    return sheet
