"""Temporal chaos campaigns: the deployment-lifecycle subsystem.

Where :mod:`repro.faults` evaluates *static snapshots* (sample S
i.i.d. scenarios, evaluate, aggregate), this package simulates a
*deployed* fleet of network replicas serving request traffic over
discrete epochs while a fault schedule evolves — faults arrive,
accumulate, get detected, and get repaired, the Section-V deployment
story made executable:

* :mod:`~repro.chaos.processes` — stochastic fault arrival/lifetime
  processes (Poisson arrivals, exponential/Weibull lifetimes,
  transient bursts, correlated layer blasts);
* :mod:`~repro.chaos.deployment` — the fleet state and its lowering
  of a whole epochs × replicas window onto one
  :class:`~repro.faults.masks.MaskCampaignEngine` evaluation;
* :mod:`~repro.chaos.traffic` — request streams (constant, diurnal,
  bursty Pareto) weighting the SLO statistics;
* :mod:`~repro.chaos.detectors` — error-drift detectors (threshold,
  CUSUM, the Fep-certified preventive alarm);
* :mod:`~repro.chaos.policies` — repair/mitigation policies (none,
  boosted rejuvenation, detector-triggered repair, spare activation);
* :mod:`~repro.chaos.campaign` — :func:`run_chaos_campaign`, the
  orchestrator producing a :class:`ChaosReport` SLO summary with
  fork-once parallelism across replica blocks;
* :mod:`~repro.chaos.telemetry` — the typed columnar
  :class:`TelemetryTrace` the epoch loop emits, and
  :func:`report_from_trace`, the pure derivation every report now
  goes through;
* :mod:`~repro.chaos.replay` — deterministic incident replay of a
  stored trace against any detector, no re-simulation;
* :mod:`~repro.chaos.aiops` — detection / localization / RCA
  benchmark tasks scored over telemetry alone.

See DESIGN.md's fifth-subsystem section for the campaign data flow
and the seventh-subsystem section for the telemetry stream.
"""

from .aiops import (
    Incident,
    detection_scores,
    incidents,
    localization_truth,
    rca_truth,
    score_localization,
    score_rca,
    scorecard,
)
from .campaign import REPLICA_BLOCK, ChaosReport, run_chaos_campaign
from .replay import replay_detectors, replay_report
from .telemetry import (
    ACTION_REPAIR,
    ACTION_RESET,
    TRACE_SCHEMA_VERSION,
    TelemetryRecorder,
    TelemetryTrace,
    concat_traces,
    episode_runs,
    load_trace,
    report_from_trace,
    save_trace,
)
from .deployment import DeployedNetwork, EpochWindow, FleetState
from .detectors import (
    CertifiedAlarmDetector,
    CUSUMDetector,
    DriftDetector,
    ThresholdDetector,
)
from .policies import (
    DetectorRepairPolicy,
    NoRepairPolicy,
    PeriodicRejuvenationPolicy,
    RepairPolicy,
    SpareActivationPolicy,
    recommended_spares,
)
from .processes import (
    ComponentLifetimeProcess,
    CorrelatedBlastProcess,
    FaultProcess,
    PoissonArrivalProcess,
    TransientBurstProcess,
)
from .traffic import (
    ConstantTraffic,
    DiurnalTraffic,
    ParetoBurstyTraffic,
    TrafficModel,
)

__all__ = [
    "REPLICA_BLOCK",
    "ChaosReport",
    "run_chaos_campaign",
    "DeployedNetwork",
    "EpochWindow",
    "FleetState",
    "DriftDetector",
    "ThresholdDetector",
    "CUSUMDetector",
    "CertifiedAlarmDetector",
    "RepairPolicy",
    "NoRepairPolicy",
    "PeriodicRejuvenationPolicy",
    "DetectorRepairPolicy",
    "SpareActivationPolicy",
    "recommended_spares",
    "FaultProcess",
    "PoissonArrivalProcess",
    "ComponentLifetimeProcess",
    "TransientBurstProcess",
    "CorrelatedBlastProcess",
    "TrafficModel",
    "ConstantTraffic",
    "DiurnalTraffic",
    "ParetoBurstyTraffic",
    "TRACE_SCHEMA_VERSION",
    "ACTION_REPAIR",
    "ACTION_RESET",
    "TelemetryTrace",
    "TelemetryRecorder",
    "concat_traces",
    "report_from_trace",
    "episode_runs",
    "save_trace",
    "load_trace",
    "replay_detectors",
    "replay_report",
    "Incident",
    "incidents",
    "detection_scores",
    "localization_truth",
    "score_localization",
    "rca_truth",
    "score_rca",
    "scorecard",
]
