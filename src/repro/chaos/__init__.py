"""Temporal chaos campaigns: the deployment-lifecycle subsystem.

Where :mod:`repro.faults` evaluates *static snapshots* (sample S
i.i.d. scenarios, evaluate, aggregate), this package simulates a
*deployed* fleet of network replicas serving request traffic over
discrete epochs while a fault schedule evolves — faults arrive,
accumulate, get detected, and get repaired, the Section-V deployment
story made executable:

* :mod:`~repro.chaos.processes` — stochastic fault arrival/lifetime
  processes (Poisson arrivals, exponential/Weibull lifetimes,
  transient bursts, correlated layer blasts);
* :mod:`~repro.chaos.deployment` — the fleet state and its lowering
  of a whole epochs × replicas window onto one
  :class:`~repro.faults.masks.MaskCampaignEngine` evaluation;
* :mod:`~repro.chaos.traffic` — request streams (constant, diurnal,
  bursty Pareto) weighting the SLO statistics;
* :mod:`~repro.chaos.detectors` — error-drift detectors (threshold,
  CUSUM, the Fep-certified preventive alarm);
* :mod:`~repro.chaos.policies` — repair/mitigation policies (none,
  boosted rejuvenation, detector-triggered repair, spare activation);
* :mod:`~repro.chaos.campaign` — :func:`run_chaos_campaign`, the
  orchestrator producing a :class:`ChaosReport` SLO summary with
  fork-once parallelism across replica blocks.

See DESIGN.md's fifth-subsystem section for the data flow.
"""

from .campaign import REPLICA_BLOCK, ChaosReport, run_chaos_campaign
from .deployment import DeployedNetwork, EpochWindow, FleetState
from .detectors import (
    CertifiedAlarmDetector,
    CUSUMDetector,
    DriftDetector,
    ThresholdDetector,
)
from .policies import (
    DetectorRepairPolicy,
    NoRepairPolicy,
    PeriodicRejuvenationPolicy,
    RepairPolicy,
    SpareActivationPolicy,
    recommended_spares,
)
from .processes import (
    ComponentLifetimeProcess,
    CorrelatedBlastProcess,
    FaultProcess,
    PoissonArrivalProcess,
    TransientBurstProcess,
)
from .traffic import (
    ConstantTraffic,
    DiurnalTraffic,
    ParetoBurstyTraffic,
    TrafficModel,
)

__all__ = [
    "REPLICA_BLOCK",
    "ChaosReport",
    "run_chaos_campaign",
    "DeployedNetwork",
    "EpochWindow",
    "FleetState",
    "DriftDetector",
    "ThresholdDetector",
    "CUSUMDetector",
    "CertifiedAlarmDetector",
    "RepairPolicy",
    "NoRepairPolicy",
    "PeriodicRejuvenationPolicy",
    "DetectorRepairPolicy",
    "SpareActivationPolicy",
    "recommended_spares",
    "FaultProcess",
    "PoissonArrivalProcess",
    "ComponentLifetimeProcess",
    "TransientBurstProcess",
    "CorrelatedBlastProcess",
    "TrafficModel",
    "ConstantTraffic",
    "DiurnalTraffic",
    "ParetoBurstyTraffic",
]
