"""Stochastic fault-arrival and lifetime processes.

Every campaign elsewhere in the repo is a *static snapshot*: sample S
i.i.d. scenarios, evaluate, aggregate.  The paper's deployment story
(Section V: survival over mission time, rejuvenation via boosting) is
temporal — faults *arrive* while the network serves traffic.  This
module provides the arrival side of that story: a
:class:`FaultProcess` advances the health state of a whole replica
fleet by one epoch at a time, emitting incremental mask updates that
:mod:`repro.chaos.deployment` accumulates and compiles for the
campaign engine.

Processes are **array-level**: one :meth:`~FaultProcess.step` call
mutates the ``(R, N_l)`` fleet masks for all ``R`` replicas at once —
no per-replica or per-neuron Python in the epoch loop.  They are also
**deterministic**: every draw comes from the generator threaded in by
the campaign, and the draw shapes do not depend on worker count, so a
chaos run replays bitwise from its seed (serial == parallel).

The taxonomy mirrors the failure modes the paper and the
chaos-engineering literature care about:

* :class:`PoissonArrivalProcess` — memoryless arrivals per layer
  (``k ~ Poisson(rate)`` component hits per replica per epoch);
* :class:`ComponentLifetimeProcess` — per-component exponential or
  Weibull lifetimes.  With the default ``shape=1`` the cumulative
  failure probability after ``t`` epochs is exactly the
  ``1 - exp(-rate * t)`` of
  :func:`repro.faults.reliability.mission_survival_curve`, so the
  no-repair chaos campaign converges on the certified survival bound;
* :class:`TransientBurstProcess` — soft-error storms: a burst makes a
  random component subset *intermittent* for a few epochs, lowered
  onto the engine's ``gate_p`` channel;
* :class:`CorrelatedBlastProcess` — correlated layer blasts (a rack
  loss, a bad deploy): one event crashes a fraction of a single layer
  simultaneously.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "FaultProcess",
    "PoissonArrivalProcess",
    "ComponentLifetimeProcess",
    "TransientBurstProcess",
    "CorrelatedBlastProcess",
]


def _per_layer(value, layer_sizes, name: str) -> tuple:
    """Broadcast a scalar (or validate a sequence) to one value per layer."""
    if np.isscalar(value):
        return tuple(float(value) for _ in layer_sizes)
    values = tuple(float(v) for v in value)
    if len(values) != len(layer_sizes):
        raise ValueError(
            f"{name} has {len(values)} entries for {len(layer_sizes)} layers"
        )
    return values


def _scatter_counted_hits(
    rng: np.random.Generator, counts: np.ndarray, width: int
) -> np.ndarray:
    """``(R, width)`` boolean hits with exactly ``counts[r]`` True per row.

    The varying-count sibling of the mask samplers' batched
    ``argpartition`` trick: rows share one uniform key draw, row ``r``
    takes the ``counts[r]`` smallest keys — a uniform random subset per
    row, one vectorised call for the whole fleet.
    """
    R = counts.shape[0]
    hits = np.zeros((R, width), dtype=bool)
    if not counts.any():
        return hits
    keys = rng.random((R, width))
    order = np.argsort(keys, axis=1)
    take = np.arange(width)[None, :] < counts[:, None]
    rows = np.broadcast_to(np.arange(R)[:, None], (R, width))
    hits[rows[take], order[take]] = True
    return hits


class FaultProcess:
    """Advances fleet health by one epoch; subclasses are picklable.

    Lifecycle: the campaign calls :meth:`reset` once per replica block
    (workers receive pickled copies and reset them too, so serial and
    parallel runs see identical state), then :meth:`step` once per
    epoch with the block's generator, and :meth:`on_repair` whenever a
    policy repairs replicas (so age- or burst-tracking state restarts
    with the replica).
    """

    def reset(self, n_replicas: int, layer_sizes: Sequence[int]) -> None:
        self.n_replicas = int(n_replicas)
        self.layer_sizes = tuple(int(n) for n in layer_sizes)

    def step(self, state, rng: np.random.Generator) -> None:
        """Mutate ``state`` (a :class:`repro.chaos.deployment.FleetState`)
        for the current epoch."""
        raise NotImplementedError

    def on_repair(self, state, replicas: np.ndarray) -> None:
        """Notification that ``replicas`` (boolean ``(R,)`` mask) were
        repaired; default: nothing to forget."""


class PoissonArrivalProcess(FaultProcess):
    """Memoryless fault arrivals: ``Poisson(rate_l)`` hits per layer/epoch.

    Each arrival crashes a uniformly random component of the layer
    (arrivals may land on already-dead components — a dead component
    stays dead, matching the superposition property of thinned Poisson
    streams).  ``rate`` is a scalar (shared by all layers) or one rate
    per layer.
    """

    def __init__(self, rate: "float | Sequence[float]" = 0.1):
        self.rate = rate

    def reset(self, n_replicas, layer_sizes):
        super().reset(n_replicas, layer_sizes)
        self.rates = _per_layer(self.rate, self.layer_sizes, "rate")
        if any(r < 0 for r in self.rates):
            raise ValueError(f"arrival rates must be >= 0, got {self.rates}")

    def step(self, state, rng):
        for l0, (n, rate) in enumerate(zip(self.layer_sizes, self.rates)):
            if rate == 0.0:
                continue
            counts = rng.poisson(rate, self.n_replicas)
            if counts.any():
                state.crash[l0] |= _scatter_counted_hits(rng, counts, n)


class ComponentLifetimeProcess(FaultProcess):
    """Per-component exponential (``shape=1``) or Weibull lifetimes.

    A component of age ``a`` (epochs since birth or last repair) fails
    during the next epoch with probability ``1 - exp(H(a) - H(a+dt))``
    where ``H(t) = (rate * t) ** shape`` is the cumulative hazard.  For
    ``shape=1`` this is the constant ``1 - exp(-rate * dt)`` — the
    discrete-time twin of ``mission_survival_curve``'s
    ``p(t) = 1 - exp(-rate * t)``: a never-repaired component is alive
    at epoch ``t`` with probability ``exp(-rate * dt * t)`` exactly.
    ``shape > 1`` models wear-out (rejuvenation's whole point),
    ``shape < 1`` infant mortality.
    """

    def __init__(self, rate: float, *, shape: float = 1.0, dt: float = 1.0):
        if rate < 0:
            raise ValueError(f"failure rate must be >= 0, got {rate}")
        if shape <= 0:
            raise ValueError(f"Weibull shape must be positive, got {shape}")
        if dt <= 0:
            raise ValueError(f"epoch duration dt must be positive, got {dt}")
        self.rate = float(rate)
        self.shape = float(shape)
        self.dt = float(dt)

    def step(self, state, rng):
        for l0, n in enumerate(self.layer_sizes):
            if self.shape == 1.0:
                p = 1.0 - np.exp(-self.rate * self.dt)
            else:
                a = state.age[l0] * self.dt
                p = 1.0 - np.exp(
                    (self.rate * a) ** self.shape
                    - (self.rate * (a + self.dt)) ** self.shape
                )
            # Draw for every component (constant stream shape; the
            # already-crashed simply cannot fail twice).
            hits = rng.random((self.n_replicas, n)) < p
            state.crash[l0] |= hits


class TransientBurstProcess(FaultProcess):
    """Soft-error storms lowered onto the engine's ``gate_p`` channel.

    Each epoch a healthy replica enters a burst with probability
    ``burst_rate``; for the next ``duration`` epochs a random
    ``fraction`` of its components (drawn once, at burst start) become
    *intermittent*: they emit 0 with probability ``hit_p`` per
    evaluation — exactly the
    :class:`~repro.faults.types.IntermittentFault` semantics, realised
    by the engine's evaluation-time Bernoulli gates rather than by
    permanent mask bits.  Bursts end on their own; repairs also clear
    them.
    """

    def __init__(
        self,
        burst_rate: float = 0.05,
        *,
        duration: int = 3,
        fraction: float = 0.2,
        hit_p: float = 0.5,
    ):
        if not 0 <= burst_rate <= 1:
            raise ValueError(f"burst_rate must be in [0,1], got {burst_rate}")
        if duration < 1:
            raise ValueError(f"duration must be >= 1, got {duration}")
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0,1], got {fraction}")
        if not 0 <= hit_p <= 1:
            raise ValueError(f"hit_p must be in [0,1], got {hit_p}")
        self.burst_rate = float(burst_rate)
        self.duration = int(duration)
        self.fraction = float(fraction)
        self.hit_p = float(hit_p)

    def reset(self, n_replicas, layer_sizes):
        super().reset(n_replicas, layer_sizes)
        self.remaining = np.zeros(self.n_replicas, dtype=np.int64)
        self.affected: List[np.ndarray] = [
            np.zeros((self.n_replicas, n), dtype=bool) for n in layer_sizes
        ]

    def step(self, state, rng):
        starts = (self.remaining == 0) & (
            rng.random(self.n_replicas) < self.burst_rate
        )
        if starts.any():
            self.remaining[starts] = self.duration
            k = int(starts.sum())
            for l0, n in enumerate(self.layer_sizes):
                self.affected[l0][starts] = rng.random((k, n)) < self.fraction
        active = self.remaining > 0
        if active.any():
            for l0 in range(len(self.layer_sizes)):
                cells = self.affected[l0] & active[:, None]
                state.set_transient(l0, cells, self.hit_p)
            self.remaining[active] -= 1

    def on_repair(self, state, replicas):
        self.remaining[replicas] = 0
        for mask in self.affected:
            mask[replicas] = False


class CorrelatedBlastProcess(FaultProcess):
    """Correlated layer blasts: one event kills a slice of one layer.

    With probability ``rate`` per replica per epoch, a uniformly random
    layer loses a uniformly random ``fraction`` of its components at
    once — the rack-loss / bad-rollout failure mode that i.i.d.
    per-component models cannot produce.  Blasts are independent
    across replicas (the fleet analogue of independent availability
    zones).
    """

    def __init__(self, rate: float = 0.01, *, fraction: float = 0.5):
        if not 0 <= rate <= 1:
            raise ValueError(f"blast rate must be in [0,1], got {rate}")
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0,1], got {fraction}")
        self.rate = float(rate)
        self.fraction = float(fraction)

    def step(self, state, rng):
        R = self.n_replicas
        hit = rng.random(R) < self.rate
        # Layer choices are drawn for every replica so the stream shape
        # never depends on the hit pattern (deterministic replay).
        layers = rng.integers(0, len(self.layer_sizes), size=R)
        if not hit.any():
            return
        for l0, n in enumerate(self.layer_sizes):
            rows = hit & (layers == l0)
            if not rows.any():
                continue
            k = max(1, int(round(self.fraction * n)))
            counts = np.where(rows, k, 0)
            state.crash[l0] |= _scatter_counted_hits(rng, counts, n)
