"""Hierarchical run traces: timed spans, span events, worker grafting.

A :class:`RunTrace` is the span plane of the observability subsystem:
a tree of named, wall-timed :class:`Span` nodes covering one
``repro.run()`` — dispatch, network load, per-block sampling and
evaluation — with point-in-time **events** (adaptive-stopping looks,
artifact-cache hits) attached to the span that was open when they
happened.

Determinism contract (the span-plane analogue of the engines' own
serial == parallel guarantee):

* recording makes **zero RNG draws**, so numeric run results are
  bitwise identical with tracing on or off;
* parallel workers record their block spans into private buffers and
  ship them back as plain payloads; the parent grafts them in block
  **submission order** — the same order the serial loop would have
  created them — mirroring how ``concat_traces`` assembles chaos
  telemetry blocks.  The resulting tree *structure* (names, nesting,
  order, attrs, events) is therefore identical serial vs parallel;
  only the recorded wall times differ, which is inherent to timing.

:meth:`RunTrace.fingerprint` captures exactly that structural view —
the tests' equality oracle.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = ["Span", "RunTrace"]


class Span:
    """One timed node: relative start, duration, attrs, events, children.

    ``t0`` is seconds since the owning trace's epoch (workers keep
    their own epoch — absolute alignment across processes is not part
    of the contract); ``dt`` is the span's wall duration.  ``events``
    are ``(name, t, attrs)`` triples recorded while the span was open.
    """

    __slots__ = ("name", "t0", "dt", "attrs", "events", "children")

    def __init__(self, name: str, t0: float, attrs: Dict[str, Any]):
        self.name = name
        self.t0 = t0
        self.dt = 0.0
        self.attrs = attrs
        self.events: List[Tuple[str, float, Dict[str, Any]]] = []
        self.children: List["Span"] = []

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "t0": round(self.t0, 9),
            "dt": round(self.dt, 9),
            "attrs": dict(self.attrs),
            "events": [
                {"name": n, "t": round(t, 9), "attrs": dict(a)}
                for n, t, a in self.events
            ],
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Span":
        span = cls(payload["name"], float(payload["t0"]), dict(payload["attrs"]))
        span.dt = float(payload["dt"])
        span.events = [
            (e["name"], float(e["t"]), dict(e["attrs"]))
            for e in payload["events"]
        ]
        span.children = [cls.from_dict(c) for c in payload["children"]]
        return span


class RunTrace:
    """The span tree of one run; records via a context-manager stack."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._epoch = time.perf_counter()

    # -- recording ---------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a child span of the current span (or a root span)."""
        node = Span(name, time.perf_counter() - self._epoch, attrs)
        parent = self.current
        (parent.children if parent else self.spans).append(node)
        self._stack.append(node)
        start = time.perf_counter()
        try:
            yield node
        finally:
            node.dt = time.perf_counter() - start
            self._stack.pop()

    def event(self, name: str, **attrs) -> None:
        """Attach a point event to the current span.

        With no span open the event opens-and-closes a zero-duration
        root span of the same name, so nothing is silently dropped.
        """
        t = time.perf_counter() - self._epoch
        parent = self.current
        if parent is None:
            node = Span(name, t, {})
            node.events.append((name, t, attrs))
            self.spans.append(node)
        else:
            parent.events.append((name, t, attrs))

    def graft(self, span_payloads) -> None:
        """Attach worker span payloads (``Span.to_dict`` dicts) as
        children of the current span, in the given order — the
        deterministic block/submission-order merge."""
        parent = self.current
        target = parent.children if parent else self.spans
        for payload in span_payloads:
            target.append(Span.from_dict(payload))

    # -- introspection -----------------------------------------------------

    def walk(self) -> Iterator[Tuple[int, Span]]:
        """Depth-first ``(depth, span)`` pairs in recording order."""

        def visit(span: Span, depth: int):
            yield depth, span
            for child in span.children:
                yield from visit(child, depth + 1)

        for root in self.spans:
            yield from visit(root, 0)

    def find(self, name: str) -> List[Span]:
        return [s for _, s in self.walk() if s.name == name]

    def fingerprint(self) -> tuple:
        """The structural view: names, nesting, attrs and events with
        every wall-time coordinate removed.  Serial and parallel runs
        of the same workload must produce equal fingerprints."""

        def node(span: Span):
            return (
                span.name,
                tuple(sorted(span.attrs.items())),
                tuple(
                    (n, tuple(sorted(a.items()))) for n, _, a in span.events
                ),
                tuple(node(c) for c in span.children),
            )

        return tuple(node(s) for s in self.spans)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {"spans": [s.to_dict() for s in self.spans]}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunTrace":
        trace = cls()
        trace.spans = [Span.from_dict(s) for s in payload["spans"]]
        return trace
