"""A zero-dependency metrics registry: counters, gauges, histograms.

The observability subsystem needs Prometheus-style metrics without a
Prometheus client library (the repo bakes in nothing beyond the
scientific stack), so this module implements the minimal surface the
exporters and tests rely on:

* **counters** — monotone accumulators (``inc``);
* **gauges** — last-write-wins values (``set``);
* **histograms** — fixed upper-bound buckets chosen at creation
  (``observe``), cumulative in the exposition exactly like
  Prometheus ``_bucket{le=...}`` samples.

Metrics live in *families* (one name, one type, one help string) with
optional label sets; a ``(name, labels)`` pair addresses one series.
Everything is plain Python data, picklable, and **deterministically
mergeable**: :meth:`MetricsRegistry.merge` folds a worker registry (or
its ``as_dict`` payload) into the parent — counters and histograms
add, gauges take the incoming value — so folding per-block worker
payloads in block order yields the same registry as the serial run
(count-valued series exactly; time-valued series up to wall-clock
noise, which is inherent to timing).

The registry makes **zero RNG draws** and never touches numeric run
state: enabling it cannot change campaign results.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_TIME_BUCKETS",
]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

#: Log-spaced wall-time buckets (seconds) for latency histograms:
#: 1 microsecond to 10 seconds, one decade per bucket.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"bad label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """One monotone series; produced by :meth:`MetricsRegistry.counter`."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        self.value += amount


class Gauge:
    """One last-write-wins series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket histogram; ``le`` buckets are *cumulative* on render.

    ``observe(v)`` increments the first bucket whose upper bound is
    ``>= v`` (Prometheus ``le`` semantics: a value equal to an edge
    lands in that edge's bucket); values above every bound land only
    in the implicit ``+Inf`` bucket.
    """

    __slots__ = ("buckets", "counts", "inf_count", "sum")

    def __init__(self, buckets: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(
                f"bucket bounds must be strictly increasing, got {bounds}"
            )
        if any(math.isinf(b) for b in bounds):
            raise ValueError("+Inf bucket is implicit; pass finite bounds")
        self.buckets = bounds
        self.counts = [0] * len(bounds)
        self.inf_count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.inf_count += 1

    @property
    def count(self) -> int:
        return sum(self.counts) + self.inf_count

    def cumulative(self) -> List[Tuple[str, int]]:
        """``(le, cumulative count)`` rows ending with ``+Inf``."""
        rows: List[Tuple[str, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            rows.append((format_value(bound), running))
        rows.append(("+Inf", running + self.inf_count))
        return rows


def format_value(value: float) -> str:
    """Canonical sample formatting: integers bare, floats via repr."""
    f = float(value)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


class _Family:
    __slots__ = ("name", "kind", "help", "buckets", "series")

    def __init__(self, name, kind, help_text, buckets=None):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.series: Dict[LabelKey, object] = {}

    def _new_series(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets)


class MetricsRegistry:
    """Insertion-ordered metric families; the run's metrics plane."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    # -- creation ----------------------------------------------------------

    def _family(self, name, kind, help_text, buckets=None) -> _Family:
        if not _NAME_RE.match(name or ""):
            raise ValueError(f"bad metric name {name!r}")
        if kind == "counter" and name.endswith("_total"):
            raise ValueError(
                f"counter {name!r} must not end in '_total' — the "
                "OpenMetrics exposition appends the suffix"
            )
        fam = self._families.get(name)
        if fam is None:
            fam = _Family(name, kind, help_text, buckets)
            self._families[name] = fam
            return fam
        if fam.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {fam.kind}, "
                f"not a {kind}"
            )
        if kind == "histogram" and fam.buckets != tuple(
            float(b) for b in buckets
        ):
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{fam.buckets}"
            )
        if help_text and not fam.help:
            fam.help = help_text
        return fam

    def _series(self, name, kind, help_text, labels, buckets=None):
        fam = self._family(name, kind, help_text, buckets)
        key = _label_key(labels)
        series = fam.series.get(key)
        if series is None:
            series = fam._new_series()
            fam.series[key] = series
        return series

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._series(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._series(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        help: str = "",
        **labels,
    ) -> Histogram:
        return self._series(name, "histogram", help, labels, buckets)

    # -- introspection -----------------------------------------------------

    def families(self):
        """``(name, kind, help, buckets, [(labels, series), ...])`` in
        registration order, series in sorted-label order."""
        for fam in self._families.values():
            yield (
                fam.name,
                fam.kind,
                fam.help,
                fam.buckets,
                sorted(fam.series.items()),
            )

    def __len__(self) -> int:
        return sum(len(f.series) for f in self._families.values())

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def value(self, name: str, **labels) -> Optional[float]:
        """The scalar value of one counter/gauge series, or None."""
        fam = self._families.get(name)
        if fam is None:
            return None
        series = fam.series.get(_label_key(labels))
        if series is None or isinstance(series, Histogram):
            return None
        return series.value

    # -- serialization + merge ---------------------------------------------

    def as_dict(self) -> dict:
        """JSON/pickle-safe payload; the merge and persistence format."""
        out = {}
        for fam in self._families.values():
            entry: Dict[str, object] = {"kind": fam.kind, "help": fam.help}
            if fam.kind == "histogram":
                entry["buckets"] = list(fam.buckets)
                entry["series"] = [
                    {
                        "labels": [list(kv) for kv in key],
                        "counts": list(s.counts),
                        "inf_count": s.inf_count,
                        "sum": s.sum,
                    }
                    for key, s in sorted(fam.series.items())
                ]
            else:
                entry["series"] = [
                    {"labels": [list(kv) for kv in key], "value": s.value}
                    for key, s in sorted(fam.series.items())
                ]
            out[fam.name] = entry
        return out

    @classmethod
    def from_dict(cls, payload: Mapping) -> "MetricsRegistry":
        reg = cls()
        reg.merge(payload)
        return reg

    def merge(self, other: "MetricsRegistry | Mapping") -> None:
        """Fold ``other`` in: counters/histograms add, gauges overwrite.

        Deterministic given the merge order — the parallel paths merge
        worker payloads in block submission order, so count-valued
        series match the serial run exactly.
        """
        payload = other.as_dict() if isinstance(other, MetricsRegistry) else other
        for name, entry in payload.items():
            kind = entry["kind"]
            buckets = entry.get("buckets")
            for row in entry["series"]:
                labels = {k: v for k, v in row["labels"]}
                if kind == "histogram":
                    series = self.histogram(
                        name, buckets, entry.get("help", ""), **labels
                    )
                    for i, n in enumerate(row["counts"]):
                        series.counts[i] += int(n)
                    series.inf_count += int(row["inf_count"])
                    series.sum += float(row["sum"])
                elif kind == "counter":
                    self.counter(name, entry.get("help", ""), **labels).inc(
                        float(row["value"])
                    )
                else:
                    self.gauge(name, entry.get("help", ""), **labels).set(
                        float(row["value"])
                    )
