"""Run-wide observability: span traces, metrics, OpenMetrics export.

The eighth subsystem.  Every ``repro.run(spec)`` — campaign, survival
or chaos, any backend, any worker count — can carry a
:class:`RunObserver` that records a hierarchical span trace (dispatch,
network load, per-block sampling/evaluation, adaptive-stopping looks,
artifact-cache hits) and a Prometheus-style metrics registry, without
perturbing a single random draw: numeric results are **bitwise
identical** with observation on or off, and the parallel paths merge
per-worker span buffers in block submission order so serial ==
parallel holds for the trace structure too.

Layers (see DESIGN.md "Observability"):

* :mod:`repro.obs.registry` — zero-dependency counters / gauges /
  fixed-bucket histograms with deterministic merge;
* :mod:`repro.obs.trace` — the span tree with events and worker
  grafting;
* :mod:`repro.obs.recorder` — :class:`RunObserver`, the object the
  instrumentation seams thread, plus run-record persistence;
* :mod:`repro.obs.exporters` — OpenMetrics exposition, JSONL event
  stream, and the ``repro obs`` text renderings.

Quickstart::

    from repro import run
    from repro.obs import RunObserver, render_openmetrics

    obs = RunObserver()
    result = run(spec, obs=obs)
    print(render_openmetrics(obs.metrics))
"""

from .exporters import (
    events_jsonl,
    render_metrics_table,
    render_openmetrics,
    render_span_tree,
)
from .recorder import (
    RECORD_VERSION,
    RunObserver,
    block_span_if,
    fold_worker_payload,
    load_run_record,
    profile_from_metrics,
    save_run_record,
    span_if,
)
from .registry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import RunTrace, Span

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_TIME_BUCKETS",
    "RunTrace",
    "Span",
    "RunObserver",
    "RECORD_VERSION",
    "fold_worker_payload",
    "span_if",
    "block_span_if",
    "profile_from_metrics",
    "save_run_record",
    "load_run_record",
    "render_openmetrics",
    "events_jsonl",
    "render_span_tree",
    "render_metrics_table",
]
