"""The run observer: one object bundling trace + metrics + profile.

:class:`RunObserver` is what the instrumentation seams pass around —
``repro.run(spec, obs=observer)`` threads one instance through
dispatch, the campaign chunk loops, the adaptive stopping layer, the
chaos orchestrator and the artifact store.  It owns:

* a :class:`~repro.obs.trace.RunTrace` (the span plane),
* a :class:`~repro.obs.registry.MetricsRegistry` (the metrics plane),
* an embedded :class:`~repro.profiling.PhaseProfile` — the *same*
  object the engines' existing ``engine.profile`` seam charges, so
  per-phase wall time needs no second instrumentation path.
  :meth:`finalize` publishes it into the registry
  (``repro_phase_seconds{phase=...}``), which makes the classic
  ``--profile`` table a pure **view** over observed data
  (:func:`profile_from_metrics`).

Worker protocol: a parallel worker builds its own observer per block,
evaluates inside a ``block`` span, and ships
:meth:`RunObserver.worker_payload` home; the parent calls
:meth:`absorb` (spans graft, metrics merge) in block submission order
— see :func:`fold_worker_payload`, the single helper every fan-out
call site uses.  The observer draws no randomness anywhere, so run
results are bitwise identical with observation on or off.
"""

from __future__ import annotations

import json
from contextlib import contextmanager, nullcontext
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from ..profiling import PHASES, PhaseProfile
from .registry import MetricsRegistry
from .trace import RunTrace

__all__ = [
    "RunObserver",
    "RECORD_VERSION",
    "fold_worker_payload",
    "span_if",
    "block_span_if",
    "profile_from_metrics",
    "save_run_record",
    "load_run_record",
]

#: Schema version of the persisted run record (``save_run_record``).
RECORD_VERSION = 1


def span_if(obs: "Optional[RunObserver]", name: str, **attrs):
    """``obs.span(...)`` when observing, a no-op context otherwise —
    the null-safe form every instrumentation seam uses."""
    if obs is None:
        return nullcontext()
    return obs.span(name, **attrs)


def block_span_if(obs: "Optional[RunObserver]", index: int, scenarios: int, **attrs):
    """Null-safe :meth:`RunObserver.block_span` for the chunk loops."""
    if obs is None:
        return nullcontext()
    return obs.block_span(index, scenarios, **attrs)


def fold_worker_payload(payload, profile, obs) -> None:
    """Fold one worker block payload into the parent, in call order.

    ``payload`` is what :meth:`RunObserver.worker_payload` returned
    (or None when the pool ran uninstrumented).  The per-block
    :class:`PhaseProfile` seconds fold into ``profile`` and the span/
    metric payloads into ``obs`` — calling this in block submission
    order is what makes serial == parallel for both planes.
    """
    if payload is None:
        return
    if profile is not None:
        profile.add_dict(payload["profile"])
    if obs is not None:
        obs.absorb(payload)


class RunObserver:
    """Run-wide observability: spans, metrics, and the phase profile.

    ``events=False`` drops point events (adaptive looks, cache
    hits/misses) while keeping the span tree and metrics — the
    :class:`~repro.specs.ObsSpec` ``events`` switch.
    """

    def __init__(self, *, events: bool = True):
        self.trace = RunTrace()
        self.metrics = MetricsRegistry()
        self.profile = PhaseProfile()
        self.events = bool(events)

    # -- recording seams ---------------------------------------------------

    def span(self, name: str, **attrs):
        return self.trace.span(name, **attrs)

    def event(self, name: str, **attrs) -> None:
        if self.events:
            self.trace.event(name, **attrs)

    @contextmanager
    def block_span(self, index: int, scenarios: int, **attrs):
        """The per-block unit both the serial loops and the workers
        record — one shape, so the merged tree matches the serial one."""
        self.metrics.counter(
            "repro_blocks", "Evaluated scenario blocks."
        ).inc()
        with self.span("block", index=index, scenarios=scenarios, **attrs):
            yield

    def record_adaptive(self, report) -> None:
        """Publish an :class:`~repro.faults.adaptive.AdaptiveReport`'s
        stop decision (all count/rate valued — deterministic)."""
        g = self.metrics.gauge
        g(
            "repro_adaptive_stop_epoch",
            "Scenarios consumed when the confidence sequence stopped.",
        ).set(report.n_scenarios)
        g(
            "repro_adaptive_violation_rate",
            "Final violation-rate estimate.",
        ).set(report.estimate)
        g("repro_adaptive_ci_low", "Final CI lower bound.").set(report.ci_low)
        g("repro_adaptive_ci_high", "Final CI upper bound.").set(report.ci_high)
        self.metrics.counter(
            "repro_adaptive_looks", "Confidence-sequence looks taken."
        ).inc(report.looks)

    def record_cache(self, experiment_id: str, hit: bool) -> None:
        """One artifact-store lookup: counter + span event."""
        name = (
            "repro_artifact_cache_hits" if hit else "repro_artifact_cache_misses"
        )
        self.metrics.counter(
            name, "Artifact-store cache lookups by outcome."
        ).inc()
        self.event(
            "cache-hit" if hit else "cache-miss", experiment=experiment_id
        )

    # -- worker merge protocol ---------------------------------------------

    def worker_payload(self) -> Dict[str, Any]:
        """The picklable block payload a pool worker ships home."""
        return {
            "spans": [s.to_dict() for s in self.trace.spans],
            "metrics": self.metrics.as_dict(),
            "profile": self.profile.as_dict(),
        }

    def absorb(self, payload: Mapping) -> None:
        """Graft a worker payload's spans under the current span and
        merge its metrics (profile seconds fold separately — see
        :func:`fold_worker_payload`)."""
        self.trace.graft(payload["spans"])
        self.metrics.merge(payload["metrics"])

    # -- finalize + persistence --------------------------------------------

    def finalize(self, profile: Optional[PhaseProfile] = None) -> None:
        """Publish the phase profile into the metrics plane.

        ``profile`` defaults to the embedded one; the dispatcher passes
        the caller's when ``run(spec, profile=..., obs=...)`` supplied
        both, so the table and the metrics describe the same run.
        """
        prof = profile if profile is not None else self.profile
        for phase in PHASES:
            self.metrics.gauge(
                "repro_phase_seconds",
                "Wall seconds per campaign phase.",
                phase=phase,
            ).set(prof.seconds[phase])
        if prof.scenarios:
            self.metrics.counter(
                "repro_scenarios", "Scenarios evaluated by the engines."
            ).inc(prof.scenarios)

    def record(self, spec_payload: Optional[Mapping] = None) -> dict:
        """The persistable run record (spec + spans + metrics)."""
        return {
            "record_version": RECORD_VERSION,
            "spec": dict(spec_payload) if spec_payload is not None else None,
            "trace": self.trace.to_dict(),
            "metrics": self.metrics.as_dict(),
        }


def profile_from_metrics(metrics: "MetricsRegistry | Mapping") -> PhaseProfile:
    """Rebuild the ``--profile`` view from published metrics — the
    PhaseProfile-as-a-view over observed data."""
    if not isinstance(metrics, MetricsRegistry):
        metrics = MetricsRegistry.from_dict(metrics)
    profile = PhaseProfile()
    for phase in PHASES:
        seconds = metrics.value("repro_phase_seconds", phase=phase)
        if seconds:
            profile.add(phase, seconds)
    scenarios = metrics.value("repro_scenarios")
    profile.scenarios = int(scenarios or 0)
    return profile


def save_run_record(record: Mapping, path: "str | Path") -> Path:
    """Write a run record (``RunObserver.record()``) as pretty JSON."""
    path = Path(path)
    if path.suffix != ".json":
        path = path.with_name(path.name + ".json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_run_record(path: "str | Path") -> dict:
    """Read a stored run record; schema-version checked."""
    path = Path(path)
    if not path.exists() and path.suffix != ".json":
        path = path.with_name(path.name + ".json")
    with open(path, "r", encoding="utf-8") as fh:
        record = json.load(fh)
    version = record.get("record_version")
    if version != RECORD_VERSION:
        raise ValueError(
            f"run record version mismatch: stored {version!r}, this build "
            f"reads {RECORD_VERSION}"
        )
    return record
