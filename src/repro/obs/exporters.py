"""Exporters: OpenMetrics exposition, JSONL event stream, text tables.

Three read-only views over one observed run:

* :func:`render_openmetrics` — the Prometheus/OpenMetrics text
  exposition of a :class:`~repro.obs.registry.MetricsRegistry`
  (``# HELP`` / ``# TYPE`` metadata, ``_total``-suffixed counters,
  cumulative ``le`` histogram buckets, terminated by ``# EOF``) —
  what a scrape endpoint or a pushed textfile would serve;
* :func:`events_jsonl` — the flat JSONL event stream of a
  :class:`~repro.obs.trace.RunTrace`: one object per span and per
  event, depth-first in recording order, for log pipelines;
* :func:`render_span_tree` / :func:`render_metrics_table` — the human
  views the ``repro obs`` CLI command prints.

All functions are pure: rendering a registry or trace twice yields
identical bytes.
"""

from __future__ import annotations

import json
from typing import List

from .registry import Histogram, MetricsRegistry, format_value
from .trace import RunTrace

__all__ = [
    "render_openmetrics",
    "events_jsonl",
    "render_span_tree",
    "render_metrics_table",
]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels_text(labels, extra=()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in pairs)
    return "{" + inner + "}"


def render_openmetrics(metrics: MetricsRegistry) -> str:
    """The OpenMetrics text exposition, ``# EOF``-terminated."""
    lines: List[str] = []
    for name, kind, help_text, _buckets, series in metrics.families():
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, s in series:
            if kind == "counter":
                lines.append(
                    f"{name}_total{_labels_text(labels)} "
                    f"{format_value(s.value)}"
                )
            elif kind == "gauge":
                lines.append(
                    f"{name}{_labels_text(labels)} {format_value(s.value)}"
                )
            else:
                assert isinstance(s, Histogram)
                for le, cumulative in s.cumulative():
                    lines.append(
                        f"{name}_bucket"
                        f"{_labels_text(labels, [('le', le)])} {cumulative}"
                    )
                lines.append(
                    f"{name}_count{_labels_text(labels)} {s.count}"
                )
                lines.append(
                    f"{name}_sum{_labels_text(labels)} {format_value(s.sum)}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def events_jsonl(trace: RunTrace) -> str:
    """One JSON object per line: spans (depth-first, recording order)
    interleaved with their events — the log-pipeline export."""
    lines: List[str] = []
    for depth, span in trace.walk():
        lines.append(
            json.dumps(
                {
                    "type": "span",
                    "name": span.name,
                    "depth": depth,
                    "t0": span.t0,
                    "dt": span.dt,
                    "attrs": span.attrs,
                },
                sort_keys=True,
            )
        )
        for name, t, attrs in span.events:
            lines.append(
                json.dumps(
                    {
                        "type": "event",
                        "name": name,
                        "span": span.name,
                        "t": t,
                        "attrs": attrs,
                    },
                    sort_keys=True,
                )
            )
    return "\n".join(lines) + ("\n" if lines else "")


def _attr_text(attrs: dict) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in attrs.items())
    return f"  [{inner}]"


def render_span_tree(trace: RunTrace, *, max_children: int = 32) -> str:
    """The indented span tree with durations — ``repro obs`` output.

    Sibling runs longer than ``max_children`` elide the middle (a
    million-block campaign should not print a million lines).
    """
    lines: List[str] = []

    def visit(span, depth: int):
        lines.append(
            f"{'  ' * depth}{span.name:<{max(1, 24 - 2 * depth)}} "
            f"{span.dt * 1e3:>10.3f} ms{_attr_text(span.attrs)}"
        )
        for name, _t, attrs in span.events:
            lines.append(f"{'  ' * (depth + 1)}* {name}{_attr_text(attrs)}")
        kids = span.children
        if len(kids) > max_children:
            head = kids[: max_children // 2]
            tail = kids[-(max_children // 2) :]
            for child in head:
                visit(child, depth + 1)
            lines.append(
                f"{'  ' * (depth + 1)}... {len(kids) - len(head) - len(tail)} "
                "more spans ..."
            )
            for child in tail:
                visit(child, depth + 1)
        else:
            for child in kids:
                visit(child, depth + 1)

    for root in trace.spans:
        visit(root, 0)
    return "\n".join(lines)


def render_metrics_table(metrics: MetricsRegistry) -> str:
    """``metric  value`` rows in registration order; histograms render
    their count/sum plus per-bucket cumulative counts."""
    rows: List[str] = []
    for name, kind, _help, _buckets, series in metrics.families():
        for labels, s in series:
            label_text = _labels_text(labels)
            if kind == "histogram":
                rows.append(
                    f"{name}{label_text} count={s.count} "
                    f"sum={format_value(s.sum)}"
                )
                for le, cumulative in s.cumulative():
                    rows.append(f"  le={le:<12} {cumulative}")
            else:
                shown = f"{name}_total" if kind == "counter" else name
                rows.append(
                    f"{shown}{label_text} {format_value(s.value)}"
                )
    return "\n".join(rows)
