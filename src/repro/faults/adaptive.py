"""Adaptive sampling for campaign and survival runs.

Two estimators make the Monte-Carlo audits of the paper's claims
affordable at deployment scale (ROADMAP open item: sequential early
stopping + stratified/importance sampling over the tolerated lattice):

* **Anytime-valid confidence sequences** —
  :func:`adaptive_campaign_errors` streams the usual
  :data:`~repro.faults.masks.SAMPLE_BLOCK` scenario blocks and, at
  every block boundary, forms a confidence interval on the violation
  rate ``P[error > threshold]`` that is valid *simultaneously over all
  looks* (union bound: look ``k`` spends ``delta / (k (k+1))`` of the
  error budget, which sums to ``delta``).  The run stops at the first
  boundary where the two-sided width is ``<= target_ci``.  Because
  looks happen only on block boundaries in spawn order, the stop epoch
  is a pure function of the seed: serial and parallel runs stop after
  the *same* block and return bitwise-identical prefixes of the
  fixed-size campaign.

  Two half-widths are offered: ``hoeffding`` (variance-free,
  ``sqrt(log(2/d_k) / 2n)``) and ``empirical_bernstein`` (the
  Audibert–Munos–Szepessvári empirical-Bernstein bound for [0,1]
  variables, ``sqrt(2 V_n log(3/d_k) / n) + 3 log(3/d_k) / n``), which
  adapts to the observed variance ``V_n = p(1-p)`` and stops an order
  of magnitude earlier in the rare-event regime ``p -> 0``.

* **Stratified / importance estimation over fault-count shells** —
  :func:`stratified_violation_estimate` partitions the i.i.d. failure
  law by the *total* fault count: conditioned on ``sum F_j = k`` the
  failed set is a uniform ``k``-subset
  (:class:`~repro.faults.masks.TotalCountShellSampler`), and shell
  ``k`` carries binomial weight ``w_k = C(N,k) p^k (1-p)^(N-k)``.
  Shells whose *every* per-layer count distribution satisfies Theorem
  3 are certified violation-free and contribute exactly zero without a
  single sample; the remaining budget is allocated proportionally
  (exactly unbiased), by Neyman's rule (pilot-estimated ``w_k
  sigma_k``), or uniformly over the uncertified shells — the
  importance-weighted path that concentrates samples on the rare
  heavy-fault shells a plain Monte-Carlo campaign essentially never
  visits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..obs.recorder import block_span_if, fold_worker_payload, span_if
from ..parallel import bounded_map, fork_once_pool
from .injector import FaultInjector
from .masks import (
    SAMPLE_BLOCK,
    MaskCampaignEngine,
    MaskSampler,
    TotalCountShellSampler,
    _build_campaign_state,
    _chunk_sizes,
    _perf_counter,
    _worker_sample_and_evaluate,
    sampled_campaign_errors,
)
from .types import FaultModel

__all__ = [
    "STOPPING_METHODS",
    "confidence_sequence_interval",
    "hoeffding_fixed_n",
    "AdaptiveReport",
    "adaptive_campaign_errors",
    "StratifiedReport",
    "stratified_violation_estimate",
    "certified_zero_shells",
]

#: Confidence-sequence families (mirrors ``repro.specs.STOPPING_METHODS``
#: — the spec layer is pure data and must not be imported from here).
STOPPING_METHODS = ("hoeffding", "empirical_bernstein")


def _look_delta(delta: float, look: int) -> float:
    """Error budget spent at look ``k``: ``delta / (k (k+1))`` sums to
    ``delta`` over ``k = 1, 2, ...`` — an anytime union bound with no
    horizon."""
    return delta / (look * (look + 1.0))


def confidence_sequence_interval(
    method: str,
    n: int,
    violations: int,
    look: int,
    delta: float,
) -> Tuple[float, float]:
    """Two-sided CI on the violation rate, valid at the ``look``-th
    boundary of an anytime confidence sequence.

    ``hoeffding`` spends no variance knowledge; ``empirical_bernstein``
    plugs in the empirical variance ``p(1-p)`` (exact for indicator
    variables), whose half-width scales like ``sqrt(p)`` instead of a
    constant — the rare-event workhorse.  Both hold with probability
    ``>= 1 - delta`` simultaneously over every look.
    """
    if method not in STOPPING_METHODS:
        raise ValueError(
            f"method must be one of {STOPPING_METHODS}, got {method!r}"
        )
    if n < 1 or look < 1:
        return (0.0, 1.0)
    d = _look_delta(delta, look)
    phat = violations / n
    if method == "hoeffding":
        half = math.sqrt(math.log(2.0 / d) / (2.0 * n))
    else:
        var = phat * (1.0 - phat)
        log_term = math.log(3.0 / d)
        half = math.sqrt(2.0 * var * log_term / n) + 3.0 * log_term / n
    return (max(0.0, phat - half), min(1.0, phat + half))


def hoeffding_fixed_n(target_ci: float, delta: float) -> int:
    """The a-priori fixed-``n`` matching a Hoeffding CI of width
    ``target_ci`` at confidence ``1 - delta``: ``n = log(2/delta) /
    (2 (target_ci/2)^2)`` — the sample size a non-adaptive campaign
    must commit to before seeing a single scenario.  The benchmark's
    fixed-``S`` reference."""
    if not 0 < target_ci < 1:
        raise ValueError(f"target_ci must be in (0,1), got {target_ci}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0,1), got {delta}")
    return int(math.ceil(math.log(2.0 / delta) / (2.0 * (target_ci / 2.0) ** 2)))


@dataclass(frozen=True)
class AdaptiveReport:
    """What the confidence-sequence stopper did and what it certifies.

    ``[ci_low, ci_high]`` contains the true violation rate with
    probability ``>= 1 - delta`` (over the scenario sampling), no
    matter when the run stopped.  ``stopped`` is False when the cap
    ``n_cap`` ran out before the CI reached ``target_ci``.
    """

    method: str
    target_ci: float
    delta: float
    threshold: float
    n_scenarios: int
    n_cap: int
    looks: int
    stopped: bool
    violations: int
    estimate: float
    ci_low: float
    ci_high: float

    @property
    def ci_width(self) -> float:
        return self.ci_high - self.ci_low

    @property
    def savings_factor(self) -> float:
        """Scenarios saved against the cap: ``n_cap / n_scenarios``."""
        return self.n_cap / max(1, self.n_scenarios)


def adaptive_campaign_errors(
    injector: FaultInjector,
    x: np.ndarray,
    sampler: MaskSampler,
    n_scenarios: int,
    *,
    threshold: float,
    method: str = "hoeffding",
    target_ci: float = 0.05,
    delta: float = 0.05,
    min_scenarios: int = SAMPLE_BLOCK,
    tol: float = 0.0,
    seed: "int | np.random.SeedSequence | None" = None,
    chunk_size: int = 1024,
    reduction: str = "max",
    dtype: "str | np.dtype" = np.float64,
    n_workers: int = 0,
    engine: "MaskCampaignEngine | None" = None,
    profile=None,
    obs=None,
) -> Tuple[np.ndarray, AdaptiveReport]:
    """Stream scenario blocks until the violation-rate CI is tight.

    The block layout, seeds and evaluation are *exactly* those of
    :func:`~repro.faults.masks.sampled_campaign_errors` with the same
    arguments — block ``c`` always draws from the ``c``-th spawned
    seed child — so the returned errors are a bitwise prefix of the
    fixed-``n_scenarios`` campaign.  The stop decision is taken only
    at block boundaries, in spawn order: with workers, blocks are
    submitted and consumed in spawn order and any block in flight past
    the stop epoch is discarded, so serial == parallel and the result
    is invariant to the worker count.

    ``threshold`` defines a violation as ``error > threshold + tol``
    (``tol=1e-12`` matches the survival path's budget comparison).
    ``min_scenarios`` floors the sample count before the first stop
    decision; ``n_scenarios`` stays the hard cap.

    ``profile`` and ``obs`` mirror :func:`sampled_campaign_errors` —
    worker-safe, folded in block submission order.  The observer
    additionally records one ``adaptive-look`` event per stop decision
    (look number, scenarios seen, violations, CI bounds once past
    ``min_scenarios``) and publishes the final report's stop epoch and
    CI as gauges; every look happens in the *parent* process in both
    paths, so the event stream is identical serial vs parallel.
    """
    if method not in STOPPING_METHODS:
        raise ValueError(
            f"method must be one of {STOPPING_METHODS}, got {method!r}"
        )
    if not 0 < target_ci < 1:
        raise ValueError(f"target_ci must be in (0,1), got {target_ci}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0,1), got {delta}")
    if min_scenarios < 1:
        raise ValueError(f"min_scenarios must be >= 1, got {min_scenarios}")
    if n_scenarios < 1:
        raise ValueError(f"n_scenarios must be >= 1, got {n_scenarios}")
    sampler.check_network(injector.network)
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if obs is not None and profile is None:
        profile = obs.profile
    if engine is not None:
        if engine.network is not injector.network:
            raise ValueError(
                "engine was built for a different network than the injector"
            )
        xb_arg, _ = injector.network._as_batch(x)
        if not np.array_equal(
            np.asarray(xb_arg, dtype=np.float64), engine.xb64
        ):
            raise ValueError(
                "engine was built for a different probe batch than x"
            )
        if n_workers and n_workers > 1:
            raise ValueError(
                "engine reuse is in-process only; drop the engine argument "
                "to fan out over workers"
            )

    ss = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    chunk_size = min(int(chunk_size), SAMPLE_BLOCK, int(n_scenarios))
    sizes = _chunk_sizes(n_scenarios, SAMPLE_BLOCK)
    children = ss.spawn(len(sizes))
    threshold = float(threshold)

    pieces: list = []
    n_done = 0
    violations = 0
    looks = 0
    stopped = False

    def consume(block_errors: np.ndarray) -> bool:
        """Fold one block into the confidence sequence; True = stop.

        Runs in the parent process on both paths, so the look events it
        records (counts and count-derived CI bounds only — no wall
        times) are identical serial vs parallel.
        """
        nonlocal n_done, violations, looks, stopped
        pieces.append(block_errors)
        n_done += block_errors.size
        violations += int(np.sum(block_errors > threshold + tol))
        looks += 1
        done = False
        attrs = {"look": looks, "n": n_done, "violations": violations}
        if n_done >= min_scenarios:
            lo, hi = confidence_sequence_interval(
                method, n_done, violations, looks, delta
            )
            attrs["ci_low"] = lo
            attrs["ci_high"] = hi
            if hi - lo <= target_ci:
                stopped = True
                done = True
        if obs is not None:
            obs.event("adaptive-look", stopped=done, **attrs)
        return done

    if n_workers and n_workers > 1:
        xb, _ = injector.network._as_batch(x)
        with fork_once_pool(
            n_workers,
            _build_campaign_state,
            (
                injector.network,
                injector.capacity,
                xb,
                chunk_size,
                reduction,
                np.dtype(dtype).name,
                sampler,
                profile is not None,
            ),
        ) as pool:
            # bounded_map yields in submission (= spawn) order; breaking
            # out discards the in-flight overshoot (payloads included),
            # so the consumed prefix — hence the stop epoch and the
            # trace — matches the serial path.
            for block_errors, payload in bounded_map(
                pool,
                _worker_sample_and_evaluate,
                (
                    (c, size, child)
                    for c, (size, child) in enumerate(zip(sizes, children))
                ),
            ):
                fold_worker_payload(payload, profile, obs)
                if consume(np.asarray(block_errors)):
                    break
    else:
        if engine is None:
            engine = MaskCampaignEngine(
                injector,
                x,
                chunk_size=chunk_size,
                reduction=reduction,
                dtype=dtype,
            )
        prev_profile = getattr(engine, "profile", None)
        if profile is not None:
            engine.profile = profile
        try:
            for c, (size, child) in enumerate(zip(sizes, children)):
                rng = np.random.default_rng(child)
                with block_span_if(obs, c, size):
                    if profile is not None:
                        t0 = _perf_counter()
                        mask_batch = sampler.sample(size, rng)
                        profile.add("sampling", _perf_counter() - t0)
                    else:
                        mask_batch = sampler.sample(size, rng)
                    block_errors = engine.evaluate(mask_batch, rng=rng)
                if consume(block_errors):
                    break
        finally:
            engine.profile = prev_profile

    errors = np.concatenate(pieces)
    lo, hi = confidence_sequence_interval(
        method, n_done, violations, looks, delta
    )
    report = AdaptiveReport(
        method=method,
        target_ci=float(target_ci),
        delta=float(delta),
        threshold=threshold,
        n_scenarios=n_done,
        n_cap=int(n_scenarios),
        looks=looks,
        stopped=stopped,
        violations=violations,
        estimate=violations / n_done,
        ci_low=lo,
        ci_high=hi,
    )
    if obs is not None:
        obs.record_adaptive(report)
    return errors, report


# ---------------------------------------------------------------------------
# Stratified / importance estimation over total-fault-count shells
# ---------------------------------------------------------------------------

ALLOCATION_KINDS = ("proportional", "neyman", "rare")


def certified_zero_shells(
    network,
    budget: float,
    *,
    capacity: Optional[float] = None,
    mode: str = "crash",
    max_grid: int = 200_000,
) -> np.ndarray:
    """``(N+1,)`` bool: shell ``k`` has *zero* violation probability.

    Shell ``k`` is certified when **every** per-layer count
    distribution ``(f_l)`` with ``sum f_l = k`` satisfies Theorem 3
    (``Fep <= budget``) — then any placement and any mode-consistent
    behaviour keeps the error inside the budget, so the shell's
    violation rate is exactly 0 and the stratified estimator skips it
    without sampling.  Evaluated over the full count grid
    ``prod(N_l + 1)``; networks beyond ``max_grid`` points certify
    nothing (all-False) rather than guess.
    """
    from .reliability import _tolerated_mask

    sizes = network.layer_sizes
    total = int(sum(sizes))
    out = np.zeros(total + 1, dtype=bool)
    grid_size = int(np.prod([n + 1 for n in sizes]))
    if grid_size > max_grid:
        return out
    (ok,) = _tolerated_mask(network, budget, capacity=capacity, mode=mode)
    grids = np.meshgrid(*[np.arange(n + 1) for n in sizes], indexing="ij")
    totals = np.add.reduce([g.ravel() for g in grids])
    bad_per_shell = np.bincount(
        totals, weights=~ok.ravel(), minlength=total + 1
    )
    out[:] = bad_per_shell == 0
    return out


def _largest_remainder(
    targets: np.ndarray, budget: int, floor: int
) -> np.ndarray:
    """Integer allocation of ``budget`` proportional to ``targets``
    with a per-stratum ``floor`` — deterministic (largest remainder,
    ties to the lower index)."""
    m = targets.size
    floor_total = floor * m
    if budget < floor_total:
        raise ValueError(
            f"budget {budget} cannot give {m} strata {floor} scenarios each"
        )
    spread = budget - floor_total
    weights = targets / targets.sum() if targets.sum() > 0 else np.full(m, 1 / m)
    raw = weights * spread
    alloc = np.floor(raw).astype(int)
    remainder = spread - int(alloc.sum())
    if remainder > 0:
        order = np.argsort(-(raw - alloc), kind="stable")
        alloc[order[:remainder]] += 1
    return alloc + floor


@dataclass(frozen=True)
class StratifiedReport:
    """The stratified/importance estimate and its audit trail.

    ``estimate = sum_k w_k p_k`` over the sampled shells (certified
    shells contribute 0 exactly); ``variance`` is the stratified
    variance ``sum w_k^2 p_k (1 - p_k) / n_k``; ``[ci_low, ci_high]``
    is a rigorous fixed-``n`` bound: per-shell Hoeffding at
    ``delta / m`` recombined through the weights, plus nothing for the
    certified mass (its rate is exactly 0, not estimated).
    """

    estimate: float
    variance: float
    ci_low: float
    ci_high: float
    n_scenarios: int
    threshold: float
    delta: float
    allocation: str
    p_fail: float
    shells: Tuple[int, ...]
    weights: Tuple[float, ...]
    allocations: Tuple[int, ...]
    shell_rates: Tuple[float, ...]
    certified_shells: Tuple[int, ...]
    certified_mass: float
    skipped_mass: float = 0.0

    @property
    def std_error(self) -> float:
        return math.sqrt(self.variance)


def stratified_violation_estimate(
    injector: FaultInjector,
    x: np.ndarray,
    p_fail: float,
    n_scenarios: int,
    *,
    threshold: float,
    fault: Optional[FaultModel] = None,
    tol: float = 0.0,
    allocation: str = "proportional",
    pilot: int = 256,
    delta: float = 0.05,
    prune_mode: Optional[str] = None,
    seed: "int | np.random.SeedSequence | None" = None,
    chunk_size: int = 1024,
    reduction: str = "max",
    dtype: "str | np.dtype" = np.float64,
    engine: "MaskCampaignEngine | None" = None,
    max_grid: int = 200_000,
    profile=None,
    obs=None,
) -> StratifiedReport:
    """Estimate ``P[error > threshold]`` under i.i.d. ``p_fail`` failures
    by stratifying on the total fault count.

    The i.i.d. law factors exactly: ``P[violation] = sum_k w_k *
    P[violation | k faults]`` with ``w_k = Binomial(N, p_fail).pmf(k)``
    and the conditional law a uniform ``k``-subset
    (:class:`~repro.faults.masks.TotalCountShellSampler`).  The
    estimator samples each uncertified shell with its own spawned seed
    child (shell order is fixed, so results are deterministic and
    engine/backend agnostic) and recombines unbiasedly.

    ``prune_mode`` (``"crash"`` / ``"byzantine"``) switches on the
    Theorem-3 certificate of :func:`certified_zero_shells`: pass it
    only when ``threshold`` is the epsilon budget the certificate
    speaks about and the fault's emissions respect the capacity (the
    crash/Byzantine regimes of the paper).  ``allocation`` picks
    proportional (exactly unbiased — the test-oracle mode), Neyman
    (a ``pilot`` phase per shell estimates ``sigma_k``, the remaining
    budget goes ``∝ w_k sigma_k``; pilot and main draws are pooled), or
    ``rare`` (uniform over uncertified shells — the importance-weighted
    rare-event path).  Shells whose binomial weight underflows to zero
    are dropped with their (zero) mass recorded in ``skipped_mass``.

    ``profile`` / ``obs`` thread through the per-shell campaigns; the
    observer wraps each sampled shell in a ``shell`` span (attrs: the
    fault count ``k`` and draw count) around its block spans.
    """
    from scipy import stats as sps

    if not 0 <= p_fail <= 1:
        raise ValueError(f"p_fail must be in [0,1], got {p_fail}")
    if allocation not in ALLOCATION_KINDS:
        raise ValueError(
            f"allocation must be one of {ALLOCATION_KINDS}, got {allocation!r}"
        )
    if n_scenarios < 1:
        raise ValueError(f"n_scenarios must be >= 1, got {n_scenarios}")
    if pilot < 2:
        raise ValueError(f"pilot must be >= 2, got {pilot}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0,1), got {delta}")
    network = injector.network
    sizes = network.layer_sizes
    total = int(sum(sizes))
    threshold = float(threshold)
    if obs is not None and profile is None:
        profile = obs.profile

    weights = sps.binom.pmf(np.arange(total + 1), total, p_fail)
    certified = np.zeros(total + 1, dtype=bool)
    if prune_mode is not None:
        certified = certified_zero_shells(
            network,
            threshold,
            capacity=injector.capacity if prune_mode == "byzantine" else None,
            mode=prune_mode,
            max_grid=max_grid,
        )
    active = np.nonzero((weights > 0.0) & ~certified)[0]
    certified_idx = np.nonzero((weights > 0.0) & certified)[0]
    certified_mass = float(weights[certified_idx].sum())
    skipped_mass = float(
        1.0 - weights[weights > 0.0].sum()
    )  # pmf underflow only
    if active.size == 0:
        # Everything certified: the estimate is exactly zero.
        return StratifiedReport(
            estimate=0.0,
            variance=0.0,
            ci_low=0.0,
            ci_high=0.0,
            n_scenarios=0,
            threshold=threshold,
            delta=float(delta),
            allocation=allocation,
            p_fail=float(p_fail),
            shells=(),
            weights=(),
            allocations=(),
            shell_rates=(),
            certified_shells=tuple(int(k) for k in certified_idx),
            certified_mass=certified_mass,
            skipped_mass=skipped_mass,
        )

    ss = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    # Two children per shell, spawned up front in shell order: one for
    # the pilot/main draw, one for the Neyman top-up phase — the seed
    # layout never depends on the pilot's outcome.
    children = ss.spawn(2 * active.size)

    if engine is None:
        engine = MaskCampaignEngine(
            injector,
            x,
            chunk_size=min(int(chunk_size), SAMPLE_BLOCK),
            reduction=reduction,
            dtype=dtype,
        )

    w_active = weights[active]
    m = active.size
    floor = 2
    if allocation == "proportional":
        alloc = _largest_remainder(w_active, n_scenarios, floor)
        extra = np.zeros(m, dtype=int)
    elif allocation == "rare":
        alloc = _largest_remainder(np.full(m, 1.0), n_scenarios, floor)
        extra = np.zeros(m, dtype=int)
    else:  # neyman
        pilot_n = min(int(pilot), max(floor, n_scenarios // (2 * m)))
        pilot_n = max(floor, pilot_n)
        if pilot_n * m > n_scenarios:
            raise ValueError(
                f"budget {n_scenarios} cannot pilot {m} shells with "
                f"{pilot_n} scenarios each"
            )
        alloc = np.full(m, pilot_n, dtype=int)
        extra = None  # decided after the pilot

    def shell_errors(i: int, n: int, child) -> np.ndarray:
        shell_sampler = TotalCountShellSampler(
            sizes, int(active[i]), fault=fault
        )
        with span_if(obs, "shell", k=int(active[i]), n=int(n)):
            return sampled_campaign_errors(
                injector,
                x,
                shell_sampler,
                n,
                seed=child,
                chunk_size=engine.chunk_size,
                reduction=reduction,
                dtype=dtype,
                engine=engine,
                profile=profile,
                obs=obs,
            )

    per_shell = [shell_errors(i, int(alloc[i]), children[2 * i]) for i in range(m)]

    if allocation == "neyman":
        viols = np.array(
            [int(np.sum(e > threshold + tol)) for e in per_shell], dtype=float
        )
        ns = alloc.astype(float)
        # Laplace-smoothed sigma keeps zero-violation pilot shells
        # sampleable (sigma exactly 0 would starve them forever).
        p_smooth = (viols + 1.0) / (ns + 2.0)
        sigma = np.sqrt(p_smooth * (1.0 - p_smooth))
        remaining = n_scenarios - int(alloc.sum())
        extra = (
            _largest_remainder(w_active * sigma, remaining, 0)
            if remaining > 0
            else np.zeros(m, dtype=int)
        )
        for i in range(m):
            if extra[i] > 0:
                per_shell[i] = np.concatenate(
                    [per_shell[i], shell_errors(i, int(extra[i]), children[2 * i + 1])]
                )

    n_k = np.array([e.size for e in per_shell], dtype=int)
    viol_k = np.array(
        [int(np.sum(e > threshold + tol)) for e in per_shell], dtype=int
    )
    rates = viol_k / n_k
    estimate = float(np.dot(w_active, rates))
    variance = float(np.sum(w_active**2 * rates * (1.0 - rates) / n_k))
    # Rigorous recombined CI: per-shell fixed-n Hoeffding at delta/m.
    half_k = np.sqrt(np.log(2.0 * m / delta) / (2.0 * n_k))
    half = float(np.dot(w_active, half_k))
    return StratifiedReport(
        estimate=estimate,
        variance=variance,
        ci_low=max(0.0, estimate - half),
        ci_high=min(1.0, estimate + half),
        n_scenarios=int(n_k.sum()),
        threshold=threshold,
        delta=float(delta),
        allocation=allocation,
        p_fail=float(p_fail),
        shells=tuple(int(k) for k in active),
        weights=tuple(float(w) for w in w_active),
        allocations=tuple(int(n) for n in n_k),
        shell_rates=tuple(float(r) for r in rates),
        certified_shells=tuple(int(k) for k in certified_idx),
        certified_mass=certified_mass,
        skipped_mass=skipped_mass,
    )
