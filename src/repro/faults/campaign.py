"""Fault-injection campaigns: Monte-Carlo and exhaustive sweeps.

A campaign evaluates the empirical output error of a network over many
failure scenarios — the "costly experiment ... facing a discouraging
combinatorial explosion" that the paper's analytic bounds replace.  We
make the experiment affordable enough to *validate* the bounds.  Two
engines back the same API (see DESIGN.md):

* the **mask-native engine** (:mod:`repro.faults.masks`) — scenarios
  are sampled, compiled and evaluated as array-level mask channels end
  to end.  The *entire* fault taxonomy routes here: static and
  stochastic neuron faults, synapse faults, and mixed populations;
* the **object path** — expressive :class:`FailureScenario` objects
  are lowered per chunk by ``compile_batch`` onto the same engine; the
  per-scenario scalar injector survives only as the fallback for
  custom fault models outside the taxonomy.

Either way chunking bounds peak memory (``chunk x batch x width``
floats) and chunks can fan out over a fork-once process pool: the
network ships to each worker exactly once (pool initializer), jobs
carry only chunk payloads, and stochastic faults draw per-chunk RNG
streams spawned from the campaign seed.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..deprecation import warn_spec_deprecation
from ..network.model import FeedForwardNetwork
from ..parallel import bounded_map, fork_once_pool, worker_state
from .injector import FaultInjector
from .masks import (
    FixedDistributionSampler,
    FixedSynapseDistributionSampler,
    MaskCampaignEngine,
    MaskSampler,
    exhaustive_crash_errors,
    sampled_campaign_errors,
)
from .scenarios import FailureScenario
from .types import CrashFault, FaultModel, SynapseFault

__all__ = [
    "CampaignResult",
    "run_campaign",
    "monte_carlo_campaign",
    "exhaustive_crash_campaign",
    "count_crash_configurations",
]


@dataclass
class CampaignResult:
    """Aggregated outcome of a fault-injection campaign.

    ``errors[s]`` is the output error (max over the input batch, max
    over outputs) of scenario ``s``.
    """

    errors: np.ndarray
    scenario_names: List[str] = field(default_factory=list)
    reduction: str = "max"
    #: Filled when the run used confidence-sequence early stopping or
    #: the stratified estimator (an ``AdaptiveReport`` /
    #: ``StratifiedReport`` from :mod:`repro.faults.adaptive`); None
    #: for plain fixed-size campaigns.
    adaptive: Optional[object] = None

    @property
    def num_scenarios(self) -> int:
        return int(self.errors.size)

    @property
    def max_error(self) -> float:
        return float(self.errors.max()) if self.errors.size else 0.0

    @property
    def mean_error(self) -> float:
        return float(self.errors.mean()) if self.errors.size else 0.0

    @property
    def worst_scenario(self) -> Optional[str]:
        if not self.errors.size:
            return None
        idx = int(np.argmax(self.errors))
        return self.scenario_names[idx] if self.scenario_names else str(idx)

    def quantile(self, q: float) -> float:
        return float(np.quantile(self.errors, q)) if self.errors.size else 0.0

    def fraction_exceeding(self, threshold: float) -> float:
        """Fraction of scenarios whose error exceeds ``threshold`` —
        the empirical probability of breaking the epsilon guarantee."""
        if not self.errors.size:
            return 0.0
        return float(np.mean(self.errors > threshold))

    def merged_with(self, other: "CampaignResult") -> "CampaignResult":
        return CampaignResult(
            np.concatenate([self.errors, other.errors]),
            self.scenario_names + other.scenario_names,
            self.reduction,
        )

    def summary(self) -> str:
        return (
            f"CampaignResult(n={self.num_scenarios}, max={self.max_error:.6g}, "
            f"mean={self.mean_error:.6g}, p95={self.quantile(0.95):.6g})"
        )


def _chunks(iterable: Iterable, size: int) -> Iterator[list]:
    it = iter(iterable)
    while True:
        block = list(itertools.islice(it, size))
        if not block:
            return
        yield block


def _evaluate_chunk(
    injector: FaultInjector,
    x: np.ndarray,
    chunk: Sequence[FailureScenario],
    reduction: str,
    seed: "np.random.SeedSequence | None" = None,
    engine: "MaskCampaignEngine | None" = None,
) -> np.ndarray:
    """Errors for one chunk of object scenarios.

    Scenarios lower through ``compile_batch`` (the whole fault
    taxonomy compiles to mask channels) and stream through the
    campaign engine when one is supplied; the per-scenario scalar path
    survives only as the fallback for fault models outside the
    taxonomy.  ``seed`` drives the stochastic draws: each chunk
    evaluates with a stream spawned off the campaign seed, so no two
    chunks replay the same noise.
    """
    rng = np.random.default_rng(seed)
    try:
        batch = injector.compile_batch(chunk)
    except ValueError:
        # Fault models with no mask-channel lowering (custom
        # subclasses): scalar path per scenario.
        return np.array(
            [injector.output_error(x, sc, rng=rng, reduction=reduction) for sc in chunk]
        )
    if engine is not None:
        return engine.evaluate(batch, rng=rng)
    return injector.output_errors_many(x, batch, reduction=reduction, rng=rng)


def _build_object_state(network, capacity, x, reduction, chunk_size):  # pragma: no cover
    """fork_once_pool builder: network, probe batch and engine ship once."""
    injector = FaultInjector(network, capacity=capacity)
    return {
        "injector": injector,
        "x": x,
        "reduction": reduction,
        "engine": MaskCampaignEngine(
            injector, x, chunk_size=chunk_size, reduction=reduction
        ),
    }


def _worker_evaluate(job):  # pragma: no cover - subprocess body
    """Job payload: ``(chunk of scenarios, per-chunk SeedSequence)``."""
    chunk, seed = job
    state = worker_state()
    return _evaluate_chunk(
        state["injector"], state["x"], chunk, state["reduction"], seed,
        state["engine"],
    )


def run_campaign(
    injector: FaultInjector,
    x: np.ndarray,
    scenarios: Iterable[FailureScenario],
    *,
    chunk_size: int = 256,
    reduction: str = "max",
    n_workers: int = 0,
    keep_names: bool = True,
    seed: Optional[int] = 0,
) -> CampaignResult:
    """Evaluate every scenario's output error over the input batch.

    This is the object-scenario entry point — it accepts any
    :class:`FailureScenario`, including synapse and stochastic faults.
    Static neuron-fault campaigns generated programmatically should
    prefer :func:`monte_carlo_campaign` / :func:`exhaustive_crash_campaign`,
    which route to the mask-native engine.

    Parameters
    ----------
    chunk_size:
        Scenarios per vectorised sweep; bounds peak memory at roughly
        ``chunk_size * len(x) * max_width`` float64s per layer.
    n_workers:
        ``0`` (default) runs in-process; ``> 1`` fans chunks out over a
        fork-once process pool (the network and inputs ship once at
        worker start; jobs are submitted lazily, so the scenario stream
        is never materialised beyond the in-flight window).
    seed:
        Campaign seed for the *stochastic-fault* fallback path: each
        chunk evaluates with an RNG spawned from this seed, so noise is
        independent across chunks yet reproducible (default 0 keeps
        repeated calls deterministic; pass ``None`` for fresh entropy).
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    xb, _ = injector.network._as_batch(x)
    all_errors: List[np.ndarray] = []
    names: List[str] = []
    seed_root = np.random.SeedSequence(seed)

    def jobs() -> Iterator[tuple]:
        for chunk in _chunks(scenarios, chunk_size):
            if keep_names:
                names.extend(sc.name for sc in chunk)
            yield chunk, seed_root.spawn(1)[0]

    if n_workers and n_workers > 1:
        with fork_once_pool(
            n_workers,
            _build_object_state,
            (injector.network, injector.capacity, xb, reduction, chunk_size),
        ) as pool:
            for errs in bounded_map(pool, _worker_evaluate, jobs()):
                all_errors.append(np.asarray(errs))
    else:
        # One engine for the whole campaign: weight casts, nominal pass
        # and chunk buffers are paid once, every chunk streams through.
        engine = MaskCampaignEngine(
            injector, xb, chunk_size=chunk_size, reduction=reduction
        )
        for chunk, chunk_seed in jobs():
            all_errors.append(
                _evaluate_chunk(
                    injector, xb, chunk, reduction, chunk_seed, engine
                )
            )

    errors = (
        np.concatenate(all_errors) if all_errors else np.empty(0, dtype=np.float64)
    )
    return CampaignResult(errors, names if keep_names else [], reduction)


def monte_carlo_campaign(
    injector: FaultInjector,
    x: np.ndarray,
    distribution: Sequence[int],
    *,
    n_scenarios: int = 1000,
    fault: Optional[FaultModel] = None,
    sampler: Optional[MaskSampler] = None,
    seed: Optional[int] = None,
    chunk_size: int = 256,
    reduction: str = "max",
    n_workers: int = 0,
    dtype: "str | np.dtype" = np.float64,
) -> CampaignResult:
    """Deprecated direct-kwargs shim over :func:`_monte_carlo_campaign`.

    Build a :class:`repro.CampaignSpec` and pass it to ``repro.run()``
    instead — the spec form is serializable, content-hashable, and
    replayable.  This shim warns once per process and forwards
    unchanged.
    """
    warn_spec_deprecation("monte_carlo_campaign", "repro.CampaignSpec")
    return _monte_carlo_campaign(
        injector,
        x,
        distribution,
        n_scenarios=n_scenarios,
        fault=fault,
        sampler=sampler,
        seed=seed,
        chunk_size=chunk_size,
        reduction=reduction,
        n_workers=n_workers,
        dtype=dtype,
    )


def _monte_carlo_campaign(
    injector: FaultInjector,
    x: np.ndarray,
    distribution: Sequence[int],
    *,
    n_scenarios: int = 1000,
    fault: Optional[FaultModel] = None,
    sampler: Optional[MaskSampler] = None,
    seed: Optional[int] = None,
    chunk_size: int = 256,
    reduction: str = "max",
    n_workers: int = 0,
    dtype: "str | np.dtype" = np.float64,
) -> CampaignResult:
    """Random scenarios with a fixed per-layer distribution ``(f_l)``.

    This is the Figure-3 workload: hold the failure distribution fixed,
    sample which components fail, measure the output error.  The whole
    fault taxonomy runs end-to-end on the mask-native engine: neuron
    faults (crash / Byzantine / stuck-at / offset / sign-flip / noise /
    intermittent) sample per-layer mask channels, synapse faults
    (``distribution`` then has length ``L + 1``, the per-*stage* counts
    of Theorem 4) sample sparse weight-level channels.  Masks are drawn
    with vectorised RNG, evaluated in streamed chunks, and optionally
    fanned out over a fork-once worker pool that receives only chunk
    sizes and spawned seeds; stochastic faults realise their noise from
    the same per-block streams, so serial == parallel.

    ``sampler`` overrides the default samplers entirely (e.g. a
    :class:`~repro.faults.masks.MixedFaultSampler` drawing
    heterogeneous fault populations); ``distribution`` and ``fault``
    are then ignored.

    ``dtype=float32`` selects the fast evaluation path; the default
    float64 matches the scalar injector to float associativity.
    """
    if sampler is None:
        fault = fault if fault is not None else CrashFault()
        if isinstance(fault, SynapseFault):
            sampler = FixedSynapseDistributionSampler(
                injector.network, distribution, fault=fault
            )
        else:
            sampler = FixedDistributionSampler(
                injector.network, distribution, fault=fault
            )
    errors = sampled_campaign_errors(
        injector,
        x,
        sampler,
        n_scenarios,
        seed=seed,
        chunk_size=chunk_size,
        reduction=reduction,
        dtype=dtype,
        n_workers=n_workers,
    )
    return CampaignResult(errors, [], reduction)


def count_crash_configurations(network: FeedForwardNetwork, n_fail: int) -> int:
    """``C(num_neurons, n_fail)`` — the size of the exhaustive experiment.

    Quantifies the paper's "combinatorial explosion" argument; the
    exhaustive campaign refuses to run when this is too large.
    """
    return math.comb(network.num_neurons, n_fail)


def exhaustive_crash_campaign(
    injector: FaultInjector,
    x: np.ndarray,
    n_fail: int,
    *,
    chunk_size: int = 512,
    max_configurations: int = 2_000_000,
    reduction: str = "max",
    n_workers: int = 0,
    dtype: "str | np.dtype" = np.float64,
    engine=None,
    profile=None,
    obs=None,
) -> CampaignResult:
    """Every configuration of exactly ``n_fail`` crashed neurons.

    Raises when the configuration count exceeds ``max_configurations``
    (by default 2e6) — the practical face of the paper's combinatorial
    explosion observation.  Within budget, the sweep is compiled to
    combination index arrays in bulk (no per-configuration Python
    objects) and streamed through the mask engine.

    ``engine`` reuses a prebuilt evaluation engine (any backend built
    for this injector and probe batch, in-process only); ``profile``
    accumulates per-phase wall time and ``obs`` records block spans —
    both worker-safe, forwarded to
    :func:`~repro.faults.masks.exhaustive_crash_errors`.
    """
    total = count_crash_configurations(injector.network, n_fail)
    if total > max_configurations:
        raise ValueError(
            f"exhaustive campaign would evaluate {total} configurations "
            f"(> {max_configurations}); use monte_carlo_campaign or raise "
            "max_configurations"
        )
    errors = exhaustive_crash_errors(
        injector,
        x,
        n_fail,
        chunk_size=chunk_size,
        reduction=reduction,
        dtype=dtype,
        n_workers=n_workers,
        max_configurations=max_configurations,
        engine=engine,
        profile=profile,
        obs=obs,
    )
    return CampaignResult(errors, [], reduction)
