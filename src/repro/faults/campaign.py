"""Fault-injection campaigns: Monte-Carlo and exhaustive sweeps.

A campaign evaluates the empirical output error of a network over many
failure scenarios — the "costly experiment ... facing a discouraging
combinatorial explosion" that the paper's analytic bounds replace.  We
make the experiment affordable enough to *validate* the bounds:

* scenarios are compiled to masks and evaluated S-at-a-time on the
  vectorised injector path (one GEMM per layer for a whole chunk);
* chunking bounds peak memory (``chunk x batch x width`` floats);
* chunks can optionally fan out over processes for large campaigns
  (the work is embarrassingly parallel).
"""

from __future__ import annotations

import itertools
import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..network.model import FeedForwardNetwork
from .injector import FaultInjector
from .scenarios import (
    FailureScenario,
    crash_scenario,
    random_failure_scenario,
)
from .types import FaultModel

__all__ = [
    "CampaignResult",
    "run_campaign",
    "monte_carlo_campaign",
    "exhaustive_crash_campaign",
    "count_crash_configurations",
]


@dataclass
class CampaignResult:
    """Aggregated outcome of a fault-injection campaign.

    ``errors[s]`` is the output error (max over the input batch, max
    over outputs) of scenario ``s``.
    """

    errors: np.ndarray
    scenario_names: List[str] = field(default_factory=list)
    reduction: str = "max"

    @property
    def num_scenarios(self) -> int:
        return int(self.errors.size)

    @property
    def max_error(self) -> float:
        return float(self.errors.max()) if self.errors.size else 0.0

    @property
    def mean_error(self) -> float:
        return float(self.errors.mean()) if self.errors.size else 0.0

    @property
    def worst_scenario(self) -> Optional[str]:
        if not self.errors.size:
            return None
        idx = int(np.argmax(self.errors))
        return self.scenario_names[idx] if self.scenario_names else str(idx)

    def quantile(self, q: float) -> float:
        return float(np.quantile(self.errors, q)) if self.errors.size else 0.0

    def fraction_exceeding(self, threshold: float) -> float:
        """Fraction of scenarios whose error exceeds ``threshold`` —
        the empirical probability of breaking the epsilon guarantee."""
        if not self.errors.size:
            return 0.0
        return float(np.mean(self.errors > threshold))

    def merged_with(self, other: "CampaignResult") -> "CampaignResult":
        return CampaignResult(
            np.concatenate([self.errors, other.errors]),
            self.scenario_names + other.scenario_names,
            self.reduction,
        )

    def summary(self) -> str:
        return (
            f"CampaignResult(n={self.num_scenarios}, max={self.max_error:.6g}, "
            f"mean={self.mean_error:.6g}, p95={self.quantile(0.95):.6g})"
        )


def _chunks(iterable: Iterable, size: int) -> Iterator[list]:
    it = iter(iterable)
    while True:
        block = list(itertools.islice(it, size))
        if not block:
            return
        yield block


def _evaluate_chunk(
    injector: FaultInjector,
    x: np.ndarray,
    chunk: Sequence[FailureScenario],
    reduction: str,
) -> np.ndarray:
    """Errors for one chunk, preferring the vectorised path."""
    try:
        batch = injector.compile_batch(chunk)
    except ValueError:
        # Non-static faults or synapse faults: scalar path per scenario.
        rng = np.random.default_rng(0)
        return np.array(
            [injector.output_error(x, sc, rng=rng, reduction=reduction) for sc in chunk]
        )
    return injector.output_errors_many(x, batch, reduction=reduction)


def _worker_evaluate(args) -> np.ndarray:  # pragma: no cover - subprocess body
    network, capacity, x, chunk, reduction = args
    injector = FaultInjector(network, capacity=capacity)
    return _evaluate_chunk(injector, x, chunk, reduction)


def run_campaign(
    injector: FaultInjector,
    x: np.ndarray,
    scenarios: Iterable[FailureScenario],
    *,
    chunk_size: int = 256,
    reduction: str = "max",
    n_workers: int = 0,
    keep_names: bool = True,
) -> CampaignResult:
    """Evaluate every scenario's output error over the input batch.

    Parameters
    ----------
    chunk_size:
        Scenarios per vectorised sweep; bounds peak memory at roughly
        ``chunk_size * len(x) * max_width`` float64s per layer.
    n_workers:
        ``0`` (default) runs in-process; ``> 1`` fans chunks out over a
        process pool (the network and inputs are pickled once per
        chunk — worth it only for expensive campaigns).
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    xb, _ = injector.network._as_batch(x)
    all_errors: List[np.ndarray] = []
    names: List[str] = []

    if n_workers and n_workers > 1:
        jobs = []
        chunks = list(_chunks(scenarios, chunk_size))
        for chunk in chunks:
            if keep_names:
                names.extend(sc.name for sc in chunk)
            jobs.append((injector.network, injector.capacity, xb, chunk, reduction))
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            for errs in pool.map(_worker_evaluate, jobs):
                all_errors.append(np.asarray(errs))
    else:
        for chunk in _chunks(scenarios, chunk_size):
            if keep_names:
                names.extend(sc.name for sc in chunk)
            all_errors.append(_evaluate_chunk(injector, xb, chunk, reduction))

    errors = (
        np.concatenate(all_errors) if all_errors else np.empty(0, dtype=np.float64)
    )
    return CampaignResult(errors, names if keep_names else [], reduction)


def monte_carlo_campaign(
    injector: FaultInjector,
    x: np.ndarray,
    distribution: Sequence[int],
    *,
    n_scenarios: int = 1000,
    fault: Optional[FaultModel] = None,
    seed: Optional[int] = None,
    chunk_size: int = 256,
    reduction: str = "max",
    n_workers: int = 0,
) -> CampaignResult:
    """Random scenarios with a fixed per-layer distribution ``(f_l)``.

    This is the Figure-3 workload: hold the failure distribution fixed,
    sample which neurons fail, measure the output error.
    """
    rng = np.random.default_rng(seed)
    scenarios = (
        random_failure_scenario(
            injector.network, distribution, fault=fault, rng=rng, name=f"mc{i}"
        )
        for i in range(n_scenarios)
    )
    return run_campaign(
        injector,
        x,
        scenarios,
        chunk_size=chunk_size,
        reduction=reduction,
        n_workers=n_workers,
    )


def count_crash_configurations(network: FeedForwardNetwork, n_fail: int) -> int:
    """``C(num_neurons, n_fail)`` — the size of the exhaustive experiment.

    Quantifies the paper's "combinatorial explosion" argument; the
    exhaustive campaign refuses to run when this is too large.
    """
    return math.comb(network.num_neurons, n_fail)


def exhaustive_crash_campaign(
    injector: FaultInjector,
    x: np.ndarray,
    n_fail: int,
    *,
    chunk_size: int = 512,
    max_configurations: int = 2_000_000,
    reduction: str = "max",
    n_workers: int = 0,
) -> CampaignResult:
    """Every configuration of exactly ``n_fail`` crashed neurons.

    Raises when the configuration count exceeds ``max_configurations``
    (by default 2e6) — the practical face of the paper's combinatorial
    explosion observation.
    """
    total = count_crash_configurations(injector.network, n_fail)
    if total > max_configurations:
        raise ValueError(
            f"exhaustive campaign would evaluate {total} configurations "
            f"(> {max_configurations}); use monte_carlo_campaign or raise "
            "max_configurations"
        )
    addresses = list(injector.network.iter_addresses())
    scenarios = (
        crash_scenario(combo, name="")
        for combo in itertools.combinations(addresses, n_fail)
    )
    return run_campaign(
        injector,
        x,
        scenarios,
        chunk_size=chunk_size,
        reduction=reduction,
        n_workers=n_workers,
        keep_names=False,
    )
