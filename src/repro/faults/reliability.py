"""Probabilistic reliability analysis on top of the worst-case bounds.

The paper's theorems are adversarial: *any* placement of ``(f_l)``
failures is absorbed.  A deployment engineer usually asks the dual
question: *if every neuron fails independently with probability ``p``
(per mission), what is the probability the epsilon-guarantee
survives?*  Because Theorem 3's condition depends only on the per-layer
*counts* — not on which neurons fail — the survival event contains the
event ``{(F_1..F_L) is a tolerated distribution}`` where ``F_l ~
Binomial(N_l, p)`` independently.  This module computes that lower
bound exactly (dynamic programming over the per-layer count
distributions), plus Monte-Carlo estimates of the *actual* survival
probability (which can only be higher: untolerated counts may still
land on harmless neurons), and mission-time curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import stats as sps

from ..core.fep import fep_many
from ..network.model import FeedForwardNetwork
from .injector import FaultInjector
from .masks import (
    BernoulliSampler,
    MaskCampaignEngine,
    SynapseBernoulliSampler,
    empty_mask_batch,
    sampled_campaign_errors,
)
from .scenarios import FailureScenario
from .types import CrashFault, FaultModel, IntermittentFault, SynapseFault

__all__ = [
    "certified_survival_probability",
    "ReliabilityEstimate",
    "monte_carlo_survival",
    "mission_survival_curve",
    "mean_failures_to_violation",
]


def _tolerated_mask(
    network: FeedForwardNetwork,
    budget: float,
    *,
    capacity: Optional[float],
    mode: str,
) -> list[np.ndarray]:
    """Tolerance mask over the joint count grid.

    The Theorem-3 condition couples the layers (the ``(N_l - f_l)``
    products), so no per-layer marginal exists; the mask has shape
    ``(N_1+1, ..., N_L+1)``.
    """
    from ..core.fep import _network_capacity

    c = _network_capacity(network, capacity, mode)
    sizes = network.layer_sizes
    grids = np.meshgrid(*[np.arange(n + 1) for n in sizes], indexing="ij")
    counts = np.stack([g.ravel() for g in grids], axis=1).astype(np.float64)
    # f_l = N_l is never tolerated (Theorem 3 needs f_l < N_l); clamp for
    # the Fep evaluation and mark those rows invalid.
    valid = np.all(counts < np.asarray(sizes)[None, :], axis=1)
    clamped = np.minimum(counts, np.asarray(sizes, dtype=np.float64) - 1)
    feps = fep_many(
        clamped, sizes, network.weight_maxes(), network.lipschitz_constant, c
    )
    ok = valid & (feps <= budget + 1e-12)
    return [ok.reshape([n + 1 for n in sizes])]


def certified_survival_probability(
    network: FeedForwardNetwork,
    p_fail: float,
    epsilon: float,
    epsilon_prime: float,
    *,
    capacity: Optional[float] = None,
    mode: str = "crash",
    max_grid: int = 2_000_000,
) -> float:
    """Exact lower bound on P[epsilon-guarantee survives].

    ``P[ (F_1..F_L) tolerated ]`` with ``F_l ~ Binomial(N_l, p_fail)``
    independent — a *certified* survival probability: whenever the
    counts are tolerated, Theorem 3 guarantees survival for any
    placement and any (mode-consistent) faulty behaviour.

    The computation enumerates the count grid ``prod(N_l + 1)`` and
    weighs it by the product of binomial pmfs; refuses above
    ``max_grid`` points.
    """
    if not 0 <= p_fail <= 1:
        raise ValueError(f"p_fail must be in [0,1], got {p_fail}")
    if not (0 < epsilon_prime <= epsilon):
        raise ValueError("need 0 < epsilon_prime <= epsilon")
    sizes = network.layer_sizes
    grid_size = int(np.prod([n + 1 for n in sizes]))
    if grid_size > max_grid:
        raise ValueError(
            f"count grid has {grid_size} points (> {max_grid}); use "
            "monte_carlo_survival instead"
        )
    budget = epsilon - epsilon_prime
    (ok,) = _tolerated_mask(network, budget, capacity=capacity, mode=mode)
    # Tensor-contract the independent binomial pmfs against the mask.
    weights = [sps.binom.pmf(np.arange(n + 1), n, p_fail) for n in sizes]
    weighted = ok.astype(np.float64)
    for axis, w in enumerate(weights):
        shape = [1] * len(sizes)
        shape[axis] = len(w)
        weighted = weighted * w.reshape(shape)
    return float(weighted.sum())


@dataclass(frozen=True)
class ReliabilityEstimate:
    """Monte-Carlo survival estimate with a CI."""

    survival: float
    ci_low: float
    ci_high: float
    n_trials: int
    certified_lower_bound: Optional[float] = None
    #: The ``AdaptiveReport`` / ``StratifiedReport`` when the run used
    #: confidence-sequence stopping or the stratified estimator
    #: (:mod:`repro.faults.adaptive`); None for plain fixed-``n`` runs.
    adaptive: Optional[object] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        certified = (
            f", certified>={self.certified_lower_bound:.4f}"
            if self.certified_lower_bound is not None
            else ""
        )
        return (
            f"ReliabilityEstimate({self.survival:.4f} "
            f"[{self.ci_low:.4f}, {self.ci_high:.4f}], "
            f"n={self.n_trials}{certified})"
        )


def monte_carlo_survival(
    network: FeedForwardNetwork,
    p_fail: float,
    epsilon: float,
    epsilon_prime: float,
    x: np.ndarray,
    *,
    fault: Optional[FaultModel] = None,
    capacity: Optional[float] = None,
    n_trials: int = 500,
    seed: Optional[int] = 0,
    confidence: float = 0.95,
    engine: "MaskCampaignEngine | None" = None,
    stopping=None,
    profile=None,
    obs=None,
) -> ReliabilityEstimate:
    """Estimate the *actual* survival probability by injection.

    Each trial fails every component independently with ``p_fail``
    (Bernoulli), injects, and checks the output error over the probe
    batch against the budget.  Reports a Wilson interval and, when the
    count grid is affordable, attaches the certified lower bound —
    the Monte-Carlo estimate must dominate it.

    Every fault model evaluates on the mask-native engine: neuron
    faults (including stochastic ones — transient/intermittent crashes,
    Gaussian noise) Bernoulli-sample neurons, synapse faults Bernoulli-
    sample the physical synapses (per-mission synapse reliability, the
    Theorem-4 granularity).  Callers sweeping a grid of ``p_fail``
    values over the same network and probe batch (survival curves)
    should build one :class:`~repro.faults.masks.MaskCampaignEngine`
    and pass it as ``engine`` — the weight casts, nominal forward pass
    and buffers are then paid once for the whole sweep instead of once
    per grid point.

    ``stopping`` (a :class:`repro.specs.StoppingSpec` or anything with
    its fields) switches the trial loop to the adaptive layer
    (:mod:`repro.faults.adaptive`): with ``stratify=False`` a
    confidence sequence streams trial blocks and stops once the CI on
    the violation rate ``P[error > budget]`` is inside ``target_ci``
    (``n_trials`` becomes the cap, and the evaluated trials are a
    bitwise prefix of the fixed-``n_trials`` run); with
    ``stratify=True`` the budget is allocated over total-fault-count
    shells with Theorem-3-certified shells skipped outright.  Either
    way the reported interval is the adaptive one (anytime-valid /
    recombined Hoeffding, at level ``1 - stopping.delta``) rather than
    the Wilson interval, and the full report rides on
    ``ReliabilityEstimate.adaptive``.  ``stopping.threshold`` defaults
    to the budget ``epsilon - epsilon_prime``.

    ``profile`` (per-phase wall time) and ``obs`` (span trace +
    metrics) thread straight through to the campaign engines — see
    :func:`~repro.faults.masks.sampled_campaign_errors`.
    """
    if not 0 <= p_fail <= 1:
        raise ValueError(f"p_fail must be in [0,1], got {p_fail}")
    budget = epsilon - epsilon_prime
    fault = fault if fault is not None else CrashFault()
    # An intermittent fault behaves like its wrapped fault where it
    # hits; capacity defaults and the certificate mode follow the
    # innermost model.
    effective = fault
    while isinstance(effective, IntermittentFault):
        effective = effective.fault
    if capacity is None and isinstance(effective, CrashFault):
        injector_capacity: Optional[float] = network.output_bound
    else:
        injector_capacity = capacity
    if engine is not None:
        # The engine carries its own injector, probe batch and dtype —
        # a mismatch with the explicit arguments would silently
        # evaluate the wrong model, inputs, or fault magnitude.  (The
        # probe batch itself is validated in sampled_campaign_errors.)
        if engine.network is not network:
            raise ValueError(
                "engine was built for a different network than the one "
                "passed to monte_carlo_survival"
            )
        if engine.capacity != injector_capacity:
            raise ValueError(
                f"engine capacity {engine.capacity} != effective "
                f"campaign capacity {injector_capacity}"
            )
        injector = engine.injector
    else:
        injector = FaultInjector(network, capacity=injector_capacity)

    if isinstance(fault, SynapseFault):
        sampler: BernoulliSampler | SynapseBernoulliSampler = (
            SynapseBernoulliSampler(network, p_fail, fault=fault)
        )
    else:
        sampler = BernoulliSampler(network, p_fail, fault=fault)
    adaptive_report = None
    if stopping is None:
        errors = sampled_campaign_errors(
            injector, x, sampler, n_trials, seed=seed, engine=engine,
            profile=profile, obs=obs,
        )
        survived = int(np.sum(errors <= budget + 1e-12))
        estimate = survived / n_trials
        n_used = n_trials
        lo, hi = _wilson_interval(survived, n_trials, confidence)
    else:
        from .adaptive import (
            adaptive_campaign_errors,
            stratified_violation_estimate,
        )

        threshold = (
            budget if stopping.threshold is None else stopping.threshold
        )
        if stopping.stratify:
            if isinstance(fault, SynapseFault):
                raise ValueError(
                    "stratified stopping is count-shell based and does "
                    "not apply to synapse faults"
                )
            mode = (
                "crash" if isinstance(effective, CrashFault) else "byzantine"
            )
            adaptive_report = stratified_violation_estimate(
                injector,
                x,
                p_fail,
                n_trials,
                threshold=threshold,
                fault=fault,
                tol=1e-12,
                allocation=stopping.allocation,
                pilot=stopping.pilot,
                delta=stopping.delta,
                prune_mode=mode,
                seed=seed,
                engine=engine,
                profile=profile,
                obs=obs,
            )
        else:
            _, adaptive_report = adaptive_campaign_errors(
                injector,
                x,
                sampler,
                n_trials,
                threshold=threshold,
                method=stopping.method,
                target_ci=stopping.target_ci,
                delta=stopping.delta,
                min_scenarios=stopping.min_scenarios,
                tol=1e-12,
                seed=seed,
                engine=engine,
                profile=profile,
                obs=obs,
            )
        # Survival = 1 - violation rate; the CI flips accordingly.
        estimate = 1.0 - adaptive_report.estimate
        n_used = adaptive_report.n_scenarios
        lo = 1.0 - adaptive_report.ci_high
        hi = 1.0 - adaptive_report.ci_low

    certified = None
    grid_size = int(np.prod([n + 1 for n in network.layer_sizes]))
    # The count-grid certificate speaks about neuron failure counts
    # (Theorem 3); synapse-grained campaigns have no such bound here.
    if grid_size <= 200_000 and not isinstance(fault, SynapseFault):
        mode = "crash" if isinstance(effective, CrashFault) else "byzantine"
        try:
            certified = certified_survival_probability(
                network, p_fail, epsilon, epsilon_prime,
                capacity=capacity, mode=mode,
            )
        except ValueError:
            certified = None
    return ReliabilityEstimate(
        estimate, lo, hi, n_used, certified, adaptive_report
    )


def _wilson_interval(k: int, n: int, confidence: float) -> tuple[float, float]:
    if n == 0:
        return (0.0, 1.0)
    z = sps.norm.ppf(0.5 + confidence / 2.0)
    phat = k / n
    denom = 1 + z**2 / n
    centre = (phat + z**2 / (2 * n)) / denom
    half = z * np.sqrt(phat * (1 - phat) / n + z**2 / (4 * n**2)) / denom
    return (max(0.0, centre - half), min(1.0, centre + half))


def mission_survival_curve(
    network: FeedForwardNetwork,
    failure_rate: float,
    mission_times: Sequence[float],
    epsilon: float,
    epsilon_prime: float,
    *,
    capacity: Optional[float] = None,
    mode: str = "crash",
    x: Optional[np.ndarray] = None,
    n_trials: int = 0,
    fault: Optional[FaultModel] = None,
    seed: Optional[int] = 0,
    engine: "MaskCampaignEngine | None" = None,
) -> "list[tuple[float, float]] | list[tuple[float, float, float]]":
    """Certified survival over mission time with exponential lifetimes.

    Each neuron fails by time ``t`` with ``p(t) = 1 - exp(-rate * t)``;
    the curve is ``[(t, certified_survival(p(t)))]``.  This is the
    deployment-facing face of over-provisioning: more budget = flatter
    curve.

    Passing a probe batch ``x`` with ``n_trials > 0`` additionally
    Monte-Carlo-estimates the *actual* survival at every grid point
    and returns ``(t, certified, estimated)`` triples.  The whole
    mission grid shares **one**
    :class:`~repro.faults.masks.MaskCampaignEngine` (built here when
    ``engine`` is omitted, exactly like
    :func:`monte_carlo_survival`'s defaults), so the weight casts,
    nominal forward pass and chunk buffers are paid once for the
    curve, not once per mission time.
    """
    if failure_rate < 0:
        raise ValueError(f"failure_rate must be >= 0, got {failure_rate}")
    if n_trials < 0:
        raise ValueError(f"n_trials must be >= 0, got {n_trials}")
    estimate = n_trials > 0
    if estimate and x is None:
        raise ValueError("Monte-Carlo estimation (n_trials > 0) needs x")
    if estimate and engine is None:
        # The same capacity defaulting monte_carlo_survival applies: a
        # (possibly wrapped) crash fault caps emissions at sup phi.
        effective = fault if fault is not None else CrashFault()
        while isinstance(effective, IntermittentFault):
            effective = effective.fault
        engine_capacity = (
            network.output_bound
            if capacity is None and isinstance(effective, CrashFault)
            else capacity
        )
        engine = MaskCampaignEngine(
            FaultInjector(network, capacity=engine_capacity), x
        )
    curve: list = []
    for t in mission_times:
        if t < 0:
            raise ValueError(f"mission times must be >= 0, got {t}")
        p = 1.0 - float(np.exp(-failure_rate * t))
        certified = certified_survival_probability(
            network, p, epsilon, epsilon_prime, capacity=capacity, mode=mode,
        )
        if not estimate:
            curve.append((float(t), certified))
            continue
        est = monte_carlo_survival(
            network, p, epsilon, epsilon_prime, x,
            fault=fault, capacity=capacity, n_trials=n_trials, seed=seed,
            engine=engine,
        )
        curve.append((float(t), certified, est.survival))
    return curve


def mean_failures_to_violation(
    network: FeedForwardNetwork,
    epsilon: float,
    epsilon_prime: float,
    x: np.ndarray,
    *,
    n_trials: int = 200,
    seed: Optional[int] = 0,
    engine: "MaskCampaignEngine | None" = None,
    trials_per_chunk: Optional[int] = None,
) -> float:
    """Empirical mean number of sequential crashes until epsilon breaks.

    Crashes neurons one at a time (uniformly at random, without
    replacement) until the output error over the probe batch exceeds
    the budget; returns the mean count over trials.  The analytic
    counterpart is the greedy tolerance of
    :func:`repro.core.tolerance.greedy_max_total_failures`, which this
    empirical count must (weakly) exceed.

    A trial's sequential crash accumulation is a *prefix-mask batch*:
    row ``k`` of the trial crashes the first ``k + 1`` neurons of the
    trial's permutation, so one streamed engine evaluation replaces
    ``num_neurons`` scalar ``injector.output_error`` calls and the
    first row whose error exceeds the budget is the trial's count.
    Trials are chunked (``trials_per_chunk`` rows of ``num_neurons``
    scenarios each) to bound the mask batch; ``engine`` lets callers
    sharing a network/probe batch reuse one campaign engine.  The
    scalar path survives as :func:`_mean_failures_to_violation_scalar`
    — the test oracle this path must reproduce permutation for
    permutation.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    budget = epsilon - epsilon_prime
    if engine is None:
        injector = FaultInjector(network, capacity=network.output_bound)
        engine = MaskCampaignEngine(injector, x)
    else:
        if engine.network is not network:
            raise ValueError(
                "engine was built for a different network than the one "
                "passed to mean_failures_to_violation"
            )
        if engine.capacity != network.output_bound:
            raise ValueError(
                f"engine capacity {engine.capacity} != sup phi = "
                f"{network.output_bound} (the crash-campaign capacity)"
            )
        xb, _ = network._as_batch(x)
        if not np.array_equal(np.asarray(xb, dtype=np.float64), engine.xb64):
            raise ValueError(
                "engine was built for a different probe batch than x"
            )
    rng = np.random.default_rng(seed)
    total = network.num_neurons
    sizes = network.layer_sizes
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    if trials_per_chunk is None:
        # ~4M mask cells per chunk keeps the batch comfortably small.
        trials_per_chunk = max(1, 4_000_000 // (total * total))
    steps = np.arange(total)
    counts: list[np.ndarray] = []
    done = 0
    while done < n_trials:
        m = min(int(trials_per_chunk), n_trials - done)
        # Same draw sequence as the scalar oracle: one permutation per
        # trial, in trial order.
        perms = np.stack([rng.permutation(total) for _ in range(m)])
        # rank[t, j] = step at which trial t crashes flat neuron j;
        # prefix row k of trial t crashes every j with rank <= k.
        ranks = np.argsort(perms, axis=1)
        masks = ranks[:, None, :] <= steps[None, :, None]  # (m, total, total)
        flat = masks.reshape(m * total, total)
        batch = empty_mask_batch(sizes, m * total)
        batch.zero_masks = [
            np.ascontiguousarray(flat[:, offsets[l0] : offsets[l0 + 1]])
            for l0 in range(len(sizes))
        ]
        errors = engine.evaluate(batch).reshape(m, total)
        exceed = errors > budget + 1e-12
        counts.append(
            np.where(exceed.any(axis=1), exceed.argmax(axis=1) + 1, total)
        )
        done += m
    return float(np.mean(np.concatenate(counts)))


def _mean_failures_to_violation_scalar(
    network: FeedForwardNetwork,
    epsilon: float,
    epsilon_prime: float,
    x: np.ndarray,
    *,
    n_trials: int = 200,
    seed: Optional[int] = 0,
) -> float:
    """The original one-crash-at-a-time loop — kept verbatim as the
    oracle :func:`mean_failures_to_violation` must match (same seed,
    same permutations, same counts)."""
    budget = epsilon - epsilon_prime
    injector = FaultInjector(network, capacity=network.output_bound)
    rng = np.random.default_rng(seed)
    addresses = list(network.iter_addresses())
    counts = []
    for _ in range(n_trials):
        order = rng.permutation(len(addresses))
        faults = {}
        violated_at = len(addresses)
        for step, idx in enumerate(order, start=1):
            faults[addresses[idx]] = CrashFault()
            scenario = FailureScenario(dict(faults))
            err = injector.output_error(x, scenario)
            if err > budget + 1e-12:
                violated_at = step
                break
        counts.append(violated_at)
    return float(np.mean(counts))
