"""Failure scenarios: which components fail, and how.

A :class:`FailureScenario` is an immutable assignment of fault models
to neuron addresses ``(l, i)`` and synapse addresses ``(l, j, i)``
(the synapse from neuron ``i`` of layer ``l-1`` to neuron ``j`` of
layer ``l``; ``l = L+1`` addresses synapses into the output node).

Generators in this module produce the scenario families used across
experiments:

* random crash / Byzantine scenarios with a given per-layer
  distribution ``(f_l)`` — the object Theorem 3 bounds;
* worst-case (adversarial) scenarios: kill the neurons "with highest
  weights" (the tightness construction of Theorem 1);
* exhaustive enumerations for small networks (the combinatorial
  explosion the paper's analytical bounds let you avoid).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Optional, Sequence

import numpy as np

from ..network.model import FeedForwardNetwork, NeuronAddress
from .types import (
    ByzantineFault,
    CrashFault,
    FaultModel,
    NeuronFault,
    SynapseFault,
)

__all__ = [
    "FailureScenario",
    "crash_scenario",
    "byzantine_scenario",
    "random_failure_scenario",
    "worst_case_crash_scenario",
    "worst_case_byzantine_scenario",
    "random_synapse_scenario",
    "exhaustive_crash_scenarios",
    "all_single_neuron_faults",
    "uniform_distribution",
]

SynapseAddress = tuple[int, int, int]


@dataclass(frozen=True)
class FailureScenario:
    """An assignment of fault models to components.

    Attributes
    ----------
    neuron_faults:
        Mapping ``NeuronAddress -> NeuronFault``.
    synapse_faults:
        Mapping ``(l, j, i) -> SynapseFault``.
    name:
        Free-form label for reports.
    """

    neuron_faults: Mapping[NeuronAddress, FaultModel] = field(default_factory=dict)
    synapse_faults: Mapping[SynapseAddress, FaultModel] = field(default_factory=dict)
    name: str = ""

    def __post_init__(self):
        neuron_faults = {}
        for addr, fault in dict(self.neuron_faults).items():
            if not isinstance(addr, NeuronAddress):
                addr = NeuronAddress(*addr)
            if not isinstance(fault, NeuronFault):
                raise TypeError(f"{fault!r} is not a NeuronFault (at {tuple(addr)})")
            neuron_faults[addr] = fault
        synapse_faults = {}
        for saddr, fault in dict(self.synapse_faults).items():
            l, j, i = (int(v) for v in saddr)
            if l < 1:
                raise ValueError(f"synapse layer must be >= 1, got {l}")
            if not isinstance(fault, SynapseFault):
                raise TypeError(f"{fault!r} is not a SynapseFault (at {(l, j, i)})")
            synapse_faults[(l, j, i)] = fault
        object.__setattr__(self, "neuron_faults", neuron_faults)
        object.__setattr__(self, "synapse_faults", synapse_faults)

    # -- inspection ----------------------------------------------------------

    @property
    def num_neuron_faults(self) -> int:
        return len(self.neuron_faults)

    @property
    def num_synapse_faults(self) -> int:
        return len(self.synapse_faults)

    def is_empty(self) -> bool:
        return not self.neuron_faults and not self.synapse_faults

    def neuron_distribution(self, depth: int) -> tuple[int, ...]:
        """Per-layer fault counts ``(f_1, ..., f_L)`` — the ``Nfail``
        of Theorem 3."""
        counts = [0] * depth
        for addr in self.neuron_faults:
            if addr.layer > depth:
                raise ValueError(
                    f"scenario addresses layer {addr.layer} but depth is {depth}"
                )
            counts[addr.layer - 1] += 1
        return tuple(counts)

    def synapse_distribution(self, depth: int) -> tuple[int, ...]:
        """Per-synapse-stage fault counts ``(f_1, ..., f_{L+1})`` — the
        ``Nfail`` of Theorem 4 (stage ``l`` = synapses into layer ``l``)."""
        counts = [0] * (depth + 1)
        for (l, _j, _i) in self.synapse_faults:
            if l > depth + 1:
                raise ValueError(
                    f"scenario addresses synapse stage {l} but depth is {depth}"
                )
            counts[l - 1] += 1
        return tuple(counts)

    def validate(self, network: FeedForwardNetwork) -> "FailureScenario":
        """Check every address against the network topology; return self."""
        for addr in self.neuron_faults:
            network.check_address(addr)
        sizes = (network.input_dim,) + network.layer_sizes + (network.n_outputs,)
        for (l, j, i) in self.synapse_faults:
            if l > network.depth + 1:
                raise ValueError(f"synapse stage {l} > L+1 = {network.depth + 1}")
            n_out, n_in = sizes[l], sizes[l - 1]
            if not (0 <= j < n_out and 0 <= i < n_in):
                raise ValueError(
                    f"synapse ({l},{j},{i}) outside stage shape ({n_out},{n_in})"
                )
            if l <= network.depth and not network.layers[l - 1].synapse_mask()[j, i]:
                raise ValueError(
                    f"synapse ({l},{j},{i}) does not physically exist "
                    "(outside the receptive field)"
                )
        return self

    def merged_with(self, other: "FailureScenario") -> "FailureScenario":
        """Union of two scenarios (the other wins on collisions)."""
        return FailureScenario(
            {**self.neuron_faults, **other.neuron_faults},
            {**self.synapse_faults, **other.synapse_faults},
            name=f"{self.name}+{other.name}" if self.name or other.name else "",
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FailureScenario(name={self.name!r}, neurons={self.num_neuron_faults}, "
            f"synapses={self.num_synapse_faults})"
        )


#: The scenario with no failures (nominal operation).
NOMINAL = FailureScenario(name="nominal")


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------


def crash_scenario(
    addresses: Iterable["NeuronAddress | tuple[int, int]"],
    name: str = "crash",
) -> FailureScenario:
    """All listed neurons crash."""
    fault = CrashFault()
    return FailureScenario(
        {NeuronAddress(*a) if not isinstance(a, NeuronAddress) else a: fault
         for a in addresses},
        name=name,
    )


def byzantine_scenario(
    addresses: Iterable["NeuronAddress | tuple[int, int]"],
    *,
    value: Optional[float] = None,
    sign: int = 1,
    name: str = "byzantine",
) -> FailureScenario:
    """All listed neurons turn Byzantine with the same emission rule."""
    fault = ByzantineFault(value=value, sign=sign)
    return FailureScenario(
        {NeuronAddress(*a) if not isinstance(a, NeuronAddress) else a: fault
         for a in addresses},
        name=name,
    )


def uniform_distribution(network: FeedForwardNetwork, fraction: float) -> tuple[int, ...]:
    """A per-layer distribution failing ``floor(fraction * N_l)`` per layer."""
    if not 0 <= fraction <= 1:
        raise ValueError(f"fraction must be in [0,1], got {fraction}")
    return tuple(int(np.floor(fraction * n)) for n in network.layer_sizes)


def _sample_layer_indices(
    rng: np.random.Generator, width: int, count: int
) -> np.ndarray:
    if count > width:
        raise ValueError(f"cannot fail {count} neurons in a layer of width {width}")
    return rng.choice(width, size=count, replace=False)


def random_failure_scenario(
    network: FeedForwardNetwork,
    distribution: Sequence[int],
    *,
    fault: Optional[FaultModel] = None,
    rng: Optional[np.random.Generator] = None,
    name: str = "random",
) -> FailureScenario:
    """Fail ``distribution[l-1]`` uniformly-random neurons in each layer.

    ``fault`` defaults to :class:`CrashFault`; pass a
    :class:`ByzantineFault` for the Byzantine campaigns.
    """
    if len(distribution) != network.depth:
        raise ValueError(
            f"distribution length {len(distribution)} != depth {network.depth}"
        )
    rng = rng if rng is not None else np.random.default_rng()
    fault = fault if fault is not None else CrashFault()
    faults: dict[NeuronAddress, FaultModel] = {}
    for l, (width, count) in enumerate(zip(network.layer_sizes, distribution), start=1):
        for i in _sample_layer_indices(rng, width, int(count)):
            faults[NeuronAddress(l, int(i))] = fault
    return FailureScenario(faults, name=name)


def _outgoing_weight_scores(network: FeedForwardNetwork, layer: int) -> np.ndarray:
    """Influence score per neuron of 1-based ``layer``: max |outgoing weight|.

    The Theorem-1 tightness construction kills the neurons with the
    highest outgoing weights; this generalises it to hidden layers.
    """
    if layer == network.depth:
        out = np.abs(network.output_weights)  # (n_outputs, N_L)
        return out.max(axis=0)
    # 0-based ``layers[layer]`` is 1-based layer ``layer + 1``, whose dense
    # weights have shape (N_{layer+1}, N_layer).
    dense = np.abs(network.layers[layer].dense_weights())
    return dense.max(axis=0)


def worst_case_crash_scenario(
    network: FeedForwardNetwork,
    distribution: Sequence[int],
    name: str = "worst-crash",
) -> FailureScenario:
    """Crash the ``f_l`` highest-influence neurons of each layer."""
    if len(distribution) != network.depth:
        raise ValueError(
            f"distribution length {len(distribution)} != depth {network.depth}"
        )
    faults: dict[NeuronAddress, FaultModel] = {}
    fault = CrashFault()
    for l, count in enumerate(distribution, start=1):
        count = int(count)
        if count == 0:
            continue
        width = network.layer_sizes[l - 1]
        if count > width:
            raise ValueError(f"cannot fail {count} of {width} neurons in layer {l}")
        scores = _outgoing_weight_scores(network, l)
        victims = np.argsort(scores)[::-1][:count]
        for i in victims:
            faults[NeuronAddress(l, int(i))] = fault
    return FailureScenario(faults, name=name)


def worst_case_byzantine_scenario(
    network: FeedForwardNetwork,
    distribution: Sequence[int],
    *,
    sign: int = 1,
    name: str = "worst-byzantine",
) -> FailureScenario:
    """Highest-influence neurons emit capacity-saturating values."""
    base = worst_case_crash_scenario(network, distribution, name=name)
    fault = ByzantineFault(value=None, sign=sign)
    return FailureScenario(
        {addr: fault for addr in base.neuron_faults}, name=name
    )


def random_synapse_scenario(
    network: FeedForwardNetwork,
    distribution: Sequence[int],
    *,
    fault: Optional[SynapseFault] = None,
    rng: Optional[np.random.Generator] = None,
    name: str = "random-synapse",
) -> FailureScenario:
    """Fail ``distribution[l-1]`` random synapses at each stage ``l``.

    ``distribution`` has length ``L+1`` (stage ``L+1`` feeds the output
    node).  ``fault`` defaults to the Lemma-2 worst case
    (:class:`SynapseByzantineFault` saturating the capacity).
    """
    from .types import SynapseByzantineFault

    if len(distribution) != network.depth + 1:
        raise ValueError(
            f"distribution length {len(distribution)} != L+1 = {network.depth + 1}"
        )
    rng = rng if rng is not None else np.random.default_rng()
    fault = fault if fault is not None else SynapseByzantineFault()
    faults: dict[SynapseAddress, SynapseFault] = {}
    for l, count in enumerate(distribution, start=1):
        count = int(count)
        if count == 0:
            continue
        if l <= network.depth:
            mask = network.layers[l - 1].synapse_mask()
        else:
            mask = np.ones((network.n_outputs, network.layer_sizes[-1]), dtype=bool)
        js, is_ = np.nonzero(mask)
        if count > js.size:
            raise ValueError(f"cannot fail {count} of {js.size} synapses at stage {l}")
        picks = rng.choice(js.size, size=count, replace=False)
        for p in picks:
            faults[(l, int(js[p]), int(is_[p]))] = fault
    return FailureScenario(synapse_faults=faults, name=name)


# ---------------------------------------------------------------------------
# Enumerations (the combinatorial explosion, made explicit)
# ---------------------------------------------------------------------------


def exhaustive_crash_scenarios(
    network: FeedForwardNetwork,
    n_fail: int,
) -> Iterator[FailureScenario]:
    """Every way to crash exactly ``n_fail`` neurons anywhere.

    This is the experiment the paper calls "discouraging": the number
    of scenarios is C(num_neurons, n_fail).  Only feasible for small
    networks — which is exactly the point of having analytic bounds.
    """
    addresses = list(network.iter_addresses())
    for combo in itertools.combinations(addresses, n_fail):
        yield crash_scenario(combo, name=f"crash{tuple(map(tuple, combo))}")


def all_single_neuron_faults(
    network: FeedForwardNetwork,
    fault: Optional[FaultModel] = None,
) -> Iterator[FailureScenario]:
    """One scenario per neuron, each failing just that neuron."""
    fault = fault if fault is not None else CrashFault()
    for addr in network.iter_addresses():
        yield FailureScenario({addr: fault}, name=f"single{tuple(addr)}")
