"""The mask-native campaign engine: array-level scenario machinery.

The paper's empirical validation faces a "discouraging combinatorial
explosion"; this repo answers it with throughput.  The seed engine was
vectorised only at the *evaluation* GEMM — scenario generation still
built one Python ``FailureScenario`` object per sample and
``compile_batch`` unpacked each with a Python double loop.  This module
makes the whole pipeline live at the array level (see DESIGN.md):

* **sampling** — :class:`MaskSampler` subclasses draw whole batches of
  fault masks directly as ``(S, N_l)`` arrays.  Fixed per-layer counts
  ``f_l`` use batched ``argpartition`` over i.i.d. uniform keys: the
  ``f_l`` smallest keys of a row are a uniform random ``f_l``-subset,
  so one vectorised call replaces ``S`` calls to ``rng.choice``;
* **exhaustive sweeps** — :func:`combination_index_array` fills the
  ``C(n, k)`` lexicographic combination table block-wise (one bulk
  write per prefix) and :func:`masks_from_flat_indices` scatters flat
  neuron indices into per-layer crash masks without touching Python
  scenario objects;
* **evaluation** — :class:`MaskCampaignEngine` streams mask batches
  through preallocated ``(chunk, B, N_l)`` buffers with a ``dtype``
  option (float32 fast path, float64 default) and per-campaign cached
  weights, producing per-scenario output errors;
* **distribution** — the fork-once worker pool ships the network to
  each worker exactly once (pool initializer); jobs afterwards carry
  only chunk sizes + spawned ``SeedSequence`` children (Monte-Carlo)
  or combination index blocks (exhaustive), so results are
  deterministic and identical to the serial path.

``FailureScenario`` remains the expressive scalar-path API;
``FaultInjector.compile_batch`` lowers object scenarios into the same
:class:`~repro.faults.injector.CompiledScenarioBatch` mask
representation this engine consumes.
"""

from __future__ import annotations

import math
from time import perf_counter as _perf_counter
from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..network.model import FeedForwardNetwork
from ..obs.recorder import RunObserver, block_span_if, fold_worker_payload
from ..parallel import bounded_map, fork_once_pool, worker_state
from . import injector as _injector_mod
from .injector import (
    CompiledScenarioBatch,
    FaultInjector,
    MaskWorkspace,
    SynapseStageChannels,
    _stage_contributions,
    _stage_plan,
    apply_mask_channels,
    apply_synapse_corrections,
    fault_channel_action,
    synapse_fault_action,
)
from .types import (
    CrashFault,
    FaultModel,
    SynapseByzantineFault,
    SynapseFault,
    unseeded_rng,
)

__all__ = [
    "MaskSampler",
    "NeuronFaultSampler",
    "FixedDistributionSampler",
    "BernoulliSampler",
    "TotalCountShellSampler",
    "SynapseFaultSampler",
    "FixedSynapseDistributionSampler",
    "SynapseBernoulliSampler",
    "MixedFaultSampler",
    "merge_mask_batches",
    "empty_mask_batch",
    "combination_index_array",
    "masks_from_flat_indices",
    "MaskCampaignEngine",
    "sampled_campaign_errors",
    "exhaustive_crash_errors",
]


# ---------------------------------------------------------------------------
# Mask batches
# ---------------------------------------------------------------------------


def empty_mask_batch(
    layer_sizes: Sequence[int], n_scenarios: int
) -> CompiledScenarioBatch:
    """An all-healthy mask batch for ``n_scenarios`` scenarios.

    The canonical way to build a :class:`CompiledScenarioBatch` by
    hand: start empty, then fill the relevant channel masks in place.
    """
    S = int(n_scenarios)
    return CompiledScenarioBatch(
        zero_masks=[np.zeros((S, n), dtype=bool) for n in layer_sizes],
        set_masks=[np.zeros((S, n), dtype=bool) for n in layer_sizes],
        set_values=[np.zeros((S, n), dtype=np.float64) for n in layer_sizes],
        add_masks=[np.zeros((S, n), dtype=bool) for n in layer_sizes],
        add_values=[np.zeros((S, n), dtype=np.float64) for n in layer_sizes],
        names=[],
    )


def _slice_masks(arrays: List[np.ndarray], lo: int, hi: int) -> List[np.ndarray]:
    return [a[lo:hi] for a in arrays]


def _sample_fixed_count_masks(
    rng: np.random.Generator,
    n_scenarios: int,
    width: int,
    count: int,
    keys: "np.ndarray | None" = None,
) -> np.ndarray:
    """``(S, width)`` boolean masks with exactly ``count`` True per row,
    each row a uniform random ``count``-subset.

    Batched partition over i.i.d. uniform keys: the positions of the
    ``count`` smallest keys in a row are exchangeable, hence a uniform
    subset — the array-level equivalent of ``rng.choice(width, count,
    replace=False)`` per scenario.  The selection is realised by
    thresholding each row at its ``count``-th order statistic
    (``np.partition`` + one comparison), which is ~2x faster than the
    ``argpartition`` index scatter and picks the identical subset
    whenever the row's keys are distinct (almost surely).  Rows with a
    tie at the threshold — measure-zero, but guarded — fall back to
    ``argpartition``.

    ``keys`` optionally supplies the uniform key block (one ``(S,
    width)`` draw) — samplers with several fixed-count stages fuse the
    per-stage draws into a single generator call, which consumes the
    stream identically to sequential ``rng.random((S, width))`` calls
    and therefore picks bitwise-identical subsets.  Degenerate stages
    (``count`` of 0 or ``width``) never draw, with or without fusion.
    """
    if count > width:
        raise ValueError(f"cannot fail {count} neurons in a layer of width {width}")
    masks = np.zeros((n_scenarios, width), dtype=bool)
    if count == 0 or n_scenarios == 0:
        return masks
    if count == width:
        masks[:] = True
        return masks
    if keys is None:
        keys = rng.random((n_scenarios, width))
    # The count-th order statistic per row.  For tiny counts, iterative
    # extraction (argmin the running minimum away, then one final min)
    # beats introselect by ~2x on wide rows; all branches produce the
    # exact same value, ties included.
    if count == 1:
        kth = keys.min(axis=1)
    elif count == 2:
        scratch = keys.copy()
        scratch[np.arange(n_scenarios), scratch.argmin(axis=1)] = np.inf
        kth = scratch.min(axis=1)
    else:
        kth = np.partition(keys, count - 1, axis=1)[:, count - 1]
    np.less_equal(keys, kth[:, None], out=masks)
    # Threshold ties (duplicate keys): each row selects >= count cells
    # by construction, so the flat total equals S*count iff every row
    # is exact — one full reduction instead of a per-row axis sum.
    if np.count_nonzero(masks) != n_scenarios * count:
        bad = masks.sum(axis=1) != count
        rows = np.nonzero(bad)[0]
        masks[rows] = False
        picks = np.argpartition(keys[rows], count - 1, axis=1)[:, :count]
        masks[rows[:, None], picks] = True
    return masks


class MaskSampler:
    """Draws batches of fault masks directly as arrays.

    Subclasses implement :meth:`sample`; instances must be picklable so
    the fork-once worker pool can ship them to workers at initialisation
    (after which jobs carry only sizes and seeds).
    """

    layer_sizes: tuple

    def __init__(self, layer_sizes: Sequence[int]):
        self.layer_sizes = tuple(int(n) for n in layer_sizes)
        if any(n <= 0 for n in self.layer_sizes):
            raise ValueError(f"layer sizes must be positive, got {self.layer_sizes}")

    def check_network(self, network: FeedForwardNetwork) -> None:
        """Raise when this sampler's batches don't fit ``network``.

        Neuron samplers only carry layer-shaped masks, so matching
        layer sizes suffice; synapse samplers override this with a
        stronger identity check (their COO coordinates are tabulated
        from a specific network's synapse tables).
        """
        if tuple(self.layer_sizes) != network.layer_sizes:
            raise ValueError(
                f"sampler layer sizes {self.layer_sizes} != network "
                f"{network.layer_sizes}"
            )

    def sample(
        self, n_scenarios: int, rng: np.random.Generator
    ) -> CompiledScenarioBatch:
        """Draw ``n_scenarios`` scenarios as a mask batch."""
        raise NotImplementedError

    def _fused_fixed_count_masks(
        self,
        rng: np.random.Generator,
        n_scenarios: int,
        widths: Sequence[int],
        counts: Sequence[int],
    ) -> List[np.ndarray]:
        """Per-stage exact-``count`` masks off one fused key draw.

        The uniform keys of every non-degenerate stage come from a
        single ``rng.random(out=...)`` call into a buffer reused across
        chunks — the generator stream (hence every selected subset) is
        bitwise-identical to sequential per-stage draws, but a campaign
        pays one draw call and no fresh key allocations per chunk.
        """
        active = [
            (idx, w)
            for idx, (w, c) in enumerate(zip(widths, counts))
            if 0 < c < w
        ]
        keymap = {}
        if active and n_scenarios:
            total = n_scenarios * sum(w for _, w in active)
            buf = getattr(self, "_key_buf", None)
            if buf is None or buf.size < total:
                buf = self._key_buf = np.empty(total, dtype=np.float64)
            flat = buf[:total]
            rng.random(out=flat)
            off = 0
            for idx, w in active:
                block = n_scenarios * w
                keymap[idx] = flat[off:off + block].reshape(n_scenarios, w)
                off += block
        return [
            _sample_fixed_count_masks(
                rng, n_scenarios, w, c, keys=keymap.get(idx)
            )
            for idx, (w, c) in enumerate(zip(widths, counts))
        ]

    def __getstate__(self):
        # The fused-draw key buffer is a per-process scratch: drop it
        # when the fork pool pickles samplers out to workers.
        state = self.__dict__.copy()
        state.pop("_key_buf", None)
        return state


class NeuronFaultSampler(MaskSampler):
    """Base for samplers that attach one neuron-fault model to random
    neuron populations.

    Accepts the *entire* neuron-fault taxonomy: static faults route to
    the zero/set/add channels, sign flip to the scale channel, noise to
    the noise channel, and intermittent faults gate their wrapped
    fault's channel with ``gate_p``.
    """

    def __init__(self, layer_sizes: Sequence[int], fault: Optional[FaultModel] = None):
        super().__init__(layer_sizes)
        fault = fault if fault is not None else CrashFault()
        if isinstance(fault, SynapseFault):
            raise ValueError(
                f"{fault!r} is a synapse fault; use a SynapseFaultSampler"
            )
        action = fault_channel_action(fault)
        if action is None:
            raise ValueError(
                f"fault {fault!r} has no mask-channel lowering; extend "
                "fault_channel_action to cover it"
            )
        self.fault = fault
        self._action_kind, self._action_value, self._action_gate = action

    def _batch_from_layer_masks(
        self, layer_masks: List[np.ndarray]
    ) -> CompiledScenarioBatch:
        """Route per-layer boolean masks into the fault's action channel."""
        S = layer_masks[0].shape[0] if layer_masks else 0
        batch = empty_mask_batch(self.layer_sizes, S)
        kind, value = self._action_kind, self._action_value
        if kind == "scale":
            batch.scale_masks = [
                np.zeros((S, n), dtype=bool) for n in self.layer_sizes
            ]
            batch.scale_values = [np.zeros((S, n)) for n in self.layer_sizes]
        elif kind == "noise":
            batch.noise_masks = [
                np.zeros((S, n), dtype=bool) for n in self.layer_sizes
            ]
            batch.noise_sigma = [np.zeros((S, n)) for n in self.layer_sizes]
        if self._action_gate < 1.0:
            batch.gate_p = [np.ones((S, n)) for n in self.layer_sizes]
        for l0, mask in enumerate(layer_masks):
            if kind == "zero":
                batch.zero_masks[l0] = mask
            elif kind == "set":
                batch.set_masks[l0] = mask
                batch.set_values[l0][mask] = value
            elif kind == "scale":
                batch.scale_masks[l0] = mask
                batch.scale_values[l0][mask] = value
            elif kind == "noise":
                batch.noise_masks[l0] = mask
                batch.noise_sigma[l0][mask] = value
            else:  # "add" (capacity sentinels resolved by the engine)
                batch.add_masks[l0] = mask
                batch.add_values[l0][mask] = value
            if self._action_gate < 1.0:
                batch.gate_p[l0][mask] = self._action_gate
        return batch


class FixedDistributionSampler(NeuronFaultSampler):
    """Uniform scenarios with exactly ``f_l`` failed neurons per layer.

    The array-level twin of
    :func:`repro.faults.scenarios.random_failure_scenario`: identical
    per-layer distribution (every ``f_l``-subset of layer ``l`` equally
    likely, layers independent), drawn ``S`` scenarios at a time.
    """

    def __init__(
        self,
        network_or_sizes: "FeedForwardNetwork | Sequence[int]",
        distribution: Sequence[int],
        *,
        fault: Optional[FaultModel] = None,
    ):
        sizes = (
            network_or_sizes.layer_sizes
            if isinstance(network_or_sizes, FeedForwardNetwork)
            else network_or_sizes
        )
        super().__init__(sizes, fault)
        self.distribution = tuple(int(f) for f in distribution)
        if len(self.distribution) != len(self.layer_sizes):
            raise ValueError(
                f"distribution length {len(self.distribution)} != depth "
                f"{len(self.layer_sizes)}"
            )
        for f, n in zip(self.distribution, self.layer_sizes):
            if not 0 <= f <= n:
                raise ValueError(
                    f"failure counts {self.distribution} outside layer sizes "
                    f"{self.layer_sizes}"
                )

    def sample(self, n_scenarios, rng):
        layer_masks = self._fused_fixed_count_masks(
            rng, n_scenarios, self.layer_sizes, self.distribution
        )
        return self._batch_from_layer_masks(layer_masks)


class BernoulliSampler(NeuronFaultSampler):
    """Scenarios failing every neuron independently with probability ``p``.

    The array-level twin of the reliability module's i.i.d. trial loop
    (Section V-A's survival-probability experiments).
    """

    def __init__(
        self,
        network_or_sizes: "FeedForwardNetwork | Sequence[int]",
        p_fail: float,
        *,
        fault: Optional[FaultModel] = None,
    ):
        sizes = (
            network_or_sizes.layer_sizes
            if isinstance(network_or_sizes, FeedForwardNetwork)
            else network_or_sizes
        )
        super().__init__(sizes, fault)
        if not 0 <= p_fail <= 1:
            raise ValueError(f"p_fail must be in [0,1], got {p_fail}")
        self.p_fail = float(p_fail)

    def sample(self, n_scenarios, rng):
        layer_masks = [
            rng.random((n_scenarios, n)) < self.p_fail for n in self.layer_sizes
        ]
        return self._batch_from_layer_masks(layer_masks)


class TotalCountShellSampler(NeuronFaultSampler):
    """Uniform scenarios with exactly ``count`` failures network-wide.

    The conditional law of i.i.d. Bernoulli failures given their total:
    conditioning ``F_j ~ Bernoulli(p)`` on ``sum F_j = count`` makes the
    failed set a uniform ``count``-subset of all ``N`` neurons (every
    layer split then follows the multivariate hypergeometric).  This is
    the stratum sampler of the stratified/importance rare-event
    estimator (:mod:`repro.faults.adaptive`): stratum ``k`` of the
    total-fault-count lattice is sampled by drawing exact-``count``
    masks over the flattened width and splitting them per layer —
    one fixed-count draw, any neuron fault kind via the action-channel
    routing.
    """

    def __init__(
        self,
        network_or_sizes: "FeedForwardNetwork | Sequence[int]",
        count: int,
        *,
        fault: Optional[FaultModel] = None,
    ):
        sizes = (
            network_or_sizes.layer_sizes
            if isinstance(network_or_sizes, FeedForwardNetwork)
            else network_or_sizes
        )
        super().__init__(sizes, fault)
        self.count = int(count)
        total = sum(self.layer_sizes)
        if not 0 <= self.count <= total:
            raise ValueError(
                f"shell count {count} outside [0, {total}] for layer "
                f"sizes {self.layer_sizes}"
            )
        self._offsets = np.concatenate(
            [[0], np.cumsum(self.layer_sizes)]
        ).astype(np.intp)

    def sample(self, n_scenarios, rng):
        flat = _sample_fixed_count_masks(
            rng, n_scenarios, int(self._offsets[-1]), self.count
        )
        layer_masks = [
            np.ascontiguousarray(flat[:, self._offsets[l0]:self._offsets[l0 + 1]])
            for l0 in range(len(self.layer_sizes))
        ]
        return self._batch_from_layer_masks(layer_masks)


class SynapseFaultSampler(MaskSampler):
    """Base for samplers that fail random *synapses* (Theorem 4 / Lemma 2).

    The network's physical synapses are tabulated once per stage
    (``depth + 1`` stages; the last feeds the output node): stage ``l``
    keeps the ``(j, i)`` coordinates of its existing synapses, so a
    draw over "which synapses fail" is a draw over flat physical
    indices — the same batched machinery as the neuron samplers — then
    a cheap gather into sparse :class:`SynapseStageChannels`.
    """

    def __init__(
        self,
        network: FeedForwardNetwork,
        fault: Optional[FaultModel] = None,
    ):
        super().__init__(network.layer_sizes)
        fault = fault if fault is not None else SynapseByzantineFault()
        action = synapse_fault_action(fault)
        if action is None:
            raise ValueError(
                f"fault {fault!r} has no weight-level lowering; synapse "
                "samplers support crash / Byzantine / noise synapse faults"
            )
        self.fault = fault
        self._action_kind, self._action_value = action
        self.depth = network.depth
        self.input_dim = network.input_dim
        self.n_outputs = network.n_outputs
        self._stage_j: List[np.ndarray] = []
        self._stage_i: List[np.ndarray] = []
        for layer in network.layers:
            js, is_ = np.nonzero(layer.synapse_mask())
            self._stage_j.append(js.astype(np.intp))
            self._stage_i.append(is_.astype(np.intp))
        js, is_ = np.nonzero(
            np.ones((network.n_outputs, network.layer_sizes[-1]), dtype=bool)
        )
        self._stage_j.append(js.astype(np.intp))
        self._stage_i.append(is_.astype(np.intp))

    def check_network(self, network: FeedForwardNetwork) -> None:
        """The COO ``(j, i)`` tables address one concrete network: two
        networks with identical layer sizes can still differ in
        input dimension, output count or (conv) synapse topology, and a
        mismatched scatter would silently corrupt the wrong weights."""
        super().check_network(network)
        if (network.input_dim, network.n_outputs) != (
            self.input_dim, self.n_outputs
        ):
            raise ValueError(
                f"sampler synapse tables were built for input_dim="
                f"{self.input_dim}, n_outputs={self.n_outputs}; network has "
                f"input_dim={network.input_dim}, n_outputs={network.n_outputs}"
            )
        for l0, layer in enumerate(network.layers):
            js, is_ = np.nonzero(layer.synapse_mask())
            if not (
                np.array_equal(js, self._stage_j[l0])
                and np.array_equal(is_, self._stage_i[l0])
            ):
                raise ValueError(
                    f"sampler synapse table for stage {l0 + 1} does not "
                    "match the network's physical synapses"
                )

    @property
    def stage_synapse_counts(self) -> tuple:
        """Number of physical synapses per stage ``1..L+1``."""
        return tuple(j.size for j in self._stage_j)

    def _stage_from_hits(self, hits: np.ndarray, stage: int) -> SynapseStageChannels:
        """Lower an ``(S, n_physical)`` hit mask into one stage's channels."""
        # flatnonzero + divmod walks the raveled mask once — ~7x faster
        # than np.nonzero's coordinate-tuple path, with identical
        # (row-major) ordering of the recovered (s, k) pairs.
        flat = np.flatnonzero(hits)
        s, k = np.divmod(flat, hits.shape[1])
        j, i = self._stage_j[stage][k], self._stage_i[stage][k]
        kind, value = self._action_kind, self._action_value
        if kind == "zero":
            return SynapseStageChannels(zero_s=s, zero_j=j, zero_i=i)
        if kind == "add":
            return SynapseStageChannels(
                add_s=s, add_j=j, add_i=i,
                add_values=np.full(s.size, value, dtype=np.float64),
            )
        return SynapseStageChannels(
            noise_s=s, noise_j=j, noise_i=i,
            noise_sigma=np.full(s.size, value, dtype=np.float64),
        )

    def _batch_from_hits(self, hit_masks: List[np.ndarray]) -> CompiledScenarioBatch:
        S = hit_masks[0].shape[0] if hit_masks else 0
        batch = empty_mask_batch(self.layer_sizes, S)
        batch.synapse_stages = [
            self._stage_from_hits(hits, stage)
            for stage, hits in enumerate(hit_masks)
        ]
        batch._neuron_clear = True  # only synapse channels were populated
        return batch


class FixedSynapseDistributionSampler(SynapseFaultSampler):
    """Uniform scenarios failing exactly ``f_l`` synapses per stage.

    The array-level twin of
    :func:`repro.faults.scenarios.random_synapse_scenario`:
    ``distribution`` has length ``L + 1`` (the ``Nfail`` of Theorem 4),
    every ``f_l``-subset of a stage's physical synapses equally
    likely, stages independent.
    """

    def __init__(
        self,
        network: FeedForwardNetwork,
        distribution: Sequence[int],
        *,
        fault: Optional[FaultModel] = None,
    ):
        super().__init__(network, fault)
        self.distribution = tuple(int(f) for f in distribution)
        counts = self.stage_synapse_counts
        if len(self.distribution) != len(counts):
            raise ValueError(
                f"distribution length {len(self.distribution)} != L+1 = "
                f"{len(counts)}"
            )
        for f, n in zip(self.distribution, counts):
            if not 0 <= f <= n:
                raise ValueError(
                    f"synapse failure counts {self.distribution} outside "
                    f"stage synapse counts {counts}"
                )

    def sample(self, n_scenarios, rng):
        hits = self._fused_fixed_count_masks(
            rng, n_scenarios, self.stage_synapse_counts, self.distribution
        )
        return self._batch_from_hits(hits)


class SynapseBernoulliSampler(SynapseFaultSampler):
    """Scenarios failing every physical synapse independently with ``p``."""

    def __init__(
        self,
        network: FeedForwardNetwork,
        p_fail: float,
        *,
        fault: Optional[FaultModel] = None,
    ):
        super().__init__(network, fault)
        if not 0 <= p_fail <= 1:
            raise ValueError(f"p_fail must be in [0,1], got {p_fail}")
        self.p_fail = float(p_fail)

    def sample(self, n_scenarios, rng):
        hits = [
            rng.random((n_scenarios, n)) < self.p_fail
            for n in self.stage_synapse_counts
        ]
        return self._batch_from_hits(hits)


def _ensure_channel(batch: CompiledScenarioBatch, masks_attr: str,
                    values_attr: str, layer_sizes, S: int) -> None:
    if getattr(batch, masks_attr) is None:
        setattr(
            batch, masks_attr,
            [np.zeros((S, n), dtype=bool) for n in layer_sizes],
        )
        setattr(batch, values_attr, [np.zeros((S, n)) for n in layer_sizes])


def _merged_stage(stages: List[SynapseStageChannels]) -> SynapseStageChannels:
    """Concatenate stage entries; on duplicate ``(s, j, i)`` the entry
    from the *latest* contributing batch wins (scenario-dict semantics)."""
    s_parts, j_parts, i_parts, kind_parts, val_parts = [], [], [], [], []
    for st in stages:
        for kind_code, (s, j, i, v) in enumerate(
            (
                (st.zero_s, st.zero_j, st.zero_i, None),
                (st.add_s, st.add_j, st.add_i, st.add_values),
                (st.noise_s, st.noise_j, st.noise_i, st.noise_sigma),
            )
        ):
            if s.size:
                s_parts.append(s)
                j_parts.append(j)
                i_parts.append(i)
                kind_parts.append(np.full(s.size, kind_code, dtype=np.intp))
                val_parts.append(
                    np.zeros(s.size) if v is None else np.asarray(v, np.float64)
                )
    if not s_parts:
        return SynapseStageChannels()
    s = np.concatenate(s_parts)
    j = np.concatenate(j_parts)
    i = np.concatenate(i_parts)
    kind = np.concatenate(kind_parts)
    val = np.concatenate(val_parts)
    # Keep-last dedupe on (s, j, i): reverse, take first occurrences.
    key = np.stack([s[::-1], j[::-1], i[::-1]], axis=1)
    _, first = np.unique(key, axis=0, return_index=True)
    keep = (s.size - 1) - first
    s, j, i, kind, val = s[keep], j[keep], i[keep], kind[keep], val[keep]
    z, a, n = kind == 0, kind == 1, kind == 2
    return SynapseStageChannels(
        s[z], j[z], i[z], s[a], j[a], i[a], val[a], s[n], j[n], i[n], val[n]
    )


def merge_mask_batches(
    layer_sizes: Sequence[int], batches: Sequence[CompiledScenarioBatch]
) -> CompiledScenarioBatch:
    """Per-scenario union of several mask batches.

    Scenario ``s`` of the result carries scenario ``s``'s faults from
    *every* input batch; where two batches target the same neuron cell
    or synapse, the later batch wins (the array-level analogue of
    ``FailureScenario.merged_with``).
    """
    sizes = tuple(int(n) for n in layer_sizes)
    if not batches:
        return empty_mask_batch(sizes, 0)
    S = batches[0].num_scenarios
    out = empty_mask_batch(sizes, S)
    for b in batches:
        if b.num_scenarios != S:
            raise ValueError(
                f"cannot merge batches of {b.num_scenarios} and {S} scenarios"
            )
        for l0 in range(len(sizes)):
            occupied = b.zero_masks[l0] | b.set_masks[l0] | b.add_masks[l0]
            if b.scale_masks is not None:
                occupied |= b.scale_masks[l0]
            if b.noise_masks is not None:
                occupied |= b.noise_masks[l0]
            if occupied.any():
                out.zero_masks[l0] &= ~occupied
                out.set_masks[l0] &= ~occupied
                out.add_masks[l0] &= ~occupied
                if out.scale_masks is not None:
                    out.scale_masks[l0] &= ~occupied
                if out.noise_masks is not None:
                    out.noise_masks[l0] &= ~occupied
                if out.gate_p is not None:
                    out.gate_p[l0][occupied] = 1.0
            out.zero_masks[l0] |= b.zero_masks[l0]
            out.set_masks[l0] |= b.set_masks[l0]
            np.copyto(out.set_values[l0], b.set_values[l0],
                      where=b.set_masks[l0])
            out.add_masks[l0] |= b.add_masks[l0]
            np.copyto(out.add_values[l0], b.add_values[l0],
                      where=b.add_masks[l0])
            if b.scale_masks is not None and b.scale_masks[l0].any():
                _ensure_channel(out, "scale_masks", "scale_values", sizes, S)
                out.scale_masks[l0] |= b.scale_masks[l0]
                np.copyto(out.scale_values[l0], b.scale_values[l0],
                          where=b.scale_masks[l0])
            if b.noise_masks is not None and b.noise_masks[l0].any():
                _ensure_channel(out, "noise_masks", "noise_sigma", sizes, S)
                out.noise_masks[l0] |= b.noise_masks[l0]
                np.copyto(out.noise_sigma[l0], b.noise_sigma[l0],
                          where=b.noise_masks[l0])
            if b.gate_p is not None and np.any(b.gate_p[l0] < 1.0):
                if out.gate_p is None:
                    out.gate_p = [np.ones((S, n)) for n in sizes]
                np.copyto(out.gate_p[l0], b.gate_p[l0],
                          where=b.gate_p[l0] < 1.0)
    if any(b.synapse_stages is not None for b in batches):
        n_stages = max(
            len(b.synapse_stages)
            for b in batches
            if b.synapse_stages is not None
        )
        out.synapse_stages = [
            _merged_stage(
                [
                    b.synapse_stages[stage]
                    for b in batches
                    if b.synapse_stages is not None
                ]
            )
            for stage in range(n_stages)
        ]
    return out


class MixedFaultSampler(MaskSampler):
    """Heterogeneous fault populations per scenario.

    Each component sampler draws its own population for every scenario
    and the per-scenario union is one deployment — e.g. two crashed
    neurons + one Byzantine neuron + Bernoulli synapse noise, the
    "realistic mixed deployment" the reliability and boosting
    experiments model.  Components draw sequentially from the shared
    generator, so a mixed campaign is exactly as reproducible as its
    parts; on the rare cell targeted by two components, the later
    component wins (scenario-dict merge semantics).
    """

    def __init__(self, components: Sequence[MaskSampler]):
        components = list(components)
        if not components:
            raise ValueError("MixedFaultSampler needs at least one component")
        super().__init__(components[0].layer_sizes)
        for c in components[1:]:
            if tuple(c.layer_sizes) != self.layer_sizes:
                raise ValueError(
                    f"component layer sizes {c.layer_sizes} != "
                    f"{self.layer_sizes}"
                )
        self.components = components

    def check_network(self, network: FeedForwardNetwork) -> None:
        for c in self.components:
            c.check_network(network)

    def sample(self, n_scenarios, rng):
        return merge_mask_batches(
            self.layer_sizes,
            [c.sample(n_scenarios, rng) for c in self.components],
        )


# ---------------------------------------------------------------------------
# Exhaustive sweeps, compiled to index arrays
# ---------------------------------------------------------------------------


def combination_index_array(n: int, k: int) -> np.ndarray:
    """All ``C(n, k)`` lexicographic combinations as an ``(M, k)`` array.

    Replaces ``itertools.combinations`` in the exhaustive campaigns:
    blocks sharing a prefix are filled in bulk (the innermost column is
    a single ``arange`` write per prefix), so the Python-level work is
    proportional to the number of *prefixes*, not the number of
    combinations.
    """
    if k < 0 or n < 0:
        raise ValueError(f"need n, k >= 0, got n={n}, k={k}")
    if k > n:
        return np.empty((0, k), dtype=np.intp)
    m = math.comb(n, k)
    out = np.empty((m, k), dtype=np.intp)

    # Explicit stack instead of recursion: block regions are disjoint,
    # so fill order is immaterial, and depth never hits a Python
    # recursion limit even for k ~ n.
    stack: List[tuple] = [(out, 0, k)]
    while stack:
        block, start, k_left = stack.pop()
        if k_left == 0:
            continue
        if k_left == 1:
            block[:, 0] = np.arange(start, n, dtype=np.intp)
            continue
        row = 0
        for first in range(start, n - k_left + 1):
            c = math.comb(n - first - 1, k_left - 1)
            block[row : row + c, 0] = first
            stack.append((block[row : row + c, 1:], first + 1, k_left - 1))
            row += c
    return out


def masks_from_flat_indices(
    layer_sizes: Sequence[int], flat_indices: np.ndarray
) -> CompiledScenarioBatch:
    """Crash-mask batch from ``(S, k)`` flat neuron indices.

    Flat indices follow layer-major order (the
    :meth:`FeedForwardNetwork.flat_index` convention).  The scatter is
    fully vectorised: one boolean partition + fancy-index write per
    layer, regardless of ``S``.
    """
    sizes = tuple(int(v) for v in layer_sizes)
    flat = np.asarray(flat_indices, dtype=np.intp)
    if flat.ndim != 2:
        raise ValueError(f"flat_indices must be 2-D (S, k), got shape {flat.shape}")
    total = sum(sizes)
    if flat.size and (flat.min() < 0 or flat.max() >= total):
        raise ValueError(f"flat indices outside 0..{total - 1}")
    batch = empty_mask_batch(sizes, flat.shape[0])
    if flat.size == 0:
        return batch
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    layer_of = np.searchsorted(offsets, flat, side="right") - 1  # (S, k)
    within = flat - offsets[layer_of]
    rows = np.broadcast_to(np.arange(flat.shape[0])[:, None], flat.shape)
    for l0 in range(len(sizes)):
        pick = layer_of == l0
        if pick.any():
            batch.zero_masks[l0][rows[pick], within[pick]] = True
    return batch


# ---------------------------------------------------------------------------
# Streaming evaluation
# ---------------------------------------------------------------------------


class MaskCampaignEngine:
    """Streams mask batches through preallocated activation buffers.

    Built once per campaign (or once per worker): caches the probe
    inputs, the nominal outputs, and dtype-cast transposed weights; then
    :meth:`evaluate` processes any number of scenarios in slices of at
    most ``chunk_size``, reusing one ``(chunk, B, N_l)`` buffer per
    layer.  Peak memory is therefore bounded by the chunk, not the
    campaign.

    ``dtype=float64`` (default) matches the scalar injector bit-for-bit
    up to float associativity; ``dtype=float32`` halves memory traffic
    and roughly doubles GEMM throughput at ~1e-6 relative error —
    plenty for Monte-Carlo campaign statistics (see DESIGN.md).
    """

    def __init__(
        self,
        injector: FaultInjector,
        x: np.ndarray,
        *,
        chunk_size: int = 1024,
        reduction: str = "max",
        dtype: "str | np.dtype" = np.float64,
    ):
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if reduction not in ("max", "mean"):
            raise ValueError(f"unknown reduction {reduction!r}")
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(f"dtype must be float32 or float64, got {self.dtype}")
        self.injector = injector
        self.network = injector.network
        self.capacity = injector.capacity
        self.chunk_size = int(chunk_size)
        self.reduction = reduction

        xb, _ = self.network._as_batch(x)
        # The float64 original is kept alongside the engine-dtype cast:
        # the engine-reuse guard in sampled_campaign_errors compares
        # probe batches in float64, so two distinct float64 batches
        # that collide at float32 cannot silently pass on a float32
        # engine.
        self.xb64 = np.array(xb, dtype=np.float64)
        self.xb = np.ascontiguousarray(xb, dtype=self.dtype)
        self.batch_size = self.xb.shape[0]

        # Per-campaign weight cache: transposed dense weights and bias
        # vectors in the engine dtype (one cast, reused every chunk).
        self._weights_t: List[np.ndarray] = []
        self._biases: List[Optional[np.ndarray]] = []
        for layer in self.network.layers:
            self._weights_t.append(
                np.ascontiguousarray(layer.dense_weights().T, dtype=self.dtype)
            )
            if getattr(layer, "use_bias", False):
                bias = np.asarray(layer.parameters()["bias"], dtype=self.dtype)
                # Conv1D carries a single shared bias; broadcast is fine.
                self._biases.append(bias)
            else:
                self._biases.append(None)
        self._out_weights_t = np.ascontiguousarray(
            self.network.output_weights.T, dtype=self.dtype
        )
        self._out_bias = np.asarray(self.network.output_bias, dtype=self.dtype)

        # First-layer activations are scenario-independent: compute once.
        self._base_first = self._layer_forward(0, self.xb)
        # Nominal outputs through the same cached path (so float32
        # campaigns compare faulty vs nominal in the same precision).
        y = self._base_first
        for l0 in range(1, self.network.depth):
            y = self._layer_forward(l0, y)
        self._nominal = y @ self._out_weights_t + self._out_bias  # (B, n_out)

        self._buffers: Optional[List[np.ndarray]] = None
        self._out_buffer: Optional[np.ndarray] = None
        self._base_pre1: Optional[np.ndarray] = None
        self._base_pre1_t: Optional[np.ndarray] = None
        self._workspace = MaskWorkspace()
        #: Optional :class:`~repro.profiling.PhaseProfile`; when set,
        #: :meth:`_evaluate_slice` charges wall time to its buckets.
        self.profile = None

    # -- internals ---------------------------------------------------------

    def _layer_forward(self, l0: int, y: np.ndarray) -> np.ndarray:
        s = y @ self._weights_t[l0]
        if self._biases[l0] is not None:
            s += self._biases[l0]
        out = self.network.layers[l0].activation.evaluate_into(s, s)
        self._post_activation(l0, out)
        return out

    def _post_activation(self, l0: int, arr: np.ndarray) -> None:
        """Hook on every layer's post-activation values (in place).

        A no-op here; quantized backends override it to round emissions
        to their wire precision before faults corrupt them — see
        :class:`repro.backends.quantized.QuantizedMaskEngine`.
        """

    def _stage_weights(self, stage: int) -> np.ndarray:
        """Dense ``(N_out, N_in)`` weights of synapse stage ``stage``
        (0-based; ``depth`` is the output stage), in the engine dtype."""
        if stage == self.network.depth:
            return self._out_weights_t.T
        return self._weights_t[stage].T

    def _ensure_base_pre1(self) -> np.ndarray:
        """Cached layer-1 *pre-activation* sums ``(B, N_1)``; needed only
        by scenarios with stage-1 synapse faults, where the received
        sums must be corrected before squashing."""
        if self._base_pre1 is None:
            s = self.xb @ self._weights_t[0]
            if self._biases[0] is not None:
                s += self._biases[0]
            self._base_pre1 = s
            # Contiguous (N_1, B) twin: the sparse stage-1 kernel
            # gathers per-neuron rows, which is fastest off this layout.
            self._base_pre1_t = np.ascontiguousarray(s.T)
        return self._base_pre1

    def _ensure_buffers(self) -> None:
        if self._buffers is not None:
            return
        chunk, B = self.chunk_size, self.batch_size
        self._buffers = [
            np.empty((chunk, B, n), dtype=self.dtype)
            for n in self.network.layer_sizes
        ]
        self._out_buffer = np.empty(
            (chunk, B, self.network.n_outputs), dtype=self.dtype
        )

    def _apply_masks(
        self,
        Y: np.ndarray,
        batch: CompiledScenarioBatch,
        l0: int,
        lo: int,
        hi: int,
        rng: "np.random.Generator | None" = None,
    ) -> None:
        """In-place fault application on ``(S, B, N_l)`` activations,
        through the semantics shared with ``FaultInjector.run_many``."""
        if batch.neuron_channels_clear:
            return  # scan-free, draw-free skip (see CompiledScenarioBatch)

        def chan(lst):
            return lst[l0][lo:hi] if lst is not None else None

        apply_mask_channels(
            Y,
            batch.zero_masks[l0][lo:hi],
            batch.set_masks[l0][lo:hi],
            batch.set_values[l0][lo:hi],
            batch.add_masks[l0][lo:hi],
            batch.add_values[l0][lo:hi],
            self.capacity,
            scale_mask=chan(batch.scale_masks),
            scale_values=chan(batch.scale_values),
            noise_mask=chan(batch.noise_masks),
            noise_sigma=chan(batch.noise_sigma),
            gate_p=chan(batch.gate_p),
            rng=rng,
            workspace=self._workspace,
        )

    def _corrected_first_layer(
        self,
        Y: np.ndarray,
        st0: SynapseStageChannels,
        rng: "np.random.Generator | None",
    ) -> None:
        """Stage-1 synapse corrections via the sparse segment plan.

        Only the ``T`` distinct ``(scenario, neuron)`` targets differ
        from the nominal first layer, so instead of broadcasting and
        re-squashing all ``S x B x N_1`` received sums, gather the
        cached base pre-activations of the targets, accumulate the
        corrections there (same per-target order as the dense
        reference), squash the ``(T, B)`` cells, and scatter them over
        the broadcast nominal activations.  Elementwise identical to
        the dense path — untouched cells squash the identical base sums
        — hence bitwise-equal results.
        """
        plan = _stage_plan(st0, Y.shape[2])
        contrib = _stage_contributions(
            st0, plan, self.xb, self._stage_weights(0), self.capacity, rng,
            self.batch_size,
        )
        self._ensure_base_pre1()
        tgt = self._base_pre1_t[plan.u_j]  # (T, B) gather-copy
        if plan.first is None:
            tgt += contrib  # identity plan: entries already in target order
        else:
            tgt += contrib[plan.first]
        if plan.rest is not None:
            np.add.at(tgt, plan.rest_rows, contrib[plan.rest])
        self.network.layers[0].activation.evaluate_into(tgt, tgt)
        self._post_activation(0, tgt)
        Y[...] = self._base_first  # broadcast (B, N_1) over S scenarios
        Y.transpose(0, 2, 1)[plan.u_s, plan.u_j] = tgt

    def _evaluate_slice(
        self,
        batch: CompiledScenarioBatch,
        lo: int,
        hi: int,
        want_outputs: bool,
        rng: "np.random.Generator | None" = None,
    ) -> np.ndarray:
        self._ensure_buffers()
        S, B = hi - lo, self.batch_size
        net = self.network
        stages = batch.synapse_stages
        prof = self.profile
        tick = prof.timer() if prof is not None else None

        def stage(l0: int):
            if stages is None or stages[l0].is_empty:
                return None
            if lo == 0 and hi >= batch.num_scenarios:
                return stages[l0]  # full cover: keep the cached plan
            st = stages[l0].sliced(lo, hi)
            return None if st.is_empty else st

        Y = self._buffers[0][:S]
        st0 = stage(0)
        if tick is not None:
            tick("compile")
        if st0 is not None:
            # Stage-1 synapse faults corrupt the received sums of layer 1.
            if _injector_mod.SYNAPSE_KERNEL == "segment":
                self._corrected_first_layer(Y, st0, rng)
            else:
                # Reference path: broadcast the cached pre-activations,
                # correct densely, squash everything.
                Y[...] = self._ensure_base_pre1()
                apply_synapse_corrections(
                    Y, st0, self.xb, self._stage_weights(0), self.capacity,
                    rng,
                )
                Y2 = Y.reshape(S * B, -1)
                net.layers[0].activation.evaluate_into(Y2, Y2)
                self._post_activation(0, Y2)
            if tick is not None:
                tick("corrections")
        else:
            Y[...] = self._base_first  # broadcast (B, N_1) over S scenarios
            if tick is not None:
                tick("gemm")
        self._apply_masks(Y, batch, 0, lo, hi, rng)
        if tick is not None:
            tick("corrections")
        for l0 in range(1, net.depth):
            src = self._buffers[l0 - 1][:S].reshape(S * B, -1)
            dst = self._buffers[l0][:S].reshape(S * B, -1)
            np.matmul(src, self._weights_t[l0], out=dst)
            if self._biases[l0] is not None:
                dst += self._biases[l0]
            if tick is not None:
                tick("gemm")
            st = stage(l0)
            if st is not None:
                apply_synapse_corrections(
                    self._buffers[l0][:S], st, self._buffers[l0 - 1][:S],
                    self._stage_weights(l0), self.capacity, rng,
                )
                if tick is not None:
                    tick("corrections")
            net.layers[l0].activation.evaluate_into(dst, dst)
            self._post_activation(l0, dst)
            if tick is not None:
                tick("gemm")
            self._apply_masks(self._buffers[l0][:S], batch, l0, lo, hi, rng)
            if tick is not None:
                tick("corrections")
        out2d = self._out_buffer[:S].reshape(S * B, -1)
        np.matmul(
            self._buffers[net.depth - 1][:S].reshape(S * B, -1),
            self._out_weights_t,
            out=out2d,
        )
        out2d += self._out_bias
        if tick is not None:
            tick("gemm")
        out = self._out_buffer[:S]
        st = stage(net.depth)
        if st is not None:
            apply_synapse_corrections(
                out, st, self._buffers[net.depth - 1][:S],
                self._stage_weights(net.depth), self.capacity, rng,
            )
            if tick is not None:
                tick("corrections")
        if want_outputs:
            return out.copy()
        err = np.abs(out - self._nominal[None]).max(axis=2)  # (S, B)
        result = err.max(axis=1) if self.reduction == "max" else err.mean(axis=1)
        if tick is not None:
            tick("reduction")
            prof.scenarios += S
        return result

    def _resolve_rng(
        self, batch: CompiledScenarioBatch, rng: "np.random.Generator | None"
    ) -> "np.random.Generator | None":
        if rng is None and batch.is_stochastic:
            rng = unseeded_rng("MaskCampaignEngine.evaluate")
        return rng

    # -- public API --------------------------------------------------------

    def evaluate(
        self,
        batch: CompiledScenarioBatch,
        *,
        rng: "np.random.Generator | None" = None,
    ) -> np.ndarray:
        """Per-scenario output errors, shape ``(S,)``, streamed in chunks.

        Stochastic batches (noise channels, intermittent gates, synapse
        noise) realise their draws from ``rng``, slice by slice;
        omitting it on such a batch warns once and falls back to fresh
        entropy (irreproducible).
        """
        S = batch.num_scenarios
        if S == 0:
            return np.empty(0, dtype=np.float64)
        rng = self._resolve_rng(batch, rng)
        pieces = [
            self._evaluate_slice(
                batch, lo, min(lo + self.chunk_size, S), False, rng
            )
            for lo in range(0, S, self.chunk_size)
        ]
        return np.concatenate(pieces).astype(np.float64, copy=False)

    def outputs(
        self,
        batch: CompiledScenarioBatch,
        *,
        rng: "np.random.Generator | None" = None,
    ) -> np.ndarray:
        """Faulty outputs ``(S, B, n_outputs)`` (materialised; prefer
        :meth:`evaluate` for large campaigns)."""
        S = batch.num_scenarios
        if S == 0:
            return np.empty((0, self.batch_size, self.network.n_outputs))
        rng = self._resolve_rng(batch, rng)
        pieces = [
            self._evaluate_slice(
                batch, lo, min(lo + self.chunk_size, S), True, rng
            )
            for lo in range(0, S, self.chunk_size)
        ]
        return np.concatenate(pieces)

    @property
    def nominal(self) -> np.ndarray:
        """Nominal outputs ``(B, n_outputs)`` in the engine dtype."""
        return self._nominal


# ---------------------------------------------------------------------------
# Fork-once worker pool plumbing
# ---------------------------------------------------------------------------

def _build_campaign_state(  # pragma: no cover - subprocess body
    network, capacity, xb, chunk_size, reduction, dtype, sampler,
    instrument=False,
):
    """fork_once_pool builder: this worker's engine, built exactly once."""
    injector = FaultInjector(network, capacity=capacity)
    engine = MaskCampaignEngine(
        injector, xb, chunk_size=chunk_size, reduction=reduction, dtype=dtype
    )
    return {"engine": engine, "sampler": sampler, "instrument": instrument}


def _worker_sample_and_evaluate(job):  # pragma: no cover - subprocess body
    """Job payload: ``(block_index, n_scenarios, SeedSequence)``.

    The block's generator first drives the sampler, then (for
    stochastic fault models) the evaluation-time draws — the same
    stream discipline as the serial path, so serial == parallel.
    Returns ``(errors, payload)`` where ``payload`` is the block's
    observation payload (spans + metrics + per-phase seconds) when the
    pool was built with ``instrument=True``, else None — recording
    draws no randomness, so the errors are bitwise identical either
    way.
    """
    index, size, seed_seq = job
    state = worker_state()
    engine = state["engine"]
    rng = np.random.default_rng(seed_seq)
    if not state.get("instrument"):
        batch = state["sampler"].sample(size, rng)
        return engine.evaluate(batch, rng=rng), None
    ob = RunObserver()
    engine.profile = ob.profile
    try:
        with ob.block_span(index, size):
            t0 = _perf_counter()
            batch = state["sampler"].sample(size, rng)
            ob.profile.add("sampling", _perf_counter() - t0)
            errors = engine.evaluate(batch, rng=rng)
    finally:
        engine.profile = None
    return errors, ob.worker_payload()


def _worker_evaluate_flat(job):  # pragma: no cover - subprocess body
    """Job payload: ``(block_index, flat)`` with ``flat`` an ``(S, k)``
    flat combination index block.  Returns ``(errors, payload)`` like
    :func:`_worker_sample_and_evaluate`."""
    index, flat = job
    state = worker_state()
    engine = state["engine"]
    if not state.get("instrument"):
        batch = masks_from_flat_indices(engine.network.layer_sizes, flat)
        return engine.evaluate(batch), None
    ob = RunObserver()
    engine.profile = ob.profile
    try:
        with ob.block_span(index, int(flat.shape[0])):
            t0 = _perf_counter()
            batch = masks_from_flat_indices(engine.network.layer_sizes, flat)
            ob.profile.add("compile", _perf_counter() - t0)
            errors = engine.evaluate(batch)
    finally:
        engine.profile = None
    return errors, ob.worker_payload()


def _chunk_sizes(total: int, chunk: int) -> List[int]:
    full, rem = divmod(total, chunk)
    return [chunk] * full + ([rem] if rem else [])


#: Fixed sampling quantum: scenario block ``c`` always covers scenarios
#: ``[c * SAMPLE_BLOCK, (c+1) * SAMPLE_BLOCK)`` and always draws from the
#: ``c``-th spawned seed, regardless of the *evaluation* chunk size or
#: the worker count — so campaign results depend only on the seed.
SAMPLE_BLOCK = 1024


def sampled_campaign_errors(
    injector: FaultInjector,
    x: np.ndarray,
    sampler: MaskSampler,
    n_scenarios: int,
    *,
    seed: "int | np.random.SeedSequence | None" = None,
    chunk_size: int = 1024,
    reduction: str = "max",
    dtype: "str | np.dtype" = np.float64,
    n_workers: int = 0,
    engine: "MaskCampaignEngine | None" = None,
    profile=None,
    obs=None,
) -> np.ndarray:
    """Sample-and-evaluate ``n_scenarios`` scenarios; returns ``(S,)`` errors.

    Sampling happens in fixed blocks of :data:`SAMPLE_BLOCK` scenarios;
    block ``c`` always draws from the ``c``-th spawned child of
    ``SeedSequence(seed)``.  Results are therefore reproducible and
    identical between the serial and parallel paths (workers receive
    only block sizes and spawned seeds — the fork-once pool shipped the
    network at initialisation).  For *deterministic* fault models they
    are additionally identical across chunk sizes, which only bound the
    evaluation buffers; *stochastic* models (noise channels,
    intermittent gates) realise their draws slice by slice, so their
    per-scenario values are reproducible for a fixed ``(seed,
    chunk_size)`` — and a reused ``engine`` carries its own chunk size
    — while only the stream alignment, never the error distribution,
    depends on the chunking.

    ``engine`` lets a caller running *several* campaigns against the
    same network and probe batch (e.g. a survival curve over a grid of
    failure probabilities) reuse one :class:`MaskCampaignEngine` —
    skipping the per-campaign weight casts, nominal forward pass and
    buffer allocation.  The engine's injector, probe batch, chunk size,
    reduction and dtype take precedence over the corresponding
    arguments; engine reuse is in-process only (``n_workers`` must stay
    0/1 — workers build their own engines from the shipped network).

    ``profile`` (a :class:`~repro.profiling.PhaseProfile`) accumulates
    per-phase wall time — sampling here, the evaluation phases inside
    the engine.  With ``n_workers > 1`` each worker charges a private
    per-block profile that the parent folds home in block submission
    order.  ``obs`` (a :class:`~repro.obs.RunObserver`) additionally
    records one ``block`` span per scenario block — workers buffer
    theirs and the parent grafts them in the same order, so the trace
    structure matches the serial run and the errors stay bitwise
    identical with observation on or off.
    """
    if n_scenarios < 0:
        raise ValueError(f"n_scenarios must be >= 0, got {n_scenarios}")
    sampler.check_network(injector.network)
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if obs is not None and profile is None:
        profile = obs.profile
    if engine is not None:
        if engine.network is not injector.network:
            raise ValueError(
                "engine was built for a different network than the injector"
            )
        xb_arg, _ = injector.network._as_batch(x)
        # Compare probe batches in float64: casting to the engine dtype
        # first would let two distinct float64 batches that collide at
        # float32 slip past the guard on a float32 engine.
        if not np.array_equal(np.asarray(xb_arg, dtype=np.float64),
                              engine.xb64):
            raise ValueError(
                "engine was built for a different probe batch than x"
            )
        if n_workers and n_workers > 1:
            raise ValueError(
                "engine reuse is in-process only; drop the engine argument "
                "to fan out over workers"
            )
    if n_scenarios == 0:
        return np.empty(0, dtype=np.float64)
    ss = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    chunk_size = min(int(chunk_size), SAMPLE_BLOCK, int(n_scenarios))
    sizes = _chunk_sizes(n_scenarios, SAMPLE_BLOCK)
    children = ss.spawn(len(sizes))

    if n_workers and n_workers > 1:
        xb, _ = injector.network._as_batch(x)
        with fork_once_pool(
            n_workers,
            _build_campaign_state,
            (
                injector.network,
                injector.capacity,
                xb,
                chunk_size,
                reduction,
                np.dtype(dtype).name,
                sampler,
                profile is not None,
            ),
        ) as pool:
            pieces = []
            for errors, payload in bounded_map(
                pool,
                _worker_sample_and_evaluate,
                (
                    (c, size, child)
                    for c, (size, child) in enumerate(zip(sizes, children))
                ),
            ):
                pieces.append(errors)
                fold_worker_payload(payload, profile, obs)
        return np.concatenate(pieces)

    if engine is None:
        engine = MaskCampaignEngine(
            injector, x, chunk_size=chunk_size, reduction=reduction, dtype=dtype
        )
    prev_profile = getattr(engine, "profile", None)
    if profile is not None:
        engine.profile = profile
    try:
        pieces = []
        for c, (size, child) in enumerate(zip(sizes, children)):
            rng = np.random.default_rng(child)
            # One generator per block: sampling consumes it first, then
            # any stochastic evaluation draws — same as the worker path.
            with block_span_if(obs, c, size):
                if profile is not None:
                    t0 = _perf_counter()
                    mask_batch = sampler.sample(size, rng)
                    profile.add("sampling", _perf_counter() - t0)
                else:
                    mask_batch = sampler.sample(size, rng)
                pieces.append(engine.evaluate(mask_batch, rng=rng))
        return np.concatenate(pieces)
    finally:
        engine.profile = prev_profile


def exhaustive_crash_errors(
    injector: FaultInjector,
    x: np.ndarray,
    n_fail: int,
    *,
    chunk_size: int = 2048,
    reduction: str = "max",
    dtype: "str | np.dtype" = np.float64,
    n_workers: int = 0,
    max_configurations: int = 2_000_000,
    engine: "MaskCampaignEngine | None" = None,
    profile=None,
    obs=None,
) -> np.ndarray:
    """Errors for every configuration of exactly ``n_fail`` crashes.

    The ``C(num_neurons, n_fail)`` combination table is compiled to an
    index array in bulk; chunks of rows are scattered into crash masks
    and streamed through the engine.  Parallel workers receive only
    index blocks (the network went out once, via the pool initializer).

    ``engine`` reuses a prebuilt evaluation engine (any backend built
    for this injector), in-process only — mirroring
    :func:`sampled_campaign_errors`; its chunk size then bounds the
    mask blocks.  ``profile`` accumulates per-phase wall time (the
    combination-table scatter counts as ``compile``) and ``obs``
    records per-block spans — both work across workers, merged in
    block submission order like :func:`sampled_campaign_errors`.

    Refuses beyond ``max_configurations`` — the table is materialised
    up front, so an unguarded call on a large network would try to
    allocate the whole combinatorial explosion at once.  The bound
    applies to table *cells* (``C(n, k) * k``), not just rows: for
    ``k`` near ``n`` the row count stays small while the table does
    not.
    """
    net = injector.network
    if engine is not None:
        if engine.network is not net:
            raise ValueError(
                "engine was built for a different network than the injector"
            )
        xb_arg, _ = net._as_batch(x)
        if not np.array_equal(
            np.asarray(xb_arg, dtype=np.float64), engine.xb64
        ):
            raise ValueError(
                "engine was built for a different probe batch than x"
            )
        if n_workers and n_workers > 1:
            raise ValueError(
                "engine reuse is in-process only; drop the engine argument "
                "to fan out over workers"
            )
        chunk_size = int(engine.chunk_size)
    if obs is not None and profile is None:
        profile = obs.profile
    total = math.comb(net.num_neurons, int(n_fail))
    cells = total * max(1, int(n_fail))
    if total > max_configurations or cells > 8 * max_configurations:
        raise ValueError(
            f"exhaustive sweep would compile {total} configurations "
            f"({cells} index cells; limit {max_configurations} "
            "configurations); raise max_configurations only if the "
            "index table fits in memory"
        )
    combos = combination_index_array(net.num_neurons, int(n_fail))
    blocks: Iterator[np.ndarray] = (
        combos[lo : lo + chunk_size] for lo in range(0, combos.shape[0], chunk_size)
    )
    if combos.shape[0] == 0:
        return np.empty(0, dtype=np.float64)

    if n_workers and n_workers > 1:
        xb, _ = net._as_batch(x)
        with fork_once_pool(
            n_workers,
            _build_campaign_state,
            (
                net,
                injector.capacity,
                xb,
                chunk_size,
                reduction,
                np.dtype(dtype).name,
                None,
                profile is not None,
            ),
        ) as pool:
            pieces = []
            for errors, payload in bounded_map(
                pool, _worker_evaluate_flat, enumerate(blocks)
            ):
                pieces.append(errors)
                fold_worker_payload(payload, profile, obs)
        return np.concatenate(pieces)

    if engine is None:
        engine = MaskCampaignEngine(
            injector, x, chunk_size=chunk_size, reduction=reduction, dtype=dtype
        )
    prev_profile = getattr(engine, "profile", None)
    if profile is not None:
        engine.profile = profile
    try:
        pieces = []
        for c, block in enumerate(blocks):
            with block_span_if(obs, c, int(block.shape[0])):
                if profile is not None:
                    t0 = _perf_counter()
                    mask_batch = masks_from_flat_indices(
                        net.layer_sizes, block
                    )
                    profile.add("compile", _perf_counter() - t0)
                else:
                    mask_batch = masks_from_flat_indices(
                        net.layer_sizes, block
                    )
                pieces.append(engine.evaluate(mask_batch))
        return np.concatenate(pieces)
    finally:
        engine.profile = prev_profile
