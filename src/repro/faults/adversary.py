"""Worst-case (adversarial) failure construction and input search.

The tightness halves of Theorems 1-3 are *constructive*: the adversary
crashes the neurons with the highest weights, on inputs where those
neurons were emitting values close to the activation maximum, and
Byzantine neurons saturate the transmission capacity in the most
harmful direction.  This module operationalises that adversary:

* :func:`output_sensitivities` — exact gradients of the output w.r.t.
  each neuron's emitted value (the "weight" of a failure);
* :func:`adversarial_byzantine_scenario` — victims and emission signs
  chosen by sensitivity;
* :func:`adversarial_crash_scenario` — victims whose *removal* hurts
  most (sensitivity x nominal emission);
* :func:`worst_input_search` — random + local search over the input
  cube maximising the realised output error for a fixed scenario.

Together these provide the empirical lower bound that the experiments
compare against the analytic Fep upper bound.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..network.model import FeedForwardNetwork, NeuronAddress
from .injector import FaultInjector
from .scenarios import FailureScenario
from .types import ByzantineFault, CrashFault

__all__ = [
    "output_sensitivities",
    "adversarial_byzantine_scenario",
    "adversarial_crash_scenario",
    "worst_input_search",
]


def output_sensitivities(
    network: FeedForwardNetwork, x: np.ndarray
) -> List[np.ndarray]:
    """Gradients ``d Fneu / d y^(l)_i`` for every hidden layer.

    Returns a list of length ``L``; entry ``l-1`` has shape
    ``(B, N_l)`` (single-output networks; for multi-output nets the
    max-|.|-over-outputs gradient is returned).

    The sensitivity of the output to neuron ``(l, i)``'s emission is
    exactly the coefficient that multiplies an infinitesimal error
    ``lambda^(l)_i`` in the forward error propagation — the empirical
    counterpart of the per-layer Fep terms.
    """
    net = network
    xb, _ = net._as_batch(x)
    B = xb.shape[0]

    # Forward pass keeping pre-activations.
    pre: List[np.ndarray] = []
    y = xb
    for layer in net.layers:
        s = layer.pre_activation(y)
        pre.append(s)
        y = layer.activation(s)

    sens: List[Optional[np.ndarray]] = [None] * net.depth
    # g[b, i] = d out / d y^(L)_i ; reduce multi-output by max-abs later.
    # We propagate one gradient per output then take the max over outputs.
    grads = np.broadcast_to(
        net.output_weights[:, None, :], (net.n_outputs, B, net.layer_sizes[-1])
    ).copy()  # (O, B, N_L)
    sens[net.depth - 1] = np.max(np.abs(grads), axis=0)
    for l0 in range(net.depth - 1, 0, -1):
        layer = net.layers[l0]
        dphi = layer.activation.derivative(pre[l0])  # (B, N_l0+1)
        w = layer.dense_weights()  # (N_{l0+1}, N_{l0})
        grads = (grads * dphi[None]) @ w  # (O, B, N_{l0})
        sens[l0 - 1] = np.max(np.abs(grads), axis=0)
    return [np.asarray(s) for s in sens]


def _signed_sensitivities(
    network: FeedForwardNetwork, x: np.ndarray
) -> List[np.ndarray]:
    """Like :func:`output_sensitivities` but signed, first output only."""
    net = network
    xb, _ = net._as_batch(x)
    pre: List[np.ndarray] = []
    y = xb
    for layer in net.layers:
        s = layer.pre_activation(y)
        pre.append(s)
        y = layer.activation(s)
    grads = np.broadcast_to(
        net.output_weights[0][None, :], (xb.shape[0], net.layer_sizes[-1])
    ).copy()
    out: List[np.ndarray] = [grads]
    for l0 in range(net.depth - 1, 0, -1):
        layer = net.layers[l0]
        dphi = layer.activation.derivative(pre[l0])
        grads = (grads * dphi) @ layer.dense_weights()
        out.append(grads)
    out.reverse()
    return out


def adversarial_byzantine_scenario(
    network: FeedForwardNetwork,
    distribution: Sequence[int],
    x: np.ndarray,
    *,
    capacity: Optional[float] = 1.0,
    name: str = "adversarial-byzantine",
) -> FailureScenario:
    """Byzantine scenario maximising first-order output damage.

    Victims in each layer are the neurons with the highest mean
    |sensitivity| over the input batch; each emits the capacity with
    the sign of its (mean) sensitivity, i.e. pushes the output in a
    coherent direction — the equality-case alignment ("positively
    proportional" contributions) of the tightness proofs.
    """
    if len(distribution) != network.depth:
        raise ValueError(
            f"distribution length {len(distribution)} != depth {network.depth}"
        )
    signed = _signed_sensitivities(network, x)
    faults = {}
    for l, count in enumerate(distribution, start=1):
        count = int(count)
        if count == 0:
            continue
        mean_signed = signed[l - 1].mean(axis=0)
        order = np.argsort(np.abs(mean_signed))[::-1][:count]
        for i in order:
            sign = 1 if mean_signed[i] >= 0 else -1
            value = None if capacity is not None else 1.0
            faults[NeuronAddress(l, int(i))] = ByzantineFault(value=value, sign=sign)
    return FailureScenario(faults, name=name)


def adversarial_crash_scenario(
    network: FeedForwardNetwork,
    distribution: Sequence[int],
    x: np.ndarray,
    *,
    name: str = "adversarial-crash",
) -> FailureScenario:
    """Crash the neurons whose removal perturbs the output most.

    First-order damage of crashing neuron ``(l, i)`` is
    ``|sensitivity * y_nominal|``; victims are ranked by its mean over
    the batch — the multilayer generalisation of "kill the key neurons
    with highest weights on inputs where they output close to 1"
    (Theorem 1's adversary).
    """
    if len(distribution) != network.depth:
        raise ValueError(
            f"distribution length {len(distribution)} != depth {network.depth}"
        )
    sens = output_sensitivities(network, x)
    hidden = network.hidden_outputs(x)
    faults = {}
    for l, count in enumerate(distribution, start=1):
        count = int(count)
        if count == 0:
            continue
        damage = (sens[l - 1] * np.abs(hidden[l - 1])).mean(axis=0)
        order = np.argsort(damage)[::-1][:count]
        for i in order:
            faults[NeuronAddress(l, int(i))] = CrashFault()
    return FailureScenario(faults, name=name)


def worst_input_search(
    injector: FaultInjector,
    scenario: FailureScenario,
    *,
    n_candidates: int = 256,
    refine_steps: int = 30,
    step: float = 0.25,
    rng: Optional[np.random.Generator] = None,
) -> tuple[np.ndarray, float]:
    """Search the input cube ``[0,1]^d`` for the error-maximising input.

    Random multistart (including the cube corners for small ``d``)
    followed by shrinking coordinate perturbations.  Returns
    ``(x_star, error)``.

    This is the "costly experiment of looking at all the possible
    inputs" the paper contrasts with the analytic bound — here reduced
    to a stochastic search usable as an empirical lower bound.
    """
    rng = rng if rng is not None else np.random.default_rng()
    d = injector.network.input_dim

    candidates = [rng.random((n_candidates, d))]
    if d <= 10:
        corners = np.array(
            np.meshgrid(*([[0.0, 1.0]] * d), indexing="ij")
        ).reshape(d, -1).T
        candidates.append(corners)
    xs = np.vstack(candidates)

    nominal = injector.network.forward(xs)
    faulty = injector.run(xs, scenario)
    errs = np.abs(nominal - faulty).max(axis=1)
    best_idx = int(np.argmax(errs))
    best_x = xs[best_idx].copy()
    best_err = float(errs[best_idx])

    scale = step
    for _ in range(refine_steps):
        proposals = np.clip(
            best_x[None, :] + rng.normal(0.0, scale, size=(16, d)), 0.0, 1.0
        )
        nom = injector.network.forward(proposals)
        fau = injector.run(proposals, scenario)
        perrs = np.abs(nom - fau).max(axis=1)
        k = int(np.argmax(perrs))
        if perrs[k] > best_err:
            best_err = float(perrs[k])
            best_x = proposals[k].copy()
        else:
            scale *= 0.7
    return best_x, best_err
