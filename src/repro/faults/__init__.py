"""Fault models, failure scenarios, vectorised injection, campaigns.

This subpackage realises the paper's failure model (Section II-B):
independently failing neurons (crash / Byzantine under bounded
transmission) and synapses, plus the experimental machinery to measure
the resulting output error at scale.
"""

from .adversary import (
    adversarial_byzantine_scenario,
    adversarial_crash_scenario,
    output_sensitivities,
    worst_input_search,
)
from .campaign import (
    CampaignResult,
    count_crash_configurations,
    exhaustive_crash_campaign,
    monte_carlo_campaign,
    run_campaign,
)
from .injector import (
    CompiledScenarioBatch,
    FaultInjector,
    apply_neuron_fault,
    static_fault_action,
)
from .masks import (
    BernoulliSampler,
    FixedDistributionSampler,
    MaskCampaignEngine,
    MaskSampler,
    combination_index_array,
    empty_mask_batch,
    exhaustive_crash_errors,
    masks_from_flat_indices,
    sampled_campaign_errors,
)
from .reliability import (
    ReliabilityEstimate,
    certified_survival_probability,
    mean_failures_to_violation,
    mission_survival_curve,
    monte_carlo_survival,
)
from .scenarios import (
    NOMINAL,
    FailureScenario,
    all_single_neuron_faults,
    byzantine_scenario,
    crash_scenario,
    exhaustive_crash_scenarios,
    random_failure_scenario,
    random_synapse_scenario,
    uniform_distribution,
    worst_case_byzantine_scenario,
    worst_case_crash_scenario,
)
from .types import (
    ByzantineFault,
    CrashFault,
    FaultModel,
    IntermittentFault,
    NeuronFault,
    NoiseFault,
    OffsetFault,
    SignFlipFault,
    StuckAtFault,
    SynapseByzantineFault,
    SynapseCrashFault,
    SynapseFault,
    SynapseNoiseFault,
)

__all__ = [
    "FaultModel",
    "NeuronFault",
    "SynapseFault",
    "CrashFault",
    "ByzantineFault",
    "StuckAtFault",
    "OffsetFault",
    "NoiseFault",
    "IntermittentFault",
    "SignFlipFault",
    "SynapseCrashFault",
    "SynapseByzantineFault",
    "SynapseNoiseFault",
    "FailureScenario",
    "NOMINAL",
    "crash_scenario",
    "byzantine_scenario",
    "random_failure_scenario",
    "random_synapse_scenario",
    "worst_case_crash_scenario",
    "worst_case_byzantine_scenario",
    "exhaustive_crash_scenarios",
    "all_single_neuron_faults",
    "uniform_distribution",
    "FaultInjector",
    "CompiledScenarioBatch",
    "static_fault_action",
    "apply_neuron_fault",
    "output_sensitivities",
    "adversarial_byzantine_scenario",
    "adversarial_crash_scenario",
    "worst_input_search",
    "CampaignResult",
    "run_campaign",
    "monte_carlo_campaign",
    "exhaustive_crash_campaign",
    "count_crash_configurations",
    "MaskSampler",
    "FixedDistributionSampler",
    "BernoulliSampler",
    "MaskCampaignEngine",
    "empty_mask_batch",
    "combination_index_array",
    "masks_from_flat_indices",
    "sampled_campaign_errors",
    "exhaustive_crash_errors",
    "certified_survival_probability",
    "monte_carlo_survival",
    "ReliabilityEstimate",
    "mission_survival_curve",
    "mean_failures_to_violation",
]
