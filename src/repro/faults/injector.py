"""Vectorised fault injection: run a network under a failure scenario.

The injector realises Definition 2 and Assumption 1 of the paper as
masked tensor algebra:

* a **crashed** neuron's emitted value is replaced by 0 ("stops
  sending"; consumers read 0 — no capacity interaction, and the
  crash-mode bounds use ``sup phi`` instead of ``C``);
* a **Byzantine** neuron broadcasts ``y + lambda`` (Theorem 2's error
  model): the *deviation* ``lambda`` carried by its synapses is
  bounded by the transmission capacity ``C`` (Assumption 1), so the
  effective emission is ``y + clip(requested - y, -C, +C)``.  Under
  *unbounded* capacity (``capacity=None``) no clipping happens, which
  is the regime of Lemma 1.  (The paper's Assumption 1 phrases the
  bound on the transmitted value; its Theorem-2 algebra bounds the
  error ``lambda`` by ``C`` — we follow the algebra, which is the
  sound-and-tight reading.  See DESIGN.md.);
* a **faulty synapse** corrupts the emission it carries: the receiver
  reads ``w_ji * v`` where ``|v - y_i| <= C`` (so the received-sum
  error is at most ``w_m * C``, the per-synapse term of Theorem 4 and
  Lemma 2); a crashed synapse delivers ``v = 0``.

Two execution paths are provided:

* :meth:`FaultInjector.run` — one scenario, batch of inputs; supports
  every fault model including stochastic ones.
* :meth:`FaultInjector.run_many` — a *batch of scenarios* compiled to
  per-layer mask channels, evaluated with one GEMM per layer for all
  S x B (scenario, input) pairs.  The whole fault taxonomy lowers:
  static faults as value channels, stochastic faults (noise,
  intermittent gates) as evaluation-time draws from a threaded RNG,
  synapse faults as sparse per-stage received-sum corrections.

For large campaigns, :mod:`repro.faults.masks` provides the
*mask-native* engine: samplers draw :class:`CompiledScenarioBatch`
masks directly as arrays (no per-scenario Python objects), and a
streaming evaluator reuses preallocated chunk buffers.
:meth:`FaultInjector.compile_batch` is the thin adapter that lowers
object scenarios into that same mask representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..network.model import FeedForwardNetwork
from .scenarios import FailureScenario
from .types import (
    ByzantineFault,
    CrashFault,
    FaultModel,
    IntermittentFault,
    NoiseFault,
    OffsetFault,
    SignFlipFault,
    StuckAtFault,
    SynapseByzantineFault,
    SynapseCrashFault,
    SynapseNoiseFault,
    fault_is_stochastic,
    unseeded_rng,
)

__all__ = [
    "FaultInjector",
    "CompiledScenarioBatch",
    "MaskWorkspace",
    "SynapseStageChannels",
    "static_fault_action",
    "fault_channel_action",
    "synapse_fault_action",
    "apply_neuron_fault",
    "apply_mask_channels",
    "apply_synapse_corrections",
    "apply_synapse_corrections_reference",
]

#: Synapse-correction kernel selector.  ``"segment"`` (the default)
#: routes through the precompiled per-stage segment plans below;
#: ``"scatter"`` retains the original ``np.add.at`` scatter as the
#: bitwise reference.  The equivalence tests flip this module global to
#: prove the two paths agree bit for bit.
SYNAPSE_KERNEL = "segment"

#: A channel write goes through the sparse gather/scatter kernel when
#: the affected cells cover at most ``1 / _SPARSE_ROWS_LIMIT`` of the
#: ``(S, N)`` mask; denser masks keep the vectorised masked write.
#: Both kernels are bitwise-identical, so the threshold is purely a
#: throughput heuristic.
_SPARSE_ROWS_LIMIT = 4


class MaskWorkspace:
    """Reusable scratch buffers for the per-chunk mask kernels.

    The gate (intermittent) kernels draw ``(K, B)`` uniforms per
    channel; drawing them into one growable buffer via
    ``Generator.random(out=...)`` produces the same stream as a fresh
    allocation while skipping the per-channel allocations.  One
    workspace per engine — it is not thread-safe, so the threaded
    backend gives each worker engine its own.
    """

    __slots__ = ("_uniform",)

    def __init__(self) -> None:
        self._uniform: Optional[np.ndarray] = None

    def uniform(self, rng: np.random.Generator, k: int, b: int) -> np.ndarray:
        """A ``(k, b)`` float64 uniform draw backed by the shared buffer.

        The returned view is invalidated by the next call; callers
        consume it immediately (comparisons materialise fresh bools).
        """
        buf = self._uniform
        if buf is None or buf.shape[0] < k or buf.shape[1] != b:
            rows = k if buf is None or buf.shape[1] != b else max(
                k, 2 * buf.shape[0]
            )
            buf = self._uniform = np.empty((rows, b))
        out = buf[:k]
        rng.random(out=out)
        return out


def static_fault_action(fault: FaultModel) -> Optional[tuple[str, float]]:
    """The input-independent action of a fault, or ``None``.

    Returns one of:

    * ``("zero", 0.0)`` — crash: emission is exactly 0;
    * ``("set", v)`` — Byzantine with explicit value / stuck-at: the
      emission is pulled to ``v`` subject to the deviation bound;
    * ``("add", delta)`` — Byzantine capacity sentinel (``+-inf``, to
      be resolved to ``+-C``) or a fixed offset: emission is
      ``y + delta``.

    Stochastic or sign-dependent faults (noise, sign flip) return
    ``None``; :func:`fault_channel_action` covers those via the
    stochastic mask channels.
    """
    if isinstance(fault, CrashFault):
        return ("zero", 0.0)
    if isinstance(fault, ByzantineFault):
        if fault.value is None:
            return ("add", fault.sign * np.inf)
        return ("set", float(fault.value))
    if isinstance(fault, StuckAtFault):
        return ("set", float(fault.value))
    if isinstance(fault, OffsetFault):
        return ("add", float(fault.offset))
    return None


def fault_channel_action(
    fault: FaultModel,
) -> Optional[tuple[str, float, float]]:
    """The mask-channel lowering ``(kind, value, gate_p)`` of a neuron fault.

    Extends :func:`static_fault_action` to the whole neuron-fault
    taxonomy:

    * ``("zero" | "set" | "add", v, p)`` — the static actions;
    * ``("scale", s, p)`` — multiplicative faults (sign flip is
      ``s = -1``): emission pulled toward ``s * y`` under the
      deviation bound;
    * ``("noise", sigma, p)`` — additive Gaussian noise, realised
      elementwise at evaluation time, deviation clipped to ``+-C``.

    ``gate_p`` is the per-element activation probability of the fault
    (1.0 for permanent faults); :class:`IntermittentFault` lowers to
    its wrapped fault's channel with ``gate_p`` multiplied by ``p``
    (nested intermittents compose multiplicatively — independent
    Bernoulli gates).  Returns ``None`` for synapse faults (see
    :func:`synapse_fault_action`) and unknown models.
    """
    base = static_fault_action(fault)
    if base is not None:
        return (*base, 1.0)
    if isinstance(fault, SignFlipFault):
        return ("scale", -1.0, 1.0)
    if isinstance(fault, NoiseFault):
        return ("noise", float(fault.sigma), 1.0)
    if isinstance(fault, IntermittentFault):
        inner = fault_channel_action(fault.fault)
        if inner is None:
            return None
        kind, value, gate = inner
        return (kind, value, gate * float(fault.p))
    return None


def synapse_fault_action(fault: FaultModel) -> Optional[tuple[str, float]]:
    """The weight-level lowering of a synapse fault, or ``None``.

    * ``("zero", 0.0)`` — crashed synapse: delivers 0, i.e. a
      received-sum correction ``w_ji * clip(-y_i, -C, +C)``;
    * ``("add", delta)`` — Byzantine synapse: correction
      ``w_ji * clip(delta, -C, +C)``; ``+-inf`` is the capacity
      sentinel (Lemma 2's saturated worst case);
    * ``("noise", sigma)`` — Gaussian noise on the carried emission.
    """
    if isinstance(fault, SynapseCrashFault):
        return ("zero", 0.0)
    if isinstance(fault, SynapseByzantineFault):
        if fault.offset is None:
            return ("add", fault.sign * np.inf)
        return ("add", float(fault.offset))
    if isinstance(fault, SynapseNoiseFault):
        return ("noise", float(fault.sigma))
    return None


def apply_neuron_fault(
    fault: FaultModel,
    nominal: np.ndarray,
    capacity: Optional[float],
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Faulty emission under the deviation-bounded semantics.

    Crash emits exactly 0; every other fault emits
    ``nominal + clip(requested - nominal, -C, +C)`` (Theorem 2's
    ``y + lambda`` with ``|lambda| <= C``).  Unbounded capacity passes
    finite requests through and rejects capacity sentinels.

    Intermittent faults are resolved here (not via
    ``IntermittentFault.apply``) so the wrapped fault keeps its own
    semantics elementwise — in particular an intermittent *crash*
    emits exactly 0 on hit (Definition 2: crashes do not interact with
    the capacity), where the old path clipped the crash deviation to
    ``+-C`` like a Byzantine value.
    """
    nominal = np.asarray(nominal, dtype=np.float64)
    if isinstance(fault, CrashFault):
        return np.zeros_like(nominal)
    if isinstance(fault, IntermittentFault):
        if rng is None:
            rng = unseeded_rng("apply_neuron_fault(IntermittentFault)")
        hit = rng.random(nominal.shape) < fault.p
        faulty = apply_neuron_fault(fault.fault, nominal, capacity, rng)
        return np.where(hit, faulty, nominal)
    requested = fault.apply(nominal, rng=rng)
    if capacity is None:
        if not np.all(np.isfinite(requested)):
            raise ValueError(
                "capacity-saturating fault (value=None) under unbounded "
                "transmission: specify an explicit Byzantine value"
            )
        return requested
    deviation = np.clip(requested - nominal, -capacity, capacity)
    return nominal + deviation


def apply_mask_channels(
    Y: np.ndarray,
    zero: np.ndarray,
    set_mask: np.ndarray,
    set_values: np.ndarray,
    add_mask: np.ndarray,
    add_values: np.ndarray,
    capacity: Optional[float],
    *,
    scale_mask: Optional[np.ndarray] = None,
    scale_values: Optional[np.ndarray] = None,
    noise_mask: Optional[np.ndarray] = None,
    noise_sigma: Optional[np.ndarray] = None,
    gate_p: Optional[np.ndarray] = None,
    rng: Optional[np.random.Generator] = None,
    workspace: Optional[MaskWorkspace] = None,
) -> np.ndarray:
    """Apply one layer's fault channels in place on ``(S, B, N)`` activations.

    The single definition of the mask semantics, shared by
    :meth:`FaultInjector.run_many` and the streaming engine in
    :mod:`repro.faults.masks` (so the two evaluation paths cannot
    diverge):

    * ``zero`` cells read exactly 0 (crash);
    * ``set`` cells are pulled toward the requested value but stay
      within ``[y - C, y + C]`` of the nominal activation (deviation
      bound);
    * ``add`` cells gain the offset, clipped to ``+-C`` — which also
      resolves ``+-inf`` capacity sentinels; under unbounded capacity
      sentinels are rejected (Lemma 1's regime);
    * ``scale`` cells are pulled toward ``scale * y`` under the
      deviation bound (sign flip is ``scale = -1``);
    * ``noise`` cells gain elementwise Gaussian noise
      ``clip(N(0, sigma), -C, +C)``, drawn per ``(scenario, input,
      neuron)`` from ``rng`` — exactly the scalar injector's draw
      distribution;
    * ``gate_p`` (1.0 = permanent) Bernoulli-gates whichever channel a
      cell carries, per ``(scenario, input, neuron)`` — the
      intermittent-fault semantics.

    Per scenario each neuron carries at most one fault, so the
    channels touch disjoint ``(s, i)`` cells and in-place order is
    immaterial.  Stochastic channels (noise, gates below 1) require a
    seeded ``rng`` and raise without one — unseeded campaigns are not
    reproducible.

    Gated (intermittent) and noisy cells are processed sparsely: per
    channel, the ``K`` affected cells are gathered through a transposed
    ``(S, N, B)`` view, draws cost ``(K, B)`` rather than ``(S, B, N)``,
    and the dense vectorised writes below only serve the permanent
    cells.  Draw order is fixed (gates per channel in zero / set /
    scale / add order, then noise), each in row-major cell order, so
    the stream is deterministic for a given batch.  A ``workspace``
    lets the gate draws reuse one growable buffer across chunks (same
    stream, fewer allocations).  Permanent ``set``/``scale``/``add``
    cells below the :data:`_SPARSE_ROWS_LIMIT` density additionally go
    through a gather/compute/scatter kernel on the ``(K, B)`` cells
    instead of full ``(S, B, N)`` arithmetic — elementwise identical,
    so results are bitwise-equal either way.
    """
    B = Y.shape[1]
    gated_cells = gate_p is not None and np.any(gate_p < 1.0)
    if gated_cells and rng is None:
        raise ValueError(
            "gated (intermittent) mask channels need an rng; pass the "
            "campaign generator"
        )
    Yt = Y.transpose(0, 2, 1)  # (S, N, B) view for per-cell gather/scatter

    def draw_uniform(k: int) -> np.ndarray:
        if workspace is not None:
            return workspace.uniform(rng, k, B)
        return rng.random((k, B))

    def split(mask: np.ndarray):
        """Partition a channel mask into (permanent part, gated cells).

        The gated part comes back as ``(rows, cols, hit)`` with ``hit``
        the freshly drawn ``(K, B)`` Bernoulli pattern.
        """
        if not gated_cells:
            return mask, None
        g = mask & (gate_p < 1.0)
        if not g.any():
            return mask, None
        rows, cols = np.nonzero(g)
        hit = draw_uniform(rows.size) < gate_p[rows, cols][:, None]
        return mask & ~g, (rows, cols, hit)

    def sparse_rows(dense: np.ndarray):
        """Cell coordinates when the mask is sparse enough, else None."""
        k = np.count_nonzero(dense)
        if k == 0 or k * _SPARSE_ROWS_LIMIT > dense.size:
            return None
        return np.nonzero(dense)

    if zero.any():
        dense, gated = split(zero)
        if dense.any():
            np.copyto(Y, 0.0, where=dense[:, None, :])
        if gated is not None:
            rows, cols, hit = gated
            cells = Yt[rows, cols]
            cells[hit] = 0.0
            Yt[rows, cols] = cells
    if set_mask.any():
        dense, gated = split(set_mask)
        if dense.any():
            sparse = sparse_rows(dense)
            if sparse is not None:
                rows, cols = sparse
                cells = Yt[rows, cols]
                vals = np.broadcast_to(
                    set_values[rows, cols][:, None], cells.shape
                )
                if capacity is not None:
                    vals = np.clip(vals, cells - capacity, cells + capacity)
                Yt[rows, cols] = vals
            else:
                vals = np.broadcast_to(set_values[:, None, :], Y.shape)
                if capacity is not None:
                    vals = np.clip(vals, Y - capacity, Y + capacity)
                np.copyto(Y, vals, where=dense[:, None, :], casting="unsafe")
        if gated is not None:
            rows, cols, hit = gated
            cells = Yt[rows, cols]
            vals = np.broadcast_to(
                set_values[rows, cols][:, None], cells.shape
            )
            if capacity is not None:
                vals = np.clip(vals, cells - capacity, cells + capacity)
            Yt[rows, cols] = np.where(hit, vals, cells)
    if scale_mask is not None and scale_mask.any():
        dense, gated = split(scale_mask)
        if dense.any():
            sparse = sparse_rows(dense)
            if sparse is not None:
                rows, cols = sparse
                cells = Yt[rows, cols]
                vals = scale_values[rows, cols][:, None] * cells
                if capacity is not None:
                    vals = np.clip(vals, cells - capacity, cells + capacity)
                Yt[rows, cols] = vals
            else:
                vals = scale_values[:, None, :] * Y
                if capacity is not None:
                    vals = np.clip(vals, Y - capacity, Y + capacity)
                np.copyto(Y, vals, where=dense[:, None, :], casting="unsafe")
        if gated is not None:
            rows, cols, hit = gated
            cells = Yt[rows, cols]
            vals = scale_values[rows, cols][:, None] * cells
            if capacity is not None:
                vals = np.clip(vals, cells - capacity, cells + capacity)
            Yt[rows, cols] = np.where(hit, vals, cells)
    if add_mask.any():
        if capacity is None and not np.all(np.isfinite(add_values[add_mask])):
            raise ValueError(
                "capacity-saturating fault under unbounded transmission"
            )
        dense, gated = split(add_mask)
        if dense.any():
            sparse = sparse_rows(dense)
            if sparse is not None:
                rows, cols = sparse
                add = add_values[rows, cols]
                if capacity is not None:
                    add = np.clip(add, -capacity, capacity)
                cells = Yt[rows, cols]
                cells += add[:, None]
                Yt[rows, cols] = cells
            else:
                add = add_values
                if capacity is not None:
                    add = np.clip(add, -capacity, capacity)
                np.add(Y, add[:, None, :], out=Y, where=dense[:, None, :],
                       casting="unsafe")
        if gated is not None:
            rows, cols, hit = gated
            add = add_values[rows, cols]
            if capacity is not None:
                add = np.clip(add, -capacity, capacity)
            cells = Yt[rows, cols]
            cells += np.where(hit, add[:, None], 0.0)
            Yt[rows, cols] = cells
    if noise_mask is not None and noise_mask.any():
        if rng is None:
            raise ValueError(
                "noise mask channels need an rng; pass the campaign generator"
            )
        rows, cols = np.nonzero(noise_mask)
        delta = (
            rng.standard_normal((rows.size, B))
            * noise_sigma[rows, cols][:, None]
        )
        if capacity is not None:
            np.clip(delta, -capacity, capacity, out=delta)
        if gated_cells:
            gp = gate_p[rows, cols]
            gated_idx = gp < 1.0
            if gated_idx.any():
                delta[gated_idx] *= (
                    draw_uniform(int(gated_idx.sum()))
                    < gp[gated_idx][:, None]
                )
        Yt[rows, cols] += delta
    return Y


def _synapse_emissions(
    source: np.ndarray, s_idx: np.ndarray, i_idx: np.ndarray
) -> np.ndarray:
    """The ``(K, B)`` emissions carried by a stage's faulty synapses.

    Always a fresh gather copy (fancy indexing), so callers may mutate
    the result in place.
    """
    if source.ndim == 2:  # stage 1: inputs, shared across scenarios
        return source.T[i_idx]
    return source[s_idx, :, i_idx]


def _bound_deviation(
    dev: np.ndarray, capacity: Optional[float]
) -> np.ndarray:
    """Clip a deviation to ``+-C``; reject non-finite under ``C=None``."""
    if capacity is None:
        if not np.all(np.isfinite(dev)):
            raise ValueError(
                "capacity-saturating synapse fault under unbounded "
                "transmission: specify an explicit offset"
            )
        return dev
    return np.clip(dev, -capacity, capacity)


class _SynapseStagePlan:
    """Precompiled scatter plan for one stage's COO fault entries.

    Built once per ``(stage, N_out)`` and cached on the stage: the
    entries are concatenated in channel order (zero, add, noise) —
    exactly the reference kernel's application order — and
    stable-sorted by the key ``scenario * N_out + receiving neuron``
    into CSR-style segments.  Each target's *first* occurrence lands in
    one buffered fancy-index ``+=`` over the unique ``(u_s, u_j)``
    cells; the duplicate tail (``rest``, a few percent of entries at
    most) is finished by ``np.add.at``, whose per-entry sequential
    accumulation — first occurrence already applied, later occurrences
    in stable-sorted (= entry) order — reproduces the reference
    ``np.add.at`` bit for bit on every cell (batched segment reductions
    like ``np.add.reduceat`` use pairwise summation and do *not*).
    Sampler-lowered single-kind stages arrive already key-sorted, so
    the argsort is usually skipped outright (``first is None`` encodes
    the identity), and the ``w_ji`` gather is cached per weight matrix
    identity, so steady-state chunks pay no index arithmetic at all.
    """

    __slots__ = (
        "cat_s", "cat_j", "u_s", "u_j",
        "first", "rest", "rest_s", "rest_j", "rest_rows", "_w_cache"
    )

    def __init__(self, stage: "SynapseStageChannels", n_out: int):
        s = np.concatenate((stage.zero_s, stage.add_s, stage.noise_s))
        j = np.concatenate((stage.zero_j, stage.add_j, stage.noise_j))
        self.cat_s = s
        self.cat_j = j
        self._w_cache = None
        self.first = self.rest = None
        self.rest_s = self.rest_j = self.rest_rows = None
        key = s * n_out + j
        k = key.size
        nxt, prv = key[1:], key[:-1]
        if bool(np.all(nxt > prv)):
            # Strictly increasing: already sorted, every target unique —
            # the identity plan, no index arithmetic at all.
            self.u_s = s
            self.u_j = j
            return
        if bool(np.all(nxt >= prv)):
            order = None  # sorted with duplicates: skip the argsort
            key_sorted = key
        else:
            order = np.argsort(key, kind="stable")
            key_sorted = key[order]
        head = np.empty(k, dtype=bool)  # True at each segment head
        head[0] = True
        np.not_equal(key_sorted[1:], key_sorted[:-1], out=head[1:])
        heads = np.flatnonzero(head)
        first = heads if order is None else order[heads]
        self.u_s = s[first]  # unique (scenario, neuron) targets,
        self.u_j = j[first]  # in sorted-key order
        if heads.size == k:
            # Unique targets that merely arrived unsorted: ``first``
            # permutes contributions into target order for the stage-1
            # gather kernel; the dense apply stays single-pass.
            self.first = order
            return
        self.first = first
        tail = np.flatnonzero(~head)  # non-head sorted slots, in order
        rest = tail if order is None else order[tail]
        self.rest = rest
        self.rest_s = s[rest]
        self.rest_j = j[rest]
        seg_id = np.cumsum(head) - 1  # segment index per sorted slot
        self.rest_rows = seg_id[tail]

    def gathered_weights(self, stage, weights):
        """Per-channel ``w_ji`` gathers, cached by weight-matrix identity."""
        cached = self._w_cache
        if cached is not None and cached[0] is weights:
            return cached[1]
        gathered = (
            weights[stage.zero_j, stage.zero_i],
            weights[stage.add_j, stage.add_i],
            weights[stage.noise_j, stage.noise_i],
        )
        self._w_cache = (weights, gathered)
        return gathered


def _stage_plan(stage: "SynapseStageChannels", n_out: int) -> _SynapseStagePlan:
    """The (cached) segment plan of a stage for a given fan-in width."""
    plan = stage._plans.get(n_out)
    if plan is None:
        plan = stage._plans[n_out] = _SynapseStagePlan(stage, n_out)
    return plan


def _stage_contributions(
    stage: "SynapseStageChannels",
    plan: _SynapseStagePlan,
    source: np.ndarray,
    weights: np.ndarray,
    capacity: Optional[float],
    rng: Optional[np.random.Generator],
    B: int,
) -> np.ndarray:
    """The correction rows ``w_ji * clip(delivered - y_i, -C, +C)``.

    Returned in the plan's channel concatenation order (zero, add,
    noise); elementwise identical to the reference kernel's values —
    only the scatter strategy differs.  Shape is ``(K, B)``, except an
    add-only stage returns ``(K, 1)`` (the reference broadcasts the
    same column too).
    """
    w_zero, w_add, w_noise = plan.gathered_weights(stage, weights)

    def bound_inplace(dev: np.ndarray) -> np.ndarray:
        # In-place twin of _bound_deviation for freshly-gathered/drawn
        # buffers; elementwise identical (clip is not order-sensitive).
        if capacity is None:
            if not np.all(np.isfinite(dev)):
                raise ValueError(
                    "capacity-saturating synapse fault under unbounded "
                    "transmission: specify an explicit offset"
                )
            return dev
        return np.clip(dev, -capacity, capacity, out=dev)

    parts = []
    if stage.zero_s.size:
        dev = _synapse_emissions(source, stage.zero_s, stage.zero_i)
        np.negative(dev, out=dev)
        bound_inplace(dev)
        np.multiply(dev, w_zero[:, None], out=dev)
        parts.append(dev)
    if stage.add_s.size:
        dev = _bound_deviation(stage.add_values, capacity)
        parts.append((w_add * dev)[:, None])
    if stage.noise_s.size:
        if rng is None:
            raise ValueError(
                "synapse noise channels need an rng; pass the campaign "
                "generator"
            )
        dev = rng.standard_normal((stage.noise_s.size, B))
        np.multiply(dev, stage.noise_sigma[:, None], out=dev)
        bound_inplace(dev)
        np.multiply(dev, w_noise[:, None], out=dev)
        parts.append(dev)
    if len(parts) == 1:
        return parts[0]
    return np.concatenate(
        [np.broadcast_to(p, (p.shape[0], B)) for p in parts], axis=0
    )


def _apply_plan_to_view(
    view: np.ndarray, plan: _SynapseStagePlan, contrib: np.ndarray
) -> None:
    """Scatter-add the contributions onto the ``(S, N_out, B)`` view."""
    if plan.rest is None:
        # Unique targets: one buffered fancy ``+=`` (any entry order —
        # disjoint cells — so no permutation needed).
        view[plan.cat_s, plan.cat_j] += contrib
    else:
        view[plan.u_s, plan.u_j] += contrib[plan.first]
        np.add.at(view, (plan.rest_s, plan.rest_j), contrib[plan.rest])


def apply_synapse_corrections(
    pre: np.ndarray,
    stage: "SynapseStageChannels | None",
    source: np.ndarray,
    weights: np.ndarray,
    capacity: Optional[float],
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Apply one stage's synapse-fault corrections in place.

    ``pre`` is the ``(S, B, N_out)`` received-sum tensor (Equation 3's
    ``s_j`` before squashing, or the output node's weighted sum);
    ``source`` holds the emissions the stage's synapses carry —
    ``(S, B, N_in)`` faulty upstream activations, or ``(B, N_in)``
    scenario-independent inputs for stage 1.  Each faulty synapse
    ``(s, j, i)`` adds ``w_ji * clip(delivered - y_i, -C, +C)`` to
    ``pre[s, :, j]`` — Lemma 2 / Theorem 4's per-synapse error term,
    shared verbatim between :meth:`FaultInjector.run_many` and the
    streaming engine.  Duplicate ``(s, j)`` targets accumulate (several
    faulty synapses into one neuron).

    Dispatches on :data:`SYNAPSE_KERNEL`: the default ``"segment"``
    kernel goes through the precompiled :class:`_SynapseStagePlan`
    (buffered fancy-index scatter, cached gathers); ``"scatter"``
    retains the original per-entry ``np.add.at``.  Both are
    bitwise-identical (same RNG draw order, same per-target
    accumulation order).
    """
    if stage is None or stage.is_empty:
        return pre
    if SYNAPSE_KERNEL != "segment":
        return apply_synapse_corrections_reference(
            pre, stage, source, weights, capacity, rng
        )
    plan = _stage_plan(stage, pre.shape[2])
    contrib = _stage_contributions(
        stage, plan, source, weights, capacity, rng, pre.shape[1]
    )
    _apply_plan_to_view(pre.transpose(0, 2, 1), plan, contrib)
    return pre


def apply_synapse_corrections_reference(
    pre: np.ndarray,
    stage: "SynapseStageChannels | None",
    source: np.ndarray,
    weights: np.ndarray,
    capacity: Optional[float],
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """The original ``np.add.at`` scatter kernel, kept as the bitwise
    reference for the segment plan (see :data:`SYNAPSE_KERNEL`)."""
    if stage is None or stage.is_empty:
        return pre
    B = pre.shape[1]
    view = pre.transpose(0, 2, 1)  # (S, N_out, B) view: scatter target

    if stage.zero_s.size:
        dev = _bound_deviation(
            -_synapse_emissions(source, stage.zero_s, stage.zero_i), capacity
        )
        np.add.at(
            view,
            (stage.zero_s, stage.zero_j),
            weights[stage.zero_j, stage.zero_i][:, None] * dev,
        )
    if stage.add_s.size:
        dev = _bound_deviation(stage.add_values, capacity)
        np.add.at(
            view,
            (stage.add_s, stage.add_j),
            (weights[stage.add_j, stage.add_i] * dev)[:, None],
        )
    if stage.noise_s.size:
        if rng is None:
            raise ValueError(
                "synapse noise channels need an rng; pass the campaign "
                "generator"
            )
        dev = _bound_deviation(
            rng.standard_normal((stage.noise_s.size, B))
            * stage.noise_sigma[:, None],
            capacity,
        )
        np.add.at(
            view,
            (stage.noise_s, stage.noise_j),
            weights[stage.noise_j, stage.noise_i][:, None] * dev,
        )
    return pre


@dataclass
class SynapseStageChannels:
    """COO fault entries for one synapse stage (weights into one layer).

    Entries are triples ``(s, j, i)`` — scenario ``s``, receiving
    neuron ``j``, emitting neuron ``i`` — grouped by action:

    * ``zero_*`` — crashed synapses (deliver 0);
    * ``add_*`` / ``add_values`` — Byzantine synapses (additive error;
      ``+-inf`` is the capacity sentinel, resolved at evaluation);
    * ``noise_*`` / ``noise_sigma`` — Gaussian noise on the carried
      emission, drawn per ``(entry, input)`` at evaluation time.

    Kept sparse (a campaign rarely touches more than a handful of the
    ``N_l x N_{l+1}`` synapses per scenario); the dense twin would cost
    a full weight-matrix mask per scenario.
    """

    zero_s: np.ndarray = field(default_factory=lambda: np.empty(0, np.intp))
    zero_j: np.ndarray = field(default_factory=lambda: np.empty(0, np.intp))
    zero_i: np.ndarray = field(default_factory=lambda: np.empty(0, np.intp))
    add_s: np.ndarray = field(default_factory=lambda: np.empty(0, np.intp))
    add_j: np.ndarray = field(default_factory=lambda: np.empty(0, np.intp))
    add_i: np.ndarray = field(default_factory=lambda: np.empty(0, np.intp))
    add_values: np.ndarray = field(
        default_factory=lambda: np.empty(0, np.float64)
    )
    noise_s: np.ndarray = field(default_factory=lambda: np.empty(0, np.intp))
    noise_j: np.ndarray = field(default_factory=lambda: np.empty(0, np.intp))
    noise_i: np.ndarray = field(default_factory=lambda: np.empty(0, np.intp))
    noise_sigma: np.ndarray = field(
        default_factory=lambda: np.empty(0, np.float64)
    )
    #: Lazily-built :class:`_SynapseStagePlan` per fan-in width; plans
    #: are pure functions of the (immutable) entries, so a benign
    #: last-writer-wins race under concurrent builders is acceptable.
    _plans: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    @property
    def is_empty(self) -> bool:
        return not (self.zero_s.size or self.add_s.size or self.noise_s.size)

    @property
    def is_stochastic(self) -> bool:
        return bool(self.noise_s.size)

    def sliced(self, lo: int, hi: int) -> "SynapseStageChannels":
        """Entries of scenarios ``lo..hi`` with rows shifted to 0-base."""
        def pick(s, *cols):
            keep = (s >= lo) & (s < hi)
            return (s[keep] - lo, *(c[keep] for c in cols))

        z_s, z_j, z_i = pick(self.zero_s, self.zero_j, self.zero_i)
        a_s, a_j, a_i, a_v = pick(
            self.add_s, self.add_j, self.add_i, self.add_values
        )
        n_s, n_j, n_i, n_v = pick(
            self.noise_s, self.noise_j, self.noise_i, self.noise_sigma
        )
        return SynapseStageChannels(
            z_s, z_j, z_i, a_s, a_j, a_i, a_v, n_s, n_j, n_i, n_v
        )


@dataclass
class CompiledScenarioBatch:
    """Per-layer fault masks for a batch of scenarios.

    The neuron channels are arrays of shape ``(S, N_{l+1})`` (0-based
    layer index ``l``):

    * ``zero_masks`` — crashed neurons (emission exactly 0);
    * ``set_masks`` / ``set_values`` — value-pulling faults (Byzantine
      with explicit value, stuck-at), applied under the deviation
      bound at run time;
    * ``add_masks`` / ``add_values`` — additive faults.  Values may
      carry capacity sentinels (``+-inf`` meaning "deviate as much as
      allowed"); every consumer resolves them against its capacity at
      evaluation time (``compile_batch`` additionally resolves eagerly
      when it can);
    * ``scale_masks`` / ``scale_values`` — multiplicative faults (sign
      flip), optional (``None`` = channel absent);
    * ``noise_masks`` / ``noise_sigma`` — Gaussian-noise faults,
      realised at evaluation time, optional;
    * ``gate_p`` — per-cell Bernoulli activation probability
      (intermittent faults), optional; 1.0 means permanent;
    * ``synapse_stages`` — per-stage sparse synapse-fault channels
      (``depth + 1`` stages, stage ``L+1`` feeding the output node),
      optional.

    A batch whose optional channels are all ``None`` is exactly the
    static representation of earlier revisions; stochastic channels
    make :attr:`is_stochastic` true, and every evaluator then requires
    a seeded RNG.
    """

    zero_masks: List[np.ndarray]
    set_masks: List[np.ndarray]
    set_values: List[np.ndarray]
    add_masks: List[np.ndarray]
    add_values: List[np.ndarray]
    names: List[str]
    scale_masks: Optional[List[np.ndarray]] = None
    scale_values: Optional[List[np.ndarray]] = None
    noise_masks: Optional[List[np.ndarray]] = None
    noise_sigma: Optional[List[np.ndarray]] = None
    gate_p: Optional[List[np.ndarray]] = None
    synapse_stages: Optional[List[SynapseStageChannels]] = None
    # Cached answer to :attr:`neuron_channels_clear`; synapse samplers
    # stamp it True at construction (their neuron arrays are untouched
    # ``empty_mask_batch`` zeros), everyone else pays one scan.
    _neuron_clear: Optional[bool] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def num_scenarios(self) -> int:
        return self.zero_masks[0].shape[0] if self.zero_masks else 0

    @property
    def neuron_channels_clear(self) -> bool:
        """True when no neuron mask channel can touch any activation.

        Every channel of :func:`apply_mask_channels` is ``.any()``
        guarded and draws randomness only inside those guards, so a
        clear batch makes the whole mask pass a scan-only no-op that
        consumes zero RNG draws — evaluators may skip it per layer and
        stay bitwise-identical.  The scan runs once per batch (cached),
        replacing per-chunk-per-layer channel scans on the hot
        synapse-only path.
        """
        if self._neuron_clear is None:
            clear = not (
                any(m.any() for m in self.zero_masks)
                or any(m.any() for m in self.set_masks)
                or any(m.any() for m in self.add_masks)
            )
            if clear and self.scale_masks is not None:
                clear = not any(m.any() for m in self.scale_masks)
            if clear and self.noise_masks is not None:
                clear = not any(m.any() for m in self.noise_masks)
            if clear and self.gate_p is not None:
                clear = not any(np.any(g < 1.0) for g in self.gate_p)
            self._neuron_clear = clear
        return self._neuron_clear

    @property
    def has_synapse_faults(self) -> bool:
        return self.synapse_stages is not None and any(
            not stage.is_empty for stage in self.synapse_stages
        )

    @property
    def is_stochastic(self) -> bool:
        """Whether evaluating this batch consumes random draws."""
        if self.noise_masks is not None and any(
            m.any() for m in self.noise_masks
        ):
            return True
        if self.gate_p is not None and any(
            np.any(g < 1.0) for g in self.gate_p
        ):
            return True
        return self.synapse_stages is not None and any(
            stage.is_stochastic for stage in self.synapse_stages
        )


class FaultInjector:
    """Runs a :class:`FeedForwardNetwork` under failure scenarios.

    Parameters
    ----------
    network:
        The (trained) network under test.
    capacity:
        The synaptic transmission capacity ``C`` of Assumption 1.
        ``None`` models *unbounded* transmission (Lemma 1): Byzantine
        values pass through unclipped, and capacity-saturating sentinel
        faults are rejected (they have no well-defined value).
    """

    def __init__(
        self,
        network: FeedForwardNetwork,
        capacity: Optional[float] = 1.0,
    ):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.network = network
        self.capacity = None if capacity is None else float(capacity)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _clip_synapse_error(self, deviation: np.ndarray) -> np.ndarray:
        """Bound a synapse's emission deviation by the capacity (Lemma 2)."""
        if self.capacity is None:
            if not np.all(np.isfinite(deviation)):
                raise ValueError(
                    "capacity-saturating synapse fault under unbounded "
                    "transmission: specify an explicit offset"
                )
            return deviation
        return np.clip(deviation, -self.capacity, self.capacity)

    def _neuron_faults_by_layer(
        self, scenario: FailureScenario
    ) -> List[list[tuple[int, FaultModel]]]:
        per_layer: List[list[tuple[int, FaultModel]]] = [
            [] for _ in range(self.network.depth)
        ]
        for addr, fault in scenario.neuron_faults.items():
            self.network.check_address(addr)
            per_layer[addr.layer - 1].append((addr.index, fault))
        return per_layer

    def _synapse_faults_by_stage(
        self, scenario: FailureScenario
    ) -> List[list[tuple[int, int, FaultModel]]]:
        per_stage: List[list[tuple[int, int, FaultModel]]] = [
            [] for _ in range(self.network.depth + 1)
        ]
        for (l, j, i), fault in scenario.synapse_faults.items():
            per_stage[l - 1].append((j, i, fault))
        return per_stage

    # ------------------------------------------------------------------
    # Scalar path (one scenario, any fault model)
    # ------------------------------------------------------------------

    def run(
        self,
        x: np.ndarray,
        scenario: FailureScenario,
        *,
        rng: Optional[np.random.Generator] = None,
        return_taps: bool = False,
    ):
        """Faulty forward pass ``Ffail(X)`` for a batch of inputs.

        Returns ``(B, n_outputs)`` outputs (or ``(outputs, taps)`` with
        per-layer faulty activations when ``return_taps`` is set).
        """
        scenario.validate(self.network)
        net = self.network
        xb, squeeze = net._as_batch(x)
        if rng is None:
            # Stochastic scenarios on a fresh generator silently break
            # campaign reproducibility — warn once (the campaign layers
            # always thread a seeded generator down to this point).
            stochastic = any(
                fault_is_stochastic(f)
                for faults in (scenario.neuron_faults, scenario.synapse_faults)
                for f in faults.values()
            )
            rng = (
                unseeded_rng("FaultInjector.run")
                if stochastic
                else np.random.default_rng()
            )

        neuron_faults = self._neuron_faults_by_layer(scenario)
        synapse_faults = self._synapse_faults_by_stage(scenario)

        y = xb
        taps: List[np.ndarray] = []
        for l0, layer in enumerate(net.layers):
            s = layer.pre_activation(y)
            if synapse_faults[l0]:
                weights = layer.dense_weights()
                s = s.copy()
                for j, i, fault in synapse_faults[l0]:
                    nominal_emission = y[:, i]
                    faulty_emission = fault.apply(
                        nominal_emission, rng=rng, capacity=self.capacity
                    )
                    deviation = self._clip_synapse_error(
                        faulty_emission - nominal_emission
                    )
                    s[:, j] += weights[j, i] * deviation
            y = layer.activation(s)
            if neuron_faults[l0]:
                y = y.copy()
                for i, fault in neuron_faults[l0]:
                    y[:, i] = apply_neuron_fault(fault, y[:, i], self.capacity, rng)
            if return_taps:
                taps.append(y)

        out = net.readout(y)
        stage = net.depth  # 0-based index of stage L+1 in synapse_faults
        if synapse_faults[stage]:
            out = out.copy()
            for j, i, fault in synapse_faults[stage]:
                nominal_emission = y[:, i]
                faulty_emission = fault.apply(
                    nominal_emission, rng=rng, capacity=self.capacity
                )
                deviation = self._clip_synapse_error(
                    faulty_emission - nominal_emission
                )
                out[:, j] += net.output_weights[j, i] * deviation

        if squeeze:
            out = out[0]
        return (out, taps) if return_taps else out

    def output_error(
        self,
        x: np.ndarray,
        scenario: FailureScenario,
        *,
        rng: Optional[np.random.Generator] = None,
        reduction: str = "max",
    ) -> float:
        """``sup_X |Fneu(X) - Ffail(X)|`` over the supplied batch.

        ``reduction`` is ``"max"`` (the paper's worst-case metric) or
        ``"mean"``.
        """
        xb, _ = self.network._as_batch(x)
        nominal = self.network.forward(xb)
        faulty = self.run(xb, scenario, rng=rng)
        err = np.abs(nominal - faulty).max(axis=1)
        if reduction == "max":
            return float(err.max())
        if reduction == "mean":
            return float(err.mean())
        raise ValueError(f"unknown reduction {reduction!r}")

    # ------------------------------------------------------------------
    # Batched path (many static scenarios at once)
    # ------------------------------------------------------------------

    def compile_batch(
        self, scenarios: Sequence[FailureScenario]
    ) -> CompiledScenarioBatch:
        """Lower scenarios — the whole fault taxonomy — to mask channels.

        This is the adapter between the expressive object API and the
        mask representation shared with :mod:`repro.faults.masks`
        (whose samplers produce the same batches without ever building
        scenario objects).  Static neuron faults land in the
        zero/set/add channels exactly as before; stochastic neuron
        faults (noise, intermittent, sign flip) fill the optional
        scale/noise/gate channels; synapse faults compile to sparse
        per-stage weight-level channels.  Only fault models outside
        the taxonomy in :mod:`repro.faults.types` are rejected.
        """
        net = self.network
        S = len(scenarios)
        zero_masks = [np.zeros((S, n), dtype=bool) for n in net.layer_sizes]
        set_masks = [np.zeros((S, n), dtype=bool) for n in net.layer_sizes]
        set_values = [np.zeros((S, n), dtype=np.float64) for n in net.layer_sizes]
        add_masks = [np.zeros((S, n), dtype=bool) for n in net.layer_sizes]
        add_values = [np.zeros((S, n), dtype=np.float64) for n in net.layer_sizes]
        scale_masks = scale_values = None
        noise_masks = noise_sigma = None
        gate_p = None
        # Per-stage per-kind entry lists: (s, j, i[, value]).
        syn_entries: Optional[List[dict]] = None
        names = []
        for s_idx, scenario in enumerate(scenarios):
            scenario.validate(net)
            names.append(scenario.name)
            for addr, fault in scenario.neuron_faults.items():
                action = fault_channel_action(fault)
                if action is None:
                    raise ValueError(
                        f"fault {fault!r} has no mask-channel lowering; "
                        "extend fault_channel_action or use FaultInjector.run"
                    )
                kind, value, gate = action
                l0, i = addr.layer - 1, addr.index
                if kind == "zero":
                    zero_masks[l0][s_idx, i] = True
                elif kind == "set":
                    set_masks[l0][s_idx, i] = True
                    set_values[l0][s_idx, i] = value
                elif kind == "add":
                    add_masks[l0][s_idx, i] = True
                    add_values[l0][s_idx, i] = value
                elif kind == "scale":
                    if scale_masks is None:
                        scale_masks = [
                            np.zeros((S, n), dtype=bool) for n in net.layer_sizes
                        ]
                        scale_values = [
                            np.zeros((S, n)) for n in net.layer_sizes
                        ]
                    scale_masks[l0][s_idx, i] = True
                    scale_values[l0][s_idx, i] = value
                else:  # "noise"
                    if noise_masks is None:
                        noise_masks = [
                            np.zeros((S, n), dtype=bool) for n in net.layer_sizes
                        ]
                        noise_sigma = [
                            np.zeros((S, n)) for n in net.layer_sizes
                        ]
                    noise_masks[l0][s_idx, i] = True
                    noise_sigma[l0][s_idx, i] = value
                if gate < 1.0:
                    if gate_p is None:
                        gate_p = [np.ones((S, n)) for n in net.layer_sizes]
                    gate_p[l0][s_idx, i] = gate
            for (l, j, i), fault in scenario.synapse_faults.items():
                action = synapse_fault_action(fault)
                if action is None:
                    raise ValueError(
                        f"synapse fault {fault!r} has no weight-level "
                        "lowering; extend synapse_fault_action or use "
                        "FaultInjector.run"
                    )
                if syn_entries is None:
                    syn_entries = [
                        {"zero": [], "add": [], "noise": []}
                        for _ in range(net.depth + 1)
                    ]
                kind, value = action
                syn_entries[l - 1][kind].append((s_idx, j, i, value))
        # Resolve capacity sentinels (additive +-inf -> +-C) at compile time.
        for arr in add_values:
            if self.capacity is None:
                if not np.all(np.isfinite(arr)):
                    raise ValueError(
                        "capacity-saturating fault under unbounded transmission"
                    )
            else:
                np.clip(arr, -self.capacity, self.capacity, out=arr)
        synapse_stages = None
        if syn_entries is not None:
            synapse_stages = [
                self._compile_synapse_stage(entries) for entries in syn_entries
            ]
        return CompiledScenarioBatch(
            zero_masks, set_masks, set_values, add_masks, add_values, names,
            scale_masks=scale_masks, scale_values=scale_values,
            noise_masks=noise_masks, noise_sigma=noise_sigma,
            gate_p=gate_p, synapse_stages=synapse_stages,
        )

    def _compile_synapse_stage(self, entries: dict) -> SynapseStageChannels:
        """COO arrays (with sentinel resolution) for one stage's entries."""
        def cols(kind: str, with_value: bool):
            rows = entries[kind]
            s = np.array([e[0] for e in rows], dtype=np.intp)
            j = np.array([e[1] for e in rows], dtype=np.intp)
            i = np.array([e[2] for e in rows], dtype=np.intp)
            if not with_value:
                return s, j, i
            return s, j, i, np.array([e[3] for e in rows], dtype=np.float64)

        z_s, z_j, z_i = cols("zero", with_value=False)
        a_s, a_j, a_i, a_v = cols("add", with_value=True)
        n_s, n_j, n_i, n_v = cols("noise", with_value=True)
        if self.capacity is None:
            if not np.all(np.isfinite(a_v)):
                raise ValueError(
                    "capacity-saturating synapse fault under unbounded "
                    "transmission: specify an explicit offset"
                )
        else:
            np.clip(a_v, -self.capacity, self.capacity, out=a_v)
        return SynapseStageChannels(
            z_s, z_j, z_i, a_s, a_j, a_i, a_v, n_s, n_j, n_i, n_v
        )

    def run_many(
        self,
        x: np.ndarray,
        batch: "CompiledScenarioBatch | Sequence[FailureScenario]",
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Faulty outputs for S scenarios x B inputs in one sweep.

        Returns an array of shape ``(S, B, n_outputs)``.  One GEMM per
        layer serves every (scenario, input) pair; neuron faults are
        vectorised mask writes, synapse faults sparse received-sum
        corrections between the GEMM and the squashing.  Stochastic
        batches (noise channels, intermittent gates) draw from ``rng``
        — unseeded use warns once, because it is irreproducible.
        """
        if not isinstance(batch, CompiledScenarioBatch):
            batch = self.compile_batch(batch)
        net = self.network
        xb, _ = net._as_batch(x)
        S = batch.num_scenarios
        if S == 0:
            return np.empty((0, xb.shape[0], net.n_outputs))
        if rng is None and batch.is_stochastic:
            rng = unseeded_rng("FaultInjector.run_many")

        B = xb.shape[0]
        stages = batch.synapse_stages

        def stage(l0: int) -> Optional[SynapseStageChannels]:
            return stages[l0] if stages is not None else None

        def chan(lst: Optional[List[np.ndarray]], l0: int):
            return lst[l0] if lst is not None else None

        def masked(y: np.ndarray, l0: int) -> np.ndarray:
            """Apply the layer-l0 fault channels to (S, B, N) activations."""
            return apply_mask_channels(
                y,
                batch.zero_masks[l0],
                batch.set_masks[l0],
                batch.set_values[l0],
                batch.add_masks[l0],
                batch.add_values[l0],
                self.capacity,
                scale_mask=chan(batch.scale_masks, l0),
                scale_values=chan(batch.scale_values, l0),
                noise_mask=chan(batch.noise_masks, l0),
                noise_sigma=chan(batch.noise_sigma, l0),
                gate_p=chan(batch.gate_p, l0),
                rng=rng,
            )

        st0 = stage(0)
        if st0 is not None and not st0.is_empty:
            # Stage-1 synapse faults corrupt the input emissions: the
            # received sums become scenario-dependent before squashing.
            s = net.layers[0].pre_activation(xb)  # (B, N_1)
            s = np.broadcast_to(s[None, :, :], (S, B, s.shape[1])).copy()
            apply_synapse_corrections(
                s, st0, xb, net.layers[0].dense_weights(), self.capacity, rng
            )
            y = net.layers[0].activation(s)
        else:
            # Layer 1 is scenario-independent before masking: compute
            # once for the B inputs, then broadcast across S scenarios
            # (materialised — the shared mask helper works in place).
            y1 = net.layers[0].forward(xb)  # (B, N_1)
            y = np.broadcast_to(y1[None, :, :], (S, B, y1.shape[1])).copy()
        y = masked(y, 0)
        for l0, layer in enumerate(net.layers[1:], start=1):
            st = stage(l0)
            if st is not None and not st.is_empty:
                s = layer.pre_activation(y.reshape(S * B, -1)).reshape(S, B, -1)
                apply_synapse_corrections(
                    s, st, y, layer.dense_weights(), self.capacity, rng
                )
                y = layer.activation(s)
            else:
                y = layer.forward(y.reshape(S * B, -1)).reshape(S, B, -1)
            y = masked(y, l0)
        out = y @ net.output_weights.T + net.output_bias
        apply_synapse_corrections(
            out, stage(net.depth), y, net.output_weights, self.capacity, rng
        )
        return out

    def output_errors_many(
        self,
        x: np.ndarray,
        batch: "CompiledScenarioBatch | Sequence[FailureScenario]",
        *,
        reduction: str = "max",
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Per-scenario output error over the input batch, shape ``(S,)``."""
        xb, _ = self.network._as_batch(x)
        nominal = self.network.forward(xb)  # (B, n_outputs)
        faulty = self.run_many(xb, batch, rng=rng)  # (S, B, n_outputs)
        err = np.abs(faulty - nominal[None]).max(axis=2)  # (S, B)
        if reduction == "max":
            return err.max(axis=1)
        if reduction == "mean":
            return err.mean(axis=1)
        raise ValueError(f"unknown reduction {reduction!r}")
