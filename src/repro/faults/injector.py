"""Vectorised fault injection: run a network under a failure scenario.

The injector realises Definition 2 and Assumption 1 of the paper as
masked tensor algebra:

* a **crashed** neuron's emitted value is replaced by 0 ("stops
  sending"; consumers read 0 — no capacity interaction, and the
  crash-mode bounds use ``sup phi`` instead of ``C``);
* a **Byzantine** neuron broadcasts ``y + lambda`` (Theorem 2's error
  model): the *deviation* ``lambda`` carried by its synapses is
  bounded by the transmission capacity ``C`` (Assumption 1), so the
  effective emission is ``y + clip(requested - y, -C, +C)``.  Under
  *unbounded* capacity (``capacity=None``) no clipping happens, which
  is the regime of Lemma 1.  (The paper's Assumption 1 phrases the
  bound on the transmitted value; its Theorem-2 algebra bounds the
  error ``lambda`` by ``C`` — we follow the algebra, which is the
  sound-and-tight reading.  See DESIGN.md.);
* a **faulty synapse** corrupts the emission it carries: the receiver
  reads ``w_ji * v`` where ``|v - y_i| <= C`` (so the received-sum
  error is at most ``w_m * C``, the per-synapse term of Theorem 4 and
  Lemma 2); a crashed synapse delivers ``v = 0``.

Two execution paths are provided:

* :meth:`FaultInjector.run` — one scenario, batch of inputs; supports
  every fault model including stochastic ones.
* :meth:`FaultInjector.run_many` — a *batch of scenarios* compiled to
  per-layer masks, evaluated with one GEMM per layer for all S x B
  (scenario, input) pairs.  It requires "static" faults (crash /
  Byzantine / stuck-at) whose replacement value does not depend on the
  nominal output.

For large campaigns, :mod:`repro.faults.masks` provides the
*mask-native* engine: samplers draw :class:`CompiledScenarioBatch`
masks directly as arrays (no per-scenario Python objects), and a
streaming evaluator reuses preallocated chunk buffers.
:meth:`FaultInjector.compile_batch` is the thin adapter that lowers
object scenarios into that same mask representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..network.model import FeedForwardNetwork
from .scenarios import FailureScenario
from .types import ByzantineFault, CrashFault, FaultModel, OffsetFault, StuckAtFault

__all__ = [
    "FaultInjector",
    "CompiledScenarioBatch",
    "static_fault_action",
    "apply_neuron_fault",
    "apply_mask_channels",
]


def static_fault_action(fault: FaultModel) -> Optional[tuple[str, float]]:
    """The input-independent action of a fault, or ``None``.

    Returns one of:

    * ``("zero", 0.0)`` — crash: emission is exactly 0;
    * ``("set", v)`` — Byzantine with explicit value / stuck-at: the
      emission is pulled to ``v`` subject to the deviation bound;
    * ``("add", delta)`` — Byzantine capacity sentinel (``+-inf``, to
      be resolved to ``+-C``) or a fixed offset: emission is
      ``y + delta``.

    Stochastic or sign-dependent faults (noise, sign flip) return
    ``None`` and are only supported on the scalar path.
    """
    if isinstance(fault, CrashFault):
        return ("zero", 0.0)
    if isinstance(fault, ByzantineFault):
        if fault.value is None:
            return ("add", fault.sign * np.inf)
        return ("set", float(fault.value))
    if isinstance(fault, StuckAtFault):
        return ("set", float(fault.value))
    if isinstance(fault, OffsetFault):
        return ("add", float(fault.offset))
    return None


def apply_neuron_fault(
    fault: FaultModel,
    nominal: np.ndarray,
    capacity: Optional[float],
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Faulty emission under the deviation-bounded semantics.

    Crash emits exactly 0; every other fault emits
    ``nominal + clip(requested - nominal, -C, +C)`` (Theorem 2's
    ``y + lambda`` with ``|lambda| <= C``).  Unbounded capacity passes
    finite requests through and rejects capacity sentinels.
    """
    nominal = np.asarray(nominal, dtype=np.float64)
    if isinstance(fault, CrashFault):
        return np.zeros_like(nominal)
    requested = fault.apply(nominal, rng=rng)
    if capacity is None:
        if not np.all(np.isfinite(requested)):
            raise ValueError(
                "capacity-saturating fault (value=None) under unbounded "
                "transmission: specify an explicit Byzantine value"
            )
        return requested
    deviation = np.clip(requested - nominal, -capacity, capacity)
    return nominal + deviation


def apply_mask_channels(
    Y: np.ndarray,
    zero: np.ndarray,
    set_mask: np.ndarray,
    set_values: np.ndarray,
    add_mask: np.ndarray,
    add_values: np.ndarray,
    capacity: Optional[float],
) -> np.ndarray:
    """Apply one layer's fault channels in place on ``(S, B, N)`` activations.

    The single definition of the mask semantics, shared by
    :meth:`FaultInjector.run_many` and the streaming engine in
    :mod:`repro.faults.masks` (so the two evaluation paths cannot
    diverge):

    * ``zero`` cells read exactly 0 (crash);
    * ``set`` cells are pulled toward the requested value but stay
      within ``[y - C, y + C]`` of the nominal activation (deviation
      bound);
    * ``add`` cells gain the offset, clipped to ``+-C`` — which also
      resolves ``+-inf`` capacity sentinels; under unbounded capacity
      sentinels are rejected (Lemma 1's regime).

    Per scenario each neuron carries at most one fault, so the three
    channels touch disjoint ``(s, i)`` cells and in-place order is
    immaterial.
    """
    if zero.any():
        np.copyto(Y, 0.0, where=zero[:, None, :])
    if set_mask.any():
        vals = np.broadcast_to(set_values[:, None, :], Y.shape)
        if capacity is not None:
            vals = np.clip(vals, Y - capacity, Y + capacity)
        np.copyto(Y, vals, where=set_mask[:, None, :], casting="unsafe")
    if add_mask.any():
        add = add_values
        if capacity is not None:
            add = np.clip(add, -capacity, capacity)
        elif not np.all(np.isfinite(add[add_mask])):
            raise ValueError(
                "capacity-saturating fault under unbounded transmission"
            )
        np.add(Y, add[:, None, :], out=Y, where=add_mask[:, None, :],
               casting="unsafe")
    return Y


@dataclass
class CompiledScenarioBatch:
    """Per-layer fault masks for a batch of static scenarios.

    All arrays have shape ``(S, N_{l+1})`` (0-based layer index ``l``):

    * ``zero_masks`` — crashed neurons (emission exactly 0);
    * ``set_masks`` / ``set_values`` — value-pulling faults (Byzantine
      with explicit value, stuck-at), applied under the deviation
      bound at run time;
    * ``add_masks`` / ``add_values`` — additive faults.  Values may
      carry capacity sentinels (``+-inf`` meaning "deviate as much as
      allowed"); every consumer resolves them against its capacity at
      evaluation time (``compile_batch`` additionally resolves eagerly
      when it can).
    """

    zero_masks: List[np.ndarray]
    set_masks: List[np.ndarray]
    set_values: List[np.ndarray]
    add_masks: List[np.ndarray]
    add_values: List[np.ndarray]
    names: List[str]

    @property
    def num_scenarios(self) -> int:
        return self.zero_masks[0].shape[0] if self.zero_masks else 0


class FaultInjector:
    """Runs a :class:`FeedForwardNetwork` under failure scenarios.

    Parameters
    ----------
    network:
        The (trained) network under test.
    capacity:
        The synaptic transmission capacity ``C`` of Assumption 1.
        ``None`` models *unbounded* transmission (Lemma 1): Byzantine
        values pass through unclipped, and capacity-saturating sentinel
        faults are rejected (they have no well-defined value).
    """

    def __init__(
        self,
        network: FeedForwardNetwork,
        capacity: Optional[float] = 1.0,
    ):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.network = network
        self.capacity = None if capacity is None else float(capacity)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _clip_synapse_error(self, deviation: np.ndarray) -> np.ndarray:
        """Bound a synapse's emission deviation by the capacity (Lemma 2)."""
        if self.capacity is None:
            if not np.all(np.isfinite(deviation)):
                raise ValueError(
                    "capacity-saturating synapse fault under unbounded "
                    "transmission: specify an explicit offset"
                )
            return deviation
        return np.clip(deviation, -self.capacity, self.capacity)

    def _neuron_faults_by_layer(
        self, scenario: FailureScenario
    ) -> List[list[tuple[int, FaultModel]]]:
        per_layer: List[list[tuple[int, FaultModel]]] = [
            [] for _ in range(self.network.depth)
        ]
        for addr, fault in scenario.neuron_faults.items():
            self.network.check_address(addr)
            per_layer[addr.layer - 1].append((addr.index, fault))
        return per_layer

    def _synapse_faults_by_stage(
        self, scenario: FailureScenario
    ) -> List[list[tuple[int, int, FaultModel]]]:
        per_stage: List[list[tuple[int, int, FaultModel]]] = [
            [] for _ in range(self.network.depth + 1)
        ]
        for (l, j, i), fault in scenario.synapse_faults.items():
            per_stage[l - 1].append((j, i, fault))
        return per_stage

    # ------------------------------------------------------------------
    # Scalar path (one scenario, any fault model)
    # ------------------------------------------------------------------

    def run(
        self,
        x: np.ndarray,
        scenario: FailureScenario,
        *,
        rng: Optional[np.random.Generator] = None,
        return_taps: bool = False,
    ):
        """Faulty forward pass ``Ffail(X)`` for a batch of inputs.

        Returns ``(B, n_outputs)`` outputs (or ``(outputs, taps)`` with
        per-layer faulty activations when ``return_taps`` is set).
        """
        scenario.validate(self.network)
        net = self.network
        xb, squeeze = net._as_batch(x)
        rng = rng if rng is not None else np.random.default_rng()

        neuron_faults = self._neuron_faults_by_layer(scenario)
        synapse_faults = self._synapse_faults_by_stage(scenario)

        y = xb
        taps: List[np.ndarray] = []
        for l0, layer in enumerate(net.layers):
            s = layer.pre_activation(y)
            if synapse_faults[l0]:
                weights = layer.dense_weights()
                s = s.copy()
                for j, i, fault in synapse_faults[l0]:
                    nominal_emission = y[:, i]
                    faulty_emission = fault.apply(nominal_emission, rng=rng)
                    deviation = self._clip_synapse_error(
                        faulty_emission - nominal_emission
                    )
                    s[:, j] += weights[j, i] * deviation
            y = layer.activation(s)
            if neuron_faults[l0]:
                y = y.copy()
                for i, fault in neuron_faults[l0]:
                    y[:, i] = apply_neuron_fault(fault, y[:, i], self.capacity, rng)
            if return_taps:
                taps.append(y)

        out = net.readout(y)
        stage = net.depth  # 0-based index of stage L+1 in synapse_faults
        if synapse_faults[stage]:
            out = out.copy()
            for j, i, fault in synapse_faults[stage]:
                nominal_emission = y[:, i]
                faulty_emission = fault.apply(nominal_emission, rng=rng)
                deviation = self._clip_synapse_error(
                    faulty_emission - nominal_emission
                )
                out[:, j] += net.output_weights[j, i] * deviation

        if squeeze:
            out = out[0]
        return (out, taps) if return_taps else out

    def output_error(
        self,
        x: np.ndarray,
        scenario: FailureScenario,
        *,
        rng: Optional[np.random.Generator] = None,
        reduction: str = "max",
    ) -> float:
        """``sup_X |Fneu(X) - Ffail(X)|`` over the supplied batch.

        ``reduction`` is ``"max"`` (the paper's worst-case metric) or
        ``"mean"``.
        """
        xb, _ = self.network._as_batch(x)
        nominal = self.network.forward(xb)
        faulty = self.run(xb, scenario, rng=rng)
        err = np.abs(nominal - faulty).max(axis=1)
        if reduction == "max":
            return float(err.max())
        if reduction == "mean":
            return float(err.mean())
        raise ValueError(f"unknown reduction {reduction!r}")

    # ------------------------------------------------------------------
    # Batched path (many static scenarios at once)
    # ------------------------------------------------------------------

    def compile_batch(
        self, scenarios: Sequence[FailureScenario]
    ) -> CompiledScenarioBatch:
        """Lower static neuron-fault scenarios to per-layer masks.

        This is the adapter between the expressive object API and the
        mask representation shared with :mod:`repro.faults.masks`
        (whose samplers produce the same batches without ever building
        scenario objects).  Raises when any scenario contains a synapse
        fault or a non-static neuron fault (use :meth:`run` for those).
        """
        net = self.network
        S = len(scenarios)
        zero_masks = [np.zeros((S, n), dtype=bool) for n in net.layer_sizes]
        set_masks = [np.zeros((S, n), dtype=bool) for n in net.layer_sizes]
        set_values = [np.zeros((S, n), dtype=np.float64) for n in net.layer_sizes]
        add_masks = [np.zeros((S, n), dtype=bool) for n in net.layer_sizes]
        add_values = [np.zeros((S, n), dtype=np.float64) for n in net.layer_sizes]
        names = []
        for s_idx, scenario in enumerate(scenarios):
            if scenario.synapse_faults:
                raise ValueError(
                    f"scenario {scenario.name!r} has synapse faults; the batched "
                    "path supports neuron faults only"
                )
            scenario.validate(net)
            names.append(scenario.name)
            for addr, fault in scenario.neuron_faults.items():
                action = static_fault_action(fault)
                if action is None:
                    raise ValueError(
                        f"fault {fault!r} is not static; use FaultInjector.run"
                    )
                kind, value = action
                l0, i = addr.layer - 1, addr.index
                if kind == "zero":
                    zero_masks[l0][s_idx, i] = True
                elif kind == "set":
                    set_masks[l0][s_idx, i] = True
                    set_values[l0][s_idx, i] = value
                else:  # "add"
                    add_masks[l0][s_idx, i] = True
                    add_values[l0][s_idx, i] = value
        # Resolve capacity sentinels (additive +-inf -> +-C) at compile time.
        for arr in add_values:
            if self.capacity is None:
                if not np.all(np.isfinite(arr)):
                    raise ValueError(
                        "capacity-saturating fault under unbounded transmission"
                    )
            else:
                np.clip(arr, -self.capacity, self.capacity, out=arr)
        return CompiledScenarioBatch(
            zero_masks, set_masks, set_values, add_masks, add_values, names
        )

    def run_many(
        self,
        x: np.ndarray,
        batch: "CompiledScenarioBatch | Sequence[FailureScenario]",
    ) -> np.ndarray:
        """Faulty outputs for S scenarios x B inputs in one sweep.

        Returns an array of shape ``(S, B, n_outputs)``.  One GEMM per
        layer serves every (scenario, input) pair; replacement is a
        single vectorised ``np.where`` per layer.
        """
        if not isinstance(batch, CompiledScenarioBatch):
            batch = self.compile_batch(batch)
        net = self.network
        xb, _ = net._as_batch(x)
        S = batch.num_scenarios
        if S == 0:
            return np.empty((0, xb.shape[0], net.n_outputs))

        B = xb.shape[0]

        def masked(y: np.ndarray, l0: int) -> np.ndarray:
            """Apply the layer-l0 fault channels to (S, B, N) activations."""
            return apply_mask_channels(
                y,
                batch.zero_masks[l0],
                batch.set_masks[l0],
                batch.set_values[l0],
                batch.add_masks[l0],
                batch.add_values[l0],
                self.capacity,
            )

        # Layer 1 is scenario-independent before masking: compute once for
        # the B inputs, then broadcast across S scenarios (materialised —
        # the shared mask helper works in place).
        y = net.layers[0].forward(xb)  # (B, N_1)
        y = masked(np.broadcast_to(y[None, :, :], (S, B, y.shape[1])).copy(), 0)
        for l0, layer in enumerate(net.layers[1:], start=1):
            y = layer.forward(y.reshape(S * B, -1)).reshape(S, B, -1)
            y = masked(y, l0)
        out = y @ net.output_weights.T + net.output_bias
        return out

    def output_errors_many(
        self,
        x: np.ndarray,
        batch: "CompiledScenarioBatch | Sequence[FailureScenario]",
        *,
        reduction: str = "max",
    ) -> np.ndarray:
        """Per-scenario output error over the input batch, shape ``(S,)``."""
        xb, _ = self.network._as_batch(x)
        nominal = self.network.forward(xb)  # (B, n_outputs)
        faulty = self.run_many(xb, batch)  # (S, B, n_outputs)
        err = np.abs(faulty - nominal[None]).max(axis=2)  # (S, B)
        if reduction == "max":
            return err.max(axis=1)
        if reduction == "mean":
            return err.mean(axis=1)
        raise ValueError(f"unknown reduction {reduction!r}")
