"""Fault models for neurons and synapses (paper, Section II-B).

The paper distinguishes:

* **crashed neurons** — stop sending; downstream neurons read ``0``
  (Definition 2);
* **Byzantine neurons** — send an arbitrary value, but every synapse
  out of a Byzantine neuron transmits at most ``C`` in absolute value
  (Assumption 1, bounded transmission);
* **crashed synapses** — weight behaves as ``0``;
* **Byzantine synapses** — transmit an arbitrary value within capacity;
  equivalently an additive error ``lambda`` with ``|lambda| <= C`` on
  the received sum (Lemma 2).

Each fault model maps the *nominal* emitted value to the *faulty* one;
capacity clipping is applied by the injector, once, uniformly — so a
``ByzantineFault(value=1e9)`` under capacity ``C=2`` emits exactly 2,
and under unbounded capacity emits 1e9 (the Lemma-1 regime).

Additional engineering-grade models (stuck-at, additive noise, sign
flip) are provided for the wider fault-injection campaigns; they are
all special cases of the Byzantine model and therefore covered by the
paper's bounds.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = [
    "FaultModel",
    "NeuronFault",
    "SynapseFault",
    "CrashFault",
    "ByzantineFault",
    "StuckAtFault",
    "OffsetFault",
    "NoiseFault",
    "IntermittentFault",
    "SignFlipFault",
    "SynapseCrashFault",
    "SynapseByzantineFault",
    "SynapseNoiseFault",
    "UnseededFaultWarning",
    "fault_is_stochastic",
]


class UnseededFaultWarning(UserWarning):
    """A stochastic fault drew from a fresh, unseeded RNG.

    Campaign results that hit this path are not reproducible: every
    call draws fresh OS entropy.  Thread a seeded
    ``np.random.Generator`` (the campaign layers all do) to silence it.
    """


_unseeded_warned = False


def unseeded_rng(context: str) -> np.random.Generator:
    """A fresh unseeded generator, warning (once per process) that the
    caller has left the reproducible path."""
    global _unseeded_warned
    if not _unseeded_warned:
        _unseeded_warned = True
        warnings.warn(
            f"{context} with rng=None draws from fresh OS entropy; results "
            "are not reproducible. Pass a seeded np.random.Generator.",
            UnseededFaultWarning,
            stacklevel=3,
        )
    return np.random.default_rng()


def fault_is_stochastic(fault: "FaultModel") -> bool:
    """Whether evaluating ``fault`` consumes random draws."""
    if isinstance(fault, (NoiseFault, SynapseNoiseFault)):
        return True
    if isinstance(fault, IntermittentFault):
        return fault.p < 1.0 or fault_is_stochastic(fault.fault)
    return False


class FaultModel:
    """Base class; concrete models override :meth:`apply`."""

    #: ``"neuron"`` or ``"synapse"`` — what this model attaches to.
    target: str = "neuron"
    #: Short machine-readable tag for reports.
    kind: str = "fault"

    def apply(
        self,
        nominal: np.ndarray,
        *,
        rng: Optional[np.random.Generator] = None,
        capacity: Optional[float] = None,
    ) -> np.ndarray:
        """Map nominal emitted value(s) to faulty value(s).

        ``nominal`` is an array (any shape — typically ``(B,)`` over a
        batch of inputs); the result must have the same shape.  The
        injector clips the result to the transmission capacity;
        ``capacity`` lets capacity-*saturating* models resolve their
        worst case eagerly (and fail loudly when it is unbounded)
        instead of returning an infinite sentinel.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class NeuronFault(FaultModel):
    """Marker base for faults attached to a neuron."""

    target = "neuron"


class SynapseFault(FaultModel):
    """Marker base for faults attached to a synapse.

    A faulty synapse corrupts the *emission* it carries: ``apply``
    receives the nominal emitted value ``y_i`` and returns the value
    the synapse actually delivers; the receiving neuron still applies
    its weight ``w_ji``.  The injector bounds the emission deviation
    ``|faulty - nominal|`` by the capacity ``C``, so the received-sum
    error is at most ``w_m^(l) * C`` — the per-synapse term of
    Theorem 4 (and Lemma 2's neuron-equivalent error ``C * K`` after
    squashing).
    """

    target = "synapse"


# ---------------------------------------------------------------------------
# Neuron faults
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CrashFault(NeuronFault):
    """The neuron stops; downstream neurons read 0 (Definition 2)."""

    kind: str = field(default="crash", init=False)

    def apply(self, nominal, *, rng=None, capacity=None):
        return np.zeros_like(np.asarray(nominal, dtype=np.float64))


@dataclass(frozen=True)
class ByzantineFault(NeuronFault):
    """The neuron broadcasts an arbitrary value ``y + lambda``.

    The injector bounds the *deviation* ``lambda`` by the capacity
    ``C`` (Theorem 2's error model; see the module docstring of
    :mod:`repro.faults.injector` for the interpretive note on
    Assumption 1).

    Parameters
    ----------
    value:
        The requested emission; the realised emission is
        ``y + clip(value - y, -C, +C)``.  ``None`` means "deviate as
        much as allowed": the emission becomes ``y + sign * C`` (the
        worst case used in the tightness proofs); it raises when the
        capacity is unbounded (a Byzantine neuron with unbounded
        capacity has no well-defined worst value — Lemma 1).
    sign:
        Direction of the capacity-saturating deviation (+1 or -1).
    """

    value: Optional[float] = None
    sign: int = 1
    kind: str = field(default="byzantine", init=False)

    def __post_init__(self):
        if self.sign not in (-1, 1):
            raise ValueError(f"sign must be +-1, got {self.sign}")

    def apply(self, nominal, *, rng=None, capacity=None):
        nominal = np.asarray(nominal, dtype=np.float64)
        if self.value is None:
            # Sentinel: the injector replaces infinities by +-capacity.
            return np.full_like(nominal, self.sign * np.inf)
        return np.full_like(nominal, float(self.value))


@dataclass(frozen=True)
class StuckAtFault(NeuronFault):
    """The neuron's output is stuck at a constant (e.g. stuck-at-1)."""

    value: float = 1.0
    kind: str = field(default="stuck_at", init=False)

    def apply(self, nominal, *, rng=None, capacity=None):
        nominal = np.asarray(nominal, dtype=np.float64)
        return np.full_like(nominal, float(self.value))


@dataclass(frozen=True)
class OffsetFault(NeuronFault):
    """The neuron broadcasts ``y + offset`` instead of ``y``.

    This is Theorem 2's error model verbatim ("any neuron j within
    layer l broadcasts an output ``y_j + lambda_j`` ... instead of the
    nominal ``y_j``"), with a *controlled* error magnitude — the tool
    the tightness experiments use to attain the Fep bound exactly in
    the linear regime of a hard-sigmoid network.
    """

    offset: float = 0.0
    kind: str = field(default="offset", init=False)

    def apply(self, nominal, *, rng=None, capacity=None):
        return np.asarray(nominal, dtype=np.float64) + float(self.offset)


@dataclass(frozen=True)
class NoiseFault(NeuronFault):
    """Additive Gaussian noise on the emitted value (soft errors)."""

    sigma: float = 0.1
    kind: str = field(default="noise", init=False)

    def __post_init__(self):
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")

    def apply(self, nominal, *, rng=None, capacity=None):
        nominal = np.asarray(nominal, dtype=np.float64)
        rng = rng if rng is not None else unseeded_rng("NoiseFault.apply")
        return nominal + rng.normal(0.0, self.sigma, size=nominal.shape)


@dataclass(frozen=True)
class IntermittentFault(NeuronFault):
    """The neuron fails only sometimes (transient hardware faults).

    On each evaluation, with probability ``p`` the wrapped ``fault``
    applies; otherwise the nominal value passes through.  Decided
    per-evaluation-batch, elementwise — so over a probe batch a
    fraction ~``p`` of inputs see the fault.  Worst case it behaves
    like the wrapped fault everywhere, so all bounds still apply.
    """

    p: float = 0.5
    fault: "NeuronFault" = None  # type: ignore[assignment]
    kind: str = field(default="intermittent", init=False)

    def __post_init__(self):
        if not 0 <= self.p <= 1:
            raise ValueError(f"p must be in [0, 1], got {self.p}")
        if self.fault is None:
            object.__setattr__(self, "fault", CrashFault())
        if not isinstance(self.fault, NeuronFault):
            raise TypeError(f"wrapped fault must be a NeuronFault, got {self.fault!r}")

    def apply(self, nominal, *, rng=None, capacity=None):
        nominal = np.asarray(nominal, dtype=np.float64)
        rng = rng if rng is not None else unseeded_rng("IntermittentFault.apply")
        hit = rng.random(nominal.shape) < self.p
        faulty = self.fault.apply(nominal, rng=rng, capacity=capacity)
        return np.where(hit, faulty, nominal)


@dataclass(frozen=True)
class SignFlipFault(NeuronFault):
    """The neuron emits the negation of its nominal value."""

    kind: str = field(default="sign_flip", init=False)

    def apply(self, nominal, *, rng=None, capacity=None):
        return -np.asarray(nominal, dtype=np.float64)


# ---------------------------------------------------------------------------
# Synapse faults
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SynapseCrashFault(SynapseFault):
    """The synapse stops transmitting: it delivers 0 instead of the
    emission (equivalently, weight value 0 — Section II-A)."""

    kind: str = field(default="synapse_crash", init=False)

    def apply(self, nominal, *, rng=None, capacity=None):
        return np.zeros_like(np.asarray(nominal, dtype=np.float64))


@dataclass(frozen=True)
class SynapseByzantineFault(SynapseFault):
    """The synapse delivers the emission plus an error ``lambda``.

    ``offset=None`` saturates the capacity (``lambda = sign * C``),
    mirroring the Lemma-2 / Theorem-4 worst case (received-sum error
    ``w_ji * C``): ``apply`` needs the effective ``capacity`` to
    resolve it, and raises when the capacity is unbounded — an
    unbounded Byzantine synapse has no well-defined worst value
    (previously this path returned ``nominal ± inf``, which leaked
    ``inf``/``NaN`` into campaign errors instead of the Lemma-2
    saturated worst case).
    """

    offset: Optional[float] = None
    sign: int = 1
    kind: str = field(default="synapse_byzantine", init=False)

    def __post_init__(self):
        if self.sign not in (-1, 1):
            raise ValueError(f"sign must be +-1, got {self.sign}")

    def apply(self, nominal, *, rng=None, capacity=None):
        nominal = np.asarray(nominal, dtype=np.float64)
        if self.offset is None:
            if capacity is None:
                raise ValueError(
                    "capacity-saturating synapse fault (offset=None) under "
                    "unbounded transmission: pass a finite capacity or an "
                    "explicit offset"
                )
            return nominal + self.sign * float(capacity)
        return nominal + float(self.offset)


@dataclass(frozen=True)
class SynapseNoiseFault(SynapseFault):
    """Additive Gaussian noise on the carried emission."""

    sigma: float = 0.1
    kind: str = field(default="synapse_noise", init=False)

    def __post_init__(self):
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")

    def apply(self, nominal, *, rng=None, capacity=None):
        nominal = np.asarray(nominal, dtype=np.float64)
        rng = rng if rng is not None else unseeded_rng("SynapseNoiseFault.apply")
        return nominal + rng.normal(0.0, self.sigma, size=nominal.shape)
