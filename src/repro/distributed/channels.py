"""Synapse channels: weighted point-to-point links with bounded capacity.

A channel carries the producer's *emission*; the consumer applies the
synaptic weight on receipt (the weight "models the importance a neuron
j gives to the signals emitted by neuron i").  Faulty channels corrupt
the emission in transit, with the deviation bounded by the capacity
``C`` (Assumption 1 / Lemma 2) — matching the vectorised injector's
semantics exactly, which the test suite verifies by equivalence.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .events import ComponentState

__all__ = ["SynapseChannel"]


class SynapseChannel:
    """One synapse from neuron ``src`` of layer ``l-1`` to ``dst`` of ``l``.

    Parameters
    ----------
    weight:
        The synaptic weight applied by the consumer.
    capacity:
        Transmission capacity ``C`` (``None`` = unbounded, Lemma 1
        regime).
    """

    __slots__ = ("weight", "capacity", "state", "_offset", "_rng", "_sigma")

    def __init__(
        self,
        weight: float,
        capacity: Optional[float] = 1.0,
    ):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.weight = float(weight)
        self.capacity = None if capacity is None else float(capacity)
        self.state = ComponentState.CORRECT
        self._offset: Optional[float] = None
        self._sigma: Optional[float] = None
        self._rng: Optional[np.random.Generator] = None

    # -- fault control -------------------------------------------------------

    def crash(self) -> None:
        """The channel stops transmitting (delivers 0)."""
        self.state = ComponentState.CRASHED

    def make_byzantine(
        self,
        offset: Optional[float] = None,
        *,
        sign: int = 1,
        sigma: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """The channel corrupts emissions.

        ``offset`` adds a fixed error; ``offset=None`` saturates the
        capacity with ``sign``; ``sigma`` adds Gaussian noise instead.
        """
        if sign not in (-1, 1):
            raise ValueError(f"sign must be +-1, got {sign}")
        self.state = ComponentState.BYZANTINE
        if sigma is not None:
            self._sigma = float(sigma)
            self._rng = rng if rng is not None else np.random.default_rng()
            self._offset = None
        else:
            self._offset = (
                float(offset)
                if offset is not None
                else (sign * self.capacity if self.capacity is not None else None)
            )
            if self._offset is None:
                raise ValueError(
                    "capacity-saturating byzantine channel needs a finite capacity"
                )
            self._sigma = None

    def repair(self) -> None:
        """Restore correct operation."""
        self.state = ComponentState.CORRECT
        self._offset = self._sigma = self._rng = None

    # -- transmission --------------------------------------------------------

    def _bound_deviation(self, deviation: float) -> float:
        if self.capacity is None:
            return deviation
        return float(np.clip(deviation, -self.capacity, self.capacity))

    def transmit(self, emission: float) -> float:
        """Deliver an emission; the consumer multiplies by ``weight``."""
        if self.state is ComponentState.CORRECT:
            return float(emission)
        if self.state is ComponentState.CRASHED:
            return float(emission + self._bound_deviation(-emission))
        # Byzantine: additive corruption, bounded by the capacity.
        if self._sigma is not None:
            noise = float(self._rng.normal(0.0, self._sigma))
            return float(emission + self._bound_deviation(noise))
        return float(emission + self._bound_deviation(self._offset))

    def received_term(self, emission: float) -> float:
        """The weighted contribution the consumer adds to its sum."""
        return self.weight * self.transmit(emission)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SynapseChannel(w={self.weight:g}, C={self.capacity}, "
            f"state={self.state.value})"
        )
