"""The classical baseline: whole-network replication with voting.

The paper's introduction contrasts its neuron-grained fault tolerance
with the classical approach: "consider the entire neural network as a
single piece of software, replicate this piece on several machines,
and use classical state machine replication schemes to enforce the
consistency of the replicas" [12].  There, "no neuron is supposed to
fail independently: the unit of failure is the entire machine".

This module implements that baseline so the comparison can be run:

* :class:`ReplicatedEnsemble` — ``r`` replicas of a network, each
  evaluated independently; the client aggregates with a **median**
  vote (robust to ``floor((r-1)/2)`` arbitrary replica outputs);
* failure injection at *machine* grain: a Byzantine replica returns an
  arbitrary value, a crashed replica returns nothing (and is excluded
  from the vote);
* the cost model the paper's comparison needs: an ``r``-replica SMR
  deployment spends ``r * N`` neurons to mask ``floor((r-1)/2)``
  *machine* failures, while Corollary-1 over-provisioning spends its
  extra neurons masking *neuron* failures inside one machine — the
  experiment (`exp_smr_baseline`) puts numbers on that trade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..network.model import FeedForwardNetwork

__all__ = ["ReplicaState", "ReplicatedEnsemble", "smr_tolerance", "smr_neuron_cost"]


def smr_tolerance(n_replicas: int) -> int:
    """Machine failures masked by an ``n_replicas`` median vote:
    ``floor((r - 1) / 2)`` arbitrary (Byzantine) replicas."""
    if n_replicas < 1:
        raise ValueError(f"need at least one replica, got {n_replicas}")
    return (n_replicas - 1) // 2


def smr_neuron_cost(network: FeedForwardNetwork, n_replicas: int) -> int:
    """Total neurons deployed by an ``n_replicas`` SMR scheme."""
    return n_replicas * network.num_neurons


@dataclass
class ReplicaState:
    """Health of one replica (machine-grained failure)."""

    network: FeedForwardNetwork
    crashed: bool = False
    byzantine_value: Optional[float] = None

    def evaluate(self, x: np.ndarray) -> Optional[np.ndarray]:
        """Replica output, ``None`` when crashed."""
        if self.crashed:
            return None
        out = self.network.forward(x)
        if self.byzantine_value is not None:
            return np.full_like(out, self.byzantine_value)
        return out


class ReplicatedEnsemble:
    """``r`` whole-network replicas with a median-voting client.

    Parameters
    ----------
    networks:
        The replicas.  Pass ``r`` copies of one trained network (the
        SMR picture: identical state machines), or independently
        trained ones (ensemble flavour) — the voting guarantee is the
        same.
    """

    def __init__(self, networks: Sequence[FeedForwardNetwork]):
        networks = list(networks)
        if not networks:
            raise ValueError("need at least one replica")
        d = networks[0].input_dim
        o = networks[0].n_outputs
        for net in networks:
            if net.input_dim != d or net.n_outputs != o:
                raise ValueError("replicas must share input/output shapes")
        self.replicas: List[ReplicaState] = [ReplicaState(n) for n in networks]

    @classmethod
    def of_copies(cls, network: FeedForwardNetwork, r: int) -> "ReplicatedEnsemble":
        """The textbook SMR deployment: ``r`` identical replicas."""
        if r < 1:
            raise ValueError(f"need r >= 1, got {r}")
        return cls([network.copy() for _ in range(r)])

    # -- failure control -------------------------------------------------

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    @property
    def tolerance(self) -> int:
        """Byzantine replicas masked by the median vote."""
        return smr_tolerance(self.n_replicas)

    def crash_replica(self, index: int) -> None:
        self.replicas[index].crashed = True

    def make_replica_byzantine(self, index: int, value: float) -> None:
        self.replicas[index].byzantine_value = float(value)

    def repair_all(self) -> None:
        for rep in self.replicas:
            rep.crashed = False
            rep.byzantine_value = None

    @property
    def num_faulty(self) -> int:
        return sum(
            1
            for rep in self.replicas
            if rep.crashed or rep.byzantine_value is not None
        )

    # -- evaluation --------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Median vote over live replicas.

        Crashed replicas are excluded (synchronous model: the client
        detects silence); Byzantine outputs participate, which is what
        the median defends against.  Raises when every replica crashed.
        """
        outputs = [rep.evaluate(x) for rep in self.replicas]
        live = [o for o in outputs if o is not None]
        if not live:
            raise RuntimeError("all replicas crashed; no output available")
        return np.median(np.stack(live, axis=0), axis=0)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def vote_error(self, x: np.ndarray, reference: FeedForwardNetwork) -> float:
        """``sup_X |vote(X) - reference(X)|`` over the batch."""
        ref = reference.forward(x)
        return float(np.max(np.abs(self.forward(x) - ref)))

    def masks_current_failures(self) -> bool:
        """Whether the vote still guarantees a correct value:
        the number of faulty replicas is within ``tolerance``."""
        return self.num_faulty <= self.tolerance
