"""Message and event records for the synchronous simulator.

The paper's Section II-A model: "Neurons communicate via
message-passing through synchronous point-to-point communication
channels called synapses."  Each neuron *fires (broadcasts) a signal
(message) to all the neurons of the layer on its right*; a round of
the simulator delivers one layer's broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Signal", "Reset", "RoundTrace", "ComponentState"]


class ComponentState(Enum):
    """Health of a neuron or synapse (Definition 2 / Section II-A)."""

    CORRECT = "correct"
    CRASHED = "crashed"
    BYZANTINE = "byzantine"


@dataclass(frozen=True)
class Signal:
    """A value fired from neuron ``src`` (layer ``layer``) in ``round``.

    ``src`` is a neuron index within its layer; input signals use
    ``layer = 0``.
    """

    layer: int
    src: int
    value: float
    round: int

    def __post_init__(self):
        if self.layer < 0 or self.src < 0 or self.round < 0:
            raise ValueError(f"invalid signal coordinates: {self}")


@dataclass(frozen=True)
class Reset(Signal):
    """The Corollary-2 reset: a consumer tells a slow producer to stop.

    Carries no payload; ``value`` is fixed at 0 — the consumer will use
    0 for the producer, exactly as for a crashed neuron.
    """

    def __init__(self, layer: int, src: int, round: int):  # pragma: no cover - thin
        super().__init__(layer=layer, src=src, value=0.0, round=round)


@dataclass
class RoundTrace:
    """What happened in one synchronous round (one layer's broadcast)."""

    round: int
    layer: int
    signals_delivered: int
    signals_dropped: int
    signals_corrupted: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"round {self.round}: layer {self.layer} broadcast "
            f"{self.signals_delivered} delivered, {self.signals_dropped} dropped, "
            f"{self.signals_corrupted} corrupted"
        )
