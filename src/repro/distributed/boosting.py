"""The Corollary-2 boosting scheme: fire after ``N - f`` signals.

Section V-B: "Each time a neuron receives a sufficient amount of
information from its preceding input layer, it sends a reset to the
slow neurons instead of waiting for their values and moves on with its
own computation, adopting value 0 for the slow neurons."  Corollary 2
quantifies "sufficient": if the crash distribution ``(f_l)`` satisfies
Theorem 3, waiting for only ``N_{l-1} - f_{l-1}`` signals preserves the
epsilon-approximation — because the un-waited-for neurons are
indistinguishable from crashes, which the bound already covers.

The simulation attaches a latency to every neuron.  In the *baseline*
regime each layer waits for its slowest producer; in the *boosted*
regime each consumer fires as soon as the per-layer quota of fastest
producers has delivered, resetting the stragglers (whose values read
0).  We report both the accuracy impact (bounded by Fep at ``(f_l)``)
and the latency saved — the scheme's entire point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..core.bounds import corollary2_required_signals
from ..core.fep import network_fep
from ..faults.scenarios import FailureScenario, crash_scenario
from ..faults.injector import FaultInjector
from ..network.model import FeedForwardNetwork, NeuronAddress

__all__ = [
    "LatencyModel",
    "BoostingResult",
    "boosted_reset_masks",
    "simulate_boosted_run",
    "boosting_report",
]


@dataclass
class LatencyModel:
    """Per-neuron compute latencies (arbitrary time units).

    ``latencies[l0][i]`` is the time neuron ``i`` of layer ``l0+1``
    needs between having its inputs and firing.  Factories provide the
    common cases.
    """

    latencies: List[np.ndarray]

    @classmethod
    def uniform_random(
        cls,
        network: FeedForwardNetwork,
        *,
        low: float = 1.0,
        high: float = 2.0,
        straggler_fraction: float = 0.1,
        straggler_scale: float = 10.0,
        rng: Optional[np.random.Generator] = None,
    ) -> "LatencyModel":
        """Uniform latencies with a fraction of heavy stragglers.

        The straggler population is what boosting is designed to mask:
        ``straggler_fraction`` of each layer runs ``straggler_scale``
        times slower.
        """
        if not 0 <= straggler_fraction <= 1:
            raise ValueError(f"straggler_fraction must be in [0,1]")
        rng = rng if rng is not None else np.random.default_rng()
        lat: List[np.ndarray] = []
        for n in network.layer_sizes:
            base = rng.uniform(low, high, size=n)
            n_slow = int(np.floor(straggler_fraction * n))
            if n_slow:
                slow = rng.choice(n, size=n_slow, replace=False)
                base[slow] *= straggler_scale
            lat.append(base)
        return cls(lat)

    @classmethod
    def constant(cls, network: FeedForwardNetwork, value: float = 1.0) -> "LatencyModel":
        return cls([np.full(n, float(value)) for n in network.layer_sizes])

    def validate(self, network: FeedForwardNetwork) -> "LatencyModel":
        if len(self.latencies) != network.depth:
            raise ValueError(
                f"latency model has {len(self.latencies)} layers, network "
                f"has {network.depth}"
            )
        for l0, (lat, n) in enumerate(zip(self.latencies, network.layer_sizes)):
            if lat.shape != (n,):
                raise ValueError(
                    f"layer {l0 + 1} latencies shape {lat.shape} != ({n},)"
                )
            if np.any(lat <= 0):
                raise ValueError("latencies must be positive")
        return self


@dataclass
class BoostingResult:
    """Outcome of one boosted run vs its synchronous baseline."""

    output_boosted: np.ndarray
    output_baseline: np.ndarray
    #: Completion time of each layer in the baseline (wait-for-all) regime.
    baseline_layer_times: tuple[float, ...]
    #: Completion time of each layer in the boosted regime.
    boosted_layer_times: tuple[float, ...]
    #: Neurons reset (treated as 0) per layer.
    resets_per_layer: tuple[int, ...]
    #: The analytic error bound for the implied crash distribution.
    error_bound: float

    @property
    def baseline_makespan(self) -> float:
        return self.baseline_layer_times[-1]

    @property
    def boosted_makespan(self) -> float:
        return self.boosted_layer_times[-1]

    @property
    def speedup(self) -> float:
        if self.boosted_makespan == 0:
            return float("inf")
        return self.baseline_makespan / self.boosted_makespan

    @property
    def observed_error(self) -> float:
        return float(np.max(np.abs(self.output_boosted - self.output_baseline)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BoostingResult(speedup={self.speedup:.2f}x, "
            f"resets={self.resets_per_layer}, err={self.observed_error:.4g} "
            f"<= bound {self.error_bound:.4g})"
        )


def _boosted_timing(
    network: FeedForwardNetwork,
    latency: LatencyModel,
    tolerated: Sequence[int],
) -> tuple[list, list, list]:
    """Layer completion times and reset sets for one latency draw.

    In the boosted regime each consumer fires once the ``N_l - f_l``
    fastest producers of layer ``l`` delivered; the remaining ``f_l``
    (chosen by the latency draw) are reset.  The baseline waits for the
    slowest producer instead.
    """
    baseline_times: list[float] = []
    boosted_times: list[float] = []
    reset_sets: list[np.ndarray] = []
    t_base = 0.0
    t_boost = 0.0
    for l0 in range(network.depth):
        lat = latency.latencies[l0]
        n = lat.size
        f = int(tolerated[l0])
        finish = t_boost + lat
        order = np.argsort(finish)
        quota = n - f
        # The consumer fires once the quota-th fastest producer delivered.
        t_boost = float(finish[order[quota - 1]])
        reset_sets.append(order[quota:])
        t_base = t_base + float(lat.max())
        baseline_times.append(t_base)
        boosted_times.append(t_boost)
    return baseline_times, boosted_times, reset_sets


def _validate_boost_args(
    network: FeedForwardNetwork,
    latency: LatencyModel,
    tolerated: Sequence[int],
) -> tuple[int, ...]:
    """Shared precondition check for the boosted-run entry points."""
    latency.validate(network)
    tolerated = tuple(int(f) for f in tolerated)
    if len(tolerated) != network.depth:
        raise ValueError(
            f"tolerated length {len(tolerated)} != depth {network.depth}"
        )
    for f, n in zip(tolerated, network.layer_sizes):
        if not 0 <= f < n:
            raise ValueError(f"straggler budget {tolerated} outside [0, N_l)")
    return tolerated


def boosted_reset_masks(
    network: FeedForwardNetwork,
    latency: LatencyModel,
    tolerated: Sequence[int],
) -> tuple[List[np.ndarray], float, float]:
    """Reset sets of one boosted run, as per-layer boolean masks.

    The mask-level face of :func:`simulate_boosted_run`: the same
    timing model picks which ``f_l`` stragglers each layer resets, but
    the result is returned as ``(reset_masks, baseline_makespan,
    boosted_makespan)`` — ``reset_masks[l0]`` is the ``(N_{l+1},)``
    boolean mask of neurons whose values read 0 during the boosted
    pass.  This is what the chaos subsystem's rejuvenation policy
    lowers straight onto the campaign engine's crash channel: a
    rejuvenating replica serves its restart epoch in boosted mode, the
    reset set *is* its fault mask for that epoch, and the makespans
    price the restart (Section V-B's latency accounting).
    """
    tolerated = _validate_boost_args(network, latency, tolerated)
    baseline_times, boosted_times, reset_sets = _boosted_timing(
        network, latency, tolerated
    )
    masks = []
    for n, resets in zip(network.layer_sizes, reset_sets):
        mask = np.zeros(n, dtype=bool)
        mask[resets] = True
        masks.append(mask)
    return masks, baseline_times[-1], boosted_times[-1]


def simulate_boosted_run(
    network: FeedForwardNetwork,
    x: np.ndarray,
    latency: LatencyModel,
    tolerated: Sequence[int],
) -> BoostingResult:
    """Run one input through the boosted protocol and its baseline.

    ``tolerated = (f_l)`` is the per-layer straggler budget; consumers
    of layer ``l`` fire after the fastest ``N_l - f_l`` producers of
    layer ``l`` have delivered, resetting the rest (their values read
    0, i.e. a crash of the slowest ``f_l`` — chosen *by the latency
    draw*, not adversarially).

    Timing model: layer ``l``'s neuron ``i`` fires at
    ``ready(l) + latency[l][i]`` where ``ready(l)`` is when its own
    quota was met; the baseline waits for the max instead of the
    quota-th order statistic.
    """
    tolerated = _validate_boost_args(network, latency, tolerated)

    baseline_times, boosted_times, reset_sets = _boosted_timing(
        network, latency, tolerated
    )

    # --- values ---------------------------------------------------------
    injector = FaultInjector(network, capacity=network.output_bound)
    addresses = [
        NeuronAddress(l0 + 1, int(i))
        for l0, resets in enumerate(reset_sets)
        for i in resets
    ]
    scenario = (
        crash_scenario(addresses, name="boosting-resets")
        if addresses
        else FailureScenario(name="boosting-none")
    )
    xb = np.asarray(x, dtype=np.float64)
    if xb.ndim == 1:
        xb = xb[None, :]
    out_boosted = injector.run(xb, scenario)
    out_baseline = network.forward(xb)

    bound = network_fep(network, tolerated, mode="crash")
    return BoostingResult(
        output_boosted=out_boosted,
        output_baseline=out_baseline,
        baseline_layer_times=tuple(baseline_times),
        boosted_layer_times=tuple(boosted_times),
        resets_per_layer=tuple(len(r) for r in reset_sets),
        error_bound=bound,
    )


def boosting_report(
    network: FeedForwardNetwork,
    x: np.ndarray,
    tolerated: Sequence[int],
    epsilon: float,
    epsilon_prime: float,
    *,
    n_trials: int = 20,
    straggler_fraction: float = 0.1,
    straggler_scale: float = 10.0,
    seed: int = 0,
) -> dict:
    """Aggregate boosting statistics over random latency draws.

    Validates the budget through Corollary 2 first (raises if the
    distribution is not tolerated), then reports mean/min speedup and
    the worst observed output deviation against the analytic bound.

    Timing is simulated per trial (cheap), but the value computation is
    batched: every trial's reset set becomes one row of a crash-mask
    batch, evaluated in a single sweep on the mask-native engine
    instead of ``n_trials`` scalar injector runs (see DESIGN.md).
    """
    from ..faults.masks import empty_mask_batch

    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    quotas = corollary2_required_signals(network, tolerated, epsilon, epsilon_prime)
    rng = np.random.default_rng(seed)
    xb = np.asarray(x, dtype=np.float64)
    if xb.ndim == 1:
        xb = xb[None, :]

    speedups = []
    batch = empty_mask_batch(network.layer_sizes, n_trials)
    batch.names.extend(f"trial{t}" for t in range(n_trials))
    zero_masks = batch.zero_masks
    for t in range(n_trials):
        latency = LatencyModel.uniform_random(
            network,
            straggler_fraction=straggler_fraction,
            straggler_scale=straggler_scale,
            rng=rng,
        )
        baseline_times, boosted_times, reset_sets = _boosted_timing(
            network, latency, tolerated
        )
        boosted = boosted_times[-1]
        speedups.append(
            float("inf") if boosted == 0 else baseline_times[-1] / boosted
        )
        for l0, resets in enumerate(reset_sets):
            zero_masks[l0][t, resets] = True

    injector = FaultInjector(network, capacity=network.output_bound)
    outs = injector.run_many(xb, batch)  # (n_trials, B, n_out)
    baseline = network.forward(xb)
    errors = np.abs(outs - baseline[None]).max(axis=(1, 2))

    bound = network_fep(network, tolerated, mode="crash")
    return {
        "quotas": quotas,
        "mean_speedup": float(np.mean(speedups)),
        "min_speedup": float(np.min(speedups)),
        "max_observed_error": float(errors.max()),
        "error_bound": bound,
        "budget": epsilon - epsilon_prime,
        "n_trials": n_trials,
    }
