"""Synchronous message-passing simulation of a feed-forward network.

This is the paper's Section II-A model made literal: one process per
neuron, one channel per synapse, and ``L + 1`` synchronous rounds per
computation (round ``l`` delivers layer ``l-1``'s broadcast to layer
``l``; the final round feeds the linear output node).

The simulator is the *semantic reference*: the vectorised
:class:`repro.faults.FaultInjector` is validated against it by exact
(up to float associativity) equivalence on identical failure
scenarios.  It is intentionally process-grained and per-input — use
the injector for campaigns.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..faults.scenarios import FailureScenario
from ..faults.types import (
    CrashFault,
    NeuronFault,
    SynapseByzantineFault,
    SynapseCrashFault,
    SynapseFault,
)
from ..network.model import FeedForwardNetwork
from .channels import SynapseChannel
from .events import ComponentState, RoundTrace, Signal
from .neuron import NeuronProcess

__all__ = ["DistributedNetwork"]


class DistributedNetwork:
    """A process-per-neuron realisation of a :class:`FeedForwardNetwork`.

    Parameters
    ----------
    network:
        The weights/topology to clone into processes and channels.
    capacity:
        Transmission capacity ``C`` (``None`` = unbounded).
    """

    def __init__(
        self,
        network: FeedForwardNetwork,
        capacity: Optional[float] = 1.0,
    ):
        self.network = network
        self.capacity = capacity
        self.neurons: List[List[NeuronProcess]] = []
        # channels[l][(j, i)] carries layer-l0 emissions; stage l0+1.
        self.channels: List[Dict[tuple[int, int], SynapseChannel]] = []
        self._build()
        self.traces: List[RoundTrace] = []

    def _build(self) -> None:
        net = self.network
        for l0, layer in enumerate(net.layers):
            dense = layer.dense_weights()
            mask = layer.synapse_mask()
            row: List[NeuronProcess] = []
            stage: Dict[tuple[int, int], SynapseChannel] = {}
            for j in range(layer.n_out):
                bias = 0.0
                if hasattr(layer, "use_bias") and layer.use_bias:
                    bias = float(layer.bias[j]) if layer.bias.size > 1 else float(layer.bias[0])
                row.append(
                    NeuronProcess(l0 + 1, j, dense[j], bias, layer.activation)
                )
                for i in range(layer.n_in):
                    if mask[j, i]:
                        stage[(j, i)] = SynapseChannel(dense[j, i], self.capacity)
            self.neurons.append(row)
            self.channels.append(stage)
        # Output stage channels.
        out_stage: Dict[tuple[int, int], SynapseChannel] = {}
        for j in range(net.n_outputs):
            for i in range(net.layer_sizes[-1]):
                out_stage[(j, i)] = SynapseChannel(
                    net.output_weights[j, i], self.capacity
                )
        self.channels.append(out_stage)

    # ------------------------------------------------------------------
    # Failure control
    # ------------------------------------------------------------------

    def reset_failures(self) -> None:
        """Repair every neuron and channel."""
        for row in self.neurons:
            for neuron in row:
                neuron.repair()
        for stage in self.channels:
            for channel in stage.values():
                channel.repair()

    def apply_scenario(
        self,
        scenario: FailureScenario,
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Install a failure scenario onto processes and channels.

        Any neuron fault model is accepted (the process applies it at
        fire time with the same deviation-bounded semantics as the
        vectorised injector); synapse faults may be crash or
        Byzantine-with-offset.
        """
        scenario.validate(self.network)
        for addr, fault in scenario.neuron_faults.items():
            neuron = self.neurons[addr.layer - 1][addr.index]
            if isinstance(fault, CrashFault):
                neuron.crash()
            elif isinstance(fault, NeuronFault):
                neuron.set_fault(fault, capacity=self.capacity, rng=rng)
            else:  # pragma: no cover - scenario validation prevents this
                raise TypeError(f"not a neuron fault: {fault!r}")
        for (l, j, i), fault in scenario.synapse_faults.items():
            channel = self.channels[l - 1][(j, i)]
            if isinstance(fault, SynapseCrashFault):
                channel.crash()
            elif isinstance(fault, SynapseByzantineFault):
                channel.make_byzantine(fault.offset, sign=fault.sign)
            elif isinstance(fault, SynapseFault):
                raise ValueError(
                    f"simulator supports crash/byzantine synapse faults, got {fault!r}"
                )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, x: np.ndarray, *, record_trace: bool = False) -> np.ndarray:
        """One full synchronous computation for a single input vector.

        Returns the output-node values, shape ``(n_outputs,)``.
        """
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        if x.shape[0] != self.network.input_dim:
            raise ValueError(
                f"input has {x.shape[0]} entries, expected {self.network.input_dim}"
            )
        self.traces = []
        emissions = list(x)  # layer-0 "emissions" are the client inputs
        src_layer = 0
        for l0, row in enumerate(self.neurons):
            delivered = dropped = corrupted = 0
            for neuron in row:
                neuron.reset_round()
            stage = self.channels[l0]
            for (j, i), channel in stage.items():
                emission = emissions[i]
                if emission is None:  # crashed producer: nothing on the wire
                    dropped += 1
                    continue
                value = channel.transmit(emission)
                if channel.state is not ComponentState.CORRECT:
                    corrupted += 1
                delivered += 1
                row[j].receive(Signal(layer=src_layer, src=i, value=value, round=l0))
            for neuron in row:
                neuron.fire()
            if record_trace:
                self.traces.append(
                    RoundTrace(l0, src_layer, delivered, dropped, corrupted)
                )
            # Faulty emissions were already deviation-bounded at fire time
            # (NeuronProcess.fire); nothing more to clip here.
            emissions = [n.fired_value for n in row]
            src_layer = l0 + 1

        # Output node: linear client summing its channels.
        out = np.array(self.network.output_bias, dtype=np.float64, copy=True)
        out_stage = self.channels[-1]
        for (j, i), channel in out_stage.items():
            emission = emissions[i]
            if emission is None:
                continue
            out[j] += channel.received_term(emission)
        return out

    def run_batch(self, X: np.ndarray) -> np.ndarray:
        """Convenience loop over a batch (the simulator is per-input)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        return np.stack([self.run(x) for x in X])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_processes(self) -> int:
        return sum(len(row) for row in self.neurons)

    @property
    def num_channels(self) -> int:
        return sum(len(stage) for stage in self.channels)

    def component_states(self) -> dict[str, int]:
        """Counts of correct/crashed/byzantine components."""
        counts = {"correct": 0, "crashed": 0, "byzantine": 0}
        for row in self.neurons:
            for neuron in row:
                counts[neuron.state.value] += 1
        for stage in self.channels:
            for channel in stage.values():
                counts[channel.state.value] += 1
        return counts
