"""Neuron processes: the computing nodes of the distributed system.

Each neuron is a state machine that (1) accumulates signals from its
incoming channels, (2) applies its weighted sum + activation when told
to fire, and (3) broadcasts its emission.  Faulty neurons deviate per
Definition 2: a crashed neuron emits nothing (consumers read 0); a
Byzantine neuron emits an arbitrary value, which every outgoing channel
then bounds by the capacity (Assumption 1).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..faults.injector import apply_neuron_fault
from ..faults.types import ByzantineFault, NeuronFault
from ..network.activations import Activation
from .events import ComponentState, Signal

__all__ = ["NeuronProcess"]


class NeuronProcess:
    """One neuron of layer ``layer`` (index ``index`` within the layer).

    Parameters
    ----------
    layer, index:
        Address within the network (layers are 1-based).
    weights_in:
        Weight vector over the previous layer's neurons (the weights
        "from" each left neighbour, Equation 3).
    bias:
        Bias term (the constant-neuron weight of the paper's footnote).
    activation:
        The squashing function ``phi``.
    """

    def __init__(
        self,
        layer: int,
        index: int,
        weights_in: np.ndarray,
        bias: float,
        activation: Activation,
    ):
        if layer < 1 or index < 0:
            raise ValueError(f"bad neuron address ({layer}, {index})")
        self.layer = int(layer)
        self.index = int(index)
        self.weights_in = np.asarray(weights_in, dtype=np.float64)
        self.bias = float(bias)
        self.activation = activation
        self.state = ComponentState.CORRECT
        self._fault: Optional[NeuronFault] = None
        self._capacity: Optional[float] = None
        self._rng: Optional[np.random.Generator] = None
        self._inbox: Dict[int, float] = {}
        self.fired_value: Optional[float] = None
        #: Number of signals received before firing (boosting metric).
        self.signals_used: int = 0

    # -- fault control -------------------------------------------------------

    def crash(self) -> None:
        self.state = ComponentState.CRASHED

    def set_fault(
        self,
        fault: NeuronFault,
        *,
        capacity: Optional[float] = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Attach a (non-crash) fault model; applied at every fire.

        The emission follows the deviation-bounded semantics of
        :func:`repro.faults.injector.apply_neuron_fault` — identical to
        the vectorised engine, which the tests verify by equivalence.
        """
        self.state = ComponentState.BYZANTINE
        self._fault = fault
        self._capacity = capacity
        self._rng = rng

    def make_byzantine(
        self, value: float, *, capacity: Optional[float] = 1.0
    ) -> None:
        """Sugar: the neuron requests emitting a fixed ``value``."""
        self.set_fault(ByzantineFault(value=float(value)), capacity=capacity)

    def repair(self) -> None:
        self.state = ComponentState.CORRECT
        self._fault = None
        self._capacity = None
        self._rng = None

    @property
    def is_correct(self) -> bool:
        return self.state is ComponentState.CORRECT

    # -- message handling ------------------------------------------------------

    def reset_round(self) -> None:
        """Clear the inbox for a fresh computation."""
        self._inbox.clear()
        self.fired_value = None
        self.signals_used = 0

    def receive(self, signal: Signal) -> None:
        """Accept a delivered signal from a left-layer neighbour."""
        if signal.layer != self.layer - 1:
            raise ValueError(
                f"neuron ({self.layer},{self.index}) got a signal from layer "
                f"{signal.layer}; expected {self.layer - 1}"
            )
        if not 0 <= signal.src < self.weights_in.size:
            raise ValueError(f"signal source {signal.src} out of range")
        self._inbox[signal.src] = signal.value

    @property
    def inbox_size(self) -> int:
        return len(self._inbox)

    def missing_sources(self) -> list[int]:
        """Left-layer indices that have not delivered a signal yet."""
        return [i for i in range(self.weights_in.size) if i not in self._inbox]

    # -- computation -----------------------------------------------------------

    def compute_sum(self) -> float:
        """The received sum ``s_j`` (Equation 3); absent signals read 0.

        Missing entries model crashed-or-reset producers (Definition 2
        and the Corollary-2 boosting rule).
        """
        s = self.bias
        for src, value in self._inbox.items():
            s += self.weights_in[src] * value
        return float(s)

    def fire(self) -> Optional[float]:
        """Compute and broadcast the emission for this round.

        Returns the emitted value, or ``None`` for a crashed neuron
        (nothing is sent; consumers will read 0).
        """
        self.signals_used = self.inbox_size
        if self.state is ComponentState.CRASHED:
            self.fired_value = None
            return None
        nominal = float(self.activation(np.float64(self.compute_sum())))
        if self.state is ComponentState.BYZANTINE and self._fault is not None:
            emitted = apply_neuron_fault(
                self._fault, np.array([nominal]), self._capacity, self._rng
            )
            self.fired_value = float(emitted[0])
        else:
            self.fired_value = nominal
        return self.fired_value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NeuronProcess(({self.layer},{self.index}), state={self.state.value}, "
            f"fan_in={self.weights_in.size})"
        )
