"""The network as a distributed system: process-per-neuron synchronous
message-passing simulator (the paper's literal Section II-A model) and
the Corollary-2 boosting scheme.
"""

from .boosting import (
    BoostingResult,
    LatencyModel,
    boosting_report,
    simulate_boosted_run,
)
from .channels import SynapseChannel
from .events import ComponentState, Reset, RoundTrace, Signal
from .neuron import NeuronProcess
from .replication import (
    ReplicaState,
    ReplicatedEnsemble,
    smr_neuron_cost,
    smr_tolerance,
)
from .simulator import DistributedNetwork

__all__ = [
    "Signal",
    "Reset",
    "RoundTrace",
    "ComponentState",
    "SynapseChannel",
    "NeuronProcess",
    "DistributedNetwork",
    "LatencyModel",
    "BoostingResult",
    "simulate_boosted_run",
    "boosting_report",
    "ReplicatedEnsemble",
    "ReplicaState",
    "smr_tolerance",
    "smr_neuron_cost",
]
