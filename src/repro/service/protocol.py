"""The service wire protocol: newline-delimited JSON, typed both ways.

One request or response per line (JSONL).  The framing is deliberately
primitive — ``readline`` on both ends, no length prefixes, no binary —
because every payload the service moves is already JSON-native: specs
serialize through :meth:`~repro.specs.Spec.to_dict`, results through
:func:`result_payload`.  Python's ``json`` round-trips ``float64``
exactly (``repr`` shortest-representation), which is what lets the
daemon promise **bitwise identical** answers to a direct
``repro.run(spec)`` over a text protocol.

Requests (``op`` selects):

* ``submit`` — ``spec`` (a strict :func:`~repro.specs.spec_from_dict`
  payload), optional ``stream`` (send per-chunk progress), optional
  ``timeout`` (override the service default for a *new* job).
* ``ping`` / ``metrics`` / ``shutdown`` (optional ``drain``).

Responses (``type`` tags):

* ``accepted`` — job admitted; carries ``job`` (the spec's content
  hash) plus ``coalesced`` / ``cached`` provenance flags.
* ``chunk`` / ``adaptive`` — streamed progress riding the engines'
  SAMPLE_BLOCK / epoch-window boundaries and the adaptive-sampling
  stop decision.
* ``result`` / ``rejected`` / ``timeout`` / ``error`` — the terminal
  types.  Every admitted conversation ends in exactly one terminal
  message; overload sheds with ``rejected``, never a hung socket.
* ``pong`` / ``metrics`` / ``shutdown-ack`` — control-plane answers.

Unknown ops, non-object lines, and unknown request keys are protocol
errors — the same strictness discipline as the spec parsers.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Mapping, Optional

import numpy as np

from ..specs import CampaignSpec, ChaosSpec, Spec, SurvivalSpec

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "TERMINAL_TYPES",
    "REQUEST_OPS",
    "ProtocolError",
    "encode",
    "decode",
    "parse_request",
    "result_payload",
    "summarize_result",
]

#: Stamped into every response; clients reject other versions.
PROTOCOL_VERSION = 1

#: Upper bound on one JSONL frame — a guard against a garbage client
#: streaming an unbounded line into daemon memory.
MAX_LINE_BYTES = 64 * 1024 * 1024

#: Response types that end a submit conversation.
TERMINAL_TYPES = frozenset({"result", "rejected", "timeout", "error"})

#: Allowed request keys per op (strict: unknown keys are rejected).
REQUEST_OPS: Dict[str, frozenset] = {
    "submit": frozenset({"op", "spec", "stream", "timeout"}),
    "ping": frozenset({"op"}),
    "metrics": frozenset({"op"}),
    "shutdown": frozenset({"op", "drain"}),
}


class ProtocolError(ValueError):
    """A malformed frame or request."""


def encode(message: Mapping[str, Any]) -> bytes:
    """One JSONL frame: compact JSON + newline."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one frame; must be a JSON object."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def parse_request(line: bytes) -> Dict[str, Any]:
    """Decode and validate one client request frame."""
    request = decode(line)
    op = request.get("op")
    if op not in REQUEST_OPS:
        raise ProtocolError(
            f"unknown op {op!r}; known ops: {sorted(REQUEST_OPS)}"
        )
    unknown = set(request) - REQUEST_OPS[op]
    if unknown:
        raise ProtocolError(
            f"unknown keys for op {op!r}: {sorted(unknown)}"
        )
    if op == "submit":
        spec = request.get("spec")
        if not isinstance(spec, dict):
            raise ProtocolError("submit needs a 'spec' object payload")
        stream = request.get("stream", False)
        if not isinstance(stream, bool):
            raise ProtocolError(f"stream must be a bool, got {stream!r}")
        timeout = request.get("timeout")
        if timeout is not None:
            if not isinstance(timeout, (int, float)) or isinstance(
                timeout, bool
            ) or timeout <= 0:
                raise ProtocolError(
                    f"timeout must be a positive number, got {timeout!r}"
                )
    if op == "shutdown" and not isinstance(request.get("drain", True), bool):
        raise ProtocolError("drain must be a bool")
    return request


def _report_dict(report) -> Optional[Dict[str, Any]]:
    """JSON view of an adaptive/stratified report dataclass (or None)."""
    if report is None:
        return None
    payload = {"report": type(report).__name__}
    for field in dataclasses.fields(report):
        value = getattr(report, field.name)
        if isinstance(value, tuple):
            value = list(value)
        elif isinstance(value, np.generic):
            value = value.item()
        payload[field.name] = value
    return payload


def result_payload(spec: Spec, outcome: Any) -> Dict[str, Any]:
    """The JSON answer for one evaluated spec — the service's currency.

    Deterministic lowering of every ``repro.run`` return type; floats
    survive the JSON round trip bit-exactly, so re-encoding the same
    outcome always yields the same bytes (the cache/coalesce identity).
    """
    if isinstance(spec, CampaignSpec):
        errors = np.asarray(outcome.errors, dtype=np.float64)
        return {
            "kind": "campaign",
            "reduction": outcome.reduction,
            "n_scenarios": int(errors.size),
            "errors": [float(e) for e in errors],
            "adaptive": _report_dict(outcome.adaptive),
        }
    if isinstance(spec, SurvivalSpec):
        if isinstance(outcome, float):
            return {"kind": "survival", "survival": outcome}
        return {
            "kind": "survival",
            "survival": float(outcome.survival),
            "ci_low": float(outcome.ci_low),
            "ci_high": float(outcome.ci_high),
            "n_trials": int(outcome.n_trials),
            "certified_lower_bound": outcome.certified_lower_bound,
            "adaptive": _report_dict(outcome.adaptive),
        }
    if isinstance(spec, ChaosSpec):
        return {"kind": "chaos", "report": outcome.to_dict()}
    raise ProtocolError(
        f"spec kind {type(spec).__name__} is not servable"
    )


def summarize_result(payload: Mapping[str, Any]) -> str:
    """One human line for ``repro submit`` output."""
    kind = payload.get("kind")
    if kind == "campaign":
        errors = payload.get("errors", [])
        peak = max(errors) if errors else float("nan")
        return (
            f"campaign: {payload.get('n_scenarios', len(errors))} scenarios, "
            f"max error {peak:.6g}"
        )
    if kind == "survival":
        line = f"survival: {payload.get('survival'):.6g}"
        if "ci_low" in payload:
            line += (
                f" (CI [{payload['ci_low']:.6g}, {payload['ci_high']:.6g}], "
                f"n={payload.get('n_trials')})"
            )
        return line
    if kind == "chaos":
        report = payload.get("report", {})
        return (
            f"chaos: availability {report.get('availability'):.4f}, "
            f"violations {report.get('violation_fraction'):.4f}"
        )
    return f"result: {kind!r}"
