"""The resident campaign service: an asyncio daemon serving spec jobs.

:class:`CampaignService` is the serving layer over ``repro.run``: a
single event loop accepts JSONL connections (unix socket or loopback
TCP per :class:`~repro.specs.ServiceSpec`), validates every submitted
payload through the strict spec parsers, and answers each submit with
exactly one terminal message.  The job lifecycle composes four layers,
in order:

1. **Admission** — a bounded queue (``queue_depth``) feeds
   ``max_inflight`` runner tasks.  A full queue sheds the submit with
   a typed ``rejected`` response; a draining daemon rejects everything
   new.  Nothing ever blocks the event loop waiting for capacity.
2. **Coalescing** — jobs are keyed by the spec's ``content_hash``; a
   submit that matches an in-flight job attaches as a subscriber
   instead of spawning a second evaluation.  N identical concurrent
   submissions cost one engine run.
3. **Cache** — before queueing, the spec hash is looked up in a
   bounded in-memory LRU and then in the
   :class:`~repro.artifacts.ArtifactStore` run index
   (``results_dir``).  Hits answer immediately, no engine call.
4. **Evaluation** — runner tasks hand the spec to ``repro.run`` on a
   thread pool (the engines are numpy-bound and release the GIL in
   the kernels; the loop stays responsive).  A per-job timeout turns
   a stuck evaluation into a typed ``timeout`` response.

Streaming rides the observability plane: the job's
:class:`_StreamingObserver` (a :class:`~repro.obs.RunObserver`) emits
one ``chunk`` event per evaluated SAMPLE_BLOCK / epoch window — the
same block spans the trace records, serial or fan-out — plus an
``adaptive`` event when a confidence sequence stops early.  Because
observation draws no randomness, a streamed, daemon-served result is
bitwise identical to a direct ``repro.run(spec)``.

Service health is a :class:`~repro.obs.MetricsRegistry` — queue depth,
in-flight gauge, coalesce/cache/shed counters, a job-latency histogram
— served as OpenMetrics text by the ``metrics`` op.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from ..artifacts import ArtifactStore
from ..obs import MetricsRegistry, RunObserver, render_openmetrics
from ..specs import (
    CampaignSpec,
    ChaosSpec,
    ServiceSpec,
    Spec,
    SpecError,
    SurvivalSpec,
    run,
    spec_from_dict,
)
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    encode,
    parse_request,
    result_payload,
)

__all__ = ["CampaignService", "ServiceThread", "DEFAULT_SOCKET"]

#: Default unix-socket path when the spec names no endpoint.
DEFAULT_SOCKET = "repro-service.sock"

#: The workload kinds the daemon evaluates.
RUNNABLE_SPECS = (CampaignSpec, SurvivalSpec, ChaosSpec)

#: Schema version of the persisted run-result records.
RUN_RECORD_VERSION = 1

#: Listen backlog — sized for benchmark-scale connect bursts (>= 1000
#: concurrent clients), not the kernel default of ~100.
LISTEN_BACKLOG = 2048

#: Job-latency histogram buckets (seconds) — service jobs span
#: sub-millisecond cache hits to multi-second chaos campaigns.
LATENCY_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0, 60.0,
)


class _StreamingObserver(RunObserver):
    """A run observer that narrates chunk progress onto the wire.

    Progress becomes visible in exactly three places, all already
    instrumented by the obs subsystem: the serial chunk loops call
    :meth:`block_span`, fan-out parents :meth:`absorb` one worker
    payload per block (in submission order), and the adaptive layer
    calls :meth:`record_adaptive` with its stop decision.  Overriding
    those three seams streams every workload kind without touching an
    engine.  ``emit`` is called from the job thread; the daemon wraps
    it in ``call_soon_threadsafe``.
    """

    def __init__(self, emit: Callable[[Dict[str, Any]], None]):
        super().__init__(events=True)
        self._emit = emit
        self._evaluated = 0

    def _chunk(self, index: int, scenarios: int) -> None:
        self._evaluated += scenarios
        self._emit(
            {
                "type": "chunk",
                "index": index,
                "scenarios": scenarios,
                "evaluated": self._evaluated,
            }
        )

    @contextmanager
    def block_span(self, index: int, scenarios: int, **attrs):
        with super().block_span(index, scenarios, **attrs):
            yield
        self._chunk(int(index), int(scenarios))

    def absorb(self, payload) -> None:
        super().absorb(payload)
        for span in payload.get("spans", ()):
            if span.get("name") == "block":
                attrs = span.get("attrs", {})
                self._chunk(
                    int(attrs.get("index", -1)),
                    int(attrs.get("scenarios", 0)),
                )

    def record_adaptive(self, report) -> None:
        super().record_adaptive(report)
        self._emit(
            {
                "type": "adaptive",
                "method": report.method,
                "stopped": bool(report.stopped),
                "n_scenarios": int(report.n_scenarios),
                "n_cap": int(report.n_cap),
                "estimate": float(report.estimate),
                "ci_low": float(report.ci_low),
                "ci_high": float(report.ci_high),
            }
        )


class _Job:
    """One in-flight evaluation; subscribers share its event stream."""

    __slots__ = (
        "spec",
        "spec_hash",
        "timeout",
        "created",
        "subscribers",
        "finished",
        "terminal",
    )

    def __init__(self, spec: Spec, spec_hash: str, timeout: Optional[float]):
        self.spec = spec
        self.spec_hash = spec_hash
        self.timeout = timeout
        self.created = time.perf_counter()
        self.subscribers: List[asyncio.Queue] = []
        self.finished = asyncio.Event()
        self.terminal: Optional[Dict[str, Any]] = None

    def subscribe(self) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue()
        if self.terminal is not None:  # finished between lookup and attach
            queue.put_nowait(self.terminal)
        else:
            self.subscribers.append(queue)
        return queue


_STOP = object()  # runner-task poison pill


class CampaignService:
    """The daemon: admission -> coalesce -> cache -> engine -> stream."""

    def __init__(
        self, spec: ServiceSpec, *, store: Optional[ArtifactStore] = None
    ):
        if store is None and spec.results_dir is not None:
            store = ArtifactStore(spec.results_dir)
        self.spec = spec
        self.store = store
        self.metrics = MetricsRegistry()
        self._jobs: Dict[str, _Job] = {}
        self._cache: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._cache_lock = threading.Lock()
        self._queue: Optional[asyncio.Queue] = None
        self._runners: List[asyncio.Task] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._draining = False
        self._deliveries = 0  # submit conversations mid-flight
        self._stopped: Optional[asyncio.Event] = None
        self.started = threading.Event()  # set once the endpoint listens

    # -- metrics handles ---------------------------------------------------

    def _count(self, name: str, help: str, n: int = 1, **labels) -> None:
        self.metrics.counter(name, help, **labels).inc(n)

    def _observe_latency(self, seconds: float) -> None:
        self.metrics.histogram(
            "repro_service_job_seconds",
            buckets=LATENCY_BUCKETS,
            help="Submit-to-terminal latency per job.",
        ).observe(seconds)

    def _set_gauges(self) -> None:
        self.metrics.gauge(
            "repro_service_queue_depth", "Jobs waiting for a runner."
        ).set(self._queue.qsize() if self._queue is not None else 0)
        self.metrics.gauge(
            "repro_service_inflight", "Jobs admitted and not yet terminal."
        ).set(len(self._jobs))

    # -- the endpoint ------------------------------------------------------

    @property
    def endpoint(self) -> str:
        if self.spec.port is not None:
            return f"{self.spec.host}:{self.spec.port}"
        return self.spec.socket or DEFAULT_SOCKET

    async def serve(self) -> None:
        """Bind the endpoint and serve until a shutdown op arrives."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._queue = asyncio.Queue(maxsize=self.spec.queue_depth)
        self._executor = ThreadPoolExecutor(
            max_workers=self.spec.max_inflight,
            thread_name_prefix="repro-job",
        )
        self._runners = [
            asyncio.ensure_future(self._runner())
            for _ in range(self.spec.max_inflight)
        ]
        socket_path: Optional[Path] = None
        if self.spec.port is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.spec.host,
                port=self.spec.port, backlog=LISTEN_BACKLOG,
            )
        else:
            socket_path = Path(self.spec.socket or DEFAULT_SOCKET)
            socket_path.parent.mkdir(parents=True, exist_ok=True)
            with contextlib.suppress(OSError):
                socket_path.unlink()
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=str(socket_path),
                backlog=LISTEN_BACKLOG,
            )
        self.started.set()
        try:
            async with self._server:
                await self._stopped.wait()
        finally:
            for _ in self._runners:
                with contextlib.suppress(asyncio.QueueFull):
                    self._queue.put_nowait(_STOP)
            for task in self._runners:
                task.cancel()
            await asyncio.gather(*self._runners, return_exceptions=True)
            self._executor.shutdown(wait=False, cancel_futures=True)
            if socket_path is not None:
                with contextlib.suppress(OSError):
                    socket_path.unlink()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if len(line) > MAX_LINE_BYTES:
                    await self._send(
                        writer, self._error("frame too large", kind="protocol")
                    )
                    break
                try:
                    request = parse_request(line)
                except ProtocolError as exc:
                    await self._send(
                        writer, self._error(str(exc), kind="protocol")
                    )
                    continue
                op = request["op"]
                if op == "ping":
                    await self._send(writer, self._pong())
                elif op == "metrics":
                    self._set_gauges()
                    await self._send(
                        writer,
                        {
                            "type": "metrics",
                            "protocol": PROTOCOL_VERSION,
                            "openmetrics": render_openmetrics(self.metrics),
                        },
                    )
                elif op == "shutdown":
                    await self._handle_shutdown(request, writer)
                    break
                else:
                    self._deliveries += 1
                    try:
                        await self._handle_submit(request, writer)
                    finally:
                        self._deliveries -= 1
        except (ConnectionError, asyncio.CancelledError):
            # Client went away mid-conversation, or the loop is tearing
            # down an idle connection; either way, end quietly.
            pass
        finally:
            writer.close()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await writer.wait_closed()

    async def _send(
        self, writer: asyncio.StreamWriter, message: Dict[str, Any]
    ) -> None:
        writer.write(encode(message))
        await writer.drain()

    def _error(self, detail: str, *, kind: str) -> Dict[str, Any]:
        self._count(
            "repro_service_errors", "Error responses by kind.", kind=kind
        )
        return {
            "type": "error",
            "protocol": PROTOCOL_VERSION,
            "kind": kind,
            "detail": detail,
        }

    def _pong(self) -> Dict[str, Any]:
        return {
            "type": "pong",
            "protocol": PROTOCOL_VERSION,
            "inflight": len(self._jobs),
            "queued": self._queue.qsize() if self._queue is not None else 0,
            "draining": self._draining,
        }

    # -- submit: cache -> coalesce -> admit --------------------------------

    async def _handle_submit(
        self, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        self._count("repro_service_submits", "Submit requests received.")
        try:
            spec = spec_from_dict(request["spec"])
        except SpecError as exc:
            await self._send(writer, self._error(str(exc), kind="spec"))
            return
        if not isinstance(spec, RUNNABLE_SPECS):
            await self._send(
                writer,
                self._error(
                    f"{type(spec).__name__} is not a servable workload",
                    kind="spec",
                ),
            )
            return
        spec_hash = spec.content_hash()
        stream = bool(request.get("stream", False))

        cached = await self._cache_lookup(spec_hash)
        if cached is not None:
            await self._send(
                writer,
                self._accepted(spec_hash, cached=True, coalesced=False),
            )
            await self._send(
                writer,
                self._terminal_result(cached, cached=True, coalesced=False),
            )
            return

        job = self._jobs.get(spec_hash)
        coalesced = job is not None
        if coalesced:
            self._count(
                "repro_service_coalesce_hits",
                "Submits attached to an in-flight identical job.",
            )
        else:
            if self._draining:
                self._count(
                    "repro_service_rejected",
                    "Submits rejected by admission control.",
                    reason="shutting-down",
                )
                await self._send(
                    writer, self._rejected("shutting-down")
                )
                return
            job = _Job(spec, spec_hash, request.get("timeout"))
            try:
                self._queue.put_nowait(job)
            except asyncio.QueueFull:
                self._count(
                    "repro_service_rejected",
                    "Submits rejected by admission control.",
                    reason="queue-full",
                )
                self._count(
                    "repro_service_shed", "Jobs shed by a full queue."
                )
                await self._send(writer, self._rejected("queue-full"))
                return
            self._jobs[spec_hash] = job
        self._set_gauges()

        subscription = job.subscribe()
        await self._send(
            writer,
            self._accepted(spec_hash, cached=False, coalesced=coalesced),
        )
        while True:
            event = await subscription.get()
            if event.get("type") in ("chunk", "adaptive") and not stream:
                continue
            await self._send(writer, event)
            if event.get("type") not in ("chunk", "adaptive"):
                break

    def _accepted(
        self, spec_hash: str, *, cached: bool, coalesced: bool
    ) -> Dict[str, Any]:
        return {
            "type": "accepted",
            "protocol": PROTOCOL_VERSION,
            "job": spec_hash,
            "cached": cached,
            "coalesced": coalesced,
        }

    def _rejected(self, reason: str) -> Dict[str, Any]:
        return {
            "type": "rejected",
            "protocol": PROTOCOL_VERSION,
            "reason": reason,
            "queue_depth": self.spec.queue_depth,
        }

    def _terminal_result(
        self, payload: Dict[str, Any], *, cached: bool, coalesced: bool
    ) -> Dict[str, Any]:
        return {
            "type": "result",
            "protocol": PROTOCOL_VERSION,
            "cached": cached,
            "coalesced": coalesced,
            "result": payload,
        }

    # -- the result cache --------------------------------------------------

    async def _cache_lookup(self, spec_hash: str) -> Optional[Dict[str, Any]]:
        with self._cache_lock:
            payload = self._cache.get(spec_hash)
            if payload is not None:
                self._cache.move_to_end(spec_hash)
        if payload is not None:
            self._count(
                "repro_service_cache_hits",
                "Submits answered from the result cache.",
                tier="memory",
            )
            return payload
        if self.store is None:
            return None
        record = await self._loop.run_in_executor(
            None, self.store.load_run_result, spec_hash
        )
        if record is None or record.get("version") != RUN_RECORD_VERSION:
            return None
        payload = record["result"]
        self._cache_put(spec_hash, payload)
        self._count(
            "repro_service_cache_hits",
            "Submits answered from the result cache.",
            tier="store",
        )
        return payload

    def _cache_put(self, spec_hash: str, payload: Dict[str, Any]) -> None:
        if self.spec.cache_entries == 0:
            return
        with self._cache_lock:
            self._cache[spec_hash] = payload
            self._cache.move_to_end(spec_hash)
            while len(self._cache) > self.spec.cache_entries:
                self._cache.popitem(last=False)

    # -- runners -----------------------------------------------------------

    async def _runner(self) -> None:
        while True:
            job = await self._queue.get()
            if job is _STOP:
                return
            await self._run_job(job)

    async def _run_job(self, job: _Job) -> None:
        self._set_gauges()

        def emit(event: Dict[str, Any]) -> None:
            try:
                self._loop.call_soon_threadsafe(self._publish, job, event)
            except RuntimeError:  # loop closed; a timed-out job's thread
                pass              # outlived the daemon — drop the event

        future = self._loop.run_in_executor(
            self._executor, self._evaluate, job, emit
        )
        timeout = job.timeout or self.spec.job_timeout
        try:
            payload = await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            # The evaluation thread cannot be interrupted; it keeps
            # running and its (still-correct) result lands in the
            # cache on completion, but this job answers now.
            future.add_done_callback(lambda f: f.exception())
            self._finish(
                job,
                {
                    "type": "timeout",
                    "protocol": PROTOCOL_VERSION,
                    "job": job.spec_hash,
                    "timeout_s": timeout,
                },
                outcome="timeout",
            )
            return
        except Exception as exc:  # engine/spec failures become typed errors
            self._finish(
                job, self._error(str(exc), kind="internal"), outcome="error"
            )
            return
        self._finish(
            job,
            self._terminal_result(payload, cached=False, coalesced=False),
            outcome="completed",
        )

    def _evaluate(
        self, job: _Job, emit: Callable[[Dict[str, Any]], None]
    ) -> Dict[str, Any]:
        """Thread body: run the engines, encode, write through the cache."""
        obs = _StreamingObserver(emit)
        outcome = run(job.spec, obs=obs)
        payload = result_payload(job.spec, outcome)
        self._count(
            "repro_service_engine_runs", "Engine evaluations executed."
        )
        self._cache_put(job.spec_hash, payload)
        if self.store is not None:
            self.store.save_run_result(
                job.spec_hash,
                {
                    "version": RUN_RECORD_VERSION,
                    "spec_hash": job.spec_hash,
                    "kind": job.spec.spec_tag,
                    "spec": job.spec.to_dict(),
                    "result": payload,
                },
            )
        return payload

    def _publish(self, job: _Job, event: Dict[str, Any]) -> None:
        for queue in job.subscribers:
            queue.put_nowait(event)

    def _finish(
        self, job: _Job, terminal: Dict[str, Any], *, outcome: str
    ) -> None:
        self._count(
            "repro_service_jobs", "Finished jobs by outcome.", outcome=outcome
        )
        self._observe_latency(time.perf_counter() - job.created)
        if self._jobs.get(job.spec_hash) is job:
            del self._jobs[job.spec_hash]
        job.terminal = terminal
        self._publish(job, terminal)
        job.subscribers = []
        job.finished.set()
        self._set_gauges()

    # -- shutdown ----------------------------------------------------------

    async def _handle_shutdown(
        self, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        drain = bool(request.get("drain", True))
        self._draining = True
        drained = 0
        if drain:
            while self._jobs:
                job = next(iter(self._jobs.values()))
                await job.finished.wait()
                drained += 1
            # Jobs are terminal; now let their results finish crossing
            # the wire (a drained job with an undelivered answer is not
            # drained).
            while self._deliveries:
                await asyncio.sleep(0.005)
        with contextlib.suppress(ConnectionError):
            await self._send(
                writer,
                {
                    "type": "shutdown-ack",
                    "protocol": PROTOCOL_VERSION,
                    "drained": drained,
                },
            )
        self._stopped.set()

    def request_shutdown(self) -> None:
        """Stop serving from outside the loop (signal handlers, tests)."""
        if self._loop is not None and self._stopped is not None:
            try:
                self._loop.call_soon_threadsafe(self._stopped.set)
            except RuntimeError:  # loop already closed: nothing to stop
                pass


class ServiceThread:
    """A daemon running on a background thread — tests, benches, smoke.

    ``with ServiceThread(spec) as service:`` starts the loop, waits for
    the endpoint to listen, and on exit requests shutdown and joins.
    """

    def __init__(
        self, spec: ServiceSpec, *, store: Optional[ArtifactStore] = None
    ):
        self.service = CampaignService(spec, store=store)
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self.service.serve()),
            name="repro-service",
            daemon=True,
        )

    def __enter__(self) -> CampaignService:
        self._thread.start()
        if not self.service.started.wait(timeout=10.0):
            raise RuntimeError("service failed to start within 10s")
        return self.service

    def __exit__(self, *exc_info) -> None:
        self.service.request_shutdown()
        self._thread.join(timeout=10.0)
