"""A small blocking client for the campaign service.

:class:`ServiceClient` speaks the JSONL protocol over a plain
``socket`` — no asyncio on the client side, so notebooks, the CLI and
load-test threads can all use it directly.  One request is in flight
per connection at a time; responses are read line-by-line until a
terminal type arrives.  Failures are typed:

* :class:`ServiceUnavailable` — nothing is listening (dead daemon,
  wrong endpoint, connection refused);
* :class:`JobRejected` / :class:`JobTimeout` / :class:`JobFailed` —
  the daemon's typed terminal responses, raised by :meth:`result`;
  :meth:`submit` returns the raw terminal message instead for callers
  that want to branch on shedding.
"""

from __future__ import annotations

import json
import socket
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional

from ..specs import Spec, load_spec, spec_from_dict
from .protocol import TERMINAL_TYPES, ProtocolError, encode

__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "JobRejected",
    "JobTimeout",
    "JobFailed",
]


class ServiceError(RuntimeError):
    """Base class for client-visible service failures."""


class ServiceUnavailable(ServiceError):
    """No daemon answered at the endpoint."""


class JobRejected(ServiceError):
    """Admission control shed the job (typed ``rejected`` terminal)."""

    def __init__(self, response: Mapping[str, Any]):
        super().__init__(f"job rejected: {response.get('reason')}")
        self.response = dict(response)


class JobTimeout(ServiceError):
    """The daemon timed the job out (typed ``timeout`` terminal)."""

    def __init__(self, response: Mapping[str, Any]):
        super().__init__(
            f"job timed out after {response.get('timeout_s')}s"
        )
        self.response = dict(response)


class JobFailed(ServiceError):
    """The daemon answered with a typed ``error`` terminal."""

    def __init__(self, response: Mapping[str, Any]):
        super().__init__(
            f"{response.get('kind')} error: {response.get('detail')}"
        )
        self.response = dict(response)


def _normalize_spec(spec: "Spec | Mapping | str | Path") -> Dict[str, Any]:
    """Client-side strict validation; ships the canonical payload."""
    if isinstance(spec, (str, Path)):
        spec = load_spec(spec)
    elif isinstance(spec, Mapping):
        spec = spec_from_dict(spec)
    return spec.to_dict()


class ServiceClient:
    """Blocking JSONL client; one lazily-opened connection."""

    def __init__(
        self,
        socket_path: "str | Path | None" = None,
        *,
        host: Optional[str] = None,
        port: Optional[int] = None,
        connect_timeout: float = 5.0,
    ):
        if (socket_path is None) == (port is None):
            raise ValueError(
                "pass exactly one endpoint: socket_path or host/port"
            )
        self._socket_path = str(socket_path) if socket_path else None
        self._host = host or "127.0.0.1"
        self._port = port
        self._connect_timeout = connect_timeout
        self._sock: Optional[socket.socket] = None
        self._reader = None

    @property
    def endpoint(self) -> str:
        if self._socket_path is not None:
            return self._socket_path
        return f"{self._host}:{self._port}"

    # -- connection --------------------------------------------------------

    def _connect(self) -> None:
        if self._sock is not None:
            return
        try:
            if self._socket_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self._connect_timeout)
                sock.connect(self._socket_path)
            else:
                sock = socket.create_connection(
                    (self._host, self._port), timeout=self._connect_timeout
                )
        except OSError as exc:
            raise ServiceUnavailable(
                f"cannot reach repro service at {self.endpoint}: {exc}"
            ) from None
        sock.settimeout(None)  # job waits are unbounded client-side
        self._sock = sock
        self._reader = sock.makefile("rb")

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._reader.close()
                self._sock.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            self._sock = None
            self._reader = None

    def __enter__(self) -> "ServiceClient":
        self._connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- protocol ----------------------------------------------------------

    def _request(self, message: Dict[str, Any]) -> None:
        self._connect()
        try:
            self._sock.sendall(encode(message))
        except OSError as exc:
            self.close()
            raise ServiceUnavailable(
                f"lost repro service at {self.endpoint}: {exc}"
            ) from None

    def _read(self) -> Dict[str, Any]:
        try:
            line = self._reader.readline()
        except OSError as exc:
            self.close()
            raise ServiceUnavailable(
                f"lost repro service at {self.endpoint}: {exc}"
            ) from None
        if not line:
            self.close()
            raise ServiceUnavailable(
                f"repro service at {self.endpoint} closed the connection"
            )
        payload = json.loads(line.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ProtocolError("daemon sent a non-object frame")
        return payload

    # -- operations --------------------------------------------------------

    def submit(
        self,
        spec: "Spec | Mapping | str | Path",
        *,
        stream: bool = False,
        timeout: Optional[float] = None,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Submit one workload; returns the terminal response message.

        With ``stream=True``, progress events (``chunk``/``adaptive``)
        are passed to ``on_event`` as they arrive.  The ``accepted``
        handshake is also surfaced through ``on_event``.
        """
        request: Dict[str, Any] = {
            "op": "submit",
            "spec": _normalize_spec(spec),
            "stream": stream,
        }
        if timeout is not None:
            request["timeout"] = timeout
        self._request(request)
        while True:
            message = self._read()
            mtype = message.get("type")
            if mtype in TERMINAL_TYPES:
                return message
            if on_event is not None:
                on_event(message)

    def result(self, spec, **kwargs) -> Dict[str, Any]:
        """Submit and return the result payload, raising on any other
        terminal (:class:`JobRejected` / :class:`JobTimeout` /
        :class:`JobFailed`)."""
        terminal = self.submit(spec, **kwargs)
        mtype = terminal.get("type")
        if mtype == "result":
            return terminal["result"]
        if mtype == "rejected":
            raise JobRejected(terminal)
        if mtype == "timeout":
            raise JobTimeout(terminal)
        raise JobFailed(terminal)

    def ping(self) -> Dict[str, Any]:
        self._request({"op": "ping"})
        return self._read()

    def metrics_text(self) -> str:
        """The daemon's OpenMetrics exposition."""
        self._request({"op": "metrics"})
        return self._read()["openmetrics"]

    def shutdown(self, *, drain: bool = True) -> Dict[str, Any]:
        """Ask the daemon to stop; returns the ``shutdown-ack``."""
        self._request({"op": "shutdown", "drain": drain})
        ack = self._read()
        self.close()
        return ack
