"""Campaign-as-a-service: a resident daemon serving spec-keyed jobs.

The ninth subsystem — the serving layer over ``repro.run``.  Every
workload in this repo is already a frozen, content-hashed job
description (:class:`~repro.specs.CampaignSpec` /
:class:`~repro.specs.SurvivalSpec` / :class:`~repro.specs.ChaosSpec`);
this package adds the process that *stays up* and serves them:

* :mod:`~repro.service.daemon` — :class:`CampaignService`, the asyncio
  daemon: strict spec validation, content-hash request coalescing,
  cache-first answering from the :class:`~repro.artifacts.
  ArtifactStore`, a bounded off-loop worker pool, admission control
  with typed load shedding, and chunk-level result streaming;
* :mod:`~repro.service.protocol` — the JSONL wire protocol and the
  deterministic result codec (daemon answers are bitwise identical to
  a direct ``repro.run``);
* :mod:`~repro.service.client` — :class:`ServiceClient`, the blocking
  client behind ``repro submit`` / ``repro shutdown``.

Configured by :class:`~repro.specs.ServiceSpec`; driven from the CLI
via ``repro serve``.
"""

from .client import (
    JobFailed,
    JobRejected,
    JobTimeout,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)
from .daemon import DEFAULT_SOCKET, CampaignService, ServiceThread
from .protocol import (
    PROTOCOL_VERSION,
    TERMINAL_TYPES,
    ProtocolError,
    result_payload,
    summarize_result,
)

__all__ = [
    "CampaignService",
    "ServiceThread",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "JobRejected",
    "JobTimeout",
    "JobFailed",
    "ProtocolError",
    "PROTOCOL_VERSION",
    "TERMINAL_TYPES",
    "DEFAULT_SOCKET",
    "result_payload",
    "summarize_result",
]
