"""Artifact store: persist experiment results, cache unchanged re-runs.

The registry (:mod:`repro.experiments.registry`) says *what* can run;
this module makes every run durable and resumable:

* each :class:`~repro.experiments.runner.ExperimentResult` is persisted
  as a JSON artifact under ``<root>/artifacts/<id>.json`` (rows, shape
  checks, metrics, notes — :meth:`ExperimentResult.to_dict`);
* ``<root>/manifest.json`` records, per experiment, the provenance the
  report needs: content key, git SHA, seed, dtype, wall time, the
  shape-check outcomes, and where the artifact lives — plus running
  store-wide cache hit/miss totals (``manifest["cache"]``), surfaced
  by ``repro report``;
* the **content key** is a hash of the experiment module's source plus
  the call parameters.  Re-running an experiment whose source and
  parameters are unchanged is a *cache hit*: the stored result is
  loaded and reported as cached, nothing is executed.  Editing the
  module (or passing different parameters, or ``force=True``)
  invalidates exactly that experiment.

``repro run-all`` drives this store over the whole registry —
optionally in parallel over the fork-once pool — and ``repro report``
renders the manifest into EXPERIMENTS.md.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import subprocess
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .experiments.registry import RegisteredExperiment
from .experiments.runner import ExperimentResult, jsonable

__all__ = [
    "ArtifactStore",
    "RunOutcome",
    "content_key",
    "current_git_sha",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "LOCK_NAME",
]

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1

#: Cross-process mutex guarding manifest read-modify-write sequences.
LOCK_NAME = ".manifest.lock"


@contextmanager
def _file_lock(path: Path, *, timeout: float = 30.0, stale_after: float = 60.0):
    """A cross-process mutex: ``O_CREAT | O_EXCL`` on a lockfile.

    Creation is atomic on every POSIX filesystem, so whichever process
    wins the ``os.open`` owns the critical section; everyone else polls.
    A lockfile older than ``stale_after`` seconds is presumed abandoned
    (its owner crashed between create and unlink) and is stolen.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    deadline = time.monotonic() + timeout
    while True:
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                age = time.time() - path.stat().st_mtime
            except OSError:  # holder released between open and stat
                continue
            if age > stale_after:
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"gave up waiting for manifest lock {path} "
                    f"after {timeout}s"
                )
            time.sleep(0.002)
            continue
        try:
            os.write(fd, f"{os.getpid()}\n".encode())
        finally:
            os.close(fd)
        break
    try:
        yield
    finally:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - stolen as stale
            pass


def content_key(
    exp: RegisteredExperiment, params: Optional[Mapping[str, Any]] = None
) -> str:
    """Cache key: experiment id + workload identity + call parameters.

    Spec-declaring experiments (``@experiment(..., spec=...)``) key on
    the declared spec's **content hash** plus the entry point's
    signature defaults: the cache survives module refactors and
    replays whenever the *workload* — the versioned, serializable run
    spec and the parameter defaults the entry point sweeps with — is
    unchanged.  (The defaults matter: an experiment like
    ``chaos_rejuvenation`` sweeps ``periods=(5, 10, 20)`` around its
    canonical spec, and changing that sweep must invalidate.)
    Experiments without a spec fall back to hashing the *module*
    source (not just the function, because entry points routinely lean
    on module-level helpers); shared-library changes (e.g. the
    campaign engine) deliberately do not invalidate either key —
    ``--force`` exists for that.
    """
    spec_hash = exp.spec_hash()
    if spec_hash is not None:
        identity = {
            "spec_hash": spec_hash,
            "defaults": jsonable(_signature_defaults(exp)),
        }
    else:
        module = sys.modules[exp.fn.__module__]
        source = inspect.getsource(module)
        identity = {
            "source_sha": hashlib.sha256(source.encode()).hexdigest()
        }
    blob = json.dumps(
        {
            "experiment_id": exp.experiment_id,
            **identity,
            "params": jsonable(dict(params or {})),
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def current_git_sha(cwd: "str | Path | None" = None) -> Optional[str]:
    """Short git SHA of the working tree, or None outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=str(cwd) if cwd is not None else None,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _signature_defaults(exp: RegisteredExperiment) -> Dict[str, Any]:
    """The entry point's keyword defaults — the swept workload
    parameters a declared spec doesn't capture by itself."""
    try:
        parameters = inspect.signature(exp.fn).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return {}
    return {
        name: p.default
        for name, p in parameters.items()
        if p.default is not inspect.Parameter.empty
    }


def _default_seed(exp: RegisteredExperiment) -> Optional[int]:
    """The experiment's seed: the entry point's ``seed=`` default."""
    try:
        param = inspect.signature(exp.fn).parameters.get("seed")
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return None
    if param is None or param.default is inspect.Parameter.empty:
        return None
    return param.default


@dataclass(frozen=True)
class RunOutcome:
    """What ``ArtifactStore.run`` did for one experiment."""

    experiment_id: str
    result: ExperimentResult
    cached: bool
    wall_time_s: float
    entry: Dict[str, Any]

    @property
    def passed(self) -> bool:
        return self.result.passed

    def status_line(self) -> str:
        tag = "cached" if self.cached else ("pass" if self.passed else "FAIL")
        line = f"[{tag:>6}] {self.experiment_id} ({self.wall_time_s:.2f}s)"
        failing = self.result.failed_checks()
        if failing:
            line += f"  failing: {failing}"
        return line


class ArtifactStore:
    """JSON artifacts + manifest under one ``results/`` root."""

    def __init__(self, root: "str | Path" = "results"):
        self.root = Path(root)
        self.artifact_dir = self.root / "artifacts"
        self.trace_dir = self.root / "traces"
        self.manifest_path = self.root / MANIFEST_NAME

    # -- manifest ----------------------------------------------------------

    def load_manifest(self) -> Dict[str, Any]:
        if not self.manifest_path.exists():
            return {"version": MANIFEST_VERSION, "entries": {}}
        with open(self.manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
        manifest.setdefault("version", MANIFEST_VERSION)
        manifest.setdefault("entries", {})
        manifest.setdefault("cache", {"hits": 0, "misses": 0})
        return manifest

    @staticmethod
    def _bump_cache(
        manifest: Dict[str, Any], *, hits: int = 0, misses: int = 0
    ) -> None:
        """Add to the store-wide cache counters (in place)."""
        cache = manifest.setdefault("cache", {"hits": 0, "misses": 0})
        cache["hits"] = int(cache.get("hits", 0)) + hits
        cache["misses"] = int(cache.get("misses", 0)) + misses

    def _write_manifest(self, manifest: Dict[str, Any]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        # Unique temp name per process: two writers renaming the same
        # temp path can publish a torn manifest even when each write
        # is individually atomic.
        tmp = self.manifest_path.with_suffix(f".json.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        tmp.replace(self.manifest_path)

    def update_manifest(
        self, mutate: Callable[[Dict[str, Any]], None]
    ) -> Dict[str, Any]:
        """Locked read-modify-write: apply ``mutate`` to the manifest.

        Every manifest mutation in the store routes through here, so
        concurrent clients (parallel ``run()`` calls, multiple service
        daemons, the CLI) serialize on the lockfile instead of losing
        each other's updates.  Returns the manifest as written.
        """
        with _file_lock(self.root / LOCK_NAME):
            manifest = self.load_manifest()
            mutate(manifest)
            self._write_manifest(manifest)
        return manifest

    def entries(self) -> Dict[str, Dict[str, Any]]:
        return self.load_manifest()["entries"]

    # -- artifacts ---------------------------------------------------------

    def artifact_path(self, experiment_id: str) -> Path:
        return self.artifact_dir / f"{experiment_id}.json"

    def load_result(self, experiment_id: str) -> ExperimentResult:
        path = self.artifact_path(experiment_id)
        with open(path, "r", encoding="utf-8") as fh:
            return ExperimentResult.from_dict(json.load(fh))

    def _write_artifact(self, result: ExperimentResult) -> Path:
        self.artifact_dir.mkdir(parents=True, exist_ok=True)
        path = self.artifact_path(result.experiment_id)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2)
            fh.write("\n")
        return path

    # -- telemetry traces --------------------------------------------------

    def trace_path(self, name: str) -> Path:
        """Base JSON path of a stored chaos telemetry trace.

        ``name`` is whatever keys the trace — an experiment id, or a
        spec content hash (``ChaosSpec.content_hash()``), so re-running
        an identical workload overwrites rather than accumulates.  The
        npz array payload sits next to it with the same stem.
        """
        return self.trace_dir / f"{name}.json"

    def save_trace(self, name: str, trace) -> Path:
        """Persist a :class:`~repro.chaos.telemetry.TelemetryTrace`
        under ``<root>/traces/<name>.{json,npz}``; returns the JSON
        path.  Retention is the caller's business — pass the trace
        through :meth:`TelemetryTrace.retained` first if the spec asks
        for trimming."""
        from .chaos.telemetry import save_trace as _save

        return _save(trace, self.trace_path(name))

    def load_trace(self, name: str):
        """Load a stored trace by name (schema-version checked)."""
        from .chaos.telemetry import load_trace as _load

        return _load(self.trace_path(name))

    # -- spec-keyed run results (the service cache) ------------------------

    def run_result_path(self, spec_hash: str) -> Path:
        """Where a spec-hash-keyed run result lives."""
        return self.root / "runs" / f"{spec_hash}.json"

    def save_run_result(
        self, spec_hash: str, record: Mapping[str, Any]
    ) -> Path:
        """Persist one run result keyed by its spec's ``content_hash``.

        The artifact is written to a process-unique temp file and
        renamed (atomic — a concurrent reader sees the old file or the
        new one, never a torn write), then the manifest's ``runs``
        index is updated under the lockfile.  Safe for any number of
        concurrent writers; identical specs overwrite in place.
        """
        path = self.run_result_path(spec_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(dict(record), fh, indent=2, sort_keys=True)
            fh.write("\n")
        tmp.replace(path)

        def _mutate(manifest: Dict[str, Any]) -> None:
            runs = manifest.setdefault("runs", {})
            runs[spec_hash] = {
                "artifact": str(path.relative_to(self.root)),
                "kind": record.get("kind"),
                "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            }

        self.update_manifest(_mutate)
        return path

    def load_run_result(self, spec_hash: str) -> Optional[Dict[str, Any]]:
        """The stored run result for ``spec_hash``, or None."""
        path = self.run_result_path(spec_hash)
        if not path.exists():
            return None
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)

    # -- cache + execution -------------------------------------------------

    def cached_entry(
        self,
        exp: RegisteredExperiment,
        params: Optional[Mapping[str, Any]] = None,
        *,
        entries: Optional[Mapping[str, Dict[str, Any]]] = None,
        key: Optional[str] = None,
    ) -> Optional[Dict[str, Any]]:
        """The manifest entry iff it is a valid cache hit, else None.

        Batch callers pass ``entries`` (one manifest read for the whole
        batch) and/or a precomputed ``key``.
        """
        if entries is None:
            entries = self.entries()
        entry = entries.get(exp.experiment_id)
        if entry is None:
            return None
        if entry.get("key") != (key or content_key(exp, params)):
            return None
        if not self.artifact_path(exp.experiment_id).exists():
            return None
        return entry

    def record(
        self,
        exp: RegisteredExperiment,
        result: ExperimentResult,
        wall_time_s: float,
        params: Optional[Mapping[str, Any]] = None,
        *,
        key: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Persist ``result`` and its provenance; returns the entry."""
        artifact = self._write_artifact(result)
        params = dict(params or {})
        entry = {
            "experiment_id": exp.experiment_id,
            "key": key or content_key(exp, params),
            "status": "pass" if result.passed else "fail",
            "failed_checks": result.failed_checks(),
            "artifact": str(artifact.relative_to(self.root)),
            "wall_time_s": round(float(wall_time_s), 4),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            # Anchor on the package source, not the process cwd — the
            # SHA must describe the repro checkout that actually ran.
            "git_sha": current_git_sha(Path(__file__).resolve().parent),
            "seed": jsonable(params.get("seed", _default_seed(exp))),
            "dtype": str(params.get("dtype", "float64")),
            # Spec-declaring experiments also record the replayable
            # workload identity (the spec's content hash) explicitly.
            "spec_hash": exp.spec_hash(),
            "params": jsonable(params),
            "anchor": exp.anchor,
            "runtime": exp.runtime,
            "tags": list(exp.tags),
        }
        def _mutate(manifest: Dict[str, Any]) -> None:
            manifest["version"] = MANIFEST_VERSION
            manifest["entries"][exp.experiment_id] = entry
            self._bump_cache(manifest, misses=1)  # a recorded run is a miss

        self.update_manifest(_mutate)
        return entry

    def run(
        self,
        exp: RegisteredExperiment,
        params: Optional[Mapping[str, Any]] = None,
        *,
        force: bool = False,
        obs=None,
    ) -> RunOutcome:
        """Run ``exp`` (or serve it from cache) and persist the outcome.

        ``obs`` (a :class:`~repro.obs.RunObserver`) gets one
        ``cache-hit``/``cache-miss`` event per lookup.
        """
        key = content_key(exp, params)
        if not force:
            entry = self.cached_entry(exp, params, key=key)
            if entry is not None:
                self.update_manifest(lambda m: self._bump_cache(m, hits=1))
                if obs is not None:
                    obs.record_cache(exp.experiment_id, True)
                return RunOutcome(
                    experiment_id=exp.experiment_id,
                    result=self.load_result(exp.experiment_id),
                    cached=True,
                    wall_time_s=float(entry.get("wall_time_s", 0.0)),
                    entry=entry,
                )
        start = time.perf_counter()
        result = exp.run(**dict(params or {}))
        wall = time.perf_counter() - start
        entry = self.record(exp, result, wall, params, key=key)
        if obs is not None:
            obs.record_cache(exp.experiment_id, False)
        return RunOutcome(
            experiment_id=exp.experiment_id,
            result=result,
            cached=False,
            wall_time_s=wall,
            entry=entry,
        )

    def run_many(
        self,
        experiments: Sequence[RegisteredExperiment],
        *,
        force: bool = False,
        n_workers: int = 0,
        log=None,
        obs=None,
    ) -> List[RunOutcome]:
        """Run a batch, optionally fanning out over the fork-once pool.

        Workers only *execute* experiments (pure compute, results ship
        back as JSON-safe payloads); the parent process owns every
        artifact and manifest write, so there is no concurrent-write
        hazard on the store.  Cache hits never reach the pool; their
        counter bump is batched into one manifest write parent-side.
        """
        outcomes: Dict[str, RunOutcome] = {}
        to_run: List[RegisteredExperiment] = []
        hits = 0
        manifest_entries = self.entries()  # one read for the whole batch
        for exp in experiments:
            if not force:
                entry = self.cached_entry(exp, entries=manifest_entries)
                if entry is not None:
                    hits += 1
                    if obs is not None:
                        obs.record_cache(exp.experiment_id, True)
                    outcomes[exp.experiment_id] = RunOutcome(
                        experiment_id=exp.experiment_id,
                        result=self.load_result(exp.experiment_id),
                        cached=True,
                        wall_time_s=float(entry.get("wall_time_s", 0.0)),
                        entry=entry,
                    )
                    if log:
                        log(outcomes[exp.experiment_id].status_line())
                    continue
            to_run.append(exp)
        if hits:
            self.update_manifest(lambda m: self._bump_cache(m, hits=hits))

        if to_run and n_workers and n_workers > 1:
            from .parallel import bounded_map, fork_once_pool

            ids = [exp.experiment_id for exp in to_run]
            by_id = {exp.experiment_id: exp for exp in to_run}
            with fork_once_pool(
                min(n_workers, len(to_run)), _build_worker_state
            ) as pool:
                for exp_id, payload, wall in bounded_map(
                    pool, _worker_run_experiment, ids
                ):
                    exp = by_id[exp_id]
                    result = ExperimentResult.from_dict(payload)
                    entry = self.record(exp, result, wall)
                    if obs is not None:
                        obs.record_cache(exp_id, False)
                    outcomes[exp_id] = RunOutcome(
                        experiment_id=exp_id,
                        result=result,
                        cached=False,
                        wall_time_s=wall,
                        entry=entry,
                    )
                    if log:
                        log(outcomes[exp_id].status_line())
        else:
            for exp in to_run:
                outcomes[exp.experiment_id] = self.run(
                    exp, force=force, obs=obs
                )
                if log:
                    log(outcomes[exp.experiment_id].status_line())

        return [
            outcomes[exp.experiment_id]
            for exp in experiments
            if exp.experiment_id in outcomes
        ]


def _build_worker_state() -> dict:  # pragma: no cover - subprocess body
    """fork_once_pool builder: discover the registry once per worker."""
    from .experiments import registry

    return {"registry": registry.discover()}


def _worker_run_experiment(
    exp_id: str,
) -> Tuple[str, Dict[str, Any], float]:  # pragma: no cover - subprocess body
    """Job body: run one experiment, return its JSON payload + wall time."""
    from .parallel import worker_state

    exp = worker_state()["registry"][exp_id]
    start = time.perf_counter()
    result = exp.run()
    wall = time.perf_counter() - start
    return exp_id, result.to_dict(), wall
