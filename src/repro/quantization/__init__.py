"""Memory-cost reduction (paper, Section V-A): quantisers producing the
per-layer errors of Theorem 5, and precision-allocation solvers
inverting the bound.
"""

from .precision import (
    build_quantized_network,
    greedy_bit_allocation,
    layer_error_coefficients,
    memory_savings,
    uniform_bit_allocation,
)
from .quantizers import (
    FixedPointQuantizer,
    HalfPrecisionQuantizer,
    QuantizedNetwork,
    Quantizer,
    StochasticRoundingQuantizer,
    UniformQuantizer,
)

__all__ = [
    "Quantizer",
    "FixedPointQuantizer",
    "UniformQuantizer",
    "StochasticRoundingQuantizer",
    "HalfPrecisionQuantizer",
    "QuantizedNetwork",
    "layer_error_coefficients",
    "uniform_bit_allocation",
    "greedy_bit_allocation",
    "build_quantized_network",
    "memory_savings",
]
