"""Quantisers: the concrete source of Theorem 5's per-layer errors.

Section V-A applies the error-propagation machinery to memory-cost
reduction: implementing each neuron at reduced numerical precision
introduces a bounded per-layer error ``lambda_l``, and Theorem 5 bounds
the output damage — "the first theoretical result quantifying those
trade-offs" (observed experimentally by Proteus [31]).

A :class:`Quantizer` maps emitted activations to their low-precision
representatives and *knows its own worst-case error* ``max_error`` —
exactly the ``lambda_l`` Theorem 5 consumes.  A
:class:`QuantizedNetwork` wraps a full-precision network with per-layer
quantisers so experiments can measure real output degradation against
the analytic bound.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..network.model import FeedForwardNetwork

__all__ = [
    "Quantizer",
    "FixedPointQuantizer",
    "UniformQuantizer",
    "StochasticRoundingQuantizer",
    "HalfPrecisionQuantizer",
    "QuantizedNetwork",
]


class Quantizer:
    """Base class: an idempotent rounding map with a known error bound."""

    name = "quantizer"

    #: Worst-case absolute rounding error on the representable range.
    max_error: float

    def __call__(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def bits(self) -> Optional[int]:
        """Storage bits per value, when meaningful."""
        return None


class FixedPointQuantizer(Quantizer):
    """Unsigned fixed-point on ``[0, 1]`` with ``bits`` fractional bits.

    Values are rounded to the nearest multiple of ``2**-bits`` —
    round-to-nearest gives ``max_error = 2**-(bits+1)``.  This is the
    natural scheme for squashed activations living in ``[0, 1]``.
    """

    name = "fixed_point"

    def __init__(self, bits: int):
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        self._bits = int(bits)
        self.step = 2.0 ** (-self._bits)
        self.max_error = self.step / 2.0

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return np.clip(np.round(x / self.step) * self.step, 0.0, 1.0)

    @property
    def bits(self) -> int:
        return self._bits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedPointQuantizer(bits={self._bits})"


class UniformQuantizer(Quantizer):
    """Uniform grid over an arbitrary ``[lo, hi]`` with ``levels`` points."""

    name = "uniform"

    def __init__(self, levels: int, lo: float = 0.0, hi: float = 1.0):
        if levels < 2:
            raise ValueError(f"levels must be >= 2, got {levels}")
        if hi <= lo:
            raise ValueError(f"need hi > lo, got [{lo}, {hi}]")
        self.levels = int(levels)
        self.lo, self.hi = float(lo), float(hi)
        self.step = (self.hi - self.lo) / (self.levels - 1)
        self.max_error = self.step / 2.0

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        q = np.round((x - self.lo) / self.step) * self.step + self.lo
        return np.clip(q, self.lo, self.hi)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformQuantizer(levels={self.levels}, range=[{self.lo}, {self.hi}])"


class StochasticRoundingQuantizer(Quantizer):
    """Stochastic rounding on the fixed-point grid.

    Rounds up with probability equal to the fractional position —
    unbiased in expectation, worst-case error one full ``step``
    (``2**-bits``), which is what ``max_error`` reports (Theorem 5 is a
    worst-case statement).
    """

    name = "stochastic"

    def __init__(self, bits: int, rng: Optional[np.random.Generator] = None):
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        self._bits = int(bits)
        self.step = 2.0 ** (-self._bits)
        self.max_error = self.step
        self.rng = rng if rng is not None else np.random.default_rng()

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        scaled = x / self.step
        floor = np.floor(scaled)
        frac = scaled - floor
        up = self.rng.random(x.shape) < frac
        return np.clip((floor + up) * self.step, 0.0, 1.0)

    @property
    def bits(self) -> int:
        return self._bits


class HalfPrecisionQuantizer(Quantizer):
    """IEEE binary16 round-trip: ``float64 -> float16 -> float64``.

    On the sigmoid activation range ``[0, 1]`` the widest binade is
    ``[0.5, 1)`` with spacing ``2**-11``, so round-to-nearest gives
    ``max_error = 2**-12``; smaller values round tighter.  This is the
    ``float16`` probe tier of the engine backend seam.
    """

    name = "float16"

    def __init__(self):
        self.max_error = 2.0 ** -12

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=np.float64).astype(np.float16).astype(np.float64)

    @property
    def bits(self) -> int:
        return 16

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "HalfPrecisionQuantizer()"


class QuantizedNetwork:
    """A network whose layer emissions pass through per-layer quantisers.

    The forward pass quantises each hidden layer's activations before
    they are consumed downstream — the Section V-A implementation-error
    model, with ``lambda_l = quantizers[l].max_error``.
    """

    def __init__(
        self,
        network: FeedForwardNetwork,
        quantizers: Sequence[Optional[Quantizer]],
    ):
        if len(quantizers) != network.depth:
            raise ValueError(
                f"need one quantizer slot per layer ({network.depth}), "
                f"got {len(quantizers)}"
            )
        self.network = network
        self.quantizers = list(quantizers)

    @property
    def lambdas(self) -> tuple[float, ...]:
        """Per-layer worst-case errors — Theorem 5's ``lambda_l``."""
        return tuple(
            0.0 if q is None else float(q.max_error) for q in self.quantizers
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        net = self.network
        xb, squeeze = net._as_batch(x)
        y = xb
        for layer, q in zip(net.layers, self.quantizers):
            y = layer.forward(y)
            if q is not None:
                y = q(y)
        out = net.readout(y)
        return out[0] if squeeze else out

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def output_error(self, x: np.ndarray) -> float:
        """``sup_X |Fneu(X) - Flambda(X)|`` over the batch."""
        xb, _ = self.network._as_batch(x)
        return float(
            np.max(np.abs(self.network.forward(xb) - self.forward(xb)))
        )

    def memory_bits(self, full_precision_bits: int = 64) -> int:
        """Total activation-storage bits per forward pass.

        Layers without a quantizer are charged ``full_precision_bits``
        per neuron — the memory-cost side of the Section V-A trade-off.
        """
        total = 0
        for n, q in zip(self.network.layer_sizes, self.quantizers):
            bits = q.bits if (q is not None and q.bits is not None) else full_precision_bits
            total += n * bits
        return total
