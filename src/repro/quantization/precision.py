"""Precision allocation: the inverse of Theorem 5.

Theorem 5 maps per-layer errors ``lambda_l`` to an output-error bound.
Deployment asks the inverse: *given an output-error budget, how few
bits can each layer use?*  Because the bound is a weighted sum
``sum_l c_l * lambda_l`` with per-layer propagation coefficients
``c_l`` computable from the topology, the inverse is tractable:

* :func:`layer_error_coefficients` — the ``c_l``;
* :func:`uniform_bit_allocation` — one bit-width for every layer;
* :func:`greedy_bit_allocation` — start at a floor and add bits where
  the marginal bound reduction per bit is largest, until the budget is
  met (deeper-amplified layers naturally receive more bits when
  ``K * N * w_m > 1``);
* :func:`memory_savings` — the headline number: fraction of activation
  memory saved vs a 64-bit baseline.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.fep import precision_error_bound
from ..network.model import FeedForwardNetwork
from .quantizers import FixedPointQuantizer, QuantizedNetwork

__all__ = [
    "layer_error_coefficients",
    "uniform_bit_allocation",
    "greedy_bit_allocation",
    "build_quantized_network",
    "memory_savings",
]


def layer_error_coefficients(network: FeedForwardNetwork) -> np.ndarray:
    """Coefficients ``c_l`` with ``bound = sum_l c_l * lambda_l``.

    ``c_l = K**(L-l) * prod_{l'=l..L} N_l' * w_m^(l'+1)`` — the
    Theorem-5 propagation weight of layer ``l``'s implementation error.
    """
    L = network.depth
    coeffs = np.empty(L, dtype=np.float64)
    for l in range(1, L + 1):
        unit = np.zeros(L)
        unit[l - 1] = 1.0
        coeffs[l - 1] = precision_error_bound(
            unit,
            network.layer_sizes,
            network.weight_maxes(),
            network.lipschitz_constant,
        )
    return coeffs


def _bound_for_bits(coeffs: np.ndarray, bits: np.ndarray) -> float:
    # Round-to-nearest fixed point: lambda_l = 2**-(bits+1).
    lambdas = 2.0 ** (-(bits.astype(np.float64) + 1.0))
    return float(np.sum(coeffs * lambdas))


def uniform_bit_allocation(
    network: FeedForwardNetwork,
    budget: float,
    *,
    max_bits: int = 52,
) -> int:
    """Smallest single bit-width ``b`` whose Theorem-5 bound fits ``budget``.

    Raises when even ``max_bits`` cannot meet the budget.
    """
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    coeffs = layer_error_coefficients(network)
    for b in range(1, max_bits + 1):
        bits = np.full(network.depth, b)
        if _bound_for_bits(coeffs, bits) <= budget:
            return b
    raise ValueError(
        f"budget {budget:g} unreachable even at {max_bits} bits "
        f"(bound floor {_bound_for_bits(coeffs, np.full(network.depth, max_bits)):g})"
    )


def greedy_bit_allocation(
    network: FeedForwardNetwork,
    budget: float,
    *,
    min_bits: int = 1,
    max_bits: int = 52,
) -> tuple[int, ...]:
    """Per-layer bit-widths meeting ``budget`` with few total bits.

    Greedy: start every layer at ``min_bits``; while the bound exceeds
    the budget, grant one bit to the layer with the largest current
    bound contribution (each bit halves that layer's ``lambda_l``).
    Greedy on this objective is optimal for halving-decrements of a
    separable sum.
    """
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    coeffs = layer_error_coefficients(network)
    bits = np.full(network.depth, int(min_bits))
    while _bound_for_bits(coeffs, bits) > budget:
        contributions = coeffs * 2.0 ** (-(bits + 1.0))
        order = np.argsort(contributions)[::-1]
        granted = False
        for idx in order:
            if bits[idx] < max_bits:
                bits[idx] += 1
                granted = True
                break
        if not granted:
            raise ValueError(
                f"budget {budget:g} unreachable with max_bits={max_bits}"
            )
    return tuple(int(b) for b in bits)


def build_quantized_network(
    network: FeedForwardNetwork,
    bits: "int | Sequence[int]",
) -> QuantizedNetwork:
    """Wrap ``network`` with fixed-point quantisers of the given widths."""
    if isinstance(bits, (int, np.integer)):
        bits = [int(bits)] * network.depth
    bits = [int(b) for b in bits]
    if len(bits) != network.depth:
        raise ValueError(f"need {network.depth} bit-widths, got {len(bits)}")
    return QuantizedNetwork(network, [FixedPointQuantizer(b) for b in bits])


def memory_savings(
    network: FeedForwardNetwork,
    bits: "int | Sequence[int]",
    *,
    full_precision_bits: int = 64,
) -> float:
    """Fraction of activation memory saved vs the full-precision net."""
    qnet = build_quantized_network(network, bits)
    full = network.num_neurons * full_precision_bits
    return 1.0 - qnet.memory_bits(full_precision_bits) / full
