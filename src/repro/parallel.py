"""Fork-once process pools and lazy, bounded job streaming.

Every parallel path in this repo is embarrassingly parallel at the
grain of "one chunk of work", but the seed implementation paid two
avoidable costs:

* the *payload* cost — each submitted job carried a pickled copy of
  the immutable shared state (the network, the probe batch), so a
  1000-chunk campaign serialised the network 1000 times;
* the *materialisation* cost — ``Executor.map`` over a fully built
  job list forces every chunk (and every scenario inside it) into
  memory before the first result returns.

This module fixes both patterns once, for every caller:

* :func:`fork_once_pool` builds a ``ProcessPoolExecutor`` whose
  *initializer* receives the shared state exactly once per worker;
  jobs afterwards carry only small per-chunk payloads (indices, RNG
  seeds, configuration dicts);
* :func:`bounded_map` is an ordered ``imap`` with a bounded window of
  in-flight futures: the job iterable is consumed lazily, so a
  million-scenario campaign keeps O(window x chunk) state instead of
  O(total).

Observability rides on the same discipline: instrumented pools
(``instrument=True`` in their builder state) return ``(result,
payload)`` pairs, where the payload is a per-block
:meth:`~repro.obs.RunObserver.worker_payload` — spans, metrics and
per-phase seconds recorded privately in the worker.  Because
:func:`bounded_map` yields strictly in submission order, the parent
folds payloads (:func:`~repro.obs.fold_worker_payload`) in exactly the
order the serial loop would have recorded them, which is what makes
the observed trace structure identical serial vs parallel.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

__all__ = ["default_workers", "fork_once_pool", "worker_state", "bounded_map"]


def default_workers() -> int:
    """A sensible process count: cores - 1, at least 1."""
    return max(1, (os.cpu_count() or 2) - 1)


#: Per-worker shared state, populated once by the pool initializer.
_WORKER_STATE: dict = {}


def _init_worker(builder, build_args):  # pragma: no cover - subprocess body
    _WORKER_STATE.clear()  # a reused worker must not leak a prior pool's state
    _WORKER_STATE.update(builder(*build_args))


def worker_state() -> dict:
    """The dict built by this worker's :func:`fork_once_pool` builder."""
    return _WORKER_STATE


def fork_once_pool(
    n_workers: int,
    builder: Callable[..., dict],
    build_args: Sequence[Any] = (),
) -> ProcessPoolExecutor:
    """A process pool that ships shared state to each worker exactly once.

    ``builder(*build_args)`` runs in every worker at spawn time and
    returns a dict of shared objects (the expensive payload — networks,
    engines, probe batches), readable in job functions via
    :func:`worker_state`.  Jobs submitted afterwards should carry only
    per-chunk payloads.  The caller owns the pool (use it as a context
    manager); ``builder`` and ``build_args`` must be picklable.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    return ProcessPoolExecutor(
        max_workers=n_workers,
        initializer=_init_worker,
        initargs=(builder, tuple(build_args)),
    )


def bounded_map(
    pool: ProcessPoolExecutor,
    fn: Callable[[Any], Any],
    jobs: Iterable[Any],
    *,
    window: Optional[int] = None,
) -> Iterator[Any]:
    """Ordered ``imap`` with at most ``window`` jobs in flight.

    Unlike ``Executor.map``, the ``jobs`` iterable is consumed lazily:
    a new job is submitted only when a slot frees up, so an unbounded
    scenario stream never gets materialised.  Results are yielded in
    submission order.
    """
    if window is None:
        window = 2 * (pool._max_workers or 1)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    pending: deque = deque()
    for job in jobs:
        pending.append(pool.submit(fn, job))
        if len(pending) >= window:
            yield pending.popleft().result()
    while pending:
        yield pending.popleft().result()
