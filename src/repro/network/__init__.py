"""Neural-network substrate: activations, layers, models, construction,
serialization.  This is the system under study — the paper's multilayer
perceptron of Section II-A, built from scratch on NumPy.
"""

from .activations import (
    Activation,
    HardSigmoid,
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    SoftSign,
    Tanh,
    available_activations,
    get_activation,
    register_activation,
)
from .builder import (
    build_conv_net,
    build_figure3_network,
    build_mlp,
    figure3_architectures,
    random_network,
)
from .initializers import get_initializer
from .layers import Conv1DLayer, DenseLayer, Layer, layer_from_spec
from .model import FeedForwardNetwork, NeuronAddress
from .serialization import load_network, save_network

__all__ = [
    "Activation",
    "Sigmoid",
    "Tanh",
    "HardSigmoid",
    "ReLU",
    "LeakyReLU",
    "SoftSign",
    "Identity",
    "get_activation",
    "register_activation",
    "available_activations",
    "get_initializer",
    "Layer",
    "DenseLayer",
    "Conv1DLayer",
    "layer_from_spec",
    "FeedForwardNetwork",
    "NeuronAddress",
    "build_mlp",
    "build_conv_net",
    "random_network",
    "figure3_architectures",
    "build_figure3_network",
    "save_network",
    "load_network",
]
