"""The feed-forward network model of the paper (Section II-A).

A :class:`FeedForwardNetwork` realises the neural computation of
Equations 1-3: ``L`` layers of squashing neurons followed by a *linear
output node* which is a client of the network, not part of it (paper,
Figure 1).  The output node's incoming synapses ``w^(L+1)`` *are* part
of the network and enter the bounds.

The model exposes exactly the structural quantities the paper's theory
consumes:

* ``layer_sizes``             — ``(N_1, ..., N_L)``;
* ``weight_maxes``            — ``(w_m^(1), ..., w_m^(L+1))``;
* ``lipschitz_constant``      — ``K`` (max over hidden activations);
* ``output_bound``            — ``sup phi`` (crash-case capacity);
* per-layer activation taps   — for the fault-injection engine.

Everything is vectorised over a batch axis: inputs of shape ``(B, d)``
produce outputs of shape ``(B, n_outputs)``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from .activations import Activation
from .layers import DenseLayer, Layer

__all__ = ["FeedForwardNetwork", "NeuronAddress"]


class NeuronAddress(tuple):
    """Address of a neuron as ``(layer, index)``; layers are 1-based.

    Layer ``l`` ranges over ``1..L`` (hidden layers).  The input nodes
    (layer 0) and the output node (layer L+1) are clients, not neurons,
    and cannot fail (paper, Figure 1); addressing them raises.
    """

    __slots__ = ()

    def __new__(cls, layer: int, index: int):
        if layer < 1:
            raise ValueError(f"layer must be >= 1 (got {layer}); inputs cannot fail")
        if index < 0:
            raise ValueError(f"neuron index must be >= 0, got {index}")
        return super().__new__(cls, (int(layer), int(index)))

    def __getnewargs__(self):
        # tuple's default would pass the whole tuple as one argument;
        # our __new__ takes (layer, index), so unpack for pickling.
        return (self[0], self[1])

    @property
    def layer(self) -> int:
        return self[0]

    @property
    def index(self) -> int:
        return self[1]


class FeedForwardNetwork:
    """An ``L``-layer feed-forward network with a linear output node.

    Parameters
    ----------
    layers:
        Hidden layers ``1..L``; consecutive fan-in/fan-out must chain.
    output_weights:
        ``(n_outputs, N_L)`` weights of the synapses into the output
        node (the ``w^(L+1)`` of Equation 1).
    output_bias:
        Optional output bias (kept for trainability; the paper's output
        node is a plain weighted sum, so bound computations ignore it —
        it is a constant offset unaffected by failures).
    """

    def __init__(
        self,
        layers: Sequence[Layer],
        output_weights: np.ndarray,
        output_bias: Optional[np.ndarray] = None,
    ):
        layers = list(layers)
        if not layers:
            raise ValueError("a network needs at least one hidden layer")
        for a, b in zip(layers, layers[1:]):
            if a.n_out != b.n_in:
                raise ValueError(
                    f"layer fan mismatch: {a!r} feeds {a.n_out} values into "
                    f"{b!r} expecting {b.n_in}"
                )
        output_weights = np.asarray(output_weights, dtype=np.float64)
        if output_weights.ndim == 1:
            output_weights = output_weights[None, :]
        if output_weights.shape[1] != layers[-1].n_out:
            raise ValueError(
                f"output weights shape {output_weights.shape} incompatible with "
                f"last layer width {layers[-1].n_out}"
            )
        self.layers: List[Layer] = layers
        self.output_weights = output_weights.copy()
        self.n_outputs = int(output_weights.shape[0])
        if output_bias is not None:
            output_bias = np.asarray(output_bias, dtype=np.float64).reshape(-1)
            if output_bias.shape != (self.n_outputs,):
                raise ValueError(
                    f"output bias shape {output_bias.shape} != ({self.n_outputs},)"
                )
            self.output_bias = output_bias.copy()
        else:
            self.output_bias = np.zeros(self.n_outputs, dtype=np.float64)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def depth(self) -> int:
        """``L`` — the number of hidden (squashing) layers."""
        return len(self.layers)

    @property
    def input_dim(self) -> int:
        """``d`` — dimensionality of the input clients."""
        return self.layers[0].n_in

    @property
    def layer_sizes(self) -> tuple[int, ...]:
        """``(N_1, ..., N_L)``."""
        return tuple(layer.n_out for layer in self.layers)

    @property
    def num_neurons(self) -> int:
        """Total number of neurons (inputs/output node excluded)."""
        return sum(self.layer_sizes)

    @property
    def num_synapses(self) -> int:
        """Total number of physical synapses, including into the output."""
        return sum(layer.num_synapses for layer in self.layers) + int(
            self.output_weights.size
        )

    def weight_max(self, l: int) -> float:
        """``w_m^(l)`` — max |weight| of synapses into layer ``l``.

        ``l`` ranges over ``1..L+1``; ``L+1`` addresses the synapses
        into the output node.
        """
        if not 1 <= l <= self.depth + 1:
            raise ValueError(f"layer index {l} outside 1..{self.depth + 1}")
        if l == self.depth + 1:
            return float(np.max(np.abs(self.output_weights)))
        return self.layers[l - 1].max_abs_weight()

    def weight_maxes(self) -> tuple[float, ...]:
        """``(w_m^(1), ..., w_m^(L+1))``."""
        return tuple(self.weight_max(l) for l in range(1, self.depth + 2))

    @property
    def lipschitz_constant(self) -> float:
        """``K`` — the max Lipschitz constant over hidden activations."""
        return max(layer.activation.lipschitz for layer in self.layers)

    def lipschitz_constants(self) -> tuple[float, ...]:
        """Per-layer Lipschitz constants ``(K_1, ..., K_L)``."""
        return tuple(layer.activation.lipschitz for layer in self.layers)

    @property
    def output_bound(self) -> float:
        """``sup |phi|`` over hidden activations — the most a *correct*
        neuron can emit; substitutes for ``C`` in crash-only bounds."""
        return max(layer.activation.output_bound for layer in self.layers)

    # ------------------------------------------------------------------
    # Neuron addressing
    # ------------------------------------------------------------------

    def check_address(self, address: "NeuronAddress | tuple[int, int]") -> NeuronAddress:
        """Validate a ``(layer, index)`` address against the topology."""
        if not isinstance(address, NeuronAddress):
            address = NeuronAddress(*address)
        if address.layer > self.depth:
            raise ValueError(
                f"layer {address.layer} > depth {self.depth}; the output node "
                "is a client and cannot fail"
            )
        width = self.layer_sizes[address.layer - 1]
        if address.index >= width:
            raise ValueError(
                f"neuron index {address.index} >= layer width {width} "
                f"(layer {address.layer})"
            )
        return address

    def flat_index(self, address: "NeuronAddress | tuple[int, int]") -> int:
        """Map a ``(layer, index)`` address to a global flat index."""
        address = self.check_address(address)
        offset = sum(self.layer_sizes[: address.layer - 1])
        return offset + address.index

    def address_of(self, flat: int) -> NeuronAddress:
        """Inverse of :meth:`flat_index`."""
        if not 0 <= flat < self.num_neurons:
            raise ValueError(f"flat index {flat} outside 0..{self.num_neurons - 1}")
        for l, width in enumerate(self.layer_sizes, start=1):
            if flat < width:
                return NeuronAddress(l, flat)
            flat -= width
        raise AssertionError("unreachable")  # pragma: no cover

    def iter_addresses(self) -> Iterable[NeuronAddress]:
        """All neuron addresses in layer-major order."""
        for l, width in enumerate(self.layer_sizes, start=1):
            for i in range(width):
                yield NeuronAddress(l, i)

    # ------------------------------------------------------------------
    # Forward computation
    # ------------------------------------------------------------------

    def _as_batch(self, x: np.ndarray) -> tuple[np.ndarray, bool]:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            return x[None, :], True
        if x.ndim != 2:
            raise ValueError(f"input must be 1-D or 2-D, got shape {x.shape}")
        if x.shape[1] != self.input_dim:
            raise ValueError(
                f"input dimension {x.shape[1]} != network input_dim {self.input_dim}"
            )
        return x, False

    def hidden_outputs(self, x: np.ndarray) -> List[np.ndarray]:
        """Per-layer activations ``[y^(1), ..., y^(L)]`` for a batch.

        Each entry has shape ``(B, N_l)``.
        """
        x, _ = self._as_batch(x)
        outputs: List[np.ndarray] = []
        y = x
        for layer in self.layers:
            y = layer.forward(y)
            outputs.append(y)
        return outputs

    def readout(self, y_last: np.ndarray) -> np.ndarray:
        """Apply the linear output node to last-layer activations."""
        return y_last @ self.output_weights.T + self.output_bias

    def forward(self, x: np.ndarray) -> np.ndarray:
        """``Fneu(X)`` of Equation 1 for a batch of inputs.

        Returns shape ``(B, n_outputs)`` for 2-D input; a 1-D input of
        shape ``(d,)`` returns shape ``(n_outputs,)`` (and a bare float
        for single-output nets via ``float(...)`` if desired).
        """
        xb, squeeze = self._as_batch(x)
        y = xb
        for layer in self.layers:
            y = layer.forward(y)
        out = self.readout(y)
        return out[0] if squeeze else out

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def forward_from(self, layer: int, y: np.ndarray) -> np.ndarray:
        """Resume the forward pass given ``y^(layer)`` activations.

        ``layer`` is 1-based; ``forward_from(L, y)`` applies only the
        output node.  Used by the fault injector to re-run suffixes.
        """
        if not 1 <= layer <= self.depth:
            raise ValueError(f"layer {layer} outside 1..{self.depth}")
        for next_layer in self.layers[layer:]:
            y = next_layer.forward(y)
        return self.readout(y)

    # ------------------------------------------------------------------
    # Mutation helpers
    # ------------------------------------------------------------------

    def parameters(self) -> dict[str, np.ndarray]:
        """All trainable arrays keyed by ``layer{l}.{name}`` (views)."""
        params: dict[str, np.ndarray] = {}
        for l, layer in enumerate(self.layers, start=1):
            for name, arr in layer.parameters().items():
                params[f"layer{l}.{name}"] = arr
        params["output.weights"] = self.output_weights
        params["output.bias"] = self.output_bias
        return params

    def scale_weights(self, factor: float) -> None:
        """Multiply every synaptic weight (incl. output) by ``factor``.

        Used by the robustness/ease-of-learning trade-off experiments:
        shrinking the weights shrinks every ``w_m^(l)`` and therefore
        Fep, at the price of approximation quality.
        """
        for layer in self.layers:
            for arr in layer.parameters().values():
                arr *= factor
        self.output_weights *= factor
        self.output_bias *= factor

    def copy(self) -> "FeedForwardNetwork":
        """Deep copy (weights are duplicated)."""
        return FeedForwardNetwork(
            [layer.copy() for layer in self.layers],
            self.output_weights,
            self.output_bias,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def spec(self) -> dict:
        """Structural description (no weights); see serialization."""
        return {
            "layers": [layer.spec() for layer in self.layers],
            "n_outputs": self.n_outputs,
        }

    def summary(self) -> str:
        """Human-readable multi-line description."""
        lines = [
            f"FeedForwardNetwork: d={self.input_dim}, L={self.depth}, "
            f"N={self.layer_sizes}, outputs={self.n_outputs}",
            f"  neurons={self.num_neurons}, synapses={self.num_synapses}, "
            f"K={self.lipschitz_constant:g}",
        ]
        for l, layer in enumerate(self.layers, start=1):
            lines.append(f"  layer {l}: {layer!r}, w_m={layer.max_abs_weight():.4g}")
        lines.append(f"  output: w_m={self.weight_max(self.depth + 1):.4g}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FeedForwardNetwork(d={self.input_dim}, N={self.layer_sizes}, "
            f"outputs={self.n_outputs})"
        )
