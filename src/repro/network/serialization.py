"""Save/load networks to a single ``.npz`` archive.

The archive stores a JSON structural spec plus one array per parameter,
so a round-trip reproduces the network bit-exactly (weights are float64
throughout).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from .layers import layer_from_spec
from .model import FeedForwardNetwork

__all__ = ["save_network", "load_network"]

_SPEC_KEY = "__spec__"


def save_network(network: FeedForwardNetwork, path: Union[str, Path]) -> Path:
    """Serialise ``network`` (topology + weights) to ``path`` (.npz).

    Returns the resolved path (``.npz`` appended if missing).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    arrays: dict[str, np.ndarray] = {}
    for name, arr in network.parameters().items():
        arrays[name] = np.asarray(arr, dtype=np.float64)
    spec = json.dumps(network.spec())
    arrays[_SPEC_KEY] = np.frombuffer(spec.encode("utf-8"), dtype=np.uint8)
    with open(path, "wb") as fh:
        np.savez(fh, **arrays)
    return path


def load_network(path: Union[str, Path]) -> FeedForwardNetwork:
    """Rebuild a network saved by :func:`save_network`."""
    path = Path(path)
    with np.load(path) as data:
        if _SPEC_KEY not in data:
            raise ValueError(f"{path} is not a repro network archive (missing spec)")
        spec = json.loads(bytes(data[_SPEC_KEY].tolist()).decode("utf-8"))
        layers = [layer_from_spec(layer_spec) for layer_spec in spec["layers"]]
        network = FeedForwardNetwork(
            layers,
            output_weights=np.zeros((spec["n_outputs"], layers[-1].n_out)),
        )
        for name, arr in network.parameters().items():
            if name not in data:
                raise ValueError(f"archive {path} is missing parameter {name!r}")
            loaded = np.asarray(data[name], dtype=np.float64)
            if loaded.shape != arr.shape:
                raise ValueError(
                    f"parameter {name!r} shape mismatch: archive {loaded.shape} "
                    f"vs spec {arr.shape}"
                )
            arr[...] = loaded
    return network
