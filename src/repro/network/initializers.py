"""Weight initialisation schemes for the from-scratch network substrate.

The paper's bounds depend on the *maximum synaptic weight* ``w_m^(l)``
per layer, so initialisers here let callers control that quantity
directly (``uniform(scale)`` bounds |w| <= scale by construction), on
top of the usual variance-scaled schemes used to make training converge.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

__all__ = [
    "Initializer",
    "UniformInitializer",
    "NormalInitializer",
    "XavierUniform",
    "XavierNormal",
    "HeNormal",
    "ConstantInitializer",
    "get_initializer",
]


class Initializer:
    """Base class: maps a shape ``(fan_out, fan_in)`` to a weight matrix."""

    name = "initializer"

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError


class UniformInitializer(Initializer):
    """i.i.d. Uniform(-scale, scale); guarantees ``w_m <= scale``."""

    name = "uniform"

    def __init__(self, scale: float = 0.5):
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = float(scale)

    def __call__(self, shape, rng):
        return rng.uniform(-self.scale, self.scale, size=shape)


class NormalInitializer(Initializer):
    """i.i.d. Normal(0, std^2)."""

    name = "normal"

    def __init__(self, std: float = 0.1):
        if std <= 0:
            raise ValueError(f"std must be positive, got {std}")
        self.std = float(std)

    def __call__(self, shape, rng):
        return rng.normal(0.0, self.std, size=shape)


class XavierUniform(Initializer):
    """Glorot/Xavier uniform: Uniform(+-sqrt(6/(fan_in+fan_out)))."""

    name = "xavier_uniform"

    def __call__(self, shape, rng):
        fan_out, fan_in = shape[0], shape[-1]
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        return rng.uniform(-limit, limit, size=shape)


class XavierNormal(Initializer):
    """Glorot/Xavier normal: Normal(0, 2/(fan_in+fan_out))."""

    name = "xavier_normal"

    def __call__(self, shape, rng):
        fan_out, fan_in = shape[0], shape[-1]
        std = np.sqrt(2.0 / (fan_in + fan_out))
        return rng.normal(0.0, std, size=shape)


class HeNormal(Initializer):
    """He/Kaiming normal: Normal(0, 2/fan_in)."""

    name = "he_normal"

    def __call__(self, shape, rng):
        fan_in = shape[-1]
        std = np.sqrt(2.0 / fan_in)
        return rng.normal(0.0, std, size=shape)


class ConstantInitializer(Initializer):
    """All weights equal to ``value`` (worst-case constructions, tests)."""

    name = "constant"

    def __init__(self, value: float = 0.0):
        self.value = float(value)

    def __call__(self, shape, rng):
        return np.full(shape, self.value, dtype=np.float64)


_REGISTRY: Dict[str, Callable[..., Initializer]] = {
    "uniform": UniformInitializer,
    "normal": NormalInitializer,
    "xavier_uniform": XavierUniform,
    "xavier_normal": XavierNormal,
    "he_normal": HeNormal,
    "constant": ConstantInitializer,
}


def get_initializer(spec: "str | dict | Initializer") -> Initializer:
    """Instantiate an initializer from a name, spec dict, or pass-through."""
    if isinstance(spec, Initializer):
        return spec
    if isinstance(spec, str):
        spec = {"name": spec}
    if not isinstance(spec, dict) or "name" not in spec:
        raise TypeError(f"cannot build an initializer from {spec!r}")
    kwargs = {k: v for k, v in spec.items() if k != "name"}
    name = spec["name"]
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown initializer {name!r}; available: {sorted(_REGISTRY)}") from None
    return cls(**kwargs)
