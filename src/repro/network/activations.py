"""Activation ("squashing") functions with explicit Lipschitz metadata.

The paper's entire theory is parameterised by three analytic facts about
the activation function ``phi``:

1. it is bounded (``phi_max = sup |phi|`` replaces the transmission
   capacity ``C`` in the crash-only case, Section IV-B);
2. it is ``K``-Lipschitz (``K = sup |phi(x) - phi(y)| / |x - y|``), which
   drives the ``K**(L - l)`` amplification in the Forward Error
   Propagation (Theorem 2);
3. it satisfies the hypotheses of the universality theorem
   (non-constant, bounded, monotonically increasing) so that
   over-provisioned epsilon'-approximations exist at all (Section II-A).

Every activation in this module therefore carries its Lipschitz constant
``K`` and its range as first-class attributes, and the sigmoid family is
*K-tunable* exactly as in the paper's Figure 2: the logistic function is
1/4-Lipschitz, so ``x -> sigmoid(4*K*x)`` is ``K``-Lipschitz.

All ``__call__``/``derivative`` implementations are vectorised NumPy and
safe on arbitrarily-shaped arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Type

import numpy as np

__all__ = [
    "Activation",
    "Sigmoid",
    "Tanh",
    "ReLU",
    "LeakyReLU",
    "HardSigmoid",
    "Identity",
    "SoftSign",
    "get_activation",
    "register_activation",
    "available_activations",
]


class Activation:
    """Base class for activation functions.

    Subclasses must define :meth:`__call__` and :meth:`derivative` and
    set the analytic attributes below.

    Attributes
    ----------
    lipschitz:
        The (exact) Lipschitz constant ``K`` of the function.
    lower, upper:
        The infimum / supremum of the range.  ``upper`` doubles as the
        crash-case transmission bound (a correct neuron can never emit
        more than ``upper`` in absolute value; the paper uses 1 for the
        sigmoid).
    satisfies_universality:
        ``True`` when the function meets the universality theorem's
        hypotheses (strictly increasing, bounded, limits 0 and 1 after
        affine renormalisation).  The bounds in :mod:`repro.core` only
        *require* bounded + Lipschitz, so e.g. ReLU is provided for
        completeness but flagged.
    """

    name: str = "activation"
    lipschitz: float = 1.0
    lower: float = 0.0
    upper: float = 1.0
    satisfies_universality: bool = False

    def __call__(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def derivative(self, x: np.ndarray) -> np.ndarray:
        """Pointwise derivative ``phi'(x)`` (used by backprop)."""
        raise NotImplementedError

    def evaluate_into(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Evaluate ``phi(x)`` into ``out`` (``out`` may alias ``x``).

        The streaming campaign engine's hot path: unlike
        :meth:`__call__` (which casts to float64 and allocates), this
        preserves ``out``'s dtype and writes in place.  The base
        implementation falls back to ``__call__`` + cast; subclasses
        with cheap in-place forms override it.  Results may differ from
        ``__call__`` by a few ulp (different but equally stable
        formulations) — within the float-associativity tolerance the
        engines guarantee (DESIGN.md).
        """
        np.copyto(out, self(x), casting="same_kind")
        return out

    # -- analytic metadata ------------------------------------------------

    @property
    def output_bound(self) -> float:
        """``sup |phi|`` — the worst value a *correct* neuron can emit.

        Replaces the Byzantine capacity ``C`` in the crash-only bounds
        (Theorem 3, remark in Section IV-B).
        """
        return max(abs(self.lower), abs(self.upper))

    def spec(self) -> dict:
        """JSON-serialisable description (used by model serialization)."""
        return {"name": self.name}

    # -- conveniences ------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(K={self.lipschitz:g})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Activation) and self.spec() == other.spec()

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.spec().items())))


class Sigmoid(Activation):
    """The K-tunable logistic function of the paper (Figure 2).

    ``sigmoid(x) = 1 / (1 + exp(-x))`` is exactly 1/4-Lipschitz (the
    derivative peaks at 1/4 at the origin).  Following Section II-A we
    expose ``Sigmoid(k)`` computing ``sigmoid(4*k*x)``, which is exactly
    ``k``-Lipschitz, strictly increasing, with limits 0 and 1 — i.e. a
    valid squashing function for any ``k > 0``.

    Parameters
    ----------
    k:
        Target Lipschitz constant.  ``k = 0.25`` recovers the vanilla
        logistic function.
    """

    name = "sigmoid"
    lower = 0.0
    upper = 1.0
    satisfies_universality = True

    def __init__(self, k: float = 0.25):
        if k <= 0:
            raise ValueError(f"Lipschitz constant must be positive, got {k}")
        self.k = float(k)
        self.lipschitz = float(k)
        self._scale = 4.0 * float(k)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        z = self._scale * np.asarray(x, dtype=np.float64)
        # Numerically stable piecewise evaluation: never exponentiate a
        # large positive argument.
        out = np.empty_like(z)
        pos = z >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        out[~pos] = ez / (1.0 + ez)
        return out

    def derivative(self, x: np.ndarray) -> np.ndarray:
        s = self(x)
        return self._scale * s * (1.0 - s)

    def evaluate_into(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        # sigmoid(z) == (tanh(z/2) + 1) / 2: tanh is stable over the
        # whole real line and has ufunc `out=` support, so the hot path
        # runs fully in place in the caller's dtype.
        np.multiply(x, 0.5 * self._scale, out=out)
        np.tanh(out, out=out)
        out += 1.0
        out *= 0.5
        return out

    def spec(self) -> dict:
        return {"name": self.name, "k": self.k}


class Tanh(Activation):
    """K-tunable hyperbolic tangent, rescaled to range (0, 1).

    The paper's model maps into ``[0, 1]`` (targets live in
    ``C([0,1]^d, [0,1])``), so we use the affinely renormalised
    ``(tanh(2*k*x) + 1) / 2`` which is ``k``-Lipschitz with limits 0/1.
    """

    name = "tanh"
    lower = 0.0
    upper = 1.0
    satisfies_universality = True

    def __init__(self, k: float = 0.5):
        if k <= 0:
            raise ValueError(f"Lipschitz constant must be positive, got {k}")
        self.k = float(k)
        self.lipschitz = float(k)
        self._scale = 2.0 * float(k)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        z = self._scale * np.asarray(x, dtype=np.float64)
        return 0.5 * (np.tanh(z) + 1.0)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        z = self._scale * np.asarray(x, dtype=np.float64)
        t = np.tanh(z)
        return 0.5 * self._scale * (1.0 - t * t)

    def evaluate_into(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        np.multiply(x, self._scale, out=out)
        np.tanh(out, out=out)
        out += 1.0
        out *= 0.5
        return out

    def spec(self) -> dict:
        return {"name": self.name, "k": self.k}


class HardSigmoid(Activation):
    """Piecewise-linear squashing ``clip(k*x + 1/2, 0, 1)``.

    Exactly ``k``-Lipschitz and bounded; *weakly* (not strictly)
    increasing, hence flagged as not satisfying the universality
    hypotheses, but it attains the Lipschitz bound on an interval, which
    makes tightness experiments sharp.
    """

    name = "hard_sigmoid"
    lower = 0.0
    upper = 1.0
    satisfies_universality = False

    def __init__(self, k: float = 0.25):
        if k <= 0:
            raise ValueError(f"Lipschitz constant must be positive, got {k}")
        self.k = float(k)
        self.lipschitz = float(k)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        z = self.k * np.asarray(x, dtype=np.float64) + 0.5
        return np.clip(z, 0.0, 1.0)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        z = self.k * np.asarray(x, dtype=np.float64) + 0.5
        return np.where((z > 0.0) & (z < 1.0), self.k, 0.0)

    def evaluate_into(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        np.multiply(x, self.k, out=out)
        out += 0.5
        np.clip(out, 0.0, 1.0, out=out)
        return out

    def spec(self) -> dict:
        return {"name": self.name, "k": self.k}


class ReLU(Activation):
    """Rectified linear unit — 1-Lipschitz but *unbounded*.

    Provided as the canonical counter-example: the crash-case bounds of
    the paper require a bounded activation, and :mod:`repro.core.bounds`
    refuses to substitute ``output_bound`` for ``C`` when it is infinite.
    """

    name = "relu"
    lipschitz = 1.0
    lower = 0.0
    upper = np.inf
    satisfies_universality = False

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(np.asarray(x, dtype=np.float64), 0.0)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        return (np.asarray(x, dtype=np.float64) > 0.0).astype(np.float64)

    def evaluate_into(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        np.maximum(x, 0.0, out=out)
        return out


class LeakyReLU(Activation):
    """Leaky ReLU with slope ``alpha`` on the negative side (unbounded)."""

    name = "leaky_relu"
    lower = -np.inf
    upper = np.inf
    satisfies_universality = False

    def __init__(self, alpha: float = 0.01):
        if not 0 <= alpha <= 1:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.alpha = float(alpha)
        self.lipschitz = 1.0

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return np.where(x > 0.0, x, self.alpha * x)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return np.where(x > 0.0, 1.0, self.alpha)

    def spec(self) -> dict:
        return {"name": self.name, "alpha": self.alpha}


class SoftSign(Activation):
    """Rescaled softsign ``(x/(1+|x|) + 1)/2`` — 1/2-Lipschitz, range (0,1)."""

    name = "softsign"
    lipschitz = 0.5
    lower = 0.0
    upper = 1.0
    satisfies_universality = True

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return 0.5 * (x / (1.0 + np.abs(x)) + 1.0)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return 0.5 / (1.0 + np.abs(x)) ** 2


class Identity(Activation):
    """Identity map — used for the linear output node (not a squasher)."""

    name = "identity"
    lipschitz = 1.0
    lower = -np.inf
    upper = np.inf
    satisfies_universality = False

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=np.float64)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        return np.ones_like(np.asarray(x, dtype=np.float64))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Type[Activation]] = {}


def register_activation(cls: Type[Activation]) -> Type[Activation]:
    """Register an :class:`Activation` subclass under its ``name``."""
    if not issubclass(cls, Activation):
        raise TypeError(f"{cls!r} is not an Activation subclass")
    _REGISTRY[cls.name] = cls
    return cls


for _cls in (Sigmoid, Tanh, HardSigmoid, ReLU, LeakyReLU, SoftSign, Identity):
    register_activation(_cls)


def available_activations() -> list[str]:
    """Names of all registered activations."""
    return sorted(_REGISTRY)


def get_activation(spec: "str | dict | Activation") -> Activation:
    """Instantiate an activation from a name, spec dict, or pass-through.

    Examples
    --------
    >>> get_activation("sigmoid").lipschitz
    0.25
    >>> get_activation({"name": "sigmoid", "k": 2.0}).lipschitz
    2.0
    """
    if isinstance(spec, Activation):
        return spec
    if isinstance(spec, str):
        spec = {"name": spec}
    if not isinstance(spec, dict) or "name" not in spec:
        raise TypeError(f"cannot build an activation from {spec!r}")
    kwargs = {k: v for k, v in spec.items() if k != "name"}
    name = spec["name"]
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown activation {name!r}; available: {available_activations()}"
        ) from None
    return cls(**kwargs)
