"""Construction helpers: spec-driven builds, random networks, and the
eight concrete architectures used to regenerate the paper's Figure 3.

The paper reports Figure 3 over "several neural networks" (eight
series, Net 1..Net 8) "affected with similar amounts of neuron
failures", without disclosing the architectures.  We substitute a
concrete family spanning the relevant axes — depth 1..4 and width
8..64 — which is sufficient to reproduce the figure's claim (output
error grows polynomially with the Lipschitz constant ``K``).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .activations import Activation, get_activation
from .initializers import get_initializer
from .layers import Conv1DLayer, DenseLayer, Layer
from .model import FeedForwardNetwork

__all__ = [
    "build_mlp",
    "build_conv_net",
    "random_network",
    "figure3_architectures",
    "build_figure3_network",
]


def build_mlp(
    input_dim: int,
    hidden_sizes: Sequence[int],
    *,
    activation: "str | dict | Activation" = "sigmoid",
    n_outputs: int = 1,
    init: str = "xavier_uniform",
    use_bias: bool = True,
    output_scale: Optional[float] = None,
    seed: Optional[int] = None,
) -> FeedForwardNetwork:
    """Build a fully-connected network ``d -> N_1 -> ... -> N_L -> out``.

    Parameters
    ----------
    input_dim:
        ``d``, the number of input clients.
    hidden_sizes:
        ``(N_1, ..., N_L)``; must be non-empty.
    activation:
        Squashing function for every hidden layer.
    output_scale:
        When given, output weights are drawn Uniform(-s, s) with
        ``s = output_scale``; otherwise the ``init`` scheme is used.
    seed:
        Seed for reproducible initialisation.
    """
    hidden_sizes = list(hidden_sizes)
    if not hidden_sizes:
        raise ValueError("hidden_sizes must contain at least one layer")
    rng = np.random.default_rng(seed)
    act = get_activation(activation)
    layers: list[Layer] = []
    fan_in = input_dim
    for width in hidden_sizes:
        layers.append(
            DenseLayer(fan_in, width, act, init=init, use_bias=use_bias, rng=rng)
        )
        fan_in = width
    if output_scale is not None:
        out_w = rng.uniform(-output_scale, output_scale, size=(n_outputs, fan_in))
    else:
        out_w = np.asarray(get_initializer(init)((n_outputs, fan_in), rng))
    return FeedForwardNetwork(layers, out_w)


def build_conv_net(
    input_dim: int,
    receptive_fields: Sequence[int],
    *,
    activation: "str | dict | Activation" = "sigmoid",
    n_outputs: int = 1,
    init: str = "xavier_uniform",
    use_bias: bool = True,
    seed: Optional[int] = None,
) -> FeedForwardNetwork:
    """Build a stack of 1-D convolutional layers plus a linear readout.

    Each entry of ``receptive_fields`` creates one :class:`Conv1DLayer`
    with that receptive field (widths shrink by ``R - 1`` per layer,
    'valid' convolution).  Used by the Section VI experiments.
    """
    rng = np.random.default_rng(seed)
    act = get_activation(activation)
    layers: list[Layer] = []
    fan_in = input_dim
    for r in receptive_fields:
        layer = Conv1DLayer(fan_in, r, act, init=init, use_bias=use_bias, rng=rng)
        layers.append(layer)
        fan_in = layer.n_out
    out_w = np.asarray(get_initializer(init)((n_outputs, fan_in), rng))
    return FeedForwardNetwork(layers, out_w)


def random_network(
    *,
    max_depth: int = 3,
    max_width: int = 12,
    max_input_dim: int = 5,
    activation: "str | dict | Activation" = "sigmoid",
    weight_scale: float = 1.0,
    seed: Optional[int] = None,
) -> FeedForwardNetwork:
    """Draw a random architecture + weights (tests, property checks).

    Weights are Uniform(-weight_scale, weight_scale), so every
    ``w_m^(l) <= weight_scale`` by construction.
    """
    rng = np.random.default_rng(seed)
    depth = int(rng.integers(1, max_depth + 1))
    input_dim = int(rng.integers(1, max_input_dim + 1))
    widths = [int(rng.integers(2, max_width + 1)) for _ in range(depth)]
    return build_mlp(
        input_dim,
        widths,
        activation=activation,
        init={"name": "uniform", "scale": weight_scale},
        output_scale=weight_scale,
        seed=int(rng.integers(0, 2**31 - 1)),
    )


# ---------------------------------------------------------------------------
# Figure 3 family
# ---------------------------------------------------------------------------

#: The eight architectures standing in for the paper's Net 1..Net 8.
#: (input_dim, hidden_sizes) — chosen to span depth 1..4 and width 8..64
#: so the K-dependence exponent (= depth for first-layer faults) varies
#: across series exactly as the spread in the paper's Figure 3 does.
FIGURE3_SPECS: tuple[tuple[int, tuple[int, ...]], ...] = (
    (2, (16,)),
    (2, (64,)),
    (3, (16, 16)),
    (3, (32, 16)),
    (4, (24, 24, 24)),
    (4, (48, 24, 12)),
    (5, (16, 16, 16, 16)),
    (5, (32, 32, 16, 8)),
)


def figure3_architectures() -> tuple[tuple[int, tuple[int, ...]], ...]:
    """The (input_dim, hidden_sizes) pairs of the Figure-3 family."""
    return FIGURE3_SPECS


def build_figure3_network(
    index: int,
    k: float,
    *,
    seed: Optional[int] = None,
    weight_scale: float = 0.8,
) -> FeedForwardNetwork:
    """Build Net ``index`` (0-based, 0..7) with a K-tuned sigmoid.

    The same seed produces the same weights for every ``k``, so sweeps
    over ``k`` isolate the activation-steepness effect, as Figure 3
    requires (the failure pattern and weights are held fixed while K
    varies).
    """
    if not 0 <= index < len(FIGURE3_SPECS):
        raise ValueError(f"index {index} outside 0..{len(FIGURE3_SPECS) - 1}")
    input_dim, hidden = FIGURE3_SPECS[index]
    return build_mlp(
        input_dim,
        hidden,
        activation={"name": "sigmoid", "k": k},
        init={"name": "uniform", "scale": weight_scale},
        output_scale=weight_scale,
        seed=seed if seed is not None else 1000 + index,
    )
